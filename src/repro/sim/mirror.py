"""Keeping one warm delta-aware attack engine aligned with a mutating cluster.

The simulator mutates its cluster object-by-object (arrivals, departures,
re-replication moves), while :class:`~repro.core.batch.AttackEngine`
addresses objects by dense slot ids with swap-with-last compaction (see
:class:`~repro.core.kernels.DeltaIncidence`). :class:`EngineMirror` is the
adapter between the two id spaces: it buffers churn as it happens, flushes
it as one batched ``apply_delta`` right before an attack (so a burst of
churn between strikes costs a single delta), and replays the engine's
exact slot semantics on its own id table so external object ids keep
resolving to engine slots.

The engine is built cold on the first flush with a live population and
dropped if the population ever empties; in between, every flush is
O(changed replicas).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.batch import AttackEngine
from repro.core.placement import Placement


class EngineMirror:
    """A delta-aware engine plus the external-id -> engine-slot table."""

    def __init__(
        self,
        n: int,
        backend: Optional[str] = None,
        strategy_label: str = "sim",
    ) -> None:
        self.n = n
        self.backend = backend
        self.strategy_label = strategy_label
        self.engine: Optional[AttackEngine] = None
        self._slot_ids: List[int] = []          # slot -> external id
        self._slots: Dict[int, int] = {}        # external id -> slot
        self._pending_add: Dict[int, Tuple[int, ...]] = {}
        self._pending_remove: Dict[int, None] = {}
        self.flushes = 0
        self.deltas_applied = 0

    # -- churn buffering -----------------------------------------------------

    def add(self, obj_id: int, nodes: Sequence[int]) -> None:
        """Track a newly placed object."""
        if obj_id in self._slots or obj_id in self._pending_add:
            raise KeyError(f"object {obj_id} is already tracked")
        self._pending_add[obj_id] = tuple(nodes)

    def remove(self, obj_id: int) -> None:
        """Track an object deletion."""
        if obj_id in self._pending_add:
            del self._pending_add[obj_id]
        elif obj_id in self._slots and obj_id not in self._pending_remove:
            self._pending_remove[obj_id] = None
        else:
            raise KeyError(f"object {obj_id} is not tracked")

    def replace(self, obj_id: int, nodes: Sequence[int]) -> None:
        """Track a replica move (re-replication rebuilds the object)."""
        if obj_id in self._pending_add:
            self._pending_add[obj_id] = tuple(nodes)
        elif obj_id in self._slots and obj_id not in self._pending_remove:
            self._pending_remove[obj_id] = None
            self._pending_add[obj_id] = tuple(nodes)
        else:
            raise KeyError(f"object {obj_id} is not tracked")

    @property
    def size(self) -> int:
        """Live objects after the buffered churn is applied."""
        return (
            len(self._slot_ids)
            - len(self._pending_remove)
            + len(self._pending_add)
        )

    # -- flushing ------------------------------------------------------------

    def flush(self) -> Optional[AttackEngine]:
        """Apply buffered churn and return the aligned engine (None if empty)."""
        if not self._pending_add and not self._pending_remove:
            return self.engine
        self.flushes += 1
        if self.size == 0:
            # Population emptied: no placement to hold; restart cold later.
            self.engine = None
            self._slot_ids.clear()
            self._slots.clear()
            self._pending_add.clear()
            self._pending_remove.clear()
            return None
        if self.engine is None:
            return self._build_cold()
        removed_slots = sorted(
            (self._slots[obj_id] for obj_id in self._pending_remove),
            reverse=True,
        )
        added = list(self._pending_add.values())
        self.engine.apply_delta(
            added_objects=added, removed_objects=removed_slots
        )
        self.deltas_applied += 1
        # Replay the engine's swap-with-last compaction on the id table:
        # removals in descending slot order (the last slot's object moves
        # into the freed slot), then additions appended in order.
        for slot in removed_slots:
            del self._slots[self._slot_ids[slot]]
            last = len(self._slot_ids) - 1
            if slot != last:
                moved_id = self._slot_ids[last]
                self._slot_ids[slot] = moved_id
                self._slots[moved_id] = slot
            self._slot_ids.pop()
        for obj_id in self._pending_add:
            self._slots[obj_id] = len(self._slot_ids)
            self._slot_ids.append(obj_id)
        self._pending_add.clear()
        self._pending_remove.clear()
        return self.engine

    def _build_cold(self) -> AttackEngine:
        """First flush with a live population: build the engine once."""
        assert not self._pending_remove, "removals without an engine"
        ids = list(self._pending_add)
        # from_arrays validates (simulator processes are an untrusted
        # boundary) but stays array-native — no frozensets at any scale.
        placement = Placement.from_arrays(
            self.n,
            [self._pending_add[obj_id] for obj_id in ids],
            strategy=self.strategy_label,
        )
        self.engine = AttackEngine(placement, backend=self.backend)
        self._slot_ids = ids
        self._slots = {obj_id: slot for slot, obj_id in enumerate(ids)}
        self._pending_add.clear()
        return self.engine

    def slot_of(self, obj_id: int) -> int:
        """The engine slot currently holding ``obj_id`` (post-flush ids)."""
        return self._slots[obj_id]

    def __repr__(self) -> str:
        return (
            f"EngineMirror(live={self.size}, "
            f"pending=+{len(self._pending_add)}/-{len(self._pending_remove)}, "
            f"deltas={self.deltas_applied})"
        )
