"""Discrete-event cluster lifetime simulation.

The layer above the static scenario drivers: a seeded event loop that
advances one cluster through object churn, random/correlated node
failures with repair and re-replication, and a recurring online
worst-case adversary — kept fast by the delta-aware attack engine
(:meth:`repro.core.batch.AttackEngine.apply_delta`), which absorbs churn
in O(changed replicas) instead of rebuilding per event.

Entry points: :func:`simulate` (one call), :class:`SimConfig` +
:class:`LifetimeSimulator` (inspectable runs), ``repro simulate`` (CLI).
"""

from repro.sim.events import Event, EventKind, EventQueue, SimClockError
from repro.sim.mirror import EngineMirror
from repro.sim.processes import (
    AdversaryProcess,
    ChurnProcess,
    MeasureProcess,
    Process,
    RackFailureProcess,
    RandomFailureProcess,
)
from repro.sim.repair import (
    EagerRepair,
    LazyRepair,
    NoRepair,
    RepairPolicy,
    choose_repair_target,
    make_repair_policy,
)
from repro.sim.report import SimReport, SimSample, StrikeRecord
from repro.sim.simulator import LifetimeSimulator, SimConfig, simulate

__all__ = [
    "AdversaryProcess",
    "ChurnProcess",
    "EagerRepair",
    "EngineMirror",
    "Event",
    "EventKind",
    "EventQueue",
    "LazyRepair",
    "LifetimeSimulator",
    "MeasureProcess",
    "NoRepair",
    "Process",
    "RackFailureProcess",
    "RandomFailureProcess",
    "RepairPolicy",
    "SimClockError",
    "SimConfig",
    "SimReport",
    "SimSample",
    "StrikeRecord",
    "choose_repair_target",
    "make_repair_policy",
    "simulate",
]
