"""Discrete-event substrate: typed events on a deterministic time queue.

The simulator core is the textbook discrete-event loop — pop the earliest
event, advance the clock, handle, schedule follow-ups — so this module
keeps the substrate deliberately tiny: an :class:`Event` value type, the
:class:`EventKind` vocabulary shared by processes/handlers/reports, and a
min-heap :class:`EventQueue` whose ordering is *fully* deterministic:
ties on time break by insertion order (a monotone sequence number), never
by event contents, so two runs that push the same events in the same
order replay bit-for-bit.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Tuple


class EventKind(Enum):
    """Everything that can happen to the cluster at an instant."""

    ARRIVAL = "arrival"              # a new object is placed
    DEPARTURE = "departure"          # a live object is deleted
    NODE_FAIL = "node-fail"          # one node crashes (random process)
    RACK_FAIL = "rack-fail"          # a whole rack crashes (correlated)
    STRIKE = "strike"                # the online adversary fails k nodes
    NODE_REPAIR = "node-repair"      # a failed node comes back up
    REREPLICATE = "re-replicate"     # lost redundancy is rebuilt elsewhere
    MEASURE = "measure"              # sample the time-series metrics


@dataclass(frozen=True)
class Event:
    """One scheduled occurrence; payload fields are kind-specific.

    ``node`` targets NODE_REPAIR / REREPLICATE; ``epoch`` stamps a
    REREPLICATE event with the failure time that scheduled it, so a
    grace-period check fired by an *old* failure is recognized as stale
    when the node has since recovered and failed again. Churn events
    carry no payload — the workload trace decides arrival vs departure
    and the victim draw happens at handling time, keeping queue contents
    placement-free (the same property :mod:`repro.cluster.workload`
    keeps for its traces).
    """

    kind: EventKind
    node: Optional[int] = None
    epoch: Optional[float] = None


class SimClockError(ValueError):
    """Raised on invalid event times (negative, NaN, or past-dated)."""


class EventQueue:
    """A deterministic time-ordered queue of :class:`Event` entries."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self._now = 0.0

    @property
    def now(self) -> float:
        """The time of the most recently popped event (0.0 initially)."""
        return self._now

    def push(self, time: float, event: Event) -> None:
        """Schedule ``event`` at ``time`` (>= the current clock)."""
        if math.isnan(time) or math.isinf(time):
            raise SimClockError(f"event time must be finite, got {time}")
        if time < self._now:
            raise SimClockError(
                f"cannot schedule at {time}: clock is already at {self._now}"
            )
        heapq.heappush(self._heap, (time, self._seq, event))
        self._seq += 1

    def pop(self) -> Tuple[float, Event]:
        """The earliest (time, event); advances the clock."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        time, _seq, event = heapq.heappop(self._heap)
        self._now = time
        return time, event

    def peek_time(self) -> Optional[float]:
        """The next event's time, or None when empty."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __repr__(self) -> str:
        return f"EventQueue(pending={len(self._heap)}, now={self._now:g})"
