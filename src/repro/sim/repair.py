"""Re-replication policies: when lost redundancy is rebuilt elsewhere.

A node failure leaves every object it hosted one replica short until the
node repairs. Whether (and when) the system rebuilds those replicas on
healthy nodes is a policy choice with a real trade-off:

* :class:`EagerRepair` — re-replicate immediately (plus an optional
  detection delay). Redundancy recovers fastest, but every transient
  failure moves data, and moving replicas *abandons the packing
  guarantee*: the mutated placement is no longer the one Lemma 3
  certified, so the simulator marks subsequent strike records
  uncertified.
* :class:`LazyRepair` — wait out a grace period; if the node repaired in
  the meantime, nothing moves. The common production compromise (it
  absorbs reboots and maintenance without data motion).
* :class:`NoRepair` — never re-replicate; redundancy returns only when
  nodes do. Keeps the Lemma-3 certificate valid for the whole run, which
  is why it is the default for bound-tracking experiments.

The policy decides *timing* only; the mechanics (target choice, cluster
and engine updates) live in the simulator so policies stay trivially
composable. Targets are chosen deterministically — least-loaded up node
not already hosting the object, ties to the lowest id — so repair does
not consume randomness.
"""

from __future__ import annotations

from typing import Optional, Sequence


class RepairPolicy:
    """Decides when a failed node's lost replicas are rebuilt."""

    name = "abstract"

    def rereplicate_at(self, now: float, node: int) -> Optional[float]:
        """Time to rebuild ``node``'s replicas, or None for never.

        Called once when ``node`` fails. At the returned time the
        simulator re-checks: a node that already repaired keeps its
        replicas (relevant under :class:`LazyRepair`).
        """
        raise NotImplementedError


class EagerRepair(RepairPolicy):
    """Rebuild as soon as the failure is detected."""

    name = "eager"

    def __init__(self, detection_delay: float = 0.0) -> None:
        if detection_delay < 0:
            raise ValueError(
                f"detection delay must be >= 0, got {detection_delay}"
            )
        self.detection_delay = detection_delay

    def rereplicate_at(self, now: float, node: int) -> Optional[float]:
        return now + self.detection_delay


class LazyRepair(RepairPolicy):
    """Rebuild only if the node is still down after a grace period."""

    name = "lazy"

    def __init__(self, grace: float) -> None:
        if grace < 0:
            raise ValueError(f"grace period must be >= 0, got {grace}")
        self.grace = grace

    def rereplicate_at(self, now: float, node: int) -> Optional[float]:
        return now + self.grace


class NoRepair(RepairPolicy):
    """Never move replicas; wait for nodes to come back."""

    name = "none"

    def rereplicate_at(self, now: float, node: int) -> Optional[float]:
        return None


def make_repair_policy(name: str, grace: float = 4.0) -> RepairPolicy:
    """Policy factory for CLI/config strings: eager, lazy, or none."""
    if name == "eager":
        return EagerRepair()
    if name == "lazy":
        return LazyRepair(grace)
    if name == "none":
        return NoRepair()
    raise ValueError(f"unknown repair policy {name!r}; use eager, lazy or none")


def choose_repair_target(
    loads: Sequence[int],
    up: Sequence[bool],
    exclude: Sequence[int],
) -> Optional[int]:
    """The node to host a rebuilt replica, or None when no candidate exists.

    Deterministic: least loaded among up nodes outside ``exclude``, ties
    to the lowest node id (so repair placement is a pure function of
    cluster state and never draws randomness).
    """
    excluded = set(exclude)
    best: Optional[int] = None
    best_load = -1
    for node, load in enumerate(loads):
        if not up[node] or node in excluded:
            continue
        if best is None or load < best_load:
            best, best_load = node, load
    return best
