"""The cluster lifetime simulator: churn, failures, repair, online attacks.

The paper evaluates placements as static snapshots; this driver evaluates
them *over time* (the Sec. IV-D future-work regime): a seeded
discrete-event loop advances one :class:`~repro.cluster.cluster.Cluster`
through interleaved

* **object churn** — a :func:`~repro.cluster.workload.churn_trace` feeds
  arrivals/departures, placed and released by an
  :class:`~repro.core.adaptive.AdaptiveComboPlacement` (so the Lemma-3
  certificate tracks the live population);
* **node failures** — memoryless random crashes and correlated
  whole-rack crashes, each repairing after a fixed downtime;
* **re-replication** — an eager/lazy/none :mod:`repro.sim.repair` policy
  rebuilds lost redundancy on healthy nodes (and, once it moves a
  replica, voids the packing certificate — recorded honestly);
* **a recurring online adversary** — a
  :class:`~repro.cluster.failures.WorstCaseInjector` strike every period,
  warm-started from the previous strike.

Engine modes make the delta machinery measurable: ``"delta"`` (default)
keeps one warm :class:`~repro.core.batch.AttackEngine` aligned with the
population through :class:`~repro.sim.mirror.EngineMirror` — churn
between strikes costs one O(changed replicas) ``apply_delta`` — while
``"rebuild"`` replays the pre-delta behaviour (snapshot + fingerprint +
cold incidence per strike). Both modes draw identical randomness and
produce bit-identical strike records; ``benchmarks/bench_sim.py`` times
the gap.

Everything is a pure function of :class:`SimConfig` (all randomness
derives from ``seed`` via labelled streams), so runs replay bit-for-bit.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import obs
from repro.cluster.cluster import Cluster
from repro.cluster.failures import WorstCaseInjector
from repro.cluster.metrics import LoadStats
from repro.cluster.objects import LivenessRule, threshold_rule
from repro.cluster.workload import ChurnKind, churn_trace
from repro.core.adaptive import AdaptiveComboPlacement
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.mirror import EngineMirror
from repro.sim.processes import (
    AdversaryProcess,
    ChurnProcess,
    MeasureProcess,
    Process,
    RackFailureProcess,
    RandomFailureProcess,
)
from repro.sim.repair import (
    RepairPolicy,
    choose_repair_target,
    make_repair_policy,
)
from repro.sim.report import SimReport, SimSample, StrikeRecord
from repro.util.rng import derive_rng

_ENGINE_MODES = ("delta", "rebuild")


@dataclass(frozen=True)
class SimConfig:
    """One lifetime experiment, fully specified.

    Rates are events per unit time (0 disables the process); periods are
    time units between firings. ``events`` caps the number of handled
    events (every queue pop counts: churn, failures, repairs, strikes,
    measures), which is the budget the events/sec throughput metric is
    measured against.
    """

    n: int = 31
    r: int = 3
    s: int = 2
    k: int = 3
    events: int = 2000
    seed: int = 0
    racks: int = 1
    arrival_probability: float = 0.6
    warmup_arrivals: int = 64
    churn_interval: float = 1.0
    failure_rate: float = 0.0
    rack_failure_rate: float = 0.0
    repair_time: float = 8.0
    strike_period: float = 16.0
    measure_period: float = 8.0
    effort: str = "fast"
    backend: Optional[str] = None
    engine_mode: str = "delta"
    repair: str = "none"
    repair_grace: float = 4.0
    replan_interval: int = 64
    expected_objects: int = 64
    lanes: Optional[int] = None

    def validate(self) -> None:
        if self.n < 2:
            raise ValueError(f"need n >= 2 nodes, got {self.n}")
        if not 1 <= self.k < self.n:
            raise ValueError(f"need 1 <= k < n={self.n}, got k={self.k}")
        if not 1 <= self.s <= self.r:
            raise ValueError(f"need 1 <= s <= r={self.r}, got s={self.s}")
        if self.events < 1:
            raise ValueError(f"need an event budget >= 1, got {self.events}")
        if self.racks < 1:
            raise ValueError(f"need racks >= 1, got {self.racks}")
        if self.engine_mode not in _ENGINE_MODES:
            raise ValueError(
                f"unknown engine mode {self.engine_mode!r}; "
                f"use one of {_ENGINE_MODES}"
            )
        if self.effort not in ("fast", "auto", "exact"):
            raise ValueError(
                f"unknown effort {self.effort!r}; use fast, auto or exact"
            )
        if self.repair_time <= 0:
            raise ValueError(f"repair time must be > 0, got {self.repair_time}")
        if self.lanes is not None and self.lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {self.lanes}")


class LifetimeSimulator:
    """Drives one :class:`SimConfig` to a :class:`SimReport`."""

    def __init__(self, config: SimConfig) -> None:
        config.validate()
        self.config = config
        self.rule: LivenessRule = threshold_rule(config.s)
        self.cluster = Cluster(config.n, racks=config.racks)
        self.adaptive = AdaptiveComboPlacement(
            config.n, config.r, config.s, config.k,
            expected_objects=config.expected_objects,
            replan_interval=config.replan_interval,
        )
        self.repair_policy: RepairPolicy = make_repair_policy(
            config.repair, grace=config.repair_grace
        )
        self.mirror = EngineMirror(config.n, backend=config.backend)
        self.injector = WorstCaseInjector(
            effort=config.effort, backend=config.backend, seed=config.seed,
            lanes=config.lanes,
        )
        self._trace = churn_trace(
            steps=config.events,
            arrival_probability=config.arrival_probability,
            warmup_arrivals=config.warmup_arrivals,
            rng=derive_rng(config.seed, "sim", "churn-trace"),
        )
        self._victims = derive_rng(config.seed, "sim", "victims")
        self._live: List[int] = []
        self._warm: Optional[tuple] = None
        self._failed_at: Dict[int, float] = {}
        self._certified = True
        self._queue = EventQueue()
        self._handled = 0
        self._processes: Dict[EventKind, Process] = {}
        self._report = SimReport(
            n=config.n, r=config.r, s=config.s, k=config.k,
            seed=config.seed, engine_mode=config.engine_mode,
        )
        self._install_processes()

    def _install_processes(self) -> None:
        config = self.config
        processes: List[Process] = [ChurnProcess(config.churn_interval)]
        if config.failure_rate > 0:
            processes.append(RandomFailureProcess(config.failure_rate))
        if config.rack_failure_rate > 0:
            processes.append(RackFailureProcess(config.rack_failure_rate))
        if config.strike_period > 0:
            processes.append(AdversaryProcess(config.strike_period, config.k))
        if config.measure_period > 0:
            processes.append(MeasureProcess(config.measure_period))
        for process in processes:
            process.bind(config.seed)
            self._processes[process.kind] = process
            # Churn starts at t=0 so warmup arrivals populate the cluster
            # before the first failure/strike/measure can fire.
            first = 0.0 if isinstance(process, ChurnProcess) else process.delay()
            self._queue.push(first, process.event())

    # -- the event loop ------------------------------------------------------

    def run(self) -> SimReport:
        start = _time.perf_counter()
        handled_before = self._handled
        while self._queue and self._handled < self.config.events:
            now, event = self._queue.pop()
            self._handled += 1
            counted_kind = self._dispatch(now, event)
            self._report.count_event(counted_kind.value)
        if self._handled > handled_before:
            obs.count("sim.events", self._handled - handled_before)
        self._report.events = self._handled
        self._report.end_time = self._queue.now
        self._report.wall_seconds = _time.perf_counter() - start
        return self._report

    def _dispatch(self, now: float, event: Event) -> EventKind:
        kind = event.kind
        if kind in (EventKind.ARRIVAL, EventKind.DEPARTURE):
            return self._handle_churn(now)
        if kind == EventKind.NODE_FAIL:
            self._handle_node_fail(now)
        elif kind == EventKind.RACK_FAIL:
            self._handle_rack_fail(now)
        elif kind == EventKind.STRIKE:
            self._handle_strike(now)
        elif kind == EventKind.NODE_REPAIR:
            node = self.cluster.nodes[event.node]
            if not node.is_up:
                node.recover()
        elif kind == EventKind.REREPLICATE:
            self._handle_rereplicate(event.node, event.epoch)
        elif kind == EventKind.MEASURE:
            self._handle_measure(now)
            self._reschedule(EventKind.MEASURE, now)
        return kind

    def _reschedule(self, kind: EventKind, now: float) -> None:
        process = self._processes.get(kind)
        if process is not None:
            self._queue.push(now + process.delay(), process.event())

    # -- churn ---------------------------------------------------------------

    def _handle_churn(self, now: float) -> EventKind:
        step = next(self._trace, None)
        if step is None:
            return EventKind.ARRIVAL  # trace exhausted: inert tick
        self._reschedule(EventKind.ARRIVAL, now)
        if step.kind == ChurnKind.ARRIVAL:
            obj_id = self.adaptive.add_object()
            nodes = self.adaptive.replica_nodes(obj_id)
            self.cluster.add_object(obj_id, nodes)
            self._live.append(obj_id)
            if self.config.engine_mode == "delta":
                self.mirror.add(obj_id, nodes)
            # The adaptive placement is failure-oblivious (blocks come
            # from the packing, not from cluster health), so an arrival
            # can land replicas on a failed node; give the repair policy
            # a chance to rebuild them like any other lost redundancy.
            for node in nodes:
                if not self.cluster.nodes[node].is_up:
                    when = self.repair_policy.rereplicate_at(now, node)
                    if when is not None:
                        self._queue.push(
                            when,
                            Event(
                                kind=EventKind.REREPLICATE,
                                node=node,
                                epoch=self._failed_at.get(node),
                            ),
                        )
            return EventKind.ARRIVAL
        if self._live:
            victim = self._live.pop(self._victims.randrange(len(self._live)))
            self.adaptive.remove_object(victim)
            self.cluster.remove_object(victim)
            if self.config.engine_mode == "delta":
                self.mirror.remove(victim)
        return EventKind.DEPARTURE

    # -- failures and repair -------------------------------------------------

    def _fail_and_schedule_repair(self, now: float, node: int) -> None:
        self.cluster.fail_nodes([node])
        self._failed_at[node] = now
        self._queue.push(
            now + self.config.repair_time,
            Event(kind=EventKind.NODE_REPAIR, node=node),
        )
        when = self.repair_policy.rereplicate_at(now, node)
        if when is not None:
            self._queue.push(
                when, Event(kind=EventKind.REREPLICATE, node=node, epoch=now)
            )

    def _handle_node_fail(self, now: float) -> None:
        process = self._processes[EventKind.NODE_FAIL]
        self._reschedule(EventKind.NODE_FAIL, now)
        up = [node.node_id for node in self.cluster.nodes if node.is_up]
        if not up:
            return
        self._fail_and_schedule_repair(now, process.rng.choice(up))

    def _handle_rack_fail(self, now: float) -> None:
        process = self._processes[EventKind.RACK_FAIL]
        self._reschedule(EventKind.RACK_FAIL, now)
        rack = process.rng.randrange(self.cluster.racks)
        for node in self.cluster.nodes:
            if node.rack == rack and node.is_up:
                self._fail_and_schedule_repair(now, node.node_id)

    def _handle_rereplicate(self, node_id: int, epoch: Optional[float]) -> None:
        node = self.cluster.nodes[node_id]
        if node.is_up or self._failed_at.get(node_id) != epoch:
            # Repaired within the grace period — or this check belongs to
            # an older failure of a node that has since failed again (the
            # newer failure carries its own grace clock).
            return
        for obj_id in sorted(node.replicas):
            stored = self.cluster.objects[obj_id]
            target = choose_repair_target(
                self.cluster.loads(),
                [candidate.is_up for candidate in self.cluster.nodes],
                exclude=sorted(stored.replica_nodes),
            )
            if target is None:
                continue  # no healthy host available; stay degraded
            new_nodes = (stored.replica_nodes - {node_id}) | {target}
            self.cluster.remove_object(obj_id)
            self.cluster.add_object(obj_id, new_nodes)
            if self.config.engine_mode == "delta":
                self.mirror.replace(obj_id, tuple(sorted(new_nodes)))
            # The placement is no longer the packing the DP certified.
            self._certified = False

    # -- the adversary -------------------------------------------------------

    def _handle_strike(self, now: float) -> None:
        process = self._processes[EventKind.STRIKE]
        self._reschedule(EventKind.STRIKE, now)
        if not self._live:
            return
        if self.config.engine_mode == "delta":
            self.injector.engine = self.mirror.flush()
        else:
            self.injector.engine = None  # snapshot + fingerprint per strike
        nodes = self._select_strike(process.k)
        obs.count("sim.strikes")
        obs.count(
            "sim.strikes.delta"
            if self.config.engine_mode == "delta"
            else "sim.strikes.rebuild"
        )
        attack = self.injector.last_result
        self._warm = attack.nodes
        for node in nodes:
            if self.cluster.nodes[node].is_up:
                self._fail_and_schedule_repair(now, node)
        self._report.record_strike(
            StrikeRecord(
                time=now,
                nodes=tuple(nodes),
                damage=attack.damage,
                live_objects=len(self._live),
                lower_bound=self.adaptive.lower_bound(process.k),
                certified=self._certified,
            )
        )

    def _select_strike(self, k: int):
        """Run the adversary once, retrying injected transient faults.

        The ``sim.strike`` injection point. Selection is a pure function
        of the cluster state and warm start, so a retry recomputes the
        identical strike — a chaos-injected hiccup perturbs timing, never
        the simulated trajectory.
        """
        from repro import faults

        last = None
        for attempt in range(4):
            mark = obs.checkpoint()
            try:
                faults.inject("sim.strike", k=k, attempt=attempt)
                with obs.span("sim.strike", k=k):
                    return self.injector.select(
                        self.cluster, k, self.rule, warm_start=self._warm
                    )
            except faults.InjectedFault as exc:
                # A retried strike re-records its work; drop the failed
                # attempt's gated recordings so totals stay invariant
                # under chaos retries that succeed.
                obs.rollback(mark)
                last = exc
        raise last

    # -- measurement ---------------------------------------------------------

    def _handle_measure(self, now: float) -> None:
        loads = self.cluster.loads()
        if self.cluster.objects:
            imbalance = LoadStats.from_loads(loads).imbalance
        else:
            imbalance = 1.0
        failed = self.cluster.failed_nodes()
        self._report.record_sample(
            SimSample(
                time=now,
                events=self._handled,
                live_objects=len(self._live),
                failed_nodes=len(failed),
                availability=self.cluster.availability(self.rule),
                load_imbalance=imbalance,
                repair_backlog=sum(loads[node] for node in failed),
            )
        )


def simulate(**overrides) -> SimReport:
    """Run one lifetime experiment; keyword args override :class:`SimConfig`."""
    return LifetimeSimulator(SimConfig(**overrides)).run()
