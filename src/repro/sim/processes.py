"""Recurring event sources: churn, failures, and the online adversary.

Each process owns one :class:`~repro.util.rng.derive_rng` stream (seeded
from the simulation seed and the process label), decides *when* its next
event fires, and names *what* fires. The simulator holds one live event
per process on the queue at a time and asks the process to reschedule
after handling — the standard self-scheduling discrete-event pattern, so
adding a process never perturbs the randomness of the others.

Three adversity levels mirror :mod:`repro.cluster.failures`:

* :class:`RandomFailureProcess` — memoryless single-node crashes
  (exponential inter-arrivals), the prior-work failure model;
* :class:`RackFailureProcess` — whole-rack correlated crashes, the
  hierarchical failure-domain regime of arXiv:1701.01539;
* :class:`AdversaryProcess` — the paper's worst-case adversary striking
  on a fixed period, re-planning each strike against the *current*
  population (arXiv:1605.04069's continuous regime). The strike search
  itself runs through a :class:`~repro.cluster.failures.WorstCaseInjector`
  owned by the simulator, warm-started from the previous strike.
"""

from __future__ import annotations

import random

from repro.sim.events import Event, EventKind
from repro.util.rng import derive_rng


class Process:
    """One self-rescheduling event source."""

    #: Label namespacing the derived rng stream; unique per process kind.
    label = "process"
    kind = EventKind.MEASURE

    def bind(self, seed: int) -> None:
        """Derive this process's private generator from the sim seed."""
        self.rng: random.Random = derive_rng(seed, "sim", self.label)

    def delay(self) -> float:
        """Time until the next occurrence (called after each handling)."""
        raise NotImplementedError

    def event(self) -> Event:
        """The event to schedule (payload drawn from the private stream)."""
        return Event(kind=self.kind)


class ChurnProcess(Process):
    """Workload churn on a fixed tick; arrival/departure comes from a trace.

    The trace (``repro.cluster.workload.churn_trace``) is consumed at
    *handling* time by the simulator, keeping this process a pure clock:
    one churn slot every ``interval`` time units.
    """

    label = "churn"
    kind = EventKind.ARRIVAL  # refined by the trace at handling time

    def __init__(self, interval: float = 1.0) -> None:
        if interval <= 0:
            raise ValueError(f"churn interval must be > 0, got {interval}")
        self.interval = interval

    def delay(self) -> float:
        return self.interval


class RandomFailureProcess(Process):
    """Uniform single-node crashes with exponential inter-arrivals."""

    label = "random-failures"
    kind = EventKind.NODE_FAIL

    def __init__(self, rate: float) -> None:
        if rate < 0:
            raise ValueError(f"failure rate must be >= 0, got {rate}")
        self.rate = rate

    def delay(self) -> float:
        return self.rng.expovariate(self.rate)


class RackFailureProcess(Process):
    """Correlated whole-rack crashes with exponential inter-arrivals."""

    label = "rack-failures"
    kind = EventKind.RACK_FAIL

    def __init__(self, rate: float) -> None:
        if rate < 0:
            raise ValueError(f"rack failure rate must be >= 0, got {rate}")
        self.rate = rate

    def delay(self) -> float:
        return self.rng.expovariate(self.rate)


class AdversaryProcess(Process):
    """The recurring online adversary: a worst-case strike every period."""

    label = "adversary"
    kind = EventKind.STRIKE

    def __init__(self, period: float, k: int) -> None:
        if period <= 0:
            raise ValueError(f"strike period must be > 0, got {period}")
        if k < 1:
            raise ValueError(f"strike size must be >= 1, got {k}")
        self.period = period
        self.k = k

    def delay(self) -> float:
        return self.period


class MeasureProcess(Process):
    """Periodic metric sampling into the report's time series."""

    label = "measure"
    kind = EventKind.MEASURE

    def __init__(self, period: float) -> None:
        if period <= 0:
            raise ValueError(f"measure period must be > 0, got {period}")
        self.period = period

    def delay(self) -> float:
        return self.period
