"""Time-series measurement of a simulated cluster lifetime.

A :class:`SimReport` is what a run leaves behind: periodic
:class:`SimSample` rows (availability, population, load skew, repair
backlog), one :class:`StrikeRecord` per adversary strike (damage against
the live Lemma-3 bound), event counts, and throughput. Everything is
JSON-friendly via :meth:`SimReport.to_dict` so runs can be archived and
diffed; :mod:`repro.analysis.timeseries` renders the same structure as
ascii plots and tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class SimSample:
    """One MEASURE tick of the metric time series."""

    time: float
    events: int              # events handled so far
    live_objects: int
    failed_nodes: int
    availability: float      # live fraction under the liveness rule
    load_imbalance: float    # max/mean replica load (1.0 = balanced)
    repair_backlog: int      # replicas currently on failed nodes

    def to_dict(self) -> Dict[str, float]:
        return {
            "time": self.time,
            "events": self.events,
            "live_objects": self.live_objects,
            "failed_nodes": self.failed_nodes,
            "availability": self.availability,
            "load_imbalance": self.load_imbalance,
            "repair_backlog": self.repair_backlog,
        }


@dataclass(frozen=True)
class StrikeRecord:
    """One worst-case strike: what the adversary found vs the guarantee."""

    time: float
    nodes: Tuple[int, ...]   # the failure set the search selected
    damage: int              # objects the strike disables (search damage)
    live_objects: int        # population size at strike time
    lower_bound: int         # Lemma-3 floor for the live population
    certified: bool          # bound still applies (no replica ever moved)

    @property
    def available(self) -> int:
        return self.live_objects - self.damage

    @property
    def violates_bound(self) -> bool:
        """True iff a *certified* strike fell below its Lemma-3 floor."""
        return self.certified and self.available < self.lower_bound

    def to_dict(self) -> Dict[str, object]:
        return {
            "time": self.time,
            "nodes": list(self.nodes),
            "damage": self.damage,
            "live_objects": self.live_objects,
            "lower_bound": self.lower_bound,
            "certified": self.certified,
        }


@dataclass
class SimReport:
    """Everything a lifetime run measured."""

    n: int
    r: int
    s: int
    k: int
    seed: int
    engine_mode: str
    samples: List[SimSample] = field(default_factory=list)
    strikes: List[StrikeRecord] = field(default_factory=list)
    event_counts: Dict[str, int] = field(default_factory=dict)
    events: int = 0
    end_time: float = 0.0
    wall_seconds: float = 0.0

    # -- recording (driver-facing) -----------------------------------------

    def record_sample(self, sample: SimSample) -> None:
        self.samples.append(sample)

    def record_strike(self, strike: StrikeRecord) -> None:
        self.strikes.append(strike)

    def count_event(self, kind_value: str) -> None:
        self.event_counts[kind_value] = self.event_counts.get(kind_value, 0) + 1

    # -- summary queries ----------------------------------------------------

    @property
    def events_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return float("inf")
        return self.events / self.wall_seconds

    def min_availability(self) -> float:
        """The worst sampled availability fraction (1.0 with no samples)."""
        if not self.samples:
            return 1.0
        return min(sample.availability for sample in self.samples)

    def max_backlog(self) -> int:
        if not self.samples:
            return 0
        return max(sample.repair_backlog for sample in self.samples)

    def worst_strike(self) -> Optional[StrikeRecord]:
        """The strike with the smallest surviving fraction, if any."""
        if not self.strikes:
            return None
        return min(
            self.strikes,
            key=lambda strike: (
                strike.available / strike.live_objects
                if strike.live_objects else 1.0
            ),
        )

    def bound_violations(self) -> int:
        """Certified strikes below their Lemma-3 floor (must be 0)."""
        return sum(1 for strike in self.strikes if strike.violates_bound)

    def certified_strikes(self) -> int:
        return sum(1 for strike in self.strikes if strike.certified)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-friendly archive of the full run."""
        return {
            "schema": "sim_report/v1",
            "config": {
                "n": self.n, "r": self.r, "s": self.s, "k": self.k,
                "seed": self.seed, "engine_mode": self.engine_mode,
            },
            "events": self.events,
            "end_time": self.end_time,
            "wall_seconds": round(self.wall_seconds, 4),
            "events_per_sec": round(self.events_per_sec, 1),
            "event_counts": dict(sorted(self.event_counts.items())),
            "min_availability": self.min_availability(),
            "bound_violations": self.bound_violations(),
            "samples": [sample.to_dict() for sample in self.samples],
            "strikes": [strike.to_dict() for strike in self.strikes],
        }
