"""Availability bounds: Lemma 1, Lemma 2, Lemma 3 and Theorem 1 of the paper.

All arithmetic is exact (integer binomials under floors); the competitive
constants of Theorem 1 are returned as exact :class:`Rational` values with
float conversions left to callers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.combinatorics import binom, ceil_div
from repro.util.intmath import Rational


def simple_capacity(n: int, r: int, x: int, lam: int) -> int:
    """Lemma 1: max objects a Simple(x, lam) placement can host.

    ``b <= floor(lam * C(n, x+1) / C(r, x+1))``.
    """
    _check_simple_args(n, r, x, lam)
    return (lam * binom(n, x + 1)) // binom(r, x + 1)


def minimal_lambda(b: int, n: int, r: int, x: int, mu: int = 1) -> int:
    """The minimal ``lambda`` of Eqn. 1: smallest multiple of ``mu`` fitting ``b``.

    Requires that ``mu * C(n, x+1) / C(r, x+1)`` is integral (the paper's
    condition on the (n_x, mu_x) choice), so that capacity grows in exact
    steps of that unit per copy.
    """
    _check_simple_args(n, r, x, mu)
    if b < 1:
        raise ValueError(f"need b >= 1, got {b}")
    unit_num = mu * binom(n, x + 1)
    denom = binom(r, x + 1)
    if unit_num % denom:
        raise ValueError(
            f"mu*C(n,x+1)/C(r,x+1) = {unit_num}/{denom} is not integral; "
            f"choose (n_x, mu_x) per Sec. III-C"
        )
    unit = unit_num // denom
    return mu * ceil_div(b, unit)


def lb_avail_simple(b: int, k: int, s: int, x: int, lam: int) -> int:
    """Lemma 2: ``lbAvail_si(x, lam) = b - floor(lam * C(k,x+1) / C(s,x+1))``.

    Not clamped at zero: the raw bound can be negative (and the paper's
    Fig. 10 reports such regimes as deeply negative relative improvements).
    """
    if x >= s:
        raise ValueError(
            f"Simple placements require x < s (else s-node failures can kill "
            f"unboundedly many objects); got x={x}, s={s}"
        )
    if lam < 1:
        raise ValueError(f"lambda must be >= 1, got {lam}")
    return b - (lam * binom(k, x + 1)) // binom(s, x + 1)


def lb_avail_combo(b: int, k: int, s: int, lambdas) -> int:
    """Lemma 3: ``lbAvail_co = b - sum_x floor(lambda_x C(k,x+1) / C(s,x+1))``.

    ``lambdas`` maps stratum ``x`` (0-based, ``x < s``) to its lambda; zero
    entries mean the stratum is unused.
    """
    total_loss = 0
    for x, lam in enumerate(lambdas):
        if lam == 0:
            continue
        if x >= s:
            raise ValueError(f"stratum x={x} invalid for s={s}")
        total_loss += (lam * binom(k, x + 1)) // binom(s, x + 1)
    return b - total_loss


@dataclass(frozen=True)
class CompetitiveConstants:
    """Theorem 1's constants: ``Avail(pi') < c * Avail(pi) + alpha``."""

    c: Rational
    alpha: Rational
    applicable: bool  # True iff C(r,x+1)C(k,x+1) < C(n_x,x+1)C(s,x+1), so c > 1

    @property
    def competitive_ratio(self) -> float:
        return float(self.c)


def theorem1_constants(
    nx: int, r: int, s: int, k: int, x: int, mu: int = 1
) -> CompetitiveConstants:
    """The (c, alpha) of Theorem 1 for a Simple(x, ·) placement on ``nx`` nodes.

    ``c = [1 - C(r,x+1)C(k,x+1) / (C(nx,x+1)C(s,x+1))]^{-1}`` and
    ``alpha = c * mu * C(k,x+1) / C(s,x+1)``; the theorem applies when the
    bracketed quantity is positive (``applicable``).
    """
    _check_simple_args(nx, r, x, mu)
    numerator = binom(r, x + 1) * binom(k, x + 1)
    denominator = binom(nx, x + 1) * binom(s, x + 1)
    if denominator == 0:
        raise ValueError(f"C(s,x+1) vanished: s={s}, x={x} must satisfy x < s")
    ratio = Rational(numerator, denominator)
    applicable = ratio < 1
    if not applicable:
        # Return the degenerate marker with c = alpha = 0; callers branch on
        # `applicable` rather than interpreting these numbers.
        return CompetitiveConstants(c=Rational(0), alpha=Rational(0), applicable=False)
    c = Rational(1) / (Rational(1) - ratio)
    alpha = c * Rational(mu * binom(k, x + 1), binom(s, x + 1))
    return CompetitiveConstants(c=c, alpha=alpha, applicable=True)


def _check_simple_args(n: int, r: int, x: int, lam: int) -> None:
    if not 0 <= x < r:
        raise ValueError(f"overlap bound must satisfy 0 <= x < r, got x={x}, r={r}")
    if not 1 <= r <= n:
        raise ValueError(f"need 1 <= r <= n, got r={r}, n={n}")
    if lam < 1:
        raise ValueError(f"lambda/mu must be >= 1, got {lam}")
