"""Random replica placement (paper Definition 4) and the Random' variant.

``Random`` draws a placement uniformly-ish from all load-balanced
placements: every node hosts at most ``l = ceil(r*b/n)`` replicas and each
object's ``r`` replicas land on distinct nodes. We realize it with the
standard slot-shuffle-and-repair procedure: materialize ``l`` slots per
node, shuffle, deal ``r`` slots per object, then repair objects that drew
duplicate nodes by swapping slots with other objects. The repair preserves
the per-node slot counts exactly, so the load bound holds by construction.

``Random'`` (Theorem 2's analysis device) drops the quota: each object
independently picks ``r`` distinct nodes uniformly. The paper proves the
two converge as the average load grows; the ablation benchmark
``bench_ablation_random`` measures the gap at finite sizes.
"""

from __future__ import annotations

import random
from array import array
from typing import List, Optional

from repro.core.placement import Placement, PlacementError
from repro.util.combinatorics import ceil_div


class RandomStrategy:
    """Load-balanced uniform random placement (Definition 4)."""

    def __init__(self, n: int, r: int, load_limit: Optional[int] = None) -> None:
        if not 1 <= r <= n:
            raise ValueError(f"need 1 <= r <= n, got r={r}, n={n}")
        self.n = n
        self.r = r
        self.load_limit = load_limit

    def place(self, b: int, rng: Optional[random.Random] = None) -> Placement:
        """Place ``b`` objects; per-node load never exceeds ``ceil(r*b/n)``.

        Deterministic given ``rng``; pass seeded generators for replayable
        experiments.
        """
        if b < 1:
            raise ValueError(f"need b >= 1, got {b}")
        rng = rng or random.Random()
        limit = self.load_limit if self.load_limit is not None else ceil_div(
            self.r * b, self.n
        )
        if limit * self.n < self.r * b:
            raise PlacementError(
                f"load limit {limit} cannot host {self.r * b} replicas on "
                f"{self.n} nodes"
            )
        slots: List[int] = []
        for node in range(self.n):
            slots.extend([node] * limit)
        rng.shuffle(slots)
        slots = slots[: self.r * b]
        # slots[:r*b] after a full shuffle is a uniform sample of slots; deal
        # r consecutive slots to each object and repair duplicates. Rows go
        # straight into the trusted array constructor (repair guarantees
        # distinct nodes; we sort each window here).
        self._repair(slots, rng)
        rows = array("i")
        for i in range(b):
            rows.extend(sorted(slots[i * self.r : (i + 1) * self.r]))
        return Placement.from_arrays(
            self.n, rows, r=self.r, strategy="Random", validate=False
        )

    def _repair(self, slots: List[int], rng: random.Random) -> None:
        """Swap away duplicate nodes within any object's r consecutive slots.

        A swap exchanges one duplicated slot of a conflicted object with a
        random slot of another object and is kept only when the combined
        duplicate count of the two objects strictly decreases, so the global
        conflict count is monotonically decreasing and the loop terminates;
        a safety cap guards adversarial inputs (e.g. n < r cannot happen
        here, but an externally supplied tight load limit can stall).
        """
        r = self.r
        num_objects = len(slots) // r
        conflicted = {
            obj for obj in range(num_objects) if self._duplicates(slots, obj)
        }
        attempts = 0
        max_attempts = 200 * len(slots) + 1000
        while conflicted:
            attempts += 1
            if attempts > max_attempts:
                raise PlacementError(
                    "slot repair failed to converge; load limit too tight"
                )
            obj = next(iter(conflicted))
            base = obj * r
            window = slots[base : base + r]
            dup_offset = next(i for i in range(r) if window[i] in window[:i])
            partner = rng.randrange(num_objects)
            if partner == obj:
                continue
            i = base + dup_offset
            j = partner * r + rng.randrange(r)
            before = self._duplicates(slots, obj) + self._duplicates(slots, partner)
            slots[i], slots[j] = slots[j], slots[i]
            after = self._duplicates(slots, obj) + self._duplicates(slots, partner)
            if after >= before:
                slots[i], slots[j] = slots[j], slots[i]  # revert
                continue
            for touched in (obj, partner):
                if self._duplicates(slots, touched):
                    conflicted.add(touched)
                else:
                    conflicted.discard(touched)

    def _duplicates(self, slots: List[int], obj: int) -> int:
        base = obj * self.r
        window = slots[base : base + self.r]
        return self.r - len(set(window))


class UnconstrainedRandomStrategy:
    """Random': r distinct nodes per object, no load quota (Theorem 2 device)."""

    def __init__(self, n: int, r: int) -> None:
        if not 1 <= r <= n:
            raise ValueError(f"need 1 <= r <= n, got r={r}, n={n}")
        self.n = n
        self.r = r

    def place(self, b: int, rng: Optional[random.Random] = None) -> Placement:
        if b < 1:
            raise ValueError(f"need b >= 1, got {b}")
        rng = rng or random.Random()
        population = range(self.n)
        rows = array("i")
        for _ in range(b):
            rows.extend(sorted(rng.sample(population, self.r)))
        return Placement.from_arrays(
            self.n, rows, r=self.r, strategy="Random'", validate=False
        )
