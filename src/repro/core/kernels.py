"""Pluggable damage kernels: the shared hot path of worst-case search.

Every availability number in the paper (Definition 1's ``Avail(pi)`` =
min surviving objects over all C(n, k) failure sets) bottlenecks on one
operation: given a partial failure set, how many objects have lost at
least ``s`` replicas, and which node kills the most next? This module
isolates that operation behind the :class:`DamageKernel` interface with
four interchangeable backends:

* :class:`GainKernel` — the incremental gain-table engine and the default.
  It maintains a length-``b`` hit-count vector plus a length-``n``
  marginal-gain table (``gain[v]`` = objects at count ``s - 1`` covered by
  ``v``), so ``add_node``/``remove_node`` touch only the ~``r * b / n``
  objects incident to the changed node instead of rescanning all
  ``n * b`` pairs, ``best_addition`` is an O(n) argmax over the table,
  and ``damage_of`` is O(1). Four backings share one contract:
  ``native`` (C hot loops compiled at first use, see
  :mod:`repro.core.native`), ``numpy`` (scatter updates + a vectorized
  ``M @ (counts == s - 1)`` bulk rebuild), ``bitset`` (bulk rebuilds via
  level bitmasks), and ``python`` (the dependency-free reference).
  Selected via ``REPRO_GAIN_BACKING`` or the ``gain_backing`` argument.
* :class:`BitsetKernel` — node-major Python ints as object bitmasks with
  popcount via ``int.bit_count()``. ``levels[i]`` holds the bitmask of
  objects with at least ``i + 1`` failed replicas, so adding a node is
  ``s`` AND/OR word operations and the common s = 1..2 damage queries are
  a single popcount — near branch-free, and dependency-free. Its
  ``best_addition`` rescans all n candidate masks (O(n * b / 64) words).
* :class:`NumpyKernel` — dense ``int16`` incidence with *preallocated*
  scratch buffers and in-place ``add_node``/``remove_node`` (no per-move
  allocation, unlike the historical ``hits + matrix[:, node]`` path).
* :class:`PythonKernel` — per-node object lists; the fallback when numpy
  is absent and the full-scan reference implementation.

Backend choice: ``force_backend`` (a context manager, used by tests) >
explicit ``backend=`` argument > the ``REPRO_KERNEL`` environment knob >
``"auto"`` (the gain kernel, which never has missing dependencies — its
backing ladder degrades from native through numpy to pure python).

Kernels bind an :class:`Incidence` — the node-major structure built once
per placement — to one fatality threshold ``s``; the batch engine
(:mod:`repro.core.batch`) shares a single incidence across a whole grid
of (k, s, effort) cells.

The ``hits`` objects a kernel hands out are opaque and owned by the
kernel: ``add_node``/``remove_node`` may mutate their argument and return
the object to use afterwards. Search engines therefore backtrack with the
inverse call instead of keeping references to earlier states.
"""

from __future__ import annotations

import os
from array import array
from contextlib import contextmanager
from itertools import chain as _chain
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro import obs
from repro.core import native as _native
from repro.core.placement import Placement

try:  # optional accelerator
    import numpy as _np
except ImportError:  # pragma: no cover - exercised in the no-numpy CI leg
    _np = None

#: Recognized backend names, fastest-first.
BACKENDS: Tuple[str, ...] = ("gain", "bitset", "numpy", "python")

#: What ``auto`` resolves to; the gain kernel needs only the stdlib.
DEFAULT_BACKEND = "gain"

#: Recognized gain-engine backings, fastest-first: the degradation
#: ladder. ``auto`` walks it top-down; a watchdog-detected fault demotes
#: the failing rung for the rest of the process (see demote_backing).
GAIN_BACKINGS: Tuple[str, ...] = ("native", "numpy", "bitset", "python")

#: Version of the packed gain-state wire format (little-endian int32
#: ``counts[b] | gain[n] | dead``). Bumped when the layout changes;
#: artifacts carrying a newer version fall back to a cold rebuild.
GAIN_STATE_VERSION = 1

# Stack of backends pinned by force_backend(); top of stack wins.
_FORCED: List[str] = []

# Backings demoted after a fault (backing -> reason). Process-wide: once
# a rung is demoted, ``auto`` never climbs back to it; forked workers
# inherit the parent's demotions at fork time.
_DEMOTED: Dict[str, str] = {}


def demote_backing(backing: str, reason: str) -> None:
    """Take one gain-backing rung out of the ``auto`` ladder.

    Called by the shard supervisor after a watchdog-detected fault and by
    the dispatch ladder when a backing fails to construct. The last rung
    (pure python) is never demotable — it is the floor the ladder
    degrades *to*. The first reason wins; re-demoting is a no-op.
    """
    if backing not in GAIN_BACKINGS:
        raise ValueError(
            f"unknown gain backing {backing!r}; use one of {GAIN_BACKINGS}"
        )
    if backing == GAIN_BACKINGS[-1]:
        raise ValueError("the python gain backing is the floor; cannot demote it")
    if backing not in _DEMOTED:
        _DEMOTED[backing] = str(reason)
        obs.count("kernel.demotions")
        obs.record_event("kernel.demotion", backing=backing, reason=str(reason))


def demoted_backings() -> Dict[str, str]:
    """The demoted rungs and why (empty in a fault-free process)."""
    return dict(_DEMOTED)


def restore_backings() -> None:
    """Clear all demotions (tests / explicit operator reset)."""
    _DEMOTED.clear()


def numpy_available() -> bool:
    return _np is not None


def _absorb(levels: List[int], mask: int) -> None:
    """Fold one node's object mask into saturating at-least-count levels.

    ``levels[i]`` is the bitmask of objects with at least ``i + 1`` hits;
    the update must run top-down so each level absorbs the *previous*
    state of the level below. Shared by both hit tracking and the suffix
    tables, so the invariant cannot drift between damage counting and
    branch-and-bound pruning.
    """
    for i in range(len(levels) - 1, 0, -1):
        levels[i] |= levels[i - 1] & mask
    levels[0] |= mask


@contextmanager
def force_backend(name: str) -> Iterator[None]:
    """Pin kernel selection for the dynamic extent of the ``with`` block.

    Overrides both explicit ``backend=`` arguments and ``REPRO_KERNEL``,
    and unwinds on exit even when the body raises — the replacement for
    the old ``_FORCE_PURE_PYTHON`` mutable global, which leaked between
    tests. Nested blocks stack; the innermost wins.
    """
    if name not in BACKENDS:
        raise ValueError(f"unknown kernel backend {name!r}; use one of {BACKENDS}")
    if name == "numpy" and _np is None:
        raise ValueError("cannot force the numpy backend: numpy is not importable")
    _FORCED.append(name)
    try:
        yield
    finally:
        _FORCED.pop()


def resolve_backend(requested: Optional[str] = None) -> str:
    """The concrete backend to use, honoring forcing, argument and env."""
    if _FORCED:
        return _FORCED[-1]
    choice = requested or os.environ.get("REPRO_KERNEL", "auto") or "auto"
    if choice == "auto":
        return DEFAULT_BACKEND
    if choice not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend {choice!r}; use auto or one of {BACKENDS}"
        )
    if choice == "numpy" and _np is None:
        raise ValueError("numpy backend requested but numpy is not importable")
    return choice


def resolve_gain_backing(requested: Optional[str] = None) -> str:
    """The concrete gain-engine backing: argument > ``REPRO_GAIN_BACKING``.

    ``auto`` walks the degradation ladder native -> numpy -> bitset ->
    python, skipping unavailable and fault-demoted rungs; an *explicit*
    request for an unavailable (or demoted) backing raises instead of
    degrading, so a pinned configuration never silently measures the
    wrong thing.
    """
    choice = requested or os.environ.get("REPRO_GAIN_BACKING", "auto") or "auto"
    if choice == "auto":
        for backing in GAIN_BACKINGS:
            if backing in _DEMOTED:
                continue
            if backing == "native" and not _native.available():
                continue
            if backing == "numpy" and _np is None:
                continue
            return backing
        return GAIN_BACKINGS[-1]  # python: demote-proof floor
    if choice not in GAIN_BACKINGS:
        raise ValueError(
            f"unknown gain backing {choice!r}; use auto or one of {GAIN_BACKINGS}"
        )
    if choice in _DEMOTED:
        raise ValueError(
            f"gain backing {choice!r} was demoted after a fault: "
            f"{_DEMOTED[choice]}"
        )
    if choice == "native" and not _native.available():
        raise ValueError(
            f"native gain backing requested but unavailable: {_native.load_error()}"
        )
    if choice == "numpy" and _np is None:
        raise ValueError("numpy gain backing requested but numpy is not importable")
    return choice


class Incidence:
    """Node-major incidence structures for one placement, built lazily.

    One instance is shared by every kernel (any ``s``, any backend) and
    every attack cell evaluated against the same placement: bitmasks for
    the bitset kernel, the dense matrix for numpy, suffix replica counts
    for branch-and-bound optimistic bounds.
    """

    def __init__(self, placement: Placement) -> None:
        self.placement = placement
        self.n = placement.n
        self.b = placement.b
        self._masks: Optional[List[int]] = None
        self._suffix_masks: Optional[List[List[int]]] = None
        self._matrix = None
        self._columns = None
        self._suffix_matrix = None
        self._suffix_counts: Optional[List[List[int]]] = None
        self._object_nodes: Optional[Tuple[Tuple[int, ...], ...]] = None
        self._csr: Optional[Tuple[array, array, array, array]] = None
        self._suffix_flat: Optional[array] = None
        self._obj_nodes_np = None
        self._node_objs_np = None
        self._top_degree_prefix: Optional[List[List[int]]] = None

    # -- bitset structures -------------------------------------------------

    def node_masks(self) -> List[int]:
        """``masks[node]`` has bit ``o`` set iff object ``o`` lives there."""
        if self._masks is None:
            node_off, node_objs = self.placement.node_csr()
            masks = [0] * self.n
            for node in range(self.n):
                mask = 0
                for obj_id in node_objs[node_off[node]:node_off[node + 1]]:
                    mask |= 1 << obj_id
                masks[node] = mask
            self._masks = masks
        return self._masks

    def full_mask(self) -> int:
        return (1 << self.b) - 1

    def suffix_masks(self) -> List[List[int]]:
        """``table[j][d]`` = bitmask of objects with >= d replicas on nodes >= j.

        Built in one backward sweep with the same saturating-level update
        the bitset kernel uses for hits; d ranges over 1..r (index 0 unused).
        """
        if self._suffix_masks is None:
            r = self.placement.r
            masks = self.node_masks()
            levels = [0] * r
            table: List[List[int]] = [[]] * (self.n + 1)
            table[self.n] = [0] + list(levels)
            for j in range(self.n - 1, -1, -1):
                _absorb(levels, masks[j])
                table[j] = [0] + list(levels)  # index 0 unused; table[j][d]
            self._suffix_masks = table
        return self._suffix_masks

    # -- numpy structures --------------------------------------------------

    def matrix(self):
        """Object-by-node ``int16`` incidence matrix (numpy only)."""
        if self._matrix is None:
            matrix = _np.zeros((self.b, self.n), dtype=_np.int16)
            rows = self.placement.replica_matrix()
            matrix[_np.arange(self.b)[:, None], rows] = 1
            self._matrix = matrix
        return self._matrix

    def columns(self):
        """``columns[node]`` = contiguous incidence row for one node."""
        if self._columns is None:
            self._columns = _np.ascontiguousarray(self.matrix().T)
        return self._columns

    def suffix_matrix(self):
        """``suffix[o, j]`` = replicas of object ``o`` on nodes >= j."""
        if self._suffix_matrix is None:
            reversed_cumsum = _np.cumsum(self.matrix()[:, ::-1], axis=1)[:, ::-1]
            self._suffix_matrix = _np.concatenate(
                [reversed_cumsum, _np.zeros((self.b, 1), dtype=reversed_cumsum.dtype)],
                axis=1,
            )
        return self._suffix_matrix

    # -- pure-python structures --------------------------------------------

    def node_objects(self) -> Tuple[Tuple[int, ...], ...]:
        """For each node, the ids of hosted objects (cached on the placement)."""
        return self.placement.node_incidence()

    def suffix_counts(self) -> List[List[int]]:
        """Pure-python twin of :meth:`suffix_matrix`."""
        if self._suffix_counts is None:
            flat = self.placement.replica_array()
            r = self.placement.r
            rows = [[0] * (self.n + 1) for _ in range(self.b)]
            for obj_id in range(self.b):
                row = rows[obj_id]
                for node in flat[obj_id * r:(obj_id + 1) * r]:
                    row[node] += 1
                for j in range(self.n - 1, -1, -1):
                    row[j] += row[j + 1]
            self._suffix_counts = rows
        return self._suffix_counts

    # -- gain-engine structures ---------------------------------------------

    def object_nodes(self) -> Tuple[Tuple[int, ...], ...]:
        """For each object, its replica nodes in ascending order."""
        if self._object_nodes is None:
            flat = self.placement.replica_array()
            r = self.placement.r
            self._object_nodes = tuple(
                tuple(flat[i:i + r]) for i in range(0, self.b * r, r)
            )
        return self._object_nodes

    def csr(self) -> Tuple[array, array, array, array, array]:
        """Both incidence directions as flat int32 CSR arrays.

        ``(node_off, node_end, node_objs, obj_off, obj_nodes)`` — the
        zero-copy layout shared with the native gain backing (and handy
        for any future accelerator). Node segment ``v`` spans
        ``node_objs[node_off[v]:node_end[v]]``; the split start/end
        arrays exist so :class:`DeltaIncidence` can leave slack between
        segments and absorb churn in place. Here the layout is tight
        (``node_end[v] == node_off[v + 1]``) and object offsets carry one
        trailing sentinel.

        Zero-copy with the array-native placement core: ``node_objs`` is
        the placement's cached CSR buffer and ``obj_nodes`` is the raw
        row-sorted ``(b, r)`` buffer itself (object offsets are the
        arithmetic progression with stride ``r``) — nothing is re-derived
        from per-object sets.
        """
        if self._csr is None:
            node_off, node_objs = self.placement.node_csr()
            node_end = node_off[1:]
            r = self.placement.r
            if _np is not None:
                obj_off = array("i")
                obj_off.frombytes(
                    (_np.arange(self.b + 1, dtype=_np.int32) * r).tobytes()
                )
            else:
                obj_off = array("i", range(0, (self.b + 1) * r, r))
            obj_nodes = self.placement.replica_array()
            self._csr = (node_off, node_end, node_objs, obj_off, obj_nodes)
        return self._csr

    def suffix_flat(self) -> array:
        """:meth:`suffix_counts` flattened row-major for the native bound."""
        if self._suffix_flat is None:
            flat = array("i", bytes(4 * self.b * (self.n + 1)))
            stride = self.n + 1
            for obj_id, row in enumerate(self.suffix_counts()):
                flat[obj_id * stride:(obj_id + 1) * stride] = array("i", row)
            self._suffix_flat = flat
        return self._suffix_flat

    def object_nodes_matrix(self):
        """``(b, r)`` index matrix of replica nodes (numpy gain backing).

        A zero-copy int32 view over the placement's row buffer.
        """
        if self._obj_nodes_np is None:
            self._obj_nodes_np = self.placement.replica_matrix()
        return self._obj_nodes_np

    def node_objects_arrays(self):
        """Per-node object-id index arrays (numpy gain backing).

        Zero-copy slices of the placement's CSR object list.
        """
        if self._node_objs_np is None:
            node_off, node_objs = self.placement.node_csr()
            flat = _np.frombuffer(node_objs, dtype=_np.int32)
            self._node_objs_np = [
                flat[node_off[v]:node_off[v + 1]] for v in range(self.n)
            ]
        return self._node_objs_np

    def top_degree_sum(self, start: int, slots: int) -> int:
        """Max total load of any ``slots`` distinct nodes with id >= start.

        Static per placement. Bounds how many *object incidences* a
        completion drawn from the suffix can add, and therefore (since a
        not-yet-dead object needs at least one added incidence to die) how
        many objects it can newly kill — the cap used by
        :meth:`DamageKernel.refined_bound`.
        """
        if self._top_degree_prefix is None:
            loads = self.placement.load_profile()
            table = []
            for j in range(self.n + 1):
                prefix = [0]
                for load in sorted(loads[j:], reverse=True):
                    prefix.append(prefix[-1] + load)
                table.append(prefix)
            self._top_degree_prefix = table
        prefix = self._top_degree_prefix[start]
        return prefix[min(max(slots, 0), len(prefix) - 1)]


class DeltaIncidence(Incidence):
    """A mutable incidence that absorbs object churn in place.

    The immutable :class:`Incidence` is rebuilt from scratch for every new
    placement; under churn that rebuild (plus the placement snapshot and
    fingerprint hashing feeding it) dominates the cost of re-attacking.
    This subclass instead keeps the core per-node/per-object structures —
    node bitmasks, node -> objects lists, object -> nodes tuples, the load
    profile — as mutable state and edits only the changed objects'
    entries per :meth:`apply_delta` (removals pay an extra O(node load)
    scan per incident node to locate the id being deleted or relabeled,
    so a delta costs O(changed replicas x avg incident load) — still
    independent of ``b * n``); the lazy aggregates (suffix tables, dense
    matrices) are invalidated and rebuilt on next use, which only search
    paths that consume them (branch-and-bound bounds, packed backings)
    ever pay for.

    Delta semantics, shared verbatim by every mirror of the object-id
    space (:class:`repro.core.batch.AttackEngine` callers track ids too):

    * removals are processed in **descending id order**; removing id ``d``
      moves the **last** object into slot ``d`` (swap-with-last keeps ids
      dense, so bitmask width and hit-vector length stay ``b``);
    * additions are appended in iteration order after all removals.

    Attack results are invariant under object re-numbering (damage counts
    and per-node gains aggregate over objects), so a delta-updated engine
    and a cold engine built from the resulting placement return
    bit-for-bit identical :class:`~repro.core.adversary.AttackResult`\\ s
    — the property pinned by ``tests/core/test_delta.py``.
    """

    def __init__(self, placement: Placement) -> None:
        super().__init__(placement)
        self.r = placement.r
        flat = placement.replica_array()
        r = placement.r
        node_off, node_objs = placement.node_csr()
        self._node_objs: List[List[int]] = [
            list(node_objs[node_off[v]:node_off[v + 1]]) for v in range(self.n)
        ]
        self._obj_nodes: List[Tuple[int, ...]] = [
            tuple(flat[i:i + r]) for i in range(0, self.b * r, r)
        ]
        self._loads: List[int] = list(placement.load_array())
        masks = [0] * self.n
        for obj_id, nodes in enumerate(self._obj_nodes):
            bit = 1 << obj_id
            for node in nodes:
                masks[node] |= bit
        self._masks = masks
        self._node_caps: Optional[List[int]] = None

    # Live views: kernels bound to this incidence hold these list objects
    # directly, so in-place edits propagate without rebinding.

    def node_masks(self) -> List[int]:
        return self._masks

    def node_objects(self) -> List[List[int]]:  # type: ignore[override]
        return self._node_objs

    def object_nodes(self) -> List[Tuple[int, ...]]:  # type: ignore[override]
        return self._obj_nodes

    def csr(self) -> Tuple[array, array, array, array, array]:
        """A *padded* CSR export, edited in place across deltas.

        Unlike the base tight layout, node segments carry slack capacity
        and the object-major arrays are sized past the current ``b``, so
        :meth:`apply_delta` updates O(changed replicas) words instead of
        re-flattening everything — the arrays are pinned by the native
        kernel's exported pointers (``array`` refuses to resize while a
        buffer view exists), so they are never resized, only replaced
        wholesale when a segment or the object region overflows its
        capacity (amortized by the headroom). Consumers must bound reads
        by the live ``b`` and the ``node_end`` entries; words beyond are
        garbage.
        """
        if self._csr is None:
            from itertools import chain

            n, r, b = self.n, self.r, self.b
            cap_b = b + (b >> 1) + 8
            obj_off = array("i", range(0, (cap_b + 1) * r, r))
            obj_nodes = array("i", bytes(4 * cap_b * r))
            obj_nodes[:b * r] = array("i", chain.from_iterable(self._obj_nodes))
            caps = [
                len(objs) + (len(objs) >> 1) + 4 for objs in self._node_objs
            ]
            node_off = array("i", bytes(4 * n))
            node_end = array("i", bytes(4 * n))
            store = array("i", bytes(4 * sum(caps)))
            position = 0
            for node, objs in enumerate(self._node_objs):
                node_off[node] = position
                store[position:position + len(objs)] = array("i", objs)
                node_end[node] = position + len(objs)
                position += caps[node]
            self._node_caps = caps
            self._csr = (node_off, node_end, store, obj_off, obj_nodes)
        return self._csr

    def apply_delta(
        self,
        added: Sequence[Sequence[int]] = (),
        removed: Sequence[int] = (),
    ) -> Placement:
        """Absorb one churn batch; returns the resulting placement.

        ``removed`` holds current object ids (distinct, any order);
        ``added`` holds replica node sets (size ``r``, distinct in-range
        nodes). Core structures are edited in O(changed replicas); the
        returned :class:`Placement` is built without re-validation (the
        delta was validated here) and carries the maintained load profile,
        so no later consumer pays an O(b r) rescan.
        """
        added_sets: List[Tuple[int, ...]] = []
        for nodes in added:
            node_tuple = tuple(sorted(nodes))
            if len(frozenset(node_tuple)) != self.r or len(node_tuple) != self.r:
                raise ValueError(
                    f"added object needs {self.r} distinct nodes, got "
                    f"{sorted(nodes)}"
                )
            for node in node_tuple:
                if not 0 <= node < self.n:
                    raise ValueError(
                        f"added object places a replica on node {node}, "
                        f"outside [0, {self.n})"
                    )
            added_sets.append(node_tuple)
        removed_ids = sorted(removed, reverse=True)
        if len(set(removed_ids)) != len(removed_ids):
            raise ValueError(f"duplicate removal ids in {sorted(removed)}")
        for obj_id in removed_ids:
            if not 0 <= obj_id < len(self._obj_nodes):
                raise ValueError(
                    f"cannot remove object {obj_id}: ids span "
                    f"[0, {len(self._obj_nodes)})"
                )
        if len(self._obj_nodes) - len(removed_ids) + len(added_sets) == 0:
            raise ValueError("delta would leave the placement empty")

        masks, node_objs, loads = self._masks, self._node_objs, self._loads
        # The padded CSR export (if built) is edited in lockstep with the
        # list structures; `csr` goes None mid-batch if a capacity
        # overflows, after which it rebuilds lazily from the lists.
        csr = self._csr
        if csr is not None:
            node_off, node_end, store, _obj_off, obj_nodes_flat = csr
            caps = self._node_caps
        r = self.r
        for obj_id in removed_ids:
            bit = 1 << obj_id
            for node in self._obj_nodes[obj_id]:
                node_objs[node].remove(obj_id)
                masks[node] &= ~bit
                loads[node] -= 1
                if csr is not None:
                    tail = node_end[node] - 1
                    for i in range(node_off[node], tail + 1):
                        if store[i] == obj_id:
                            store[i] = store[tail]
                            break
                    node_end[node] = tail
            last = len(self._obj_nodes) - 1
            if obj_id != last:
                moved = self._obj_nodes[last]
                last_bit = 1 << last
                for node in moved:
                    row = node_objs[node]
                    row[row.index(last)] = obj_id
                    masks[node] = (masks[node] & ~last_bit) | bit
                    if csr is not None:
                        for i in range(node_off[node], node_end[node]):
                            if store[i] == last:
                                store[i] = obj_id
                                break
                self._obj_nodes[obj_id] = moved
                if csr is not None:
                    obj_nodes_flat[obj_id * r:(obj_id + 1) * r] = (
                        obj_nodes_flat[last * r:(last + 1) * r]
                    )
            self._obj_nodes.pop()
        for node_tuple in added_sets:
            obj_id = len(self._obj_nodes)
            bit = 1 << obj_id
            if csr is not None:
                if (obj_id + 1) * r > len(obj_nodes_flat):
                    csr = self._csr = None  # object region full; rebuild lazily
                else:
                    obj_nodes_flat[obj_id * r:(obj_id + 1) * r] = array(
                        "i", node_tuple
                    )
            for node in node_tuple:
                node_objs[node].append(obj_id)
                masks[node] |= bit
                loads[node] += 1
                if csr is not None:
                    end = node_end[node]
                    if end - node_off[node] >= caps[node]:
                        csr = self._csr = None  # segment full; rebuild lazily
                    else:
                        store[end] = obj_id
                        node_end[node] = end + 1
            self._obj_nodes.append(node_tuple)

        self.b = len(self._obj_nodes)
        # Snapshot straight into the trusted rows-backed constructor (the
        # delta was validated here; rows are sorted tuples by invariant)
        # and hand over the maintained load profile, so no later consumer
        # pays an O(b r) revalidation or load rescan.
        flat = array("i", _chain.from_iterable(self._obj_nodes))
        placement = Placement(
            n=self.n, rows=flat, r=self.r, strategy=self.placement.strategy,
        )
        placement.__dict__["_load"] = array("i", loads)
        placement.__dict__["_load_profile"] = tuple(loads)
        self.placement = placement
        # Lazy aggregates are stale; drop them for on-demand rebuild.
        # (The padded CSR is NOT dropped — it was maintained above.)
        self._suffix_masks = None
        self._matrix = None
        self._columns = None
        self._suffix_matrix = None
        self._suffix_counts = None
        self._object_nodes = None
        self._suffix_flat = None
        self._obj_nodes_np = None
        self._node_objs_np = None
        self._top_degree_prefix = None
        return placement


class DamageKernel:
    """Incremental damage evaluation bound to one (placement, s) pair.

    Subclasses implement the hit-vector operations; the contract on
    ``hits`` objects (mutate-and-return, backtrack via the inverse call)
    is described in the module docstring.
    """

    name = "abstract"

    def __init__(self, incidence: Incidence, s: int) -> None:
        placement = incidence.placement
        if not 1 <= s <= placement.r:
            raise ValueError(f"need 1 <= s <= r={placement.r}, got s={s}")
        self.incidence = incidence
        self.placement = placement
        self.s = s
        self.n = placement.n
        self.b = placement.b

    def rebind(self) -> bool:
        """Re-align with an in-place :meth:`DeltaIncidence.apply_delta`.

        Returns True when this kernel absorbed the mutation — it shares
        the incidence's live structures and only its cached shape needed
        refreshing — and False when the caller must rebuild it (packed
        per-object state that cannot be edited surgically). The default is
        conservative: rebuild.
        """
        return False

    def _refresh_shape(self) -> None:
        """Adopt the incidence's post-delta placement and object count."""
        self.placement = self.incidence.placement
        self.b = self.incidence.b

    # -- hit-vector operations --------------------------------------------

    def empty_hits(self):
        raise NotImplementedError

    def add_node(self, hits, node: int):
        raise NotImplementedError

    def remove_node(self, hits, node: int):
        raise NotImplementedError

    def hits_for(self, nodes: Sequence[int]):
        hits = self.empty_hits()
        for node in nodes:
            hits = self.add_node(hits, node)
        return hits

    def damage_of(self, hits) -> int:
        raise NotImplementedError

    def damage_for(self, nodes: Sequence[int]) -> int:
        """One-shot damage of a concrete failure set."""
        return self.damage_of(self.hits_for(nodes))

    def best_addition(self, hits, banned: Sequence[int]) -> Tuple[int, int]:
        """(node, resulting damage) maximizing damage after adding one node.

        Ties break toward the lowest node id in every backend, so search
        trajectories (and therefore heuristic results) are backend-independent.
        """
        raise NotImplementedError

    def optimistic_bound(self, hits, start: int, slots: int) -> int:
        """Upper bound on damage after adding ``slots`` nodes from ``>= start``.

        Counts objects that are dead already or still killable: deficit
        (replicas to reach ``s``) at most ``slots`` *and* reachable among
        the not-yet-considered nodes. Used by branch-and-bound pruning.
        This bound is backend-independent by contract (the property tests
        pin it); backend-specific tightenings go in :meth:`refined_bound`.
        """
        raise NotImplementedError

    def refined_bound(self, hits, start: int, slots: int) -> int:
        """The tightest sound completion bound this kernel can offer.

        Combines :meth:`optimistic_bound` with the degree cap: every
        not-yet-dead object needs at least one added incidence to die, so
        a completion of ``slots`` nodes from the suffix kills at most
        ``top_degree_sum(start, slots)`` new objects. Backends with more
        state may tighten further (the gain kernel resolves one-slot
        completions exactly), so unlike ``optimistic_bound`` the value may
        differ between backends — it only has to stay sound.
        """
        bound = self.optimistic_bound(hits, start, slots)
        cap = self.damage_of(hits) + self.incidence.top_degree_sum(start, slots)
        return cap if cap < bound else bound

    def try_swap(self, hits, node: int, banned, current: int):
        """One local-search polish position: swap ``node`` out if it pays.

        Removes ``node``, finds the best non-banned replacement, keeps it
        iff the resulting damage strictly beats ``current``, and restores
        ``node`` otherwise. ``banned`` must not contain ``node`` (so the
        no-op swap is a legal candidate). Returns
        ``(hits, swapped_in_node_or_None, resulting_damage)``; backends
        with fused state (the native gain backing) override this to run
        the whole position in one call.
        """
        hits = self.remove_node(hits, node)
        candidate, damage = self.best_addition(hits, banned)
        if damage > current:
            hits = self.add_node(hits, candidate)
            return hits, candidate, damage
        hits = self.add_node(hits, node)
        return hits, None, current

    def polish_pass(self, hits, nodes: List[int], current: int):
        """One steepest-positional local-search sweep over ``nodes``.

        Runs :meth:`try_swap` at every position in order, mutating
        ``nodes`` in place as swaps land. Returns
        ``(hits, resulting_damage, improved)``. The native gain backing
        overrides this to run the whole sweep in one foreign call;
        semantics (visit order, tie-breaks, strict-improvement rule) are
        identical everywhere, so search trajectories stay
        backend-independent.
        """
        banned = set(nodes)
        improved = False
        for position in range(len(nodes)):
            node = nodes[position]
            banned.discard(node)
            hits, swapped, current = self.try_swap(hits, node, banned, current)
            if swapped is not None:
                nodes[position] = swapped
                banned.add(swapped)
                improved = True
            else:
                banned.add(node)
        return hits, current, improved

    def polish_chain(
        self, seed_nodes: Sequence[int]
    ) -> Tuple[List[int], int, int, int]:
        """One whole polish-to-convergence chain from a seed failure set.

        Builds fresh hit state for the seed (never touching any hits
        object the caller holds), then repeats :meth:`polish_pass` until
        a sweep lands no swap. Returns ``(nodes, damage, passes,
        swaps)`` where ``passes`` counts every sweep (including the
        final non-improving one — the evaluation charge the driver
        reconstructs) and ``swaps`` the positions whose occupant
        changed. A chain is a pure function of (kernel state, seed), so
        chains commute: running them in any order, or on parallel
        lanes, yields identical per-chain results.
        """
        nodes = list(seed_nodes)
        hits = self.hits_for(nodes)
        current = self.damage_of(hits)
        passes = 0
        swaps = 0
        improved = True
        while improved:
            before = list(nodes)
            hits, current, improved = self.polish_pass(hits, nodes, current)
            passes += 1
            swaps += sum(1 for a, b in zip(before, nodes) if a != b)
        return nodes, current, passes, swaps

    def polish_chains(
        self, seeds: Sequence[Sequence[int]], lanes: int = 1
    ) -> List[Tuple[List[int], int, int, int]]:
        """Run one :meth:`polish_chain` per seed; results in seed order.

        ``lanes`` is the concurrency budget. The generic implementation
        runs the chains sequentially whatever the budget (chains commute,
        so this is bit-identical); the native gain backing overrides it
        to fan chains out across replicated-state lanes on the worker
        pool in a single foreign call.
        """
        return [self.polish_chain(seed) for seed in seeds]


class _BitsetHits:
    """Mutable bitset hit state: chosen nodes + saturating level masks."""

    __slots__ = ("nodes", "levels")

    def __init__(self, s: int) -> None:
        self.nodes: List[int] = []
        self.levels: List[int] = [0] * s


class BitsetKernel(DamageKernel):
    """Python-int bitmask backend; see the module docstring."""

    name = "bitset"

    def __init__(self, incidence: Incidence, s: int) -> None:
        super().__init__(incidence, s)
        self.masks = incidence.node_masks()

    def rebind(self) -> bool:
        # The mask list is the delta incidence's live object; only the
        # cached shape (b, placement) needs refreshing.
        self._refresh_shape()
        return True

    def empty_hits(self) -> _BitsetHits:
        return _BitsetHits(self.s)

    def add_node(self, hits: _BitsetHits, node: int) -> _BitsetHits:
        _absorb(hits.levels, self.masks[node])
        hits.nodes.append(node)
        return hits

    def remove_node(self, hits: _BitsetHits, node: int) -> _BitsetHits:
        # Saturating levels cannot be decremented; rebuild from survivors.
        # The failure sets under search are tiny (k <= n), so this stays
        # O(k * s) word-vector operations.
        hits.nodes.remove(node)
        levels = [0] * self.s
        for kept in hits.nodes:
            _absorb(levels, self.masks[kept])
        hits.levels = levels
        return hits

    def damage_of(self, hits: _BitsetHits) -> int:
        return hits.levels[self.s - 1].bit_count()

    def best_addition(self, hits: _BitsetHits, banned: Sequence[int]) -> Tuple[int, int]:
        masks = self.masks
        banned_set = set(banned)
        best_node, best_damage = -1, -1
        top = hits.levels[self.s - 1]
        if self.s == 1:
            for node in range(self.n):
                if node in banned_set:
                    continue
                d = (top | masks[node]).bit_count()
                if d > best_damage:
                    best_node, best_damage = node, d
        else:
            sub = hits.levels[self.s - 2]
            for node in range(self.n):
                if node in banned_set:
                    continue
                d = (top | (sub & masks[node])).bit_count()
                if d > best_damage:
                    best_node, best_damage = node, d
        return best_node, best_damage

    def optimistic_bound(self, hits: _BitsetHits, start: int, slots: int) -> int:
        suffix = self.incidence.suffix_masks()[start]
        levels = hits.levels
        killable = levels[self.s - 1]
        for deficit in range(1, min(slots, self.s) + 1):
            if deficit < self.s:
                # Objects with >= s - deficit hits already...
                reachable = levels[self.s - deficit - 1]
            else:
                # ...or any object at all when s more failures suffice.
                reachable = self.incidence.full_mask()
            # ...that still have >= deficit replicas on unconsidered nodes.
            killable |= reachable & suffix[deficit]
        return killable.bit_count()


class NumpyKernel(DamageKernel):
    """Dense-matrix backend with preallocated scratch buffers."""

    name = "numpy"

    def __init__(self, incidence: Incidence, s: int) -> None:
        if _np is None:
            raise RuntimeError("NumpyKernel requires numpy")
        super().__init__(incidence, s)
        self.matrix = incidence.matrix()
        self.columns = incidence.columns()
        b, n = self.b, self.n
        self._totals = _np.empty((b, n), dtype=_np.int16)
        self._killed = _np.empty((b, n), dtype=bool)
        self._damages = _np.empty(n, dtype=_np.int64)
        self._dead = _np.empty(b, dtype=bool)
        self._deficit = _np.empty(b, dtype=_np.int16)
        self._bound_a = _np.empty(b, dtype=bool)
        self._bound_b = _np.empty(b, dtype=bool)

    def empty_hits(self):
        return _np.zeros(self.b, dtype=_np.int16)

    def add_node(self, hits, node: int):
        hits += self.columns[node]
        return hits

    def remove_node(self, hits, node: int):
        hits -= self.columns[node]
        return hits

    def damage_of(self, hits) -> int:
        _np.greater_equal(hits, self.s, out=self._dead)
        return int(self._dead.sum())

    def best_addition(self, hits, banned: Sequence[int]) -> Tuple[int, int]:
        _np.add(hits[:, None], self.matrix, out=self._totals)
        _np.greater_equal(self._totals, self.s, out=self._killed)
        self._killed.sum(axis=0, out=self._damages)
        if banned:
            self._damages[list(banned)] = -1
        node = int(self._damages.argmax())
        return node, int(self._damages[node])

    def optimistic_bound(self, hits, start: int, slots: int) -> int:
        suffix = self.incidence.suffix_matrix()
        deficit = self._deficit
        _np.subtract(self.s, hits, out=deficit)
        _np.less_equal(deficit, slots, out=self._bound_a)
        _np.greater_equal(suffix[:, start], deficit, out=self._bound_b)
        self._bound_a &= self._bound_b
        _np.less_equal(deficit, 0, out=self._bound_b)
        self._bound_a |= self._bound_b
        return int(self._bound_a.sum())


class PythonKernel(DamageKernel):
    """Per-node object lists; the dependency-free reference backend."""

    name = "python"

    def __init__(self, incidence: Incidence, s: int) -> None:
        super().__init__(incidence, s)
        self.node_objects = incidence.node_objects()

    def rebind(self) -> bool:
        self._refresh_shape()
        self.node_objects = self.incidence.node_objects()
        return True

    def empty_hits(self) -> List[int]:
        return [0] * self.b

    def add_node(self, hits: List[int], node: int) -> List[int]:
        for obj_id in self.node_objects[node]:
            hits[obj_id] += 1
        return hits

    def remove_node(self, hits: List[int], node: int) -> List[int]:
        for obj_id in self.node_objects[node]:
            hits[obj_id] -= 1
        return hits

    def damage_of(self, hits: List[int]) -> int:
        s = self.s
        return sum(1 for h in hits if h >= s)

    def best_addition(self, hits: List[int], banned: Sequence[int]) -> Tuple[int, int]:
        banned_set = set(banned)
        s = self.s
        base = self.damage_of(hits)
        best_node, best_damage = -1, -1
        for node in range(self.n):
            if node in banned_set:
                continue
            # Only objects on `node` can change state; count crossings.
            d = base
            for obj_id in self.node_objects[node]:
                if hits[obj_id] == s - 1:
                    d += 1
            if d > best_damage:
                best_node, best_damage = node, d
        return best_node, best_damage

    def optimistic_bound(self, hits: List[int], start: int, slots: int) -> int:
        suffix = self.incidence.suffix_counts()
        s = self.s
        count = 0
        for obj_id in range(self.b):
            deficit = s - hits[obj_id]
            if deficit <= 0:
                count += 1
            elif deficit <= slots and suffix[obj_id][start] >= deficit:
                count += 1
        return count


class _GainHits:
    """Mutable gain-engine state: hit counts, gain table, dead counter."""

    __slots__ = ("counts", "gain", "dead")

    def __init__(self, counts, gain, dead: int) -> None:
        self.counts = counts
        self.gain = gain
        self.dead = dead


class GainKernel(DamageKernel):
    """The incremental gain-table engine (pure-python backing).

    State per hits object: ``counts[o]`` (failed replicas of object ``o``),
    ``gain[v]`` (objects at exactly ``s - 1`` hits that node ``v`` covers,
    i.e. the marginal damage of failing ``v``), and ``dead`` (objects at
    ``>= s`` hits). ``add_node``/``remove_node`` walk only the objects
    incident to the changed node and propagate boundary crossings (counts
    hitting ``s - 1`` or ``s``) to the ~``r`` incident nodes of each
    crossing object — O(r^2 * b / n) per move versus the O(n * b) rescans
    of the full-scan kernels. ``best_addition`` is an O(n) argmax over the
    table (zero-gain candidates never cost a damage evaluation — the
    candidate pruning of classic max-coverage local search), and
    ``damage_of`` is O(1).

    Subclasses swap the *backing* — how state is stored and bulk-rebuilt —
    without changing results; see the module docstring.
    """

    name = "gain"
    backing = "python"

    def __init__(self, incidence: Incidence, s: int) -> None:
        super().__init__(incidence, s)
        # The per-object/per-node Python structures are bound lazily: the
        # python and bitset backings walk them on every move, but the
        # native and numpy backings never touch them (they consume the
        # packed CSR / index arrays), and forcing the tuple views would
        # cost O(b r) object allocation at engine-build time.
        self._node_objects = None
        self._object_nodes = None
        # Packed empty-state bytes seeded from a snapshot (see
        # seed_empty_state); replaces the O(b r) cold derivation of the
        # s == 1 gain table in empty_hits when present.
        self._seeded_empty: Optional[bytes] = None

    @property
    def node_objects(self):
        if self._node_objects is None:
            self._node_objects = self.incidence.node_objects()
        return self._node_objects

    @property
    def object_nodes(self):
        if self._object_nodes is None:
            self._object_nodes = self.incidence.object_nodes()
        return self._object_nodes

    def rebind(self) -> bool:
        # Pure-python and bitset backings read the delta incidence's live
        # list structures; absorbing a delta is an O(1) shape refresh.
        self._refresh_shape()
        self._node_objects = None
        self._object_nodes = None
        self._seeded_empty = None  # stale after a shape change
        return True

    # -- packed state (snapshot export/import) -----------------------------

    def state_size(self) -> int:
        """Byte length of this kernel's packed state."""
        return 4 * (self.b + self.n + 1)

    def export_state(self, hits: _GainHits) -> bytes:
        """Serialize ``hits`` as versioned packed bytes.

        Wire format (``GAIN_STATE_VERSION`` 1): little-endian int32
        ``counts[b] | gain[n] | dead`` — the native backing's in-memory
        layout, adopted as the canonical format for every backing so
        snapshots transfer across backings and hosts.
        """
        state = array("i", hits.counts)
        state.extend(hits.gain)
        state.append(hits.dead)
        return _native.pack_i32_le(state)

    def _unpack_state(self, data: bytes) -> array:
        """Length-check packed bytes; machine-order int32 array."""
        expected = self.state_size()
        if len(data) != expected:
            raise ValueError(
                f"packed gain state is {len(data)} bytes; kernel with "
                f"b={self.b}, n={self.n} needs {expected}"
            )
        return _native.unpack_i32_le(bytes(data))

    def import_state(self, data: bytes) -> _GainHits:
        """Rebuild a hits object from :meth:`export_state` bytes."""
        state = self._unpack_state(data)
        b = self.b
        return _GainHits(
            list(state[:b]), list(state[b:b + self.n]), state[b + self.n]
        )

    def seed_empty_state(self, data: bytes) -> None:
        """Adopt packed bytes as this kernel's empty (zero-failure) state.

        Subsequent :meth:`empty_hits` calls deserialize the seed instead
        of deriving the s == 1 gain table from the incidence — the O(b r)
        cost a snapshot hydration avoids. The caller vouches for the
        bytes (artifact checksums gate trust); only the length is checked
        here.
        """
        self._unpack_state(data)  # validate length
        self._seeded_empty = bytes(data)

    # -- state ------------------------------------------------------------

    def empty_hits(self) -> _GainHits:
        if self._seeded_empty is not None:
            return self.import_state(self._seeded_empty)
        counts = [0] * self.b
        if self.s == 1:
            gain = [len(objs) for objs in self.node_objects]
        else:
            gain = [0] * self.n
        return _GainHits(counts, gain, 0)

    def add_node(self, hits: _GainHits, node: int) -> _GainHits:
        s = self.s
        counts, gain = hits.counts, hits.gain
        dead = hits.dead
        object_nodes = self.object_nodes
        for obj_id in self.node_objects[node]:
            c = counts[obj_id] + 1
            counts[obj_id] = c
            if c == s:
                dead += 1
                for w in object_nodes[obj_id]:
                    gain[w] -= 1
            elif c == s - 1:
                for w in object_nodes[obj_id]:
                    gain[w] += 1
        hits.dead = dead
        return hits

    def remove_node(self, hits: _GainHits, node: int) -> _GainHits:
        s = self.s
        counts, gain = hits.counts, hits.gain
        dead = hits.dead
        object_nodes = self.object_nodes
        for obj_id in self.node_objects[node]:
            c = counts[obj_id]
            counts[obj_id] = c - 1
            if c == s:
                dead -= 1
                for w in object_nodes[obj_id]:
                    gain[w] += 1
            elif c == s - 1:
                for w in object_nodes[obj_id]:
                    gain[w] -= 1
        hits.dead = dead
        return hits

    # -- queries -----------------------------------------------------------

    def damage_of(self, hits: _GainHits) -> int:
        return hits.dead

    def best_addition(self, hits: _GainHits, banned: Sequence[int]) -> Tuple[int, int]:
        banned_set = (
            banned if isinstance(banned, (set, frozenset)) else set(banned)
        )
        best_node, best_gain = -1, -1
        for node, g in enumerate(hits.gain):
            # Gain comparison first: losing candidates (in particular every
            # zero-gain node once a positive gain is seen) skip the set probe.
            if g > best_gain and node not in banned_set:
                best_node, best_gain = node, g
        if best_node < 0:
            return -1, -1
        return best_node, hits.dead + int(best_gain)

    def optimistic_bound(self, hits: _GainHits, start: int, slots: int) -> int:
        suffix = self.incidence.suffix_counts()
        s = self.s
        counts = hits.counts
        count = 0
        for obj_id in range(self.b):
            deficit = s - counts[obj_id]
            if deficit <= 0:
                count += 1
            elif deficit <= slots and suffix[obj_id][start] >= deficit:
                count += 1
        return count

    def _max_gain_from(self, hits: _GainHits, start: int) -> int:
        return max(hits.gain[start:])

    def refined_bound(self, hits: _GainHits, start: int, slots: int) -> int:
        bound = super().refined_bound(hits, start, slots)
        if slots == 1 and start < self.n:
            # One-slot completions are resolved exactly by the gain table:
            # the best single addition from the suffix adds max gain.
            exact = self.damage_of(hits) + int(self._max_gain_from(hits, start))
            if exact < bound:
                bound = exact
        return bound


class _BitsetGainKernel(GainKernel):
    """Gain engine with bitset bulk rebuilds (dependency-free).

    Incremental moves share the pure-python O(delta) updates; cold
    ``hits_for`` builds fold node masks through the saturating level
    update and read the gain table off ``exactly-(s-1)`` masks with one
    popcount per node instead of replaying per-object transitions.
    """

    backing = "bitset"

    def hits_for(self, nodes: Sequence[int]) -> _GainHits:
        node_list = list(nodes)
        masks = self.incidence.node_masks()
        levels = [0] * self.s
        counts = [0] * self.b
        node_objects = self.node_objects
        for node in node_list:
            _absorb(levels, masks[node])
            for obj_id in node_objects[node]:
                counts[obj_id] += 1
        top = levels[self.s - 1]
        if self.s == 1:
            exact = ~top & self.incidence.full_mask()
        else:
            exact = levels[self.s - 2] & ~top
        gain = [(exact & masks[v]).bit_count() for v in range(self.n)]
        return _GainHits(counts, gain, top.bit_count())


class _NumpyGainKernel(GainKernel):
    """Gain engine on numpy state: scatter updates, vectorized rebuilds."""

    backing = "numpy"

    def __init__(self, incidence: Incidence, s: int) -> None:
        if _np is None:
            raise RuntimeError("numpy gain backing requires numpy")
        super().__init__(incidence, s)
        self._node_arrays = incidence.node_objects_arrays()
        self._obj_matrix = incidence.object_nodes_matrix()

    def rebind(self) -> bool:
        # The packed index arrays cannot be edited surgically, but they
        # re-export from the delta incidence's live lists in O(b) — far
        # cheaper than a placement-snapshot + fingerprint + engine rebuild.
        if not super().rebind():  # pragma: no cover - GainKernel returns True
            return False
        self._node_arrays = self.incidence.node_objects_arrays()
        self._obj_matrix = self.incidence.object_nodes_matrix()
        return True

    def export_state(self, hits: _GainHits) -> bytes:
        state = _np.empty(self.b + self.n + 1, dtype="<i4")
        state[:self.b] = hits.counts
        state[self.b:self.b + self.n] = hits.gain
        state[self.b + self.n] = hits.dead
        return state.tobytes()

    def import_state(self, data: bytes) -> _GainHits:
        state = _np.frombuffer(
            self._unpack_state(data), dtype=_np.int32
        )
        counts = state[:self.b].copy()
        gain = state[self.b:self.b + self.n].astype(_np.int64)
        return _GainHits(counts, gain, int(state[self.b + self.n]))

    def empty_hits(self) -> _GainHits:
        if self._seeded_empty is not None:
            return self.import_state(self._seeded_empty)
        counts = _np.zeros(self.b, dtype=_np.int32)
        if self.s == 1:
            # Column sums of the incidence matrix = the load profile,
            # which the placement carries precomputed.
            gain = _np.array(self.placement.load_profile(), dtype=_np.int64)
        else:
            gain = _np.zeros(self.n, dtype=_np.int64)
        return _GainHits(counts, gain, 0)

    #: Objects per block of the bulk rebuild; bounds temp memory at
    #: ``block * r`` indices regardless of b.
    _REBUILD_BLOCK = 1 << 16

    def hits_for(self, nodes: Sequence[int]) -> _GainHits:
        node_list = list(nodes)
        if not node_list:
            return self.empty_hits()
        # Blocked direct rebuild over the (b, r) replica matrix: node
        # occurrence flags, per-object hit counts via a stride-1 row
        # gather, gain via bincount over at-target rows. Equivalent to
        # (and bit-identical with) the historical dense
        # ``M @ (counts == s - 1)`` path, but never materializes the
        # b x n incidence matrix — the difference between b = 1e5 and
        # b = 1e7 being feasible on this backing.
        flags = _np.zeros(self.n, dtype=_np.int32)
        _np.add.at(flags, node_list, 1)
        rows = self._obj_matrix
        counts = _np.empty(self.b, dtype=_np.int32)
        gain = _np.zeros(self.n, dtype=_np.int64)
        dead = 0
        target = self.s - 1
        for lo in range(0, self.b, self._REBUILD_BLOCK):
            hi = min(lo + self._REBUILD_BLOCK, self.b)
            chunk = rows[lo:hi]
            hit = flags[chunk].sum(axis=1, dtype=_np.int32)
            counts[lo:hi] = hit
            dead += int((hit >= self.s).sum())
            at_target = chunk[hit == target]
            if len(at_target):
                gain += _np.bincount(at_target.ravel(), minlength=self.n)
        return _GainHits(counts, gain, dead)

    def add_node(self, hits: _GainHits, node: int) -> _GainHits:
        objs = self._node_arrays[node]
        counts = hits.counts
        c = counts[objs]
        counts[objs] = c + 1
        to_dead = objs[c == self.s - 1]
        if len(to_dead):
            _np.subtract.at(hits.gain, self._obj_matrix[to_dead].ravel(), 1)
            hits.dead += int(len(to_dead))
        if self.s >= 2:
            to_target = objs[c == self.s - 2]
            if len(to_target):
                _np.add.at(hits.gain, self._obj_matrix[to_target].ravel(), 1)
        return hits

    def remove_node(self, hits: _GainHits, node: int) -> _GainHits:
        objs = self._node_arrays[node]
        counts = hits.counts
        c = counts[objs]
        counts[objs] = c - 1
        from_dead = objs[c == self.s]
        if len(from_dead):
            _np.add.at(hits.gain, self._obj_matrix[from_dead].ravel(), 1)
            hits.dead -= int(len(from_dead))
        if self.s >= 2:
            from_target = objs[c == self.s - 1]
            if len(from_target):
                _np.subtract.at(
                    hits.gain, self._obj_matrix[from_target].ravel(), 1
                )
        return hits

    def best_addition(self, hits: _GainHits, banned: Sequence[int]) -> Tuple[int, int]:
        banned_set = (
            banned if isinstance(banned, (set, frozenset)) else set(banned)
        )
        best_node, best_gain = -1, -1
        for node, g in enumerate(hits.gain.tolist()):
            if g > best_gain and node not in banned_set:
                best_node, best_gain = node, g
        if best_node < 0:
            return -1, -1
        return best_node, hits.dead + int(best_gain)

    def optimistic_bound(self, hits: _GainHits, start: int, slots: int) -> int:
        suffix = self.incidence.suffix_matrix()
        deficit = self.s - hits.counts
        killable = (deficit <= 0) | (
            (deficit <= slots) & (suffix[:, start] >= deficit)
        )
        return int(killable.sum())

    def _max_gain_from(self, hits: _GainHits, start: int) -> int:
        return int(hits.gain[start:].max())


class _NativeGainHits:
    """Packed gain state shared zero-copy with the C library.

    One int32 buffer: ``counts`` in ``state[:b]``, the gain table in
    ``state[b:b + n]``, the dead counter at ``state[b + n]`` — a single
    allocation and a single pointer per foreign call.
    """

    __slots__ = ("state", "ptr", "_b", "_n")

    def __init__(self, state: array, b: int, n: int) -> None:
        self.state = state
        self.ptr = _native.i32_ptr(state)
        self._b = b
        self._n = n

    @property
    def counts(self) -> array:
        return self.state[:self._b]

    @property
    def gain(self) -> array:
        return self.state[self._b:self._b + self._n]

    @property
    def dead(self) -> int:
        return self.state[self._b + self._n]


class _NativeGainKernel(GainKernel):
    """Gain engine with C hot loops (see :mod:`repro.core.native`).

    The fused ``try_swap`` runs a whole polish position — remove, table
    argmax, conditional re-add — in one foreign call, which is what makes
    a LocalSearch sweep kernel-bound rather than interpreter-bound.
    Instances are not thread-safe (they share small scratch buffers);
    process fan-out via the batch engine is unaffected.

    Every call goes through the ``*_mt`` entry points against the
    process-wide worker pool (``REPRO_NATIVE_THREADS`` /
    :func:`repro.core.native.configure_threads`); with a one-thread
    budget, or below the in-kernel work thresholds, those delegate to the
    serial loops, and at any thread count the results are bit-identical
    (per-lane partials merged in index order). ctypes releases the GIL
    for the duration of each foreign call, so the pool's threads run
    unimpeded. The pool handle is re-fetched whenever the pool epoch
    moves (fork, reconfigure) — stale handles are never dereferenced.
    """

    backing = "native"

    def __init__(self, incidence: Incidence, s: int) -> None:
        super().__init__(incidence, s)
        lib = _native.load()
        self._add = lib.gk_add_node_mt
        self._remove = lib.gk_remove_node_mt
        self._bulk = lib.gk_bulk_build_mt
        self._best = lib.gk_best_addition_mt
        self._swap = lib.gk_try_swap_mt
        self._pass = lib.gk_polish_pass_mt
        self._bound = lib.gk_optimistic_bound
        self._chains = lib.gk_polish_chains_mt
        self._lane_alloc = lib.gk_lane_alloc
        self._lane_release = lib.gk_lane_free
        self._lane_handle = None
        self._lane_shape: Optional[Tuple[int, int, int]] = None
        self._banned = array("i", bytes(4 * self.n))
        self._banned_ptr = _native.i32_ptr(self._banned)
        self._out = array("i", [0])
        self._out_ptr = _native.i32_ptr(self._out)
        self._pool_handle = None
        self._pool_seen = -1
        self._bind_model()

    def _pool(self):
        """The process-wide pool handle, epoch-cached per kernel."""
        epoch = _native.pool_epoch()
        if self._pool_seen != epoch:
            self._pool_handle = _native.current_pool()
            self._pool_seen = _native.pool_epoch()
        return self._pool_handle

    def _bind_model(self) -> None:
        """(Re)export the CSR model and empty-state template to C."""
        csr = self.incidence.csr()
        self._csr = csr  # keep the exported buffers alive (and pinned)
        node_off, node_end, node_objs, obj_off, obj_nodes = csr
        self._model = _native.ModelStruct(
            self.n, self.b, self.s,
            _native.i32_ptr(node_off), _native.i32_ptr(node_end),
            _native.i32_ptr(node_objs),
            _native.i32_ptr(obj_off), _native.i32_ptr(obj_nodes),
        )
        self._model_ref = _native.model_ref(self._model)
        self._suffix_ptr = None
        self._rebuild_template()

    def _rebuild_template(self) -> None:
        # Template for empty state: zero counts, per-node degrees in the
        # gain slots when s == 1 (every object sits at s - 1 = 0 hits).
        # Node degree == load (replicas are distinct per object), so the
        # placement's cached load array serves without materializing the
        # per-node object lists.
        template = array("i", bytes(4 * (self.b + self.n + 1)))
        if self.s == 1:
            template[self.b:self.b + self.n] = self.placement.load_array()
        self._empty_template = template.tobytes()

    def rebind(self) -> bool:
        # A DeltaIncidence edits its padded CSR arrays in place, so the
        # usual delta leaves the exported pointers valid: only the model's
        # object count and the empty-state template need refreshing. A
        # replaced CSR (capacity overflow, first upgrade) re-exports.
        # Lane replicas are sized by (b, n), so they are dropped either
        # way: a chain launched after churn must clone the *current*
        # state shape, never a stale pre-delta block.
        if not super().rebind():  # pragma: no cover - GainKernel returns True
            return False
        self._drop_lanes()
        if self.incidence.csr() is not self._csr:
            self._bind_model()
        else:
            self._model.b = self.b
            self._suffix_ptr = None
            self._rebuild_template()
        return True

    def export_state(self, hits: _NativeGainHits) -> bytes:
        return _native.pack_i32_le(hits.state)

    def import_state(self, data: bytes) -> _NativeGainHits:
        return _NativeGainHits(self._unpack_state(data), self.b, self.n)

    def seed_empty_state(self, data: bytes) -> None:
        # The native backing already materializes empty state from a
        # bytes template; the seed replaces it (machine word order).
        self._empty_template = self._unpack_state(data).tobytes()

    def empty_hits(self) -> _NativeGainHits:
        return _NativeGainHits(
            array("i", self._empty_template), self.b, self.n
        )

    def hits_for(self, nodes: Sequence[int]) -> _NativeGainHits:
        hits = _NativeGainHits(
            array("i", bytes(4 * (self.b + self.n + 1))), self.b, self.n
        )
        node_arr = array("i", nodes)
        # Both CSR exports lay object offsets out as the stride-r ramp,
        # which the threaded rebuild exploits as a contiguous row walk.
        self._bulk(
            self._model_ref, self._pool(), _native.i32_ptr(node_arr),
            len(node_arr), self.placement.r, hits.ptr,
        )
        return hits

    def add_node(self, hits: _NativeGainHits, node: int) -> _NativeGainHits:
        self._add(self._model_ref, self._pool(), node, hits.ptr)
        return hits

    def remove_node(self, hits: _NativeGainHits, node: int) -> _NativeGainHits:
        self._remove(self._model_ref, self._pool(), node, hits.ptr)
        return hits

    def damage_of(self, hits: _NativeGainHits) -> int:
        return hits.dead

    def best_addition(self, hits: _NativeGainHits, banned: Sequence[int]) -> Tuple[int, int]:
        flags = self._banned
        for node in banned:
            flags[node] = 1
        best = self._best(
            self._model_ref, self._pool(), hits.ptr, self._banned_ptr,
            self._out_ptr,
        )
        for node in banned:
            flags[node] = 0
        if best < 0:
            return -1, -1
        return best, self._out[0]

    def try_swap(self, hits: _NativeGainHits, node: int, banned, current: int):
        flags = self._banned
        for banned_node in banned:
            flags[banned_node] = 1
        swapped = self._swap(
            self._model_ref, self._pool(), node, self._banned_ptr, current,
            hits.ptr, self._out_ptr,
        )
        for banned_node in banned:
            flags[banned_node] = 0
        if swapped < 0:
            return hits, None, current
        return hits, swapped, self._out[0]

    def polish_pass(self, hits: _NativeGainHits, nodes: List[int], current: int):
        flags = self._banned
        node_arr = array("i", nodes)
        for node in nodes:
            flags[node] = 1
        improved = self._pass(
            self._model_ref, self._pool(), hits.ptr, _native.i32_ptr(node_arr),
            len(node_arr), self._banned_ptr, current, self._out_ptr,
        )
        final_nodes = node_arr.tolist()
        for node in final_nodes:
            flags[node] = 0
        if improved:
            nodes[:] = final_nodes
            return hits, self._out[0], True
        return hits, current, False

    def _drop_lanes(self) -> None:
        """Free the lane block; the next chain batch reallocates."""
        handle = getattr(self, "_lane_handle", None)
        if handle:
            self._lane_release(handle)
        self._lane_handle = None
        self._lane_shape = None

    def _lane_set(self, width: int):
        """A C lane block of `width` state replicas, cached per shape.

        Keyed by (width, b, n): a delta-rebound shape change can shrink
        or grow the packed-state footprint, so a stale block would be
        read out of bounds — :meth:`rebind` also drops it eagerly.
        """
        shape = (width, self.b, self.n)
        if self._lane_handle is None or self._lane_shape != shape:
            self._drop_lanes()
            handle = self._lane_alloc(width, self.b, self.n)
            if not handle:
                raise MemoryError(
                    f"gk_lane_alloc({width}, b={self.b}, n={self.n}) failed"
                )
            self._lane_handle = handle
            self._lane_shape = shape
        return self._lane_handle

    def __del__(self):  # noqa: D105 - release C-side lane memory
        try:
            self._drop_lanes()
        except Exception:  # pragma: no cover - interpreter teardown
            pass

    def polish_chains(
        self, seeds: Sequence[Sequence[int]], lanes: int = 1
    ) -> List[Tuple[List[int], int, int, int]]:
        """Fused chain batch: every chain in one foreign call.

        Each lane clones the bound engine's packed state shape and runs
        chains serially inside (the coarse tasks are the parallelism, so
        the fine-grained ``_mt`` paths never nest under a lane); up to
        ``min(lanes, pool width)`` chains run concurrently. Chain i
        writes only its own output slots, so results are bit-identical
        to the sequential generic path at any lane count.
        """
        seeds = [list(seed) for seed in seeds]
        chains = len(seeds)
        if chains == 0:
            return []
        k = len(seeds[0])
        if any(len(seed) != k for seed in seeds):
            raise ValueError("polish chains need uniform seed sizes")
        width = min(max(1, lanes), chains)
        pool = self._pool() if width > 1 else None
        if pool is None:
            width = 1
        else:
            width = min(width, _native.pool_threads())
        lane_set = self._lane_set(width)
        all_nodes = array("i", [node for seed in seeds for node in seed])
        damages = array("i", bytes(4 * chains))
        passes = array("i", bytes(4 * chains))
        swaps = array("i", bytes(4 * chains))
        self._chains(
            self._model_ref, pool if width > 1 else None, lane_set,
            _native.i32_ptr(all_nodes), chains, k,
            _native.i32_ptr(damages), _native.i32_ptr(passes),
            _native.i32_ptr(swaps),
        )
        return [
            (
                all_nodes[i * k:(i + 1) * k].tolist(),
                damages[i],
                passes[i],
                swaps[i],
            )
            for i in range(chains)
        ]

    def optimistic_bound(self, hits: _NativeGainHits, start: int, slots: int) -> int:
        if self._suffix_ptr is None:
            self._suffix_ptr = _native.i32_ptr(self.incidence.suffix_flat())
        return int(
            self._bound(
                self._model_ref, hits.ptr, self._suffix_ptr, start, slots
            )
        )


_GAIN_KERNELS = {
    "native": _NativeGainKernel,
    "numpy": _NumpyGainKernel,
    "bitset": _BitsetGainKernel,
    "python": GainKernel,
}


def make_kernel(
    placement: Placement,
    s: int,
    backend: Optional[str] = None,
    incidence: Optional[Incidence] = None,
    gain_backing: Optional[str] = None,
) -> DamageKernel:
    """Build the damage kernel for ``(placement, s)``.

    Pass ``incidence`` to share one :class:`Incidence` across several
    kernels (different ``s``) over the same placement. ``gain_backing``
    pins the gain engine's backing (default: ``REPRO_GAIN_BACKING``/auto);
    it is ignored by the full-scan backends.
    """
    chosen = resolve_backend(backend)
    if incidence is None:
        incidence = Incidence(placement)
    elif incidence.placement is not placement:
        raise ValueError("incidence was built for a different placement")
    if chosen == "gain":
        return _dispatch_gain_kernel(incidence, s, gain_backing)
    if chosen == "bitset":
        return BitsetKernel(incidence, s)
    if chosen == "numpy":
        return NumpyKernel(incidence, s)
    return PythonKernel(incidence, s)


def _dispatch_gain_kernel(
    incidence: Incidence, s: int, gain_backing: Optional[str]
) -> DamageKernel:
    """Build a gain kernel, riding the degradation ladder on faults.

    This is the ``kernels.dispatch`` injection point. Per attempt: resolve
    the backing (honoring demotions made meanwhile), evaluate the chaos
    plan, construct. An injected ``backend`` fault — or a *real*
    infrastructure failure under ``auto`` — demotes the rung and
    re-resolves, so the ladder degrades native -> numpy -> bitset ->
    python instead of failing the run; transient ``error`` faults just
    retry. ``ValueError``/``TypeError`` are bad arguments, not a broken
    backing — every rung rejects them identically, so they propagate
    without demoting. Explicit (non-auto) requests propagate all real
    failures unchanged: pins never silently degrade. All backings are
    bit-identical by contract, so a demotion changes speed, never
    results.
    """
    from repro import faults

    choice = (
        gain_backing or os.environ.get("REPRO_GAIN_BACKING", "auto") or "auto"
    )
    last: Optional[BaseException] = None
    for attempt in range(4):
        backing = resolve_gain_backing(gain_backing)
        try:
            faults.inject("kernels.dispatch", backing=backing, s=s, attempt=attempt)
            with obs.span("kernels.dispatch", backing=backing, s=s):
                kernel = _GAIN_KERNELS[backing](incidence, s)
            obs.count("kernel.dispatch." + backing)
            return kernel
        except faults.InjectedFault as fault:
            last = fault
            if (
                fault.kind == "backend"
                and choice == "auto"
                and backing != GAIN_BACKINGS[-1]
            ):
                demote_backing(backing, f"injected backend fault ({fault})")
        except (ValueError, TypeError):
            raise
        except Exception as exc:
            if choice != "auto" or backing == GAIN_BACKINGS[-1]:
                raise
            demote_backing(backing, f"{type(exc).__name__}: {exc}")
            last = exc
    raise RuntimeError(
        f"gain kernel dispatch failed after 4 attempts: {last}"
    ) from last
