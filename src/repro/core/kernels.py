"""Pluggable damage kernels: the shared hot path of worst-case search.

Every availability number in the paper (Definition 1's ``Avail(pi)`` =
min surviving objects over all C(n, k) failure sets) bottlenecks on one
operation: given a partial failure set, how many objects have lost at
least ``s`` replicas, and which node kills the most next? This module
isolates that operation behind the :class:`DamageKernel` interface with
three interchangeable backends:

* :class:`BitsetKernel` — node-major Python ints as object bitmasks with
  popcount via ``int.bit_count()``. ``levels[i]`` holds the bitmask of
  objects with at least ``i + 1`` failed replicas, so adding a node is
  ``s`` AND/OR word operations and the common s = 1..2 damage queries are
  a single popcount — near branch-free, and dependency-free.
* :class:`NumpyKernel` — dense ``int16`` incidence with *preallocated*
  scratch buffers and in-place ``add_node``/``remove_node`` (no per-move
  allocation, unlike the historical ``hits + matrix[:, node]`` path).
* :class:`PythonKernel` — per-node object lists; the fallback when numpy
  is absent and the reference implementation for the other two.

Backend choice: ``force_backend`` (a context manager, used by tests) >
explicit ``backend=`` argument > the ``REPRO_KERNEL`` environment knob >
``"auto"`` (the bitset kernel, which never has missing dependencies).

Kernels bind an :class:`Incidence` — the node-major structure built once
per placement — to one fatality threshold ``s``; the batch engine
(:mod:`repro.core.batch`) shares a single incidence across a whole grid
of (k, s, effort) cells.

The ``hits`` objects a kernel hands out are opaque and owned by the
kernel: ``add_node``/``remove_node`` may mutate their argument and return
the object to use afterwards. Search engines therefore backtrack with the
inverse call instead of keeping references to earlier states.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.placement import Placement

try:  # optional accelerator
    import numpy as _np
except ImportError:  # pragma: no cover - exercised in the no-numpy CI leg
    _np = None

#: Recognized backend names, fastest-first.
BACKENDS: Tuple[str, ...] = ("bitset", "numpy", "python")

#: What ``auto`` resolves to; the bitset kernel needs only the stdlib.
DEFAULT_BACKEND = "bitset"

# Stack of backends pinned by force_backend(); top of stack wins.
_FORCED: List[str] = []


def numpy_available() -> bool:
    return _np is not None


def _absorb(levels: List[int], mask: int) -> None:
    """Fold one node's object mask into saturating at-least-count levels.

    ``levels[i]`` is the bitmask of objects with at least ``i + 1`` hits;
    the update must run top-down so each level absorbs the *previous*
    state of the level below. Shared by both hit tracking and the suffix
    tables, so the invariant cannot drift between damage counting and
    branch-and-bound pruning.
    """
    for i in range(len(levels) - 1, 0, -1):
        levels[i] |= levels[i - 1] & mask
    levels[0] |= mask


@contextmanager
def force_backend(name: str) -> Iterator[None]:
    """Pin kernel selection for the dynamic extent of the ``with`` block.

    Overrides both explicit ``backend=`` arguments and ``REPRO_KERNEL``,
    and unwinds on exit even when the body raises — the replacement for
    the old ``_FORCE_PURE_PYTHON`` mutable global, which leaked between
    tests. Nested blocks stack; the innermost wins.
    """
    if name not in BACKENDS:
        raise ValueError(f"unknown kernel backend {name!r}; use one of {BACKENDS}")
    if name == "numpy" and _np is None:
        raise ValueError("cannot force the numpy backend: numpy is not importable")
    _FORCED.append(name)
    try:
        yield
    finally:
        _FORCED.pop()


def resolve_backend(requested: Optional[str] = None) -> str:
    """The concrete backend to use, honoring forcing, argument and env."""
    if _FORCED:
        return _FORCED[-1]
    choice = requested or os.environ.get("REPRO_KERNEL", "auto") or "auto"
    if choice == "auto":
        return DEFAULT_BACKEND
    if choice not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend {choice!r}; use auto or one of {BACKENDS}"
        )
    if choice == "numpy" and _np is None:
        raise ValueError("numpy backend requested but numpy is not importable")
    return choice


class Incidence:
    """Node-major incidence structures for one placement, built lazily.

    One instance is shared by every kernel (any ``s``, any backend) and
    every attack cell evaluated against the same placement: bitmasks for
    the bitset kernel, the dense matrix for numpy, suffix replica counts
    for branch-and-bound optimistic bounds.
    """

    def __init__(self, placement: Placement) -> None:
        self.placement = placement
        self.n = placement.n
        self.b = placement.b
        self._masks: Optional[List[int]] = None
        self._suffix_masks: Optional[List[List[int]]] = None
        self._matrix = None
        self._columns = None
        self._suffix_matrix = None
        self._suffix_counts: Optional[List[List[int]]] = None

    # -- bitset structures -------------------------------------------------

    def node_masks(self) -> List[int]:
        """``masks[node]`` has bit ``o`` set iff object ``o`` lives there."""
        if self._masks is None:
            masks = [0] * self.n
            for obj_id, nodes in enumerate(self.placement.replica_sets):
                bit = 1 << obj_id
                for node in nodes:
                    masks[node] |= bit
            self._masks = masks
        return self._masks

    def full_mask(self) -> int:
        return (1 << self.b) - 1

    def suffix_masks(self) -> List[List[int]]:
        """``table[j][d]`` = bitmask of objects with >= d replicas on nodes >= j.

        Built in one backward sweep with the same saturating-level update
        the bitset kernel uses for hits; d ranges over 1..r (index 0 unused).
        """
        if self._suffix_masks is None:
            r = self.placement.r
            masks = self.node_masks()
            levels = [0] * r
            table: List[List[int]] = [[]] * (self.n + 1)
            table[self.n] = [0] + list(levels)
            for j in range(self.n - 1, -1, -1):
                _absorb(levels, masks[j])
                table[j] = [0] + list(levels)  # index 0 unused; table[j][d]
            self._suffix_masks = table
        return self._suffix_masks

    # -- numpy structures --------------------------------------------------

    def matrix(self):
        """Object-by-node ``int16`` incidence matrix (numpy only)."""
        if self._matrix is None:
            matrix = _np.zeros((self.b, self.n), dtype=_np.int16)
            for obj_id, nodes in enumerate(self.placement.replica_sets):
                for node in nodes:
                    matrix[obj_id, node] = 1
            self._matrix = matrix
        return self._matrix

    def columns(self):
        """``columns[node]`` = contiguous incidence row for one node."""
        if self._columns is None:
            self._columns = _np.ascontiguousarray(self.matrix().T)
        return self._columns

    def suffix_matrix(self):
        """``suffix[o, j]`` = replicas of object ``o`` on nodes >= j."""
        if self._suffix_matrix is None:
            reversed_cumsum = _np.cumsum(self.matrix()[:, ::-1], axis=1)[:, ::-1]
            self._suffix_matrix = _np.concatenate(
                [reversed_cumsum, _np.zeros((self.b, 1), dtype=reversed_cumsum.dtype)],
                axis=1,
            )
        return self._suffix_matrix

    # -- pure-python structures --------------------------------------------

    def node_objects(self) -> Tuple[Tuple[int, ...], ...]:
        """For each node, the ids of hosted objects (cached on the placement)."""
        return self.placement.node_incidence()

    def suffix_counts(self) -> List[List[int]]:
        """Pure-python twin of :meth:`suffix_matrix`."""
        if self._suffix_counts is None:
            rows = [[0] * (self.n + 1) for _ in range(self.b)]
            for obj_id, nodes in enumerate(self.placement.replica_sets):
                row = rows[obj_id]
                for node in nodes:
                    row[node] += 1
                for j in range(self.n - 1, -1, -1):
                    row[j] += row[j + 1]
            self._suffix_counts = rows
        return self._suffix_counts


class DamageKernel:
    """Incremental damage evaluation bound to one (placement, s) pair.

    Subclasses implement the hit-vector operations; the contract on
    ``hits`` objects (mutate-and-return, backtrack via the inverse call)
    is described in the module docstring.
    """

    name = "abstract"

    def __init__(self, incidence: Incidence, s: int) -> None:
        placement = incidence.placement
        if not 1 <= s <= placement.r:
            raise ValueError(f"need 1 <= s <= r={placement.r}, got s={s}")
        self.incidence = incidence
        self.placement = placement
        self.s = s
        self.n = placement.n
        self.b = placement.b

    # -- hit-vector operations --------------------------------------------

    def empty_hits(self):
        raise NotImplementedError

    def add_node(self, hits, node: int):
        raise NotImplementedError

    def remove_node(self, hits, node: int):
        raise NotImplementedError

    def hits_for(self, nodes: Sequence[int]):
        hits = self.empty_hits()
        for node in nodes:
            hits = self.add_node(hits, node)
        return hits

    def damage_of(self, hits) -> int:
        raise NotImplementedError

    def damage_for(self, nodes: Sequence[int]) -> int:
        """One-shot damage of a concrete failure set."""
        return self.damage_of(self.hits_for(nodes))

    def best_addition(self, hits, banned: Sequence[int]) -> Tuple[int, int]:
        """(node, resulting damage) maximizing damage after adding one node.

        Ties break toward the lowest node id in every backend, so search
        trajectories (and therefore heuristic results) are backend-independent.
        """
        raise NotImplementedError

    def optimistic_bound(self, hits, start: int, slots: int) -> int:
        """Upper bound on damage after adding ``slots`` nodes from ``>= start``.

        Counts objects that are dead already or still killable: deficit
        (replicas to reach ``s``) at most ``slots`` *and* reachable among
        the not-yet-considered nodes. Used by branch-and-bound pruning.
        """
        raise NotImplementedError


class _BitsetHits:
    """Mutable bitset hit state: chosen nodes + saturating level masks."""

    __slots__ = ("nodes", "levels")

    def __init__(self, s: int) -> None:
        self.nodes: List[int] = []
        self.levels: List[int] = [0] * s


class BitsetKernel(DamageKernel):
    """Python-int bitmask backend; see the module docstring."""

    name = "bitset"

    def __init__(self, incidence: Incidence, s: int) -> None:
        super().__init__(incidence, s)
        self.masks = incidence.node_masks()

    def empty_hits(self) -> _BitsetHits:
        return _BitsetHits(self.s)

    def add_node(self, hits: _BitsetHits, node: int) -> _BitsetHits:
        _absorb(hits.levels, self.masks[node])
        hits.nodes.append(node)
        return hits

    def remove_node(self, hits: _BitsetHits, node: int) -> _BitsetHits:
        # Saturating levels cannot be decremented; rebuild from survivors.
        # The failure sets under search are tiny (k <= n), so this stays
        # O(k * s) word-vector operations.
        hits.nodes.remove(node)
        levels = [0] * self.s
        for kept in hits.nodes:
            _absorb(levels, self.masks[kept])
        hits.levels = levels
        return hits

    def damage_of(self, hits: _BitsetHits) -> int:
        return hits.levels[self.s - 1].bit_count()

    def best_addition(self, hits: _BitsetHits, banned: Sequence[int]) -> Tuple[int, int]:
        masks = self.masks
        banned_set = set(banned)
        best_node, best_damage = -1, -1
        top = hits.levels[self.s - 1]
        if self.s == 1:
            for node in range(self.n):
                if node in banned_set:
                    continue
                d = (top | masks[node]).bit_count()
                if d > best_damage:
                    best_node, best_damage = node, d
        else:
            sub = hits.levels[self.s - 2]
            for node in range(self.n):
                if node in banned_set:
                    continue
                d = (top | (sub & masks[node])).bit_count()
                if d > best_damage:
                    best_node, best_damage = node, d
        return best_node, best_damage

    def optimistic_bound(self, hits: _BitsetHits, start: int, slots: int) -> int:
        suffix = self.incidence.suffix_masks()[start]
        levels = hits.levels
        killable = levels[self.s - 1]
        for deficit in range(1, min(slots, self.s) + 1):
            if deficit < self.s:
                # Objects with >= s - deficit hits already...
                reachable = levels[self.s - deficit - 1]
            else:
                # ...or any object at all when s more failures suffice.
                reachable = self.incidence.full_mask()
            # ...that still have >= deficit replicas on unconsidered nodes.
            killable |= reachable & suffix[deficit]
        return killable.bit_count()


class NumpyKernel(DamageKernel):
    """Dense-matrix backend with preallocated scratch buffers."""

    name = "numpy"

    def __init__(self, incidence: Incidence, s: int) -> None:
        if _np is None:
            raise RuntimeError("NumpyKernel requires numpy")
        super().__init__(incidence, s)
        self.matrix = incidence.matrix()
        self.columns = incidence.columns()
        b, n = self.b, self.n
        self._totals = _np.empty((b, n), dtype=_np.int16)
        self._killed = _np.empty((b, n), dtype=bool)
        self._damages = _np.empty(n, dtype=_np.int64)
        self._dead = _np.empty(b, dtype=bool)
        self._deficit = _np.empty(b, dtype=_np.int16)
        self._bound_a = _np.empty(b, dtype=bool)
        self._bound_b = _np.empty(b, dtype=bool)

    def empty_hits(self):
        return _np.zeros(self.b, dtype=_np.int16)

    def add_node(self, hits, node: int):
        hits += self.columns[node]
        return hits

    def remove_node(self, hits, node: int):
        hits -= self.columns[node]
        return hits

    def damage_of(self, hits) -> int:
        _np.greater_equal(hits, self.s, out=self._dead)
        return int(self._dead.sum())

    def best_addition(self, hits, banned: Sequence[int]) -> Tuple[int, int]:
        _np.add(hits[:, None], self.matrix, out=self._totals)
        _np.greater_equal(self._totals, self.s, out=self._killed)
        self._killed.sum(axis=0, out=self._damages)
        if banned:
            self._damages[list(banned)] = -1
        node = int(self._damages.argmax())
        return node, int(self._damages[node])

    def optimistic_bound(self, hits, start: int, slots: int) -> int:
        suffix = self.incidence.suffix_matrix()
        deficit = self._deficit
        _np.subtract(self.s, hits, out=deficit)
        _np.less_equal(deficit, slots, out=self._bound_a)
        _np.greater_equal(suffix[:, start], deficit, out=self._bound_b)
        self._bound_a &= self._bound_b
        _np.less_equal(deficit, 0, out=self._bound_b)
        self._bound_a |= self._bound_b
        return int(self._bound_a.sum())


class PythonKernel(DamageKernel):
    """Per-node object lists; the dependency-free reference backend."""

    name = "python"

    def __init__(self, incidence: Incidence, s: int) -> None:
        super().__init__(incidence, s)
        self.node_objects = incidence.node_objects()

    def empty_hits(self) -> List[int]:
        return [0] * self.b

    def add_node(self, hits: List[int], node: int) -> List[int]:
        for obj_id in self.node_objects[node]:
            hits[obj_id] += 1
        return hits

    def remove_node(self, hits: List[int], node: int) -> List[int]:
        for obj_id in self.node_objects[node]:
            hits[obj_id] -= 1
        return hits

    def damage_of(self, hits: List[int]) -> int:
        s = self.s
        return sum(1 for h in hits if h >= s)

    def best_addition(self, hits: List[int], banned: Sequence[int]) -> Tuple[int, int]:
        banned_set = set(banned)
        s = self.s
        base = self.damage_of(hits)
        best_node, best_damage = -1, -1
        for node in range(self.n):
            if node in banned_set:
                continue
            # Only objects on `node` can change state; count crossings.
            d = base
            for obj_id in self.node_objects[node]:
                if hits[obj_id] == s - 1:
                    d += 1
            if d > best_damage:
                best_node, best_damage = node, d
        return best_node, best_damage

    def optimistic_bound(self, hits: List[int], start: int, slots: int) -> int:
        suffix = self.incidence.suffix_counts()
        s = self.s
        count = 0
        for obj_id in range(self.b):
            deficit = s - hits[obj_id]
            if deficit <= 0:
                count += 1
            elif deficit <= slots and suffix[obj_id][start] >= deficit:
                count += 1
        return count


def make_kernel(
    placement: Placement,
    s: int,
    backend: Optional[str] = None,
    incidence: Optional[Incidence] = None,
) -> DamageKernel:
    """Build the damage kernel for ``(placement, s)``.

    Pass ``incidence`` to share one :class:`Incidence` across several
    kernels (different ``s``) over the same placement.
    """
    chosen = resolve_backend(backend)
    if incidence is None:
        incidence = Incidence(placement)
    elif incidence.placement is not placement:
        raise ValueError("incidence was built for a different placement")
    if chosen == "bitset":
        return BitsetKernel(incidence, s)
    if chosen == "numpy":
        return NumpyKernel(incidence, s)
    return PythonKernel(incidence, s)
