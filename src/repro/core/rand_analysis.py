"""Analytical availability of Random placement under a worst-case adversary.

Implements the paper's Sec. IV-A machinery:

* ``alpha(n, k, r, s)`` — the number of replica-set configurations putting
  at least ``s`` replicas on a fixed failed k-set (Theorem 2's alpha);
* :func:`log_vulnerability` — the large-load limit of ``Vuln_rnd(f)``
  (Theorem 2): ``C(n,k) * P(Bin(b, p) >= f)`` with ``p = alpha / C(n,r)``,
  computed in log space because the two factors overflow and underflow
  doubles by hundreds of orders of magnitude;
* :func:`pr_avail_rnd` — Definition 6's "probably available" count,
  ``b - max{f : Vuln_rnd(f) >= 1}``, found by binary search (the
  vulnerability is non-increasing in ``f``);
* :func:`lemma4_upper_bound` — the dedicated ``s = 1`` bound
  ``b * (1 - 1/b)^{k * floor(l)}`` of Appendix A.
"""

from __future__ import annotations

import math

from repro.util.combinatorics import binom
from repro.util.intmath import log_binom, log_binom_tail


def alpha(n: int, k: int, r: int, s: int) -> int:
    """``sum_{s'=s}^{min(r,k)} C(k, s') C(n-k, r-s')`` (Theorem 2).

    Counts the r-subsets of nodes that intersect a fixed k-subset in at
    least ``s`` elements — the replica sets killed by failing that k-set.
    """
    if not 1 <= s <= r:
        raise ValueError(f"need 1 <= s <= r, got s={s}, r={r}")
    if not 0 <= k <= n:
        raise ValueError(f"need 0 <= k <= n, got k={k}, n={n}")
    return sum(
        binom(k, s_prime) * binom(n - k, r - s_prime)
        for s_prime in range(s, min(r, k) + 1)
    )


def failure_probability(n: int, k: int, r: int, s: int) -> float:
    """``p = alpha / C(n, r)``: chance one Random' object dies to a fixed k-set."""
    return alpha(n, k, r, s) / binom(n, r)


def log_vulnerability(n: int, k: int, r: int, s: int, b: int, f: int) -> float:
    """``log Vuln_rnd(f)`` in the Theorem-2 limit.

    ``Vuln_rnd(f) -> C(n,k) * P(Bin(b, p) >= f)``; the log form keeps both
    factors representable (e.g. ``C(257, 8) ~ e^{44}`` multiplied by tail
    probabilities down to ``e^{-700}``).
    """
    if f <= 0:
        return log_binom(n, k)
    p = failure_probability(n, k, r, s)
    return log_binom(n, k) + log_binom_tail(b, p, f)


def max_vulnerable_objects(n: int, k: int, r: int, s: int, b: int) -> int:
    """``max{f : Vuln_rnd(f) >= 1}`` — the threshold in Definition 6.

    Binary search over ``f`` in ``[0, b]``; ``Vuln_rnd`` is non-increasing
    in ``f`` and ``Vuln_rnd(0) = C(n,k) >= 1``, so the maximum exists.
    """
    low, high = 0, b  # invariant: Vuln(low) >= 1
    if log_vulnerability(n, k, r, s, b, high) >= 0.0:
        return b
    while high - low > 1:
        mid = (low + high) // 2
        if log_vulnerability(n, k, r, s, b, mid) >= 0.0:
            low = mid
        else:
            high = mid
    return low


def pr_avail_rnd(n: int, k: int, r: int, s: int, b: int) -> int:
    """Definition 6: the number of objects probably available under Random."""
    if b < 1:
        raise ValueError(f"need b >= 1, got {b}")
    return b - max_vulnerable_objects(n, k, r, s, b)


def lemma4_upper_bound(n: int, k: int, r: int, b: int) -> float:
    """Appendix A (s = 1): ``prAvail_rnd <= b (1 - 1/b)^{k floor(l)}``.

    ``l = r b / n`` is the average per-node load; requires ``k < n/2`` (the
    lemma's hypothesis, which guarantees the adversary can always find k
    fully loaded nodes).
    """
    if not k < n / 2:
        raise ValueError(f"Lemma 4 requires k < n/2, got k={k}, n={n}")
    if b < 1:
        raise ValueError(f"need b >= 1, got {b}")
    exponent = k * math.floor(r * b / n)
    return b * math.exp(exponent * math.log1p(-1.0 / b))


def pr_avail_fraction(n: int, k: int, r: int, s: int, b: int) -> float:
    """``prAvail_rnd / b`` — the quantity plotted in the paper's Fig. 8."""
    return pr_avail_rnd(n, k, r, s, b) / b
