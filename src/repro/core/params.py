"""System parameters (the paper's Fig. 1 notation).

=====  ==========================================================
``b``  number of objects
``r``  replicas per object
``s``  replica failures that disable an object, ``1 <= s <= r``
``n``  number of nodes
``k``  number of failed nodes, ``s <= k < n``
=====  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SystemParams:
    """A validated (n, b, r, s, k) parameter tuple.

    The constraints are the paper's: each object's replicas live on distinct
    nodes (``r <= n``), an object dies when ``s`` of its ``r`` replicas die
    (``1 <= s <= r``), and the adversary fails ``s <= k < n`` nodes (fewer
    than ``s`` failures cannot disable anything; failing all nodes is not a
    placement question).
    """

    n: int
    b: int
    r: int
    s: int
    k: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"need at least one node, got n={self.n}")
        if self.b < 1:
            raise ValueError(f"need at least one object, got b={self.b}")
        if not 1 <= self.r <= self.n:
            raise ValueError(
                f"replicas per object must satisfy 1 <= r <= n, "
                f"got r={self.r}, n={self.n}"
            )
        if not 1 <= self.s <= self.r:
            raise ValueError(
                f"fatality threshold must satisfy 1 <= s <= r, "
                f"got s={self.s}, r={self.r}"
            )
        if not self.s <= self.k < self.n:
            raise ValueError(
                f"failed nodes must satisfy s <= k < n, "
                f"got s={self.s}, k={self.k}, n={self.n}"
            )

    @property
    def average_load(self) -> float:
        """Average replicas per node, the paper's ``l = r b / n``."""
        return self.r * self.b / self.n

    def with_objects(self, b: int) -> "SystemParams":
        """The same system hosting a different number of objects."""
        return SystemParams(n=self.n, b=b, r=self.r, s=self.s, k=self.k)

    def with_failures(self, k: int) -> "SystemParams":
        """The same system under a different failure count."""
        return SystemParams(n=self.n, b=self.b, r=self.r, s=self.s, k=k)


def majority_threshold(r: int) -> int:
    """The ``s`` for majority-quorum objects: dead once a majority cannot form.

    An object accessed via majority quorums survives while more than half of
    its replicas are alive, i.e. dies when ``ceil(r / 2)`` replicas fail.
    """
    if r < 1:
        raise ValueError(f"need r >= 1, got {r}")
    return (r + 1) // 2


def read_one_threshold(r: int) -> int:
    """The ``s`` for read-any / primary-backup objects: all replicas must die."""
    if r < 1:
        raise ValueError(f"need r >= 1, got {r}")
    return r


def write_all_threshold() -> int:
    """The ``s`` for write-all objects: any replica failure disables writes."""
    return 1
