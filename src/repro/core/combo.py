"""The Combo placement strategy and its optimizing DP (paper Sec. III-B).

``Combo(<lambda_x>)`` splits the ``b`` objects across strata
``Simple(0, lambda_0) ... Simple(s-1, lambda_{s-1})`` subject to the
capacity constraint Eqn. 3. The dynamic program of Sec. III-B1 (Eqns. 5-7)
chooses ``<lambda_x>`` to maximize the availability lower bound
``lbAvail_co`` (Lemma 3) for a configured number ``k`` of node failures.

The DP state is ``(x', b')``: the best bound achievable placing ``b'``
objects using strata ``0..x'``. Lambda moves in steps of ``mu_x`` (``d``
steps place ``d * unit_x`` objects), exactly as in the paper's recurrence;
memoization is over reachable states only, which stays tiny because
``unit_x`` grows combinatorially with ``x``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.bounds import lb_avail_combo
from repro.core.placement import Placement
from repro.core.subsystems import Subsystem, select_combo_subsystems
from repro.designs.catalog import Existence
from repro.util.combinatorics import binom, ceil_div


@dataclass(frozen=True)
class ComboPlan:
    """The DP's output: per-stratum lambdas and object counts for one (b, k)."""

    b: int
    k: int
    r: int
    s: int
    lambdas: Tuple[int, ...]  # lambda_x per stratum; 0 = stratum unused
    counts: Tuple[int, ...]  # objects placed per stratum, sums to b
    lower_bound: int  # the DP objective: max lbAvail_co

    def lower_bound_at(self, k: int) -> int:
        """Lemma 3 evaluated for a different failure count (Fig. 3's question)."""
        return lb_avail_combo(self.b, k, self.s, self.lambdas)


class ComboStrategy:
    """Builds Combo placements on ``n`` nodes (r replicas, threshold s)."""

    def __init__(
        self,
        n: int,
        r: int,
        s: int,
        subsystems: Optional[Tuple[Optional[Subsystem], ...]] = None,
        tier: Existence = Existence.KNOWN,
        max_mu: int = 1,
        max_chunks: int = 1,
    ) -> None:
        if not 1 <= s <= r <= n:
            raise ValueError(f"need 1 <= s <= r <= n, got s={s}, r={r}, n={n}")
        self.n = n
        self.r = r
        self.s = s
        if subsystems is None:
            subsystems = select_combo_subsystems(
                n, r, s, tier=tier, max_mu=max_mu, max_chunks=max_chunks
            )
        if len(subsystems) != s:
            raise ValueError(
                f"need one subsystem slot per stratum x in [s]={list(range(s))}, "
                f"got {len(subsystems)}"
            )
        self.subsystems = tuple(subsystems)
        if all(sub is None for sub in self.subsystems):
            raise ValueError("at least one stratum needs a subsystem")

    # -- the dynamic program (Eqns. 5-7) ---------------------------------

    def plan(self, b: int, k: int) -> ComboPlan:
        """Choose ``<lambda_x>`` maximizing the Lemma-3 bound for ``k`` failures."""
        if b < 1:
            raise ValueError(f"need b >= 1, got {b}")
        if not self.s <= k < self.n:
            raise ValueError(f"need s <= k < n, got s={self.s}, k={k}, n={self.n}")
        memo: Dict[Tuple[int, int], int] = {}
        choice: Dict[Tuple[int, int], int] = {}

        units = [sub.unit_capacity if sub else 0 for sub in self.subsystems]
        mus = [sub.mu if sub else 0 for sub in self.subsystems]

        def loss(x: int, d: int) -> int:
            # floor(d * mu_x * C(k, x+1) / C(s, x+1)) — Lemma 2's term.
            return (d * mus[x] * binom(k, x + 1)) // binom(self.s, x + 1)

        def solve(x: int, b_rem: int) -> int:
            if b_rem <= 0:
                return 0  # Eqn. 5
            if x == 0:
                return self._base_case(b_rem, k)  # Eqn. 6
            key = (x, b_rem)
            if key in memo:
                return memo[key]
            if units[x] == 0:
                # No subsystem for this stratum: pass through (d = 0).
                value = solve(x - 1, b_rem)
                memo[key] = value
                choice[key] = 0
                return value
            best_value = None
            best_d = 0
            for d in range(ceil_div(b_rem, units[x]) + 1):  # Eqn. 7's range
                placed = d * units[x]
                gain = min(b_rem, placed) - loss(x, d)
                value = solve(x - 1, b_rem - placed) + gain
                if best_value is None or value > best_value:
                    best_value = value
                    best_d = d
            memo[key] = best_value
            choice[key] = best_d
            return best_value

        top = self.s - 1
        value = solve(top, b)

        # Traceback: recover d (hence lambda and object count) per stratum.
        lambdas = [0] * self.s
        counts = [0] * self.s
        b_rem = b
        for x in range(top, 0, -1):
            if b_rem <= 0:
                break
            d = choice.get((x, b_rem), 0)
            if d:
                placed = d * units[x]
                lambdas[x] = d * mus[x]
                counts[x] = min(b_rem, placed)
                b_rem -= placed
        if b_rem > 0:
            lambdas[0] = self._base_lambda(b_rem)
            counts[0] = b_rem
        return ComboPlan(
            b=b,
            k=k,
            r=self.r,
            s=self.s,
            lambdas=tuple(lambdas),
            counts=tuple(counts),
            lower_bound=value,
        )

    def _base_case(self, b_rem: int, k: int) -> int:
        """Eqn. 6: availability from dumping ``b_rem`` objects into stratum 0."""
        sub = self.subsystems[0]
        if sub is None:
            # Nothing can host these objects; the paper's recurrence assumes a
            # stratum-0 subsystem exists. Treat as zero availability.
            return 0
        lam0 = self._base_lambda(b_rem)
        return max(0, b_rem - (lam0 * k) // self.s)

    def _base_lambda(self, b_rem: int) -> int:
        sub = self.subsystems[0]
        if sub is None:
            return 0
        return sub.mu * ceil_div(b_rem, sub.unit_capacity)

    # -- conveniences -----------------------------------------------------

    def lower_bound(self, b: int, k: int) -> int:
        """max lbAvail_co for ``b`` objects under ``k`` failures."""
        return self.plan(b, k).lower_bound

    def place(self, b: int, k: int, plan: Optional[ComboPlan] = None) -> Placement:
        """Materialize the planned Combo placement (Definition 3).

        Objects are laid out stratum by stratum, highest ``x`` first (the
        order the traceback assigns counts); all strata share node ids
        ``0..n-1``, each using the prefix its subsystem spans.
        """
        from repro.core.simple import SimpleStrategy  # local: avoids cycle

        plan = plan or self.plan(b, k)
        placement: Optional[Placement] = None
        for x in range(self.s - 1, -1, -1):
            count = plan.counts[x]
            if count == 0:
                continue
            strategy = SimpleStrategy(
                self.n, self.r, x, subsystem=self.subsystems[x]
            )
            part = strategy.place(count)
            placement = part if placement is None else placement.concatenated_with(part)
        if placement is None:
            raise AssertionError("plan placed no objects")
        return placement.relabeled(f"Combo(s={self.s})")

    def __repr__(self) -> str:
        return (
            f"ComboStrategy(n={self.n}, r={self.r}, s={self.s}, "
            f"subsystems={self.subsystems})"
        )
