"""Worst-case failure adversaries: choosing k nodes to kill the most objects.

``Avail(pi)`` (paper Definition 1) minimizes surviving objects over all
C(n, k) failure sets. Finding the minimizing set is a max-coverage-style
problem (NP-hard in general), so this module offers a ladder of engines:

* :class:`ExhaustiveAdversary` — exact, enumerates every k-subset;
  only sensible when ``C(n, k)`` is small.
* :class:`BranchAndBoundAdversary` — exact, prunes with a deficit-based
  optimistic bound and a strong heuristic incumbent; practical far beyond
  plain enumeration, with an optional node budget after which it degrades
  gracefully into an anytime heuristic (flagged via ``exact=False``).
* :class:`GreedyAdversary` — picks nodes one at a time maximizing resulting
  damage; fast, no optimality guarantee.
* :class:`LocalSearchAdversary` — greedy + steepest-descent swaps with
  random restarts; the workhorse for the paper-scale simulations (Figs. 2
  and 7), where it empirically matches exact search (see
  ``bench_ablation_adversary``).

All engines report *damage* (failed objects); availability is ``b - damage``.
Heuristic engines under-estimate worst-case damage, therefore over-estimate
availability — callers that need a guaranteed direction use the ``exact``
flag on the result.

Damage evaluation is delegated to the pluggable kernels of
:mod:`repro.core.kernels` (selected via ``REPRO_KERNEL`` or
``force_backend``); every engine accepts a prebuilt ``kernel`` so grids of
attacks share one incidence structure (see :mod:`repro.core.batch`), and
heuristic engines accept a ``warm_start`` failure set so a k-attack can
seed the k+1 search.

Per-move cost by kernel backend (n nodes, b objects, r replicas, failure
set of size k; one "polish position" = remove + best-addition + re-add):

=========  ==================  =================  ==============
backend    best_addition       polish position    damage query
=========  ==================  =================  ==============
``gain``   O(n) table argmax   O(r^2 b / n + n)   O(1) counter
``bitset`` O(n b / 64) words   O(n b / 64 + k s)  one popcount
``numpy``  O(n b) vectorized   O(n b)             O(b) reduce
``python`` O(n + r b / n)      O(n + r b / n)     O(b) scan
=========  ==================  =================  ==============

The gain engine is the default and the only backend whose per-position
cost does not scale with ``n * b``; pick ``bitset`` when you need the
stdlib-only engine with the lowest constant at small scale, ``python``
as the executable reference. All backends return identical results —
search trajectories (tie-breaks included) are backend-independent, and
``evaluations`` counts candidate damage evaluations the same way
everywhere, so :class:`AttackResult` values can be compared across
backends bit-for-bit.

Attack results for repeated identical (placement, cell) queries are
memoized by the batch engine — see ``repro.core.batch`` for the cache
semantics; the engines here always search when called directly.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro import obs
from repro.core import native as _native
from repro.core.kernels import DamageKernel, make_kernel
from repro.core.placement import Placement
from repro.util.combinatorics import binom

# ------------------------- polish-lane budget -------------------------
#
# How many local-search polish chains may run concurrently on replicated
# gain-state lanes (see DamageKernel.polish_chains). Resolution order:
# explicit lanes= argument > configure_lanes() pin > REPRO_ATTACK_LANES >
# "auto". Auto shares the native thread budget: the coarse lanes and the
# fine-grained kernel sweeps draw from the same REPRO_NATIVE_THREADS pool,
# so a host never ends up oversubscribed by default. Lanes are a pure
# performance knob — results are bit-identical at any setting — which is
# why they never join the attack memo key.

_configured_lanes: Optional[int] = None


def configure_lanes(count: Optional[int]) -> None:
    """Pin the polish-lane budget (None restores the env/auto default).

    Used by the sharded runners to split an explicit lane budget across
    worker processes, mirroring ``native.configure_threads``.
    """
    global _configured_lanes
    if count is not None and int(count) < 1:
        raise ValueError(f"lanes must be >= 1, got {count}")
    _configured_lanes = None if count is None else int(count)


def configured_lanes() -> Optional[int]:
    """The explicit configure_lanes() pin, if any (None = env default)."""
    return _configured_lanes


def attack_lanes(requested: Optional[int] = None) -> int:
    """Resolve the lane budget: argument > pin > env > thread budget."""
    if requested is not None:
        if int(requested) < 1:
            raise ValueError(f"lanes must be >= 1, got {requested}")
        return int(requested)
    if _configured_lanes is not None:
        return _configured_lanes
    env = os.environ.get("REPRO_ATTACK_LANES", "auto") or "auto"
    if env == "auto":
        return _native.thread_count()
    try:
        return max(1, int(env))
    except ValueError:
        raise ValueError(
            f"REPRO_ATTACK_LANES must be 'auto' or an integer >= 1, "
            f"got {env!r}"
        ) from None


@dataclass(frozen=True)
class AttackResult:
    """The outcome of a worst-case search."""

    nodes: Tuple[int, ...]  # the failure set found
    damage: int  # objects killed by it
    exact: bool  # True iff this is provably the maximum damage
    evaluations: int  # damage evaluations spent (effort measure)

    def availability(self, b: int) -> int:
        return b - self.damage


def damage(placement: Placement, failed_nodes: Iterable[int], s: int) -> int:
    """Number of objects with at least ``s`` replicas on ``failed_nodes``."""
    failed = frozenset(failed_nodes)
    count = 0
    for nodes in placement.replica_sets:
        if len(nodes & failed) >= s:
            count += 1
    return count


def _bind_kernel(
    placement: Placement, s: int, kernel: Optional[DamageKernel]
) -> DamageKernel:
    """The kernel to search with; validates a caller-supplied one."""
    if kernel is None:
        return make_kernel(placement, s)
    if kernel.placement is not placement:
        raise ValueError("kernel was built for a different placement")
    if kernel.s != s:
        raise ValueError(f"kernel was built for s={kernel.s}, attack wants s={s}")
    return kernel


class ExhaustiveAdversary:
    """Exact search by full enumeration; guarded by a subset-count limit."""

    def __init__(self, max_subsets: int = 2_000_000) -> None:
        self.max_subsets = max_subsets

    def attack(
        self,
        placement: Placement,
        k: int,
        s: int,
        kernel: Optional[DamageKernel] = None,
    ) -> AttackResult:
        n = placement.n
        if not 1 <= k < n:
            raise ValueError(f"need 1 <= k < n, got k={k}, n={n}")
        total = binom(n, k)
        if total > self.max_subsets:
            raise ValueError(
                f"C({n},{k}) = {total} exceeds the exhaustive limit "
                f"{self.max_subsets}; use BranchAndBoundAdversary"
            )
        model = _bind_kernel(placement, s, kernel)
        counting = obs.metrics_enabled()
        best_nodes: Tuple[int, ...] = ()
        best_damage = -1
        evaluations = 0
        moves = 0  # add/remove pairs: every tree edge is one of each
        chosen: List[int] = []

        def recurse(start: int, hits) -> None:
            nonlocal best_nodes, best_damage, evaluations, moves
            if len(chosen) == k:
                evaluations += 1
                d = model.damage_of(hits)
                if d > best_damage:
                    best_damage = d
                    best_nodes = tuple(chosen)
                return
            remaining = k - len(chosen)
            for node in range(start, n - remaining + 1):
                chosen.append(node)
                hits = model.add_node(hits, node)
                moves += 1
                recurse(node + 1, hits)
                hits = model.remove_node(hits, node)
                chosen.pop()

        recurse(0, model.empty_hits())
        if counting and moves:
            obs.count("kernel.node_adds", moves)
            obs.count("kernel.node_removes", moves)
        return AttackResult(
            nodes=best_nodes, damage=best_damage, exact=True, evaluations=evaluations
        )


class GreedyAdversary:
    """Myopically add the node that maximizes resulting damage."""

    def attack(
        self,
        placement: Placement,
        k: int,
        s: int,
        kernel: Optional[DamageKernel] = None,
    ) -> AttackResult:
        model = _bind_kernel(placement, s, kernel)
        hits = model.empty_hits()
        chosen: List[int] = []
        evaluations = 0
        for _ in range(k):
            node, _damage_after = model.best_addition(hits, banned=chosen)
            evaluations += model.n - len(chosen)
            chosen.append(node)
            hits = model.add_node(hits, node)
        if obs.metrics_enabled() and k:
            obs.count("kernel.node_adds", k)
        return AttackResult(
            nodes=tuple(sorted(chosen)),
            damage=model.damage_of(hits),
            exact=False,
            evaluations=evaluations,
        )


class LocalSearchAdversary:
    """Greedy seed + steepest swap descent, with random restarts.

    Each sweep tries every (remove u, add v) swap and takes the best strict
    improvement, iterating to a local optimum. Restarts re-seed from random
    k-subsets.

    Determinism: every ``attack()`` call draws from a *fresh*
    ``random.Random(seed)``, so results depend only on the arguments —
    never on how many attacks the instance ran before (the old shared
    default generator made results call-order dependent). Passing ``rng``
    instead opts back into caller-managed generator state.

    Parallelism: the polish chains (greedy, warm-start, every restart)
    are independent, so they are submitted as one batch to the kernel's
    replicated-state lanes (``polish_chains``), budgeted by ``lanes`` /
    :func:`attack_lanes`. All restart seeds are pre-drawn in the exact
    order the historical serial loop drew them — the chains consume no
    randomness — so a caller-managed ``rng`` finishes in the same state,
    and merging chain results in submission order with the same
    strict-``>`` rule makes certificates (nodes, damage, evaluations)
    bit-identical to the serial path at any lane count.
    """

    def __init__(
        self,
        restarts: int = 4,
        rng: Optional[random.Random] = None,
        seed: int = 0,
        lanes: Optional[int] = None,
    ) -> None:
        if restarts < 0:
            raise ValueError(f"restarts must be >= 0, got {restarts}")
        if lanes is not None and lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes}")
        self.restarts = restarts
        self.rng = rng
        self.seed = seed
        self.lanes = lanes

    def attack(
        self,
        placement: Placement,
        k: int,
        s: int,
        kernel: Optional[DamageKernel] = None,
        warm_start: Optional[Sequence[int]] = None,
    ) -> AttackResult:
        model = _bind_kernel(placement, s, kernel)
        rng = self.rng if self.rng is not None else random.Random(self.seed)
        lanes = attack_lanes(self.lanes)
        evaluations = 0
        counting = obs.metrics_enabled()
        # Semantic move counts, accumulated locally and flushed once at the
        # end. Counted here at the driver level — not inside the kernels —
        # because the native backing fuses whole polish chains into one
        # foreign call; the driver sees identical pass/position structure
        # on every backing, so these totals are bit-identical by design.
        node_adds = 0
        node_removes = 0
        swaps = 0

        def complete(seed_nodes: Sequence[int]) -> Tuple[List[int], int]:
            """Greedily extend a (possibly smaller) failure set to size k.

            Returns the nodes plus the candidate evaluations actually
            spent: duplicates and out-of-range entries in ``seed_nodes``
            are dropped *before* accounting, so the charge reflects the
            greedy steps that really ran.
            """
            nonlocal node_adds
            nodes = [u for u in dict.fromkeys(seed_nodes) if 0 <= u < model.n][:k]
            hits = model.hits_for(nodes)
            spent = 0
            while len(nodes) < k:
                v, _ = model.best_addition(hits, banned=nodes)
                spent += model.n - len(nodes)
                nodes.append(v)
                hits = model.add_node(hits, v)
                if counting:
                    node_adds += 1
            return nodes, spent

        greedy = GreedyAdversary().attack(placement, k, s, kernel=model)
        evaluations += greedy.evaluations
        seeds: List[List[int]] = [list(greedy.nodes)]
        if warm_start is not None:
            seeded, spent = complete(warm_start)
            evaluations += spent
            seeds.append(seeded)
        # Pre-draw every restart seed. The chains consume no randomness,
        # so the draw sequence — and a caller-managed generator's final
        # state — is identical to the historical draw-inside-the-loop
        # order, while freeing the chains to run on parallel lanes.
        seeds.extend(rng.sample(range(model.n), k) for _ in range(self.restarts))
        with obs.span("engine.restart_chain", chains=len(seeds), lanes=lanes):
            chains = model.polish_chains(seeds, lanes=lanes)
        # Each chain reports the sweeps it ran; one sweep removes and
        # re-adds every position, examining n - (k - 1) candidates per
        # position, identically on every backing and lane count.
        pass_cost = k * (model.n - (k - 1))
        best_nodes: Tuple[int, ...] = ()
        best_damage = -1
        for nodes, dmg, passes, chain_swaps in chains:
            evaluations += passes * pass_cost
            if counting:
                node_removes += passes * k
                node_adds += passes * k
                swaps += chain_swaps
            if dmg > best_damage:
                best_nodes, best_damage = tuple(sorted(nodes)), dmg
        if counting:
            if self.restarts:
                obs.count("attack.restarts", self.restarts)
            if node_adds:
                obs.count("kernel.node_adds", node_adds)
            if node_removes:
                obs.count("kernel.node_removes", node_removes)
            if swaps:
                obs.count("kernel.swaps", swaps)
        return AttackResult(
            nodes=best_nodes, damage=best_damage, exact=False, evaluations=evaluations
        )


class BranchAndBoundAdversary:
    """Exact search with deficit-based pruning and a heuristic incumbent.

    Enumerates k-subsets in ascending node order; at each partial set it
    bounds the best completion with the kernel's refined bound — the
    deficit-based optimistic bound (objects still killable with the
    remaining slots among the not-yet-considered nodes) capped by the
    suffix top-degree sum, tightened further by gain-table state where the
    backend has it. With the local-search incumbent installed up front,
    most branches die immediately.

    ``max_nodes`` bounds the search-tree size; on exhaustion the best-known
    attack is returned with ``exact=False``.
    """

    def __init__(
        self,
        max_nodes: Optional[int] = 50_000_000,
        restarts: int = 2,
        lanes: Optional[int] = None,
    ) -> None:
        self.max_nodes = max_nodes
        self.restarts = restarts
        self.lanes = lanes  # forwarded to the local-search incumbent

    def attack(
        self,
        placement: Placement,
        k: int,
        s: int,
        kernel: Optional[DamageKernel] = None,
        warm_start: Optional[Sequence[int]] = None,
    ) -> AttackResult:
        model = _bind_kernel(placement, s, kernel)
        n = model.n
        incumbent = LocalSearchAdversary(
            restarts=self.restarts, lanes=self.lanes
        ).attack(placement, k, s, kernel=model, warm_start=warm_start)
        best_damage = incumbent.damage
        best_nodes = incumbent.nodes
        evaluations = incumbent.evaluations
        counting = obs.metrics_enabled()
        moves = 0  # add/remove pairs: every tree edge is one of each
        budget = [self.max_nodes if self.max_nodes is not None else -1]
        exhausted = [False]
        chosen: List[int] = []

        def recurse(start: int, hits) -> None:
            nonlocal best_damage, best_nodes, evaluations, moves
            if exhausted[0]:
                return
            slots = k - len(chosen)
            if slots == 0:
                evaluations += 1
                d = model.damage_of(hits)
                if d > best_damage:
                    best_damage = d
                    best_nodes = tuple(chosen)
                return
            if budget[0] == 0:
                exhausted[0] = True
                return
            if budget[0] > 0:
                budget[0] -= 1
            # refined_bound = deficit bound capped by the suffix degree sum,
            # plus any backend tightening (the gain kernel resolves
            # one-slot completions exactly from its gain table).
            if model.refined_bound(hits, start, slots) <= best_damage:
                return
            for node in range(start, n - slots + 1):
                chosen.append(node)
                hits = model.add_node(hits, node)
                moves += 1
                recurse(node + 1, hits)
                hits = model.remove_node(hits, node)
                chosen.pop()
                if exhausted[0]:
                    return

        recurse(0, model.empty_hits())
        if counting and moves:
            obs.count("kernel.node_adds", moves)
            obs.count("kernel.node_removes", moves)
        return AttackResult(
            nodes=tuple(sorted(best_nodes)),
            damage=best_damage,
            exact=not exhausted[0],
            evaluations=evaluations,
        )


def best_attack(
    placement: Placement,
    k: int,
    s: int,
    effort: str = "auto",
    rng: Optional[random.Random] = None,
    kernel: Optional[DamageKernel] = None,
    warm_start: Optional[Sequence[int]] = None,
    lanes: Optional[int] = None,
) -> AttackResult:
    """Convenience dispatcher over the adversary ladder.

    ``effort``:
        * ``"fast"`` — local search only;
        * ``"exact"`` — branch and bound with no budget (provably optimal);
        * ``"auto"`` — exact for small instances (``C(n,k) * b`` below ~2e8),
          local search with extra restarts otherwise.

    ``kernel`` reuses a prebuilt damage kernel (incidence sharing across a
    grid of attacks); ``warm_start`` seeds the heuristic search with a
    known-good failure set, e.g. the result of the (k-1)-attack.
    ``lanes`` bounds how many polish chains run concurrently (default:
    :func:`attack_lanes` resolution) — a pure performance knob, results
    are bit-identical at any value.
    """
    if effort == "fast":
        result = LocalSearchAdversary(restarts=4, rng=rng, lanes=lanes).attack(
            placement, k, s, kernel=kernel, warm_start=warm_start
        )
    elif effort == "exact":
        result = BranchAndBoundAdversary(max_nodes=None, lanes=lanes).attack(
            placement, k, s, kernel=kernel, warm_start=warm_start
        )
    elif effort == "auto":
        work = binom(placement.n, k) * placement.b
        if work <= 200_000_000:
            result = BranchAndBoundAdversary(
                max_nodes=5_000_000, lanes=lanes
            ).attack(placement, k, s, kernel=kernel, warm_start=warm_start)
        else:
            result = LocalSearchAdversary(restarts=8, rng=rng, lanes=lanes).attack(
                placement, k, s, kernel=kernel, warm_start=warm_start
            )
    else:
        raise ValueError(f"unknown effort {effort!r}; use fast, exact or auto")
    if obs.metrics_enabled():
        # Counted once per completed search, at the dispatch point every
        # caller (engines, simulator, CLI) funnels through. Memoized
        # repeats never reach here — engine cache hits return upstream —
        # so these are pure semantic work counts.
        obs.count("attack.searches")
        obs.count("kernel.evaluations", result.evaluations)
        obs.observe("attack.damage", result.damage)
    return result
