"""Worst-case failure adversaries: choosing k nodes to kill the most objects.

``Avail(pi)`` (paper Definition 1) minimizes surviving objects over all
C(n, k) failure sets. Finding the minimizing set is a max-coverage-style
problem (NP-hard in general), so this module offers a ladder of engines:

* :class:`ExhaustiveAdversary` — exact, enumerates every k-subset;
  only sensible when ``C(n, k)`` is small.
* :class:`BranchAndBoundAdversary` — exact, prunes with a deficit-based
  optimistic bound and a strong heuristic incumbent; practical far beyond
  plain enumeration, with an optional node budget after which it degrades
  gracefully into an anytime heuristic (flagged via ``exact=False``).
* :class:`GreedyAdversary` — picks nodes one at a time maximizing resulting
  damage; fast, no optimality guarantee.
* :class:`LocalSearchAdversary` — greedy + steepest-descent swaps with
  random restarts; the workhorse for the paper-scale simulations (Figs. 2
  and 7), where it empirically matches exact search (see
  ``bench_ablation_adversary``).

All engines report *damage* (failed objects); availability is ``b - damage``.
Heuristic engines under-estimate worst-case damage, therefore over-estimate
availability — callers that need a guaranteed direction use the ``exact``
flag on the result.

Implementation detail: damage evaluation is vectorized over numpy when it
is importable and falls back to pure Python otherwise; both paths are
exercised in the test suite.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.placement import Placement
from repro.util.combinatorics import binom

try:  # optional accelerator
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via _force_pure_python
    _np = None


@dataclass(frozen=True)
class AttackResult:
    """The outcome of a worst-case search."""

    nodes: Tuple[int, ...]  # the failure set found
    damage: int  # objects killed by it
    exact: bool  # True iff this is provably the maximum damage
    evaluations: int  # damage evaluations spent (effort measure)

    def availability(self, b: int) -> int:
        return b - self.damage


def damage(placement: Placement, failed_nodes: Iterable[int], s: int) -> int:
    """Number of objects with at least ``s`` replicas on ``failed_nodes``."""
    failed = frozenset(failed_nodes)
    count = 0
    for nodes in placement.replica_sets:
        if len(nodes & failed) >= s:
            count += 1
    return count


class _DamageModel:
    """Shared incremental damage machinery over a placement.

    Keeps the object-by-node incidence (numpy ``int16`` matrix or per-node
    object lists) so engines can evaluate candidate swaps in O(b) or better.
    """

    def __init__(self, placement: Placement, s: int) -> None:
        if not 1 <= s <= placement.r:
            raise ValueError(f"need 1 <= s <= r={placement.r}, got s={s}")
        self.placement = placement
        self.s = s
        self.n = placement.n
        self.b = placement.b
        self.use_numpy = _np is not None and not _FORCE_PURE_PYTHON[0]
        if self.use_numpy:
            matrix = _np.zeros((self.b, self.n), dtype=_np.int16)
            for obj_id, nodes in enumerate(placement.replica_sets):
                for node in nodes:
                    matrix[obj_id, node] = 1
            self.matrix = matrix
        else:
            self.node_objects: List[List[int]] = placement.node_to_objects()

    # -- hit-vector operations -------------------------------------------

    def empty_hits(self):
        if self.use_numpy:
            return _np.zeros(self.b, dtype=_np.int16)
        return [0] * self.b

    def add_node(self, hits, node: int):
        if self.use_numpy:
            return hits + self.matrix[:, node]
        updated = list(hits)
        for obj_id in self.node_objects[node]:
            updated[obj_id] += 1
        return updated

    def remove_node(self, hits, node: int):
        if self.use_numpy:
            return hits - self.matrix[:, node]
        updated = list(hits)
        for obj_id in self.node_objects[node]:
            updated[obj_id] -= 1
        return updated

    def hits_for(self, nodes: Sequence[int]):
        hits = self.empty_hits()
        for node in nodes:
            hits = self.add_node(hits, node)
        return hits

    def damage_of(self, hits) -> int:
        if self.use_numpy:
            return int((hits >= self.s).sum())
        return sum(1 for h in hits if h >= self.s)

    def best_addition(self, hits, banned: Sequence[int]) -> Tuple[int, int]:
        """(node, resulting damage) maximizing damage after adding one node."""
        if self.use_numpy:
            totals = hits[:, None] + self.matrix
            damages = (totals >= self.s).sum(axis=0)
            if banned:
                damages[list(banned)] = -1
            node = int(damages.argmax())
            return node, int(damages[node])
        banned_set = set(banned)
        best_node, best_damage = -1, -1
        for node in range(self.n):
            if node in banned_set:
                continue
            updated = self.add_node(hits, node)
            d = self.damage_of(updated)
            if d > best_damage:
                best_node, best_damage = node, d
        return best_node, best_damage


# Toggle for tests: force the pure-Python code paths even when numpy exists.
_FORCE_PURE_PYTHON = [False]


class ExhaustiveAdversary:
    """Exact search by full enumeration; guarded by a subset-count limit."""

    def __init__(self, max_subsets: int = 2_000_000) -> None:
        self.max_subsets = max_subsets

    def attack(self, placement: Placement, k: int, s: int) -> AttackResult:
        n = placement.n
        if not 1 <= k < n:
            raise ValueError(f"need 1 <= k < n, got k={k}, n={n}")
        total = binom(n, k)
        if total > self.max_subsets:
            raise ValueError(
                f"C({n},{k}) = {total} exceeds the exhaustive limit "
                f"{self.max_subsets}; use BranchAndBoundAdversary"
            )
        model = _DamageModel(placement, s)
        best_nodes: Tuple[int, ...] = ()
        best_damage = -1
        evaluations = 0
        chosen: List[int] = []

        def recurse(start: int, hits) -> None:
            nonlocal best_nodes, best_damage, evaluations
            if len(chosen) == k:
                evaluations += 1
                d = model.damage_of(hits)
                if d > best_damage:
                    best_damage = d
                    best_nodes = tuple(chosen)
                return
            remaining = k - len(chosen)
            for node in range(start, n - remaining + 1):
                chosen.append(node)
                recurse(node + 1, model.add_node(hits, node))
                chosen.pop()

        recurse(0, model.empty_hits())
        return AttackResult(
            nodes=best_nodes, damage=best_damage, exact=True, evaluations=evaluations
        )


class GreedyAdversary:
    """Myopically add the node that maximizes resulting damage."""

    def attack(self, placement: Placement, k: int, s: int) -> AttackResult:
        model = _DamageModel(placement, s)
        hits = model.empty_hits()
        chosen: List[int] = []
        evaluations = 0
        for _ in range(k):
            node, _damage_after = model.best_addition(hits, banned=chosen)
            evaluations += model.n - len(chosen)
            chosen.append(node)
            hits = model.add_node(hits, node)
        return AttackResult(
            nodes=tuple(sorted(chosen)),
            damage=model.damage_of(hits),
            exact=False,
            evaluations=evaluations,
        )


class LocalSearchAdversary:
    """Greedy seed + steepest swap descent, with random restarts.

    Each sweep tries every (remove u, add v) swap and takes the best strict
    improvement, iterating to a local optimum. Restarts re-seed from random
    k-subsets. Deterministic under a seeded ``rng``.
    """

    def __init__(self, restarts: int = 4, rng: Optional[random.Random] = None) -> None:
        if restarts < 0:
            raise ValueError(f"restarts must be >= 0, got {restarts}")
        self.restarts = restarts
        self.rng = rng or random.Random(0)

    def attack(self, placement: Placement, k: int, s: int) -> AttackResult:
        model = _DamageModel(placement, s)
        evaluations = 0

        def polish(seed_nodes: List[int]) -> Tuple[Tuple[int, ...], int, int]:
            nodes = list(seed_nodes)
            hits = model.hits_for(nodes)
            current = model.damage_of(hits)
            spent = 0
            improved = True
            while improved:
                improved = False
                for position in range(len(nodes)):
                    u = nodes[position]
                    without = model.remove_node(hits, u)
                    v, d = model.best_addition(
                        without, banned=[w for w in nodes if w != u]
                    )
                    spent += model.n
                    if d > current:
                        nodes[position] = v
                        hits = model.add_node(without, v)
                        current = d
                        improved = True
            return tuple(sorted(nodes)), current, spent

        greedy = GreedyAdversary().attack(placement, k, s)
        evaluations += greedy.evaluations
        best_nodes, best_damage, spent = polish(list(greedy.nodes))
        evaluations += spent
        for _ in range(self.restarts):
            seed = self.rng.sample(range(model.n), k)
            nodes, dmg, spent = polish(seed)
            evaluations += spent
            if dmg > best_damage:
                best_nodes, best_damage = nodes, dmg
        return AttackResult(
            nodes=best_nodes, damage=best_damage, exact=False, evaluations=evaluations
        )


class BranchAndBoundAdversary:
    """Exact search with deficit-based pruning and a heuristic incumbent.

    Enumerates k-subsets in ascending node order; at each partial set it
    bounds the best completion by counting objects that are still killable:
    deficit (replicas still needed) at most the remaining slots *and*
    reachable among the not-yet-considered nodes. With the local-search
    incumbent installed up front, most branches die immediately.

    ``max_nodes`` bounds the search-tree size; on exhaustion the best-known
    attack is returned with ``exact=False``.
    """

    def __init__(
        self, max_nodes: Optional[int] = 50_000_000, restarts: int = 2
    ) -> None:
        self.max_nodes = max_nodes
        self.restarts = restarts

    def attack(self, placement: Placement, k: int, s: int) -> AttackResult:
        model = _DamageModel(placement, s)
        n, b = model.n, model.b
        incumbent = LocalSearchAdversary(restarts=self.restarts).attack(
            placement, k, s
        )
        best_damage = incumbent.damage
        best_nodes = incumbent.nodes
        evaluations = incumbent.evaluations
        budget = [self.max_nodes if self.max_nodes is not None else -1]
        exhausted = [False]

        if model.use_numpy:
            # suffix_replicas[o, j] = replicas of object o on nodes >= j.
            reversed_cumsum = _np.cumsum(model.matrix[:, ::-1], axis=1)[:, ::-1]
            suffix = _np.concatenate(
                [reversed_cumsum, _np.zeros((b, 1), dtype=reversed_cumsum.dtype)],
                axis=1,
            )
        else:
            suffix_lists = [[0] * (n + 1) for _ in range(b)]
            for obj_id, nodes in enumerate(placement.replica_sets):
                row = suffix_lists[obj_id]
                for node in nodes:
                    row[node] += 1
                for j in range(n - 1, -1, -1):
                    row[j] += row[j + 1]
            suffix = suffix_lists

        chosen: List[int] = []

        def optimistic_bound(hits, start: int, slots: int) -> int:
            if model.use_numpy:
                deficit = model.s - hits
                killable = (deficit <= 0) | (
                    (deficit <= slots) & (suffix[:, start] >= deficit)
                )
                return int(killable.sum())
            count = 0
            for obj_id in range(b):
                deficit = model.s - hits[obj_id]
                if deficit <= 0:
                    count += 1
                elif deficit <= slots and suffix[obj_id][start] >= deficit:
                    count += 1
            return count

        def recurse(start: int, hits) -> None:
            nonlocal best_damage, best_nodes, evaluations
            if exhausted[0]:
                return
            slots = k - len(chosen)
            if slots == 0:
                evaluations += 1
                d = model.damage_of(hits)
                if d > best_damage:
                    best_damage = d
                    best_nodes = tuple(chosen)
                return
            if budget[0] == 0:
                exhausted[0] = True
                return
            if budget[0] > 0:
                budget[0] -= 1
            if optimistic_bound(hits, start, slots) <= best_damage:
                return
            for node in range(start, n - slots + 1):
                chosen.append(node)
                recurse(node + 1, model.add_node(hits, node))
                chosen.pop()
                if exhausted[0]:
                    return

        recurse(0, model.empty_hits())
        return AttackResult(
            nodes=tuple(sorted(best_nodes)),
            damage=best_damage,
            exact=not exhausted[0],
            evaluations=evaluations,
        )


def best_attack(
    placement: Placement,
    k: int,
    s: int,
    effort: str = "auto",
    rng: Optional[random.Random] = None,
) -> AttackResult:
    """Convenience dispatcher over the adversary ladder.

    ``effort``:
        * ``"fast"`` — local search only;
        * ``"exact"`` — branch and bound with no budget (provably optimal);
        * ``"auto"`` — exact for small instances (``C(n,k) * b`` below ~2e8),
          local search with extra restarts otherwise.
    """
    if effort == "fast":
        return LocalSearchAdversary(restarts=4, rng=rng).attack(placement, k, s)
    if effort == "exact":
        return BranchAndBoundAdversary(max_nodes=None).attack(placement, k, s)
    if effort == "auto":
        work = binom(placement.n, k) * placement.b
        if work <= 200_000_000:
            return BranchAndBoundAdversary(max_nodes=5_000_000).attack(
                placement, k, s
            )
        return LocalSearchAdversary(restarts=8, rng=rng).attack(placement, k, s)
    raise ValueError(f"unknown effort {effort!r}; use fast, exact or auto")
