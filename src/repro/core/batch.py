"""Batched worst-case attack engine: one placement, many (k, s, effort) cells.

Every simulation figure evaluates the same placement under a grid of
failure scenarios — Fig. 2 sweeps (s, k) per object count, Fig. 7 sweeps
k per Monte-Carlo sample, the cluster simulator re-attacks snapshots of
the same population. Attacking cell-by-cell rebuilds the incidence
structure for every cell and forgets everything the previous search
learned. This engine instead keeps a *warm, persistent pipeline*:

* :class:`AttackEngine` holds the node-major
  :class:`~repro.core.kernels.Incidence`, one damage kernel per fatality
  threshold ``s``, and a bounded memo of finished attacks. The incidence
  ingests the placement's cached CSR arrays zero-copy (see
  :meth:`Placement.node_csr`), so engine construction does no per-object
  set walking, and the cache key — :meth:`Placement.fingerprint` — is a
  single sha256 over the raw row buffer. Engines are
  cached per process keyed by that fingerprint, so repeated
  ``batch_attack`` calls — and even *distinct but structurally equal*
  placement objects, e.g. fresh cluster snapshots of an unchanged
  population — reuse kernel state instead of rebuilding it;
* each threshold group is ordered by ascending ``k`` and chains
  incumbents — the k-attack's failure set seeds the (k+1)-search
  (``warm_start``), which both speeds local search and tightens
  branch-and-bound pruning;
* the attack memo is keyed by (cell, seed, warm chain) under the
  placement fingerprint, so identical queries (same structure, same cell,
  same derived randomness) return the finished result without searching.
  Memoization is semantically invisible: results are deterministic
  functions of the key. ``REPRO_ATTACK_CACHE=0`` (or ``cache=False``)
  disables it; caller-managed ``rng`` bypasses it automatically since the
  generator state is not part of the key;
* independent threshold groups optionally fan out over
  ``multiprocessing`` (``REPRO_WORKERS`` or the ``workers`` argument).
  Worker processes keep their own engine caches, so a worker that
  receives several payloads for one placement builds its incidence once;
  under the ``fork`` start method they also inherit the parent's
  already-warm engines for free.

Attacks are deterministic: each cell's restart randomness derives from
``(seed, s, k, effort)`` via :func:`repro.util.rng.derive_rng`, so the
same grid replays bit-for-bit regardless of worker count, cell order, or
cache hits.
"""

from __future__ import annotations

import os
import random
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.adversary import AttackResult, best_attack
from repro.core.kernels import (
    DamageKernel,
    DeltaIncidence,
    Incidence,
    make_kernel,
    resolve_backend,
    resolve_gain_backing,
)
from repro.core.placement import Placement
from repro.util.rng import derive_rng

_EFFORTS = ("fast", "auto", "exact")

#: Engines kept warm per process (LRU by placement fingerprint + backend);
#: overridden by the ``REPRO_ENGINE_CACHE`` knob (see engine_cache_cap).
_ENGINE_CACHE_CAP = 8
#: Finished attacks remembered per engine (LRU).
_MEMO_CAP = 1024

_ENGINES: "OrderedDict[Tuple[str, str], AttackEngine]" = OrderedDict()
_CACHE_STATS = {"hits": 0, "misses": 0}

#: Directory of engine-state snapshots (``<fingerprint>.npz``) that
#: engine_for consults before cold-building; see configure_engine_state_dir.
_ENGINE_STATE_DIR: Optional[str] = None

# Snapshot-dir failure reasons already warned about (once per process).
_STATE_DIR_WARNED: set = set()


@dataclass(frozen=True)
class AttackCell:
    """One evaluation request: fail ``k`` nodes, objects die at ``s`` losses."""

    k: int
    s: int
    effort: str = "auto"


def worker_count(default: int = 1) -> int:
    """Worker processes for batched attacks (``REPRO_WORKERS``; 1 = serial)."""
    raw = os.environ.get("REPRO_WORKERS", "") or str(default)
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_WORKERS must be an integer >= 1, got {raw!r}"
        ) from None
    if value < 1:
        raise ValueError(f"REPRO_WORKERS must be >= 1, got {value}")
    return value


def engine_cache_cap() -> int:
    """Warm engines kept per process (``REPRO_ENGINE_CACHE``; default 8).

    Long sweeps over many distinct placements otherwise accumulate
    engines — and their incidence structures — without bound; the LRU
    cap keeps process RSS proportional to the recent working set.
    """
    raw = os.environ.get("REPRO_ENGINE_CACHE", "") or str(_ENGINE_CACHE_CAP)
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_ENGINE_CACHE must be an integer >= 1, got {raw!r}"
        ) from None
    if value < 1:
        raise ValueError(f"REPRO_ENGINE_CACHE must be >= 1, got {value}")
    return value


def attack_cache_default() -> bool:
    """Whether the attack memo is on (``REPRO_ATTACK_CACHE``; default yes)."""
    raw = os.environ.get("REPRO_ATTACK_CACHE", "1").strip().lower()
    if raw in ("1", "true", "yes", "on", ""):
        return True
    if raw in ("0", "false", "no", "off"):
        return False
    raise ValueError(
        f"REPRO_ATTACK_CACHE must be boolean-like, got {raw!r}"
    )


def attack_cache_stats() -> Dict[str, int]:
    """Process-wide memo counters plus the number of warm engines."""
    return {**_CACHE_STATS, "engines": len(_ENGINES)}


def clear_attack_caches() -> None:
    """Drop every warm engine and memoized result (tests, memory pressure)."""
    _ENGINES.clear()
    _CACHE_STATS["hits"] = 0
    _CACHE_STATS["misses"] = 0


class AttackEngine:
    """Warm per-placement attack state: incidence, kernels, result memo.

    Bound to one resolved kernel backend. Use :func:`engine_for` to get
    the process-cached instance instead of constructing directly.
    """

    def __init__(
        self,
        placement: Placement,
        backend: Optional[str] = None,
        gain_backing: Optional[str] = None,
    ) -> None:
        self.placement = placement
        self.backend = resolve_backend(backend)
        # Pin the gain backing at construction so lazily built kernels
        # cannot drift from the backing this engine was cached under.
        self.gain_backing = (
            resolve_gain_backing(gain_backing)
            if self.backend == "gain" else None
        )
        self.incidence = Incidence(placement)
        self._kernels: Dict[int, DamageKernel] = {}
        self._memo: "OrderedDict[tuple, AttackResult]" = OrderedDict()

    def apply_delta(
        self,
        added_objects: Sequence[Sequence[int]] = (),
        removed_objects: Sequence[int] = (),
    ) -> Placement:
        """Mutate the engine's placement in place and stay warm.

        ``added_objects`` holds replica node sets to append;
        ``removed_objects`` holds current object ids to drop, under the
        swap-with-last id semantics of
        :meth:`~repro.core.kernels.DeltaIncidence.apply_delta`. The
        incidence upgrades to a :class:`DeltaIncidence` on first use
        (one O(b) conversion, after which every delta costs O(changed
        replicas)); kernels that can absorb the mutation rebind in place
        and the rest rebuild lazily; the attack memo is cleared (results
        describe the old structure). Returns the resulting placement.

        A mutated engine no longer matches the fingerprint it may have
        been cached under, so it detaches from the :func:`engine_for`
        cache — delta engines are private to their driver (the lifetime
        simulator), while fingerprint lookups keep returning engines that
        describe what they claim.
        """
        upgraded = not isinstance(self.incidence, DeltaIncidence)
        if upgraded:
            self.incidence = DeltaIncidence(self.placement)
        self._detach()
        self.placement = self.incidence.apply_delta(
            added_objects, removed_objects
        )
        if upgraded:
            # Pre-upgrade kernels hold the old immutable structures.
            self._kernels.clear()
        else:
            for s in [s for s, k in self._kernels.items() if not k.rebind()]:
                del self._kernels[s]
        self._memo.clear()
        return self.placement

    def _detach(self) -> None:
        """Drop this engine from the process cache (stale fingerprint key)."""
        for key in [k for k, eng in _ENGINES.items() if eng is self]:
            del _ENGINES[key]

    def kernel(self, s: int) -> DamageKernel:
        """The shared damage kernel for threshold ``s`` (built once)."""
        kernel = self._kernels.get(s)
        if kernel is None:
            kernel = make_kernel(
                self.placement, s, backend=self.backend,
                incidence=self.incidence, gain_backing=self.gain_backing,
            )
            self._kernels[s] = kernel
        return kernel

    def memo_get(self, key: tuple) -> Optional[AttackResult]:
        """LRU lookup in the attack memo (refreshes recency on hit)."""
        cached = self._memo.get(key)
        if cached is not None:
            self._memo.move_to_end(key)
        return cached

    def memo_put(self, key: tuple, result: AttackResult) -> None:
        """Insert into the attack memo, evicting the LRU tail past the cap."""
        self._memo[key] = result
        while len(self._memo) > _MEMO_CAP:
            self._memo.popitem(last=False)

    def attack(
        self,
        cell: AttackCell,
        seed: int = 0,
        rng: Optional[random.Random] = None,
        warm_start: Optional[Sequence[int]] = None,
        cache: Optional[bool] = None,
        lanes: Optional[int] = None,
    ) -> AttackResult:
        """Run (or recall) one attack cell against the warm kernel state.

        With ``rng=None`` the cell's generator derives from
        ``(seed, s, k, effort)``, making the result a pure function of the
        memo key — eligible for caching. A caller-managed ``rng`` carries
        hidden state, so those calls always search. ``lanes`` sets the
        polish-chain lane count for this cell (default: the process lane
        budget, see :func:`repro.core.adversary.attack_lanes`); lanes are
        a pure scheduling knob — results are bit-identical at any lane
        count — so they are deliberately *not* part of the memo key.
        """
        _validate_cells(self.placement, (cell,))
        use_cache = (
            (attack_cache_default() if cache is None else cache)
            and rng is None
        )
        warm = tuple(warm_start) if warm_start is not None else None
        key = (cell.k, cell.s, cell.effort, seed, warm)
        if use_cache:
            cached = self.memo_get(key)
            if cached is not None:
                _CACHE_STATS["hits"] += 1
                obs.count("attack.memo.hits")
                return cached
            _CACHE_STATS["misses"] += 1
            obs.count("attack.memo.misses")
        cell_rng = rng if rng is not None else derive_rng(
            seed, "batch", cell.s, cell.k, cell.effort
        )
        with obs.span(
            "engine.attack", k=cell.k, s=cell.s, effort=cell.effort
        ):
            result = best_attack(
                self.placement,
                cell.k,
                cell.s,
                effort=cell.effort,
                rng=cell_rng,
                kernel=self.kernel(cell.s),
                warm_start=warm,
                lanes=lanes,
            )
        if use_cache:
            self.memo_put(key, result)
        return result


def _cache_engine(key: Tuple[str, str, str], engine: AttackEngine) -> None:
    """Insert a warm engine, evicting (and detaching) past the LRU cap."""
    _ENGINES[key] = engine
    cap = engine_cache_cap()
    while len(_ENGINES) > cap:
        _key, evicted = _ENGINES.popitem(last=False)
        # Detach any aliased keys so the evicted engine is fully released
        # (a half-evicted engine would pin its incidence via the alias).
        evicted._detach()
        obs.count("engine.cache.evictions")
    obs.gauge("engine.cache.size", len(_ENGINES))


def engine_for(placement: Placement, backend: Optional[str] = None) -> AttackEngine:
    """The process-cached warm engine for (placement structure, backend).

    Structurally equal placements (same fingerprint) share one engine even
    when they are distinct objects — the engine's own placement stands in
    for all of them, which is sound because attacks depend only on
    structure and node ids are preserved by equality. The gain engine's
    resolved backing is part of the key, so re-pinning
    ``REPRO_GAIN_BACKING`` mid-process builds a fresh engine instead of
    silently reusing kernels of the previous backing.

    With an engine-state directory configured
    (:func:`configure_engine_state_dir`), a cache miss first tries to
    hydrate from ``<dir>/<fingerprint>.npz`` and a cold build writes that
    snapshot for the next process — both best-effort: a missing,
    version-skewed, or unwritable snapshot degrades to the cold path.
    """
    resolved = resolve_backend(backend)
    backing = resolve_gain_backing() if resolved == "gain" else ""
    key = (placement.fingerprint(), resolved, backing)
    engine = _ENGINES.get(key)
    if engine is None:
        obs.count("engine.cache.misses")
        engine = _hydrate_from_dir(placement, resolved)
        if engine is None:
            engine = AttackEngine(placement, backend=resolved)
            obs.count("engine.builds")
            _cache_engine(key, engine)
            _snapshot_to_dir(engine)
        return engine
    _ENGINES.move_to_end(key)
    obs.count("engine.cache.hits")
    obs.gauge("engine.cache.size", len(_ENGINES))
    return engine


def configure_engine_state_dir(path: Optional[str]) -> None:
    """Point the process at a directory of engine-state snapshots.

    ``engine_for`` then hydrates cache misses from
    ``<dir>/<fingerprint>.npz`` (when present) and persists cold builds
    there, so successive processes over the same placement lineage skip
    the O(b r) engine build. ``None`` turns the warm path off.
    """
    global _ENGINE_STATE_DIR
    _ENGINE_STATE_DIR = path


def engine_state_dir() -> Optional[str]:
    """The configured snapshot directory (None = warm path off)."""
    return _ENGINE_STATE_DIR


def _state_dir_degraded(path: str, exc: BaseException) -> None:
    """Warn once per reason that the snapshot dir is not cooperating."""
    import warnings

    reason = f"{type(exc).__name__}: {exc}"
    if reason in _STATE_DIR_WARNED:
        return
    _STATE_DIR_WARNED.add(reason)
    obs.record_event("engine.state_dir_degraded", path=path, reason=reason)
    warnings.warn(
        f"engine-state snapshot {path} unusable ({reason}); "
        "continuing on the cold build path",
        RuntimeWarning,
        stacklevel=3,
    )


def _hydrate_from_dir(
    placement: Placement, backend: str
) -> Optional[AttackEngine]:
    """Try the snapshot directory for this placement's engine, else None."""
    if _ENGINE_STATE_DIR is None:
        return None
    path = os.path.join(
        _ENGINE_STATE_DIR, placement.fingerprint() + ".npz"
    )
    if not os.path.exists(path):
        return None
    from repro.core import artifact

    try:
        engine = hydrate_engine(path, backend=backend)
    except artifact.ArtifactError as exc:
        _state_dir_degraded(path, exc)
        return None
    if engine is not None and (
        engine.placement.fingerprint() != placement.fingerprint()
    ):  # pragma: no cover - requires a misnamed snapshot file
        engine._detach()
        return None
    return engine


def _snapshot_to_dir(engine: AttackEngine) -> None:
    """Persist a cold-built engine's snapshot (best-effort, atomic)."""
    if _ENGINE_STATE_DIR is None:
        return
    path = os.path.join(
        _ENGINE_STATE_DIR, engine.placement.fingerprint() + ".npz"
    )
    if os.path.exists(path):
        return
    try:
        snapshot_engine(engine, path)
    except OSError as exc:
        # The snapshot is an optimization; never fail the run over it.
        _state_dir_degraded(path, exc)


def snapshot_engine(
    engine: AttackEngine, path: str, s_values: Optional[Sequence[int]] = None
) -> None:
    """Write ``engine``'s placement + packed gain states as an artifact.

    ``s_values`` defaults to every threshold (1..r) so any later cell
    hydrates warm; backends without packed state (the full-scan kernels)
    produce a placement-only snapshot, which still carries the verified
    CSR/load members that dominate cold-build time. The write is atomic
    (temp file + rename): concurrent writers race benignly because
    identical content wins either way.
    """
    from repro.core import artifact
    from repro.core.kernels import GAIN_STATE_VERSION

    placement = engine.placement
    thresholds = (
        sorted(int(s) for s in s_values)
        if s_values is not None else range(1, placement.r + 1)
    )
    states = {}
    for s in thresholds:
        kernel = engine.kernel(s)
        export = getattr(kernel, "export_state", None)
        if export is None:
            continue
        states[s] = export(kernel.empty_hits())
    scratch = f"{path}.tmp.{os.getpid()}"
    try:
        artifact.save_engine_state(
            scratch, placement, states, state_version=GAIN_STATE_VERSION
        )
        os.replace(scratch, path)
    except BaseException:
        if os.path.exists(scratch):
            os.unlink(scratch)
        raise


def hydrate_engine(
    path: str,
    backend: Optional[str] = None,
    mmap: bool = True,
    validate: bool = False,
) -> Optional[AttackEngine]:
    """Rebuild a warm engine from an engine-state snapshot.

    Returns ``None`` when the artifact's format or packed-state version
    is newer than this process understands (callers cold-build instead);
    corrupt artifacts raise :class:`~repro.core.artifact.ArtifactError` —
    checksum-gated trust, like placement artifacts. The hydrated engine
    registers in the process cache under its fingerprint, so subsequent
    :func:`engine_for` calls for the same structure reuse it. A hydrated
    engine is bit-for-bit equivalent to a cold-built one: the packed
    states seed each kernel's empty-state template, and every backing
    interprets the same canonical little-endian words.
    """
    from repro.core import artifact
    from repro.core.kernels import GAIN_STATE_VERSION

    try:
        with obs.span("engine.hydrate", path=str(path)):
            bundle = artifact.load_engine_state(
                path, mmap=mmap, validate=validate,
                state_version=GAIN_STATE_VERSION,
            )
            resolved = resolve_backend(backend)
            engine = AttackEngine(bundle.placement, backend=resolved)
            if engine.backend == "gain":
                for s, data in sorted(bundle.states.items()):
                    kernel = engine.kernel(s)
                    seed = getattr(kernel, "seed_empty_state", None)
                    if seed is not None:
                        seed(data)
    except artifact.ArtifactVersionError:
        return None
    obs.count("engine.hydrations")
    obs.count("engine.builds_avoided")
    _cache_engine(
        (bundle.fingerprint, engine.backend, engine.gain_backing or ""),
        engine,
    )
    return engine


def _validate_cells(placement: Placement, cells: Sequence[AttackCell]) -> None:
    for cell in cells:
        if not 1 <= cell.k < placement.n:
            raise ValueError(f"need 1 <= k < n={placement.n}, got k={cell.k}")
        if not 1 <= cell.s <= placement.r:
            raise ValueError(f"need 1 <= s <= r={placement.r}, got s={cell.s}")
        if cell.effort not in _EFFORTS:
            raise ValueError(
                f"unknown effort {cell.effort!r}; use one of {_EFFORTS}"
            )


def _attack_group(
    placement: Placement,
    s: int,
    group: Sequence[Tuple[int, AttackCell]],
    backend: str,
    seed: int,
    cache: Optional[bool] = None,
    lanes: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> List[Tuple[int, AttackResult]]:
    """Attack one threshold group (pre-sorted by k), chaining incumbents.

    Top-level so multiprocessing can pickle it; the warm engine comes from
    the per-process cache, so a worker handed several payloads of one
    placement (or a forked child of a warm parent) reuses kernel state.
    """
    engine = engine_for(placement, backend)
    results: List[Tuple[int, AttackResult]] = []
    warm: Optional[Tuple[int, ...]] = None
    for index, cell in group:
        attack = engine.attack(
            cell, seed=seed, rng=rng, warm_start=warm, cache=cache,
            lanes=lanes,
        )
        warm = attack.nodes
        results.append((index, attack))
    return results


def _attack_group_task(payload):
    """One pool task: attack a group and report the metrics it recorded.

    Forked workers inherit the parent's counter values, and one worker
    may serve several payloads — so each task returns the registry
    *delta* between its start and end alongside the results. The parent
    merges those deltas, which makes counter totals exact for any worker
    count (see ``repro.obs.metrics``).
    """
    mark = obs.checkpoint()
    chunk = _attack_group(*payload)
    return chunk, obs.delta_since(mark)


def batch_attack(
    placement: Placement,
    cells: Iterable[AttackCell],
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    seed: int = 0,
    rng: Optional[random.Random] = None,
    cache: Optional[bool] = None,
    lanes: Optional[int] = None,
) -> List[AttackResult]:
    """Evaluate a grid of attack cells; results align with the input order.

    ``backend`` picks the damage kernel (default: ``REPRO_KERNEL``/auto),
    ``workers`` the process fan-out (default: ``REPRO_WORKERS``/serial);
    see :func:`_partition` for how grids split across workers and the
    effect on heuristic warm-start chains.
    ``rng`` overrides the per-cell derived generators with one shared
    caller-managed generator (serial mode only; used by single-cell
    wrappers that expose an ``rng`` parameter) and disables memoization.
    ``cache`` overrides the ``REPRO_ATTACK_CACHE`` default for this call.
    ``lanes`` pins the polish-chain lane count; an explicit budget is
    split across the process fan-out (``max(1, lanes // processes)``)
    exactly like the kernel thread budget, while the ``auto`` default
    follows each worker's already-split thread budget for free.
    """
    cell_list = list(cells)
    _validate_cells(placement, cell_list)
    if not cell_list:
        return []
    if lanes is not None and lanes < 1:
        raise ValueError(f"lanes must be >= 1, got {lanes}")
    chosen_backend = resolve_backend(backend)
    groups: Dict[int, List[Tuple[int, AttackCell]]] = {}
    for index, cell in enumerate(cell_list):
        groups.setdefault(cell.s, []).append((index, cell))
    for group in groups.values():
        group.sort(key=lambda item: (item[1].k, item[0]))
    workers = worker_count() if workers is None else workers
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")

    results: List[Optional[AttackResult]] = [None] * len(cell_list)
    payloads = _partition(
        placement, groups, chosen_backend, seed, workers, cache, lanes
    )
    if workers > 1 and len(payloads) > 1 and rng is None:
        import multiprocessing

        # Warm the parent engine first: under fork the children inherit
        # the built incidence copy-on-write instead of rebuilding it —
        # and any payload fully answerable from the parent's memo skips
        # the pool outright.
        engine = engine_for(placement, chosen_backend)
        pending = []
        for payload in payloads:
            chunk = _memoized_group(engine, payload)
            if chunk is None:
                pending.append(payload)
            else:
                for index, attack in chunk:
                    results[index] = attack
        if pending:
            from repro.core import native

            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
            processes = min(workers, len(pending))
            # Split the kernel thread budget across the fan-out so
            # (workers x kernel threads) never oversubscribes the host.
            # An explicit lane budget splits the same way; auto lanes
            # follow each worker's split thread budget on their own.
            if lanes is not None:
                lane_budget = max(1, lanes // processes)
                pending = [
                    payload[:-1] + (lane_budget,) for payload in pending
                ]
            with context.Pool(
                processes=processes,
                initializer=native.configure_threads,
                initargs=(native.worker_thread_budget(processes),),
            ) as pool:
                tasks = pool.map(_attack_group_task, pending)
            chunks = [chunk for chunk, _delta in tasks]
            for _chunk, delta in tasks:
                obs.merge_delta(delta)
            for chunk in chunks:
                for index, attack in chunk:
                    results[index] = attack
            # Adopt worker results so later repeats are served locally.
            _adopt_results(engine, pending, chunks, cache)
    else:
        for placement_, s, group, backend_, seed_, cache_, lanes_ in payloads:
            for index, attack in _attack_group(
                placement_, s, group, backend_, seed_, cache=cache_,
                lanes=lanes_, rng=rng,
            ):
                results[index] = attack
    return results  # type: ignore[return-value]


def _memoized_group(engine: AttackEngine, payload) -> Optional[
    List[Tuple[int, AttackResult]]
]:
    """Serve one worker payload entirely from the engine memo, or None.

    Walks the group's warm-start chain key by key; any miss aborts (the
    chain's later keys depend on the missing result, so partial service
    is impossible).
    """
    _placement, _s, group, _backend, seed, cache, _lanes = payload
    if not (attack_cache_default() if cache is None else cache):
        return None
    results: List[Tuple[int, AttackResult]] = []
    warm: Optional[Tuple[int, ...]] = None
    for index, cell in group:
        cached = engine.memo_get((cell.k, cell.s, cell.effort, seed, warm))
        if cached is None:
            return None
        results.append((index, cached))
        warm = cached.nodes
    _CACHE_STATS["hits"] += len(results)
    obs.count("attack.memo.hits", len(results))
    return results


def _adopt_results(engine: AttackEngine, payloads, chunks, cache) -> None:
    """Store worker-computed attacks in the parent memo (post-pool)."""
    if not (attack_cache_default() if cache is None else cache):
        return
    for payload, chunk in zip(payloads, chunks):
        _placement, _s, group, _backend, seed, _cache, _lanes = payload
        warm: Optional[Tuple[int, ...]] = None
        for (index, cell), (_index, attack) in zip(group, chunk):
            engine.memo_put((cell.k, cell.s, cell.effort, seed, warm), attack)
            warm = attack.nodes


def _partition(
    placement: Placement,
    groups: Dict[int, List[Tuple[int, AttackCell]]],
    backend: str,
    seed: int,
    workers: int,
    cache: Optional[bool] = None,
    lanes: Optional[int] = None,
) -> List[
    Tuple[
        Placement, int, List[Tuple[int, AttackCell]], str, int,
        Optional[bool], Optional[int],
    ]
]:
    """Split threshold groups into worker payloads.

    One payload per threshold by default; with spare workers, large
    single-threshold k-ladders are chunked into contiguous ascending-k
    runs so ``workers`` helps even when every cell shares one ``s`` (the
    common case: CLI grids, fig7, run_attack_grid). Each chunk keeps its
    internal warm-start chain; chunk boundaries start cold, so heuristic
    results can differ between worker counts (exact efforts cannot).
    Chunking is a pure function of (cells, workers): a fixed worker count
    replays bit-for-bit.
    """
    payloads = []
    chunks_per_group = max(1, workers // max(1, len(groups)))
    for s, group in sorted(groups.items()):
        chunk_count = min(len(group), chunks_per_group)
        size = -(-len(group) // chunk_count)
        for offset in range(0, len(group), size):
            payloads.append((
                placement, s, group[offset:offset + size], backend, seed,
                cache, lanes,
            ))
    return payloads


def attack_grid(
    placement: Placement,
    k_values: Sequence[int],
    s_values: Sequence[int],
    effort: str = "auto",
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    seed: int = 0,
    lanes: Optional[int] = None,
) -> Dict[Tuple[int, int], AttackResult]:
    """Full-cartesian convenience wrapper: ``{(k, s): AttackResult}``."""
    cells = [AttackCell(k, s, effort) for s in s_values for k in k_values]
    results = batch_attack(
        placement, cells, backend=backend, workers=workers, seed=seed,
        lanes=lanes,
    )
    return {(cell.k, cell.s): attack for cell, attack in zip(cells, results)}
