"""Batched worst-case attack engine: one placement, many (k, s, effort) cells.

Every simulation figure evaluates the same placement under a grid of
failure scenarios — Fig. 2 sweeps (s, k) per object count, Fig. 7 sweeps
k per Monte-Carlo sample. Attacking cell-by-cell rebuilds the incidence
structure for every cell and forgets everything the previous search
learned. This engine instead:

* builds the node-major :class:`~repro.core.kernels.Incidence` once per
  placement and shares one kernel per fatality threshold ``s``;
* orders each threshold group by ascending ``k`` and chains incumbents —
  the k-attack's failure set seeds the (k+1)-search (``warm_start``),
  which both speeds local search and tightens branch-and-bound pruning;
* optionally fans independent threshold groups out over
  ``multiprocessing`` (``REPRO_WORKERS`` or the ``workers`` argument;
  worker processes rebuild their own incidence, which is cheap relative
  to search).

Attacks are deterministic: each cell's restart randomness derives from
``(seed, s, k, effort)`` via :func:`repro.util.rng.derive_rng`, so the
same grid replays bit-for-bit regardless of worker count or cell order.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.adversary import AttackResult, best_attack
from repro.core.kernels import Incidence, make_kernel, resolve_backend
from repro.core.placement import Placement
from repro.util.rng import derive_rng

_EFFORTS = ("fast", "auto", "exact")


@dataclass(frozen=True)
class AttackCell:
    """One evaluation request: fail ``k`` nodes, objects die at ``s`` losses."""

    k: int
    s: int
    effort: str = "auto"


def worker_count(default: int = 1) -> int:
    """Worker processes for batched attacks (``REPRO_WORKERS``; 1 = serial)."""
    raw = os.environ.get("REPRO_WORKERS", "") or str(default)
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_WORKERS must be an integer >= 1, got {raw!r}"
        ) from None
    if value < 1:
        raise ValueError(f"REPRO_WORKERS must be >= 1, got {value}")
    return value


def _validate_cells(placement: Placement, cells: Sequence[AttackCell]) -> None:
    for cell in cells:
        if not 1 <= cell.k < placement.n:
            raise ValueError(f"need 1 <= k < n={placement.n}, got k={cell.k}")
        if not 1 <= cell.s <= placement.r:
            raise ValueError(f"need 1 <= s <= r={placement.r}, got s={cell.s}")
        if cell.effort not in _EFFORTS:
            raise ValueError(
                f"unknown effort {cell.effort!r}; use one of {_EFFORTS}"
            )


def _attack_group(
    placement: Placement,
    s: int,
    group: Sequence[Tuple[int, AttackCell]],
    backend: str,
    seed: int,
    incidence: Optional[Incidence] = None,
    rng: Optional[random.Random] = None,
) -> List[Tuple[int, AttackResult]]:
    """Attack one threshold group (pre-sorted by k), chaining incumbents.

    Top-level so multiprocessing can pickle it; ``incidence`` is shared in
    serial mode and rebuilt per worker otherwise.
    """
    if incidence is None:
        incidence = Incidence(placement)
    kernel = make_kernel(placement, s, backend=backend, incidence=incidence)
    results: List[Tuple[int, AttackResult]] = []
    warm: Optional[Tuple[int, ...]] = None
    for index, cell in group:
        cell_rng = rng if rng is not None else derive_rng(
            seed, "batch", s, cell.k, cell.effort
        )
        attack = best_attack(
            placement,
            cell.k,
            s,
            effort=cell.effort,
            rng=cell_rng,
            kernel=kernel,
            warm_start=warm,
        )
        warm = attack.nodes
        results.append((index, attack))
    return results


def batch_attack(
    placement: Placement,
    cells: Iterable[AttackCell],
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> List[AttackResult]:
    """Evaluate a grid of attack cells; results align with the input order.

    ``backend`` picks the damage kernel (default: ``REPRO_KERNEL``/auto),
    ``workers`` the process fan-out (default: ``REPRO_WORKERS``/serial);
    see :func:`_partition` for how grids split across workers and the
    effect on heuristic warm-start chains.
    ``rng`` overrides the per-cell derived generators with one shared
    caller-managed generator (serial mode only; used by single-cell
    wrappers that expose an ``rng`` parameter).
    """
    cell_list = list(cells)
    _validate_cells(placement, cell_list)
    if not cell_list:
        return []
    chosen_backend = resolve_backend(backend)
    groups: Dict[int, List[Tuple[int, AttackCell]]] = {}
    for index, cell in enumerate(cell_list):
        groups.setdefault(cell.s, []).append((index, cell))
    for group in groups.values():
        group.sort(key=lambda item: (item[1].k, item[0]))
    workers = worker_count() if workers is None else workers
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")

    results: List[Optional[AttackResult]] = [None] * len(cell_list)
    payloads = _partition(placement, groups, chosen_backend, seed, workers)
    if workers > 1 and len(payloads) > 1 and rng is None:
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        with context.Pool(processes=min(workers, len(payloads))) as pool:
            chunks = pool.starmap(_attack_group, payloads)
        for chunk in chunks:
            for index, attack in chunk:
                results[index] = attack
    else:
        incidence = Incidence(placement)
        for placement_, s, group, backend_, seed_ in payloads:
            for index, attack in _attack_group(
                placement_, s, group, backend_, seed_,
                incidence=incidence, rng=rng,
            ):
                results[index] = attack
    return results  # type: ignore[return-value]


def _partition(
    placement: Placement,
    groups: Dict[int, List[Tuple[int, AttackCell]]],
    backend: str,
    seed: int,
    workers: int,
) -> List[Tuple[Placement, int, List[Tuple[int, AttackCell]], str, int]]:
    """Split threshold groups into worker payloads.

    One payload per threshold by default; with spare workers, large
    single-threshold k-ladders are chunked into contiguous ascending-k
    runs so ``workers`` helps even when every cell shares one ``s`` (the
    common case: CLI grids, fig7, run_attack_grid). Each chunk keeps its
    internal warm-start chain; chunk boundaries start cold, so heuristic
    results can differ between worker counts (exact efforts cannot).
    Chunking is a pure function of (cells, workers): a fixed worker count
    replays bit-for-bit.
    """
    payloads = []
    chunks_per_group = max(1, workers // max(1, len(groups)))
    for s, group in sorted(groups.items()):
        chunk_count = min(len(group), chunks_per_group)
        size = -(-len(group) // chunk_count)
        for offset in range(0, len(group), size):
            payloads.append(
                (placement, s, group[offset:offset + size], backend, seed)
            )
    return payloads


def attack_grid(
    placement: Placement,
    k_values: Sequence[int],
    s_values: Sequence[int],
    effort: str = "auto",
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    seed: int = 0,
) -> Dict[Tuple[int, int], AttackResult]:
    """Full-cartesian convenience wrapper: ``{(k, s): AttackResult}``."""
    cells = [AttackCell(k, s, effort) for s in s_values for k in k_values]
    results = batch_attack(
        placement, cells, backend=backend, workers=workers, seed=seed
    )
    return {(cell.k, cell.s): attack for cell, attack in zip(cells, results)}
