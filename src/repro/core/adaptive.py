"""Adaptive Combo placement under object churn (the paper's future work).

Sec. IV-D of the paper: "an algorithm to adapt our placements as new
objects come and go would be an interesting advance; we leave investigation
of such an algorithm to future work." This module implements a natural such
algorithm as an extension:

* each stratum ``x`` owns a lazily-extended stream of packing blocks
  (copies of its subsystem design) plus a free list of released blocks;
* arrivals draw from the free list first (keeping the in-use block multiset
  inside the already-paid lambda), otherwise from the stream of the stratum
  a periodically-refreshed DP plan says is under-filled;
* departures return blocks to their stratum's free list.

The invariant maintained is the Simple/Combo packing property itself: the
in-use blocks of stratum ``x`` are always a sub-multiset of ``c_x`` copies
of the subsystem design, so they form a ``(x+1)-(n, r, mu_x * c_x)``
packing and Lemma 3 applies with ``lambda_x = mu_x * c_x``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.bounds import lb_avail_combo
from repro.core.combo import ComboStrategy
from repro.core.placement import Placement
from repro.designs.blocks import Block
from repro.designs.catalog import Existence, build
from repro.designs.transforms import all_subsets_blocks
from repro.util.combinatorics import ceil_div


class _Stratum:
    """Block supply for one Simple(x, ·) stratum."""

    def __init__(self, n: int, r: int, x: int, subsystem) -> None:
        self.n = n
        self.r = r
        self.x = x
        self.subsystem = subsystem
        self.free: List[Block] = []
        self.drawn = 0  # blocks ever taken from the stream
        self.in_use = 0
        self._stream = self._make_stream()

    def _make_stream(self) -> Iterator[Block]:
        if self.x + 1 == self.r:

            def cycle_trivial() -> Iterator[Block]:
                while True:
                    yield from all_subsets_blocks(self.n, self.r)

            return cycle_trivial()

        def cycle() -> Iterator[Block]:
            chunk_designs = [
                build(chunk.nx, self.r, self.x + 1)
                for chunk in self.subsystem.chunks
            ]
            offsets = []
            offset = 0
            for design in chunk_designs:
                offsets.append(offset)
                offset += design.v
            while True:
                for design, off in zip(chunk_designs, offsets):
                    for block in design.blocks:
                        yield tuple(point + off for point in block)

        return cycle()

    def take(self) -> Block:
        self.in_use += 1
        if self.free:
            return self.free.pop()
        block = next(self._stream)
        self.drawn += 1
        return block

    def release(self, block: Block) -> None:
        self.free.append(block)
        self.in_use -= 1

    @property
    def current_lambda(self) -> int:
        """The packing multiplicity paid so far: mu * copies started."""
        if self.drawn == 0:
            return 0
        if self.x + 1 == self.r:
            from repro.util.combinatorics import binom

            return ceil_div(self.drawn, binom(self.n, self.r))
        # One mu-fold pass over all chunks yields unit_capacity blocks.
        blocks_per_pass = self.subsystem.unit_capacity
        passes = ceil_div(self.drawn, max(blocks_per_pass, 1))
        return self.subsystem.mu * passes


class AdaptiveComboPlacement:
    """A Combo placement that absorbs arrivals and departures online.

    Args:
        n, r, s: system shape (paper notation).
        k: failure count the DP plans against.
        expected_objects: initial sizing hint for the DP plan.
        replan_interval: arrivals between DP refreshes; the plan drives
            which stratum new objects land in.
    """

    def __init__(
        self,
        n: int,
        r: int,
        s: int,
        k: int,
        expected_objects: int = 64,
        replan_interval: int = 64,
        tier: Existence = Existence.CONSTRUCTIBLE,
    ) -> None:
        self.strategy = ComboStrategy(n, r, s, tier=tier)
        self.n, self.r, self.s, self.k = n, r, s, k
        self.replan_interval = max(1, replan_interval)
        self._strata: List[Optional[_Stratum]] = [
            _Stratum(n, r, x, sub) if sub is not None else None
            for x, sub in enumerate(self.strategy.subsystems)
        ]
        self._assignments: Dict[int, tuple] = {}  # obj_id -> (x, block)
        self._next_id = 0
        self._arrivals_since_plan = 0
        self._plan_counts = self._fresh_plan(max(1, expected_objects))

    def _fresh_plan(self, b: int) -> List[int]:
        plan = self.strategy.plan(b, self.k)
        return list(plan.counts)

    # -- churn operations ---------------------------------------------------

    def add_object(self) -> int:
        """Place one new object; returns its id."""
        self._arrivals_since_plan += 1
        if self._arrivals_since_plan >= self.replan_interval:
            self._arrivals_since_plan = 0
            projected = max(len(self._assignments) * 2, 1)
            self._plan_counts = self._fresh_plan(projected)
        x = self._pick_stratum()
        stratum = self._strata[x]
        assert stratum is not None
        block = stratum.take()
        obj_id = self._next_id
        self._next_id += 1
        self._assignments[obj_id] = (x, block)
        return obj_id

    def remove_object(self, obj_id: int) -> None:
        """Release an object's replicas (block returns to its stratum pool)."""
        if obj_id not in self._assignments:
            raise KeyError(f"unknown object {obj_id}")
        x, block = self._assignments.pop(obj_id)
        stratum = self._strata[x]
        assert stratum is not None
        stratum.release(block)

    def _pick_stratum(self) -> int:
        """Prefer free-listed blocks, then the plan's most under-filled stratum."""
        for x, stratum in enumerate(self._strata):
            if stratum is not None and stratum.free:
                return x
        best_x = None
        best_deficit = 0
        for x, stratum in enumerate(self._strata):
            if stratum is None:
                continue
            target = self._plan_counts[x] if x < len(self._plan_counts) else 0
            deficit = target - stratum.in_use
            if best_x is None or deficit > best_deficit:
                best_x = x
                best_deficit = deficit
        if best_x is None:
            raise RuntimeError("no stratum available")
        return best_x

    # -- views ----------------------------------------------------------------

    @property
    def num_objects(self) -> int:
        return len(self._assignments)

    def replica_nodes(self, obj_id: int) -> Tuple[int, ...]:
        """The node set hosting ``obj_id`` (drivers deploy this on a cluster)."""
        if obj_id not in self._assignments:
            raise KeyError(f"unknown object {obj_id}")
        _x, block = self._assignments[obj_id]
        return tuple(block)

    def placement(self) -> Placement:
        """Snapshot of the live objects as a Placement (ids renumbered)."""
        if not self._assignments:
            raise RuntimeError("no live objects to snapshot")
        from array import array
        from itertools import chain

        # Blocks are sorted design rows by construction; snapshot straight
        # into the trusted array path.
        rows = array(
            "i",
            chain.from_iterable(
                block for (_x, block) in self._assignments.values()
            ),
        )
        return Placement.from_arrays(
            self.n, rows, r=self.r, strategy="AdaptiveCombo", validate=False
        )

    def current_lambdas(self) -> List[int]:
        """The paid packing multiplicity per stratum (0 for unused strata)."""
        return [
            stratum.current_lambda if stratum is not None else 0
            for stratum in self._strata
        ]

    def lower_bound(self, k: Optional[int] = None) -> int:
        """Lemma 3 with the paid lambdas — valid for the live placement."""
        k = self.k if k is None else k
        b = self.num_objects
        if b == 0:
            return 0
        return lb_avail_combo(b, k, self.s, self.current_lambdas())
