"""Binary placement artifacts: ``.npz`` with a versioned JSON header.

JSON placements (:meth:`Placement.to_dict`) are convenient but cost
seconds of parse + validation at million-object scale. This module adds a
binary format that round-trips the array-native core in milliseconds:

* ``rows.npy`` — the ``(b, r)`` row-sorted replica matrix as a standard
  NPY v1.0 array (little-endian int32), so ``numpy.load`` can open the
  archive directly;
* ``header.json`` — ``{"format": "repro-placement", "version": 1, "n",
  "b", "r", "strategy", "sha256"}`` where ``sha256`` digests the raw row
  bytes.

Both members live in an uncompressed zip (the ``.npz`` container). The
writer and reader are dependency-free — the NPY header is tiny and
hand-rolled — so the format works on the no-numpy ladder too.

Loading verifies shape and checksum and then takes the **trusted**
:meth:`Placement.from_arrays` path (``validate=False``): a placement that
hashed correctly was validated when it was saved, so re-running the
O(b r) structural checks on every reload is pure overhead. Pass
``validate=True`` to re-check anyway (e.g. for artifacts of unknown
provenance).

:func:`save_placement` / :func:`load_placement` dispatch on the file
extension, so every CLI entry point (``repro place/attack/audit/
simulate``) speaks both formats through one pair of calls.
"""

from __future__ import annotations

import ast
import hashlib
import json
import mmap as _mmaplib
import struct
import sys
import warnings
import zipfile
from array import array
from typing import Optional, Set, Tuple

from repro import obs
from repro.core.placement import Placement, PlacementError

# Reasons already warned about for mmap -> eager fallback (one warning
# per distinct reason per process, so a sweep over many artifacts does
# not spam while the degradation still gets surfaced once).
_MMAP_FALLBACK_WARNED: Set[str] = set()

try:  # optional accelerator for mmap-view validation
    import numpy as _np
except ImportError:  # pragma: no cover - exercised in the no-numpy CI leg
    _np = None

PLACEMENT_FORMAT = "repro-placement"
PLACEMENT_VERSION = 1

_NPY_MAGIC = b"\x93NUMPY"


class ArtifactError(ValueError):
    """Raised on malformed, corrupt, or version-incompatible artifacts."""


def _row_bytes_le(placement: Placement) -> bytes:
    """The raw row buffer as little-endian int32 bytes."""
    rows = placement.replica_array()
    if sys.byteorder == "big":  # pragma: no cover - no big-endian CI leg
        rows = array("i", rows)
        rows.byteswap()
    return rows.tobytes()


def _npy_bytes(row_data: bytes, b: int, r: int) -> bytes:
    """A standard NPY v1.0 envelope around the little-endian int32 rows."""
    header = (
        "{'descr': '<i4', 'fortran_order': False, "
        f"'shape': ({b}, {r}), }}"
    ).encode("latin1")
    # Pad with spaces so magic + version + length + header is 64-aligned.
    unpadded = len(_NPY_MAGIC) + 2 + 2 + len(header) + 1
    header += b" " * (-unpadded % 64) + b"\n"
    return (
        _NPY_MAGIC + bytes((1, 0)) + struct.pack("<H", len(header))
        + header + row_data
    )


def _parse_npy(blob: bytes):
    """Minimal NPY v1/v2 reader for the int32 row matrix."""
    if blob[:6] != _NPY_MAGIC:
        raise ArtifactError("rows.npy: not an NPY file")
    major = blob[6]
    if major == 1:
        (header_len,) = struct.unpack("<H", blob[8:10])
        offset = 10
    elif major == 2:  # pragma: no cover - we never write v2
        (header_len,) = struct.unpack("<I", blob[8:12])
        offset = 12
    else:
        raise ArtifactError(f"rows.npy: unsupported NPY version {major}")
    header = ast.literal_eval(blob[offset:offset + header_len].decode("latin1"))
    if header.get("fortran_order"):
        raise ArtifactError("rows.npy: fortran order is not supported")
    descr = header.get("descr")
    if descr not in ("<i4", "|i4", ">i4"):
        raise ArtifactError(f"rows.npy: expected int32 rows, got {descr!r}")
    shape = header.get("shape")
    if not (isinstance(shape, tuple) and len(shape) == 2):
        raise ArtifactError(f"rows.npy: expected a (b, r) matrix, got {shape}")
    data = blob[offset + header_len:]
    rows = array("i")
    rows.frombytes(data[: 4 * shape[0] * shape[1]])
    if len(rows) != shape[0] * shape[1]:
        raise ArtifactError("rows.npy: truncated row data")
    swap = (descr == ">i4") != (sys.byteorder == "big")
    if swap:  # pragma: no cover - no big-endian CI leg
        rows.byteswap()
    return rows, shape


def _member_span(path: str, info: zipfile.ZipInfo) -> Tuple[int, int]:
    """``(file_offset, size)`` of an uncompressed zip member's raw data.

    ``ZipInfo.header_offset`` points at the member's *local* header, whose
    name/extra fields can differ in length from the central directory's
    copy — the offset must come from the local record itself.
    """
    if info.compress_type != zipfile.ZIP_STORED:
        # A compressed member is a *valid* artifact that simply has no
        # mappable byte range — plain ValueError so load_npz falls back
        # to the eager decompressing path instead of rejecting the file.
        raise ValueError(
            f"{path}: member {info.filename!r} is compressed; "
            f"mmap needs the stored layout save_npz writes"
        )
    with open(path, "rb") as handle:
        handle.seek(info.header_offset)
        local = handle.read(30)
    if len(local) != 30 or local[:4] != b"PK\x03\x04":
        raise ArtifactError(f"{path}: corrupt local header for {info.filename!r}")
    name_len, extra_len = struct.unpack("<HH", local[26:30])
    return info.header_offset + 30 + name_len + extra_len, info.file_size


def _stream_digest(path: str, offset: int, size: int) -> str:
    """sha256 of a file region, read in chunks (never via a mapping)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        handle.seek(offset)
        remaining = size
        while remaining > 0:
            chunk = handle.read(min(remaining, 1 << 20))
            if not chunk:
                raise ArtifactError(f"{path}: truncated row data")
            digest.update(chunk)
            remaining -= len(chunk)
    return digest.hexdigest()


def _map_rows(path: str, offset: int, size: int):
    """An int32 memoryview over a file region via a copy-on-write mapping.

    ``ACCESS_COPY`` keeps the mapping writable (ctypes ``from_buffer``
    refuses read-only buffers) without ever dirtying the file; pages fault
    in lazily as kernels touch them. The returned view pins the mapping
    alive; the descriptor is closed immediately (mappings outlive fds).
    """
    grain = _mmaplib.ALLOCATIONGRANULARITY
    base = offset - offset % grain
    delta = offset - base
    with open(path, "rb") as handle:
        mapped = _mmaplib.mmap(
            handle.fileno(), delta + size,
            access=_mmaplib.ACCESS_COPY, offset=base,
        )
    return memoryview(mapped)[delta:delta + size].cast("i")


def _validate_view(view, n: int, b: int, r: int, path: str) -> None:
    """Structural validation of an int32 row view without copying it.

    Stricter than the artifact checksum: every row must be strictly
    ascending (which covers both sortedness — a format invariant — and
    replica distinctness) with nodes in ``[0, n)``.
    """
    if _np is not None:
        matrix = _np.frombuffer(view, dtype=_np.int32).reshape(b, r)
        ok = bool((matrix[:, 0] >= 0).all()) and bool((matrix[:, -1] < n).all())
        if ok and r > 1:
            ok = bool((matrix[:, 1:] > matrix[:, :-1]).all())
        if not ok:
            raise ArtifactError(
                f"{path}: rows are not sorted distinct in-range node ids"
            )
        return
    for obj_id in range(b):
        previous = -1
        for node in view[obj_id * r:(obj_id + 1) * r]:
            if not previous < node < n:
                raise ArtifactError(
                    f"{path}: object {obj_id} has invalid replica row "
                    f"{list(view[obj_id * r:(obj_id + 1) * r])}"
                )
            previous = node


def save_npz(placement: Placement, path: str) -> None:
    """Write ``placement`` as a ``.npz`` artifact (versioned, checksummed)."""
    row_data = _row_bytes_le(placement)
    header = {
        "format": PLACEMENT_FORMAT,
        "version": PLACEMENT_VERSION,
        "n": placement.n,
        "b": placement.b,
        "r": placement.r,
        "strategy": placement.strategy,
        "sha256": hashlib.sha256(row_data).hexdigest(),
    }
    with zipfile.ZipFile(path, "w", zipfile.ZIP_STORED) as archive:
        archive.writestr("header.json", json.dumps(header, indent=1) + "\n")
        archive.writestr(
            "rows.npy", _npy_bytes(row_data, placement.b, placement.r)
        )


def load_npz(path: str, validate: bool = False, mmap: bool = False) -> Placement:
    """Read a ``.npz`` placement artifact written by :func:`save_npz`.

    The rows checksum is always verified; ``validate=True`` additionally
    re-runs the full structural validation. The default trusts the
    artifact — the checksum only proves the bytes are the ones that were
    written, not that a well-behaved writer produced them — so this
    function is for artifacts *this program wrote* (the memoized reload
    path). Boundary code loading files of unknown provenance goes
    through :func:`load_placement`, which validates by default.

    ``mmap=True`` memory-maps the row matrix out of the archive instead
    of copying it into the heap: the checksum is still enforced (by
    streaming the file region, so page-cache reads — never the process
    mapping — pay for it) and the placement's row buffer becomes a lazy
    copy-on-write view whose pages fault in as kernels touch them — the
    difference between "engine-ready" RSS scaling with b and scaling with
    the touched working set. Falls back to the eager load when the
    filesystem refuses to map (network mounts, exotic platforms).
    """
    if mmap:
        try:
            return _load_npz_mmap(path, validate=validate)
        except ArtifactError:
            raise  # bad artifacts stay rejected; only mmap refusal falls back
        except (OSError, ValueError) as exc:
            # mmap refused (filesystem, platform, zero-length quirk):
            # the eager path reads the same checked bytes. Degrading
            # silently would hide a real capability loss (lazy page-in at
            # large b), so name the reason once per process.
            reason = f"{type(exc).__name__}: {exc}"
            # Every fallback is counted (capacity loss is per-load), but
            # the warning and the structured event fire once per reason —
            # a sweep over a network mount degrades loudly exactly once.
            obs.count("artifact.mmap_fallback")
            if reason not in _MMAP_FALLBACK_WARNED:
                _MMAP_FALLBACK_WARNED.add(reason)
                obs.record_event(
                    "artifact.mmap_fallback", path=str(path), reason=reason
                )
                warnings.warn(
                    f"{path}: mmap load failed ({reason}); falling back to "
                    "the eager loader — results are identical but rows are "
                    "read up front instead of paged in lazily",
                    RuntimeWarning,
                    stacklevel=2,
                )
    try:
        with zipfile.ZipFile(path) as archive:
            names = set(archive.namelist())
            if "header.json" not in names or "rows.npy" not in names:
                raise ArtifactError(
                    f"{path}: not a placement artifact "
                    f"(members: {sorted(names)})"
                )
            header = json.loads(archive.read("header.json"))
            blob = archive.read("rows.npy")
    except zipfile.BadZipFile as exc:
        raise ArtifactError(f"{path}: not a zip archive: {exc}") from None
    if header.get("format") != PLACEMENT_FORMAT:
        raise ArtifactError(
            f"{path}: unknown artifact format {header.get('format')!r}"
        )
    if int(header.get("version", -1)) > PLACEMENT_VERSION:
        raise ArtifactError(
            f"{path}: artifact version {header.get('version')} is newer "
            f"than supported version {PLACEMENT_VERSION}"
        )
    rows, shape = _parse_npy(blob)
    try:
        n = int(header["n"])
        b, r = int(header["b"]), int(header["r"])
        expected_digest = header["sha256"]
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactError(
            f"{path}: malformed artifact header: {exc!r}"
        ) from None
    if shape != (b, r):
        raise ArtifactError(
            f"{path}: header says ({b}, {r}) but rows.npy holds {shape}"
        )
    row_data = rows.tobytes()
    if sys.byteorder == "big":  # pragma: no cover - no big-endian CI leg
        swapped = array("i", rows)
        swapped.byteswap()
        row_data = swapped.tobytes()
    digest = hashlib.sha256(row_data).hexdigest()
    if digest != expected_digest:
        raise ArtifactError(
            f"{path}: rows checksum mismatch (corrupt artifact)"
        )
    return Placement.from_arrays(
        n,
        rows,
        r=r,
        strategy=str(header.get("strategy", "")),
        validate=validate,
    )


def _load_npz_mmap(path: str, validate: bool) -> Placement:
    """The mmap-backed arm of :func:`load_npz`.

    Header parsing and checksum verification read through the page cache;
    only the row matrix itself is mapped. Raises :class:`ArtifactError`
    for bad artifacts and ``OSError``/``ValueError`` when the platform or
    filesystem refuses the mapping (the caller falls back to eager).
    """
    if sys.byteorder == "big":  # pragma: no cover - no big-endian CI leg
        raise ValueError("mmap rows are little-endian; eager load byteswaps")
    try:
        with zipfile.ZipFile(path) as archive:
            names = set(archive.namelist())
            if "header.json" not in names or "rows.npy" not in names:
                raise ArtifactError(
                    f"{path}: not a placement artifact "
                    f"(members: {sorted(names)})"
                )
            header = json.loads(archive.read("header.json"))
            member = archive.getinfo("rows.npy")
    except zipfile.BadZipFile as exc:
        raise ArtifactError(f"{path}: not a zip archive: {exc}") from None
    if header.get("format") != PLACEMENT_FORMAT:
        raise ArtifactError(
            f"{path}: unknown artifact format {header.get('format')!r}"
        )
    if int(header.get("version", -1)) > PLACEMENT_VERSION:
        raise ArtifactError(
            f"{path}: artifact version {header.get('version')} is newer "
            f"than supported version {PLACEMENT_VERSION}"
        )
    try:
        n = int(header["n"])
        b, r = int(header["b"]), int(header["r"])
        expected_digest = header["sha256"]
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactError(
            f"{path}: malformed artifact header: {exc!r}"
        ) from None
    member_offset, member_size = _member_span(path, member)
    # Parse just the NPY envelope (magic + header) from the member head.
    with open(path, "rb") as handle:
        handle.seek(member_offset)
        head = handle.read(min(member_size, 1 << 12))
    if head[:6] != _NPY_MAGIC:
        raise ArtifactError("rows.npy: not an NPY file")
    if head[6] == 1:
        (header_len,) = struct.unpack("<H", head[8:10])
        npy_offset = 10 + header_len
    elif head[6] == 2:  # pragma: no cover - we never write v2
        (header_len,) = struct.unpack("<I", head[8:12])
        npy_offset = 12 + header_len
    else:
        raise ArtifactError(f"rows.npy: unsupported NPY version {head[6]}")
    if npy_offset > len(head):
        raise ArtifactError("rows.npy: oversized NPY header")
    npy_header = ast.literal_eval(
        head[10 if head[6] == 1 else 12:npy_offset].decode("latin1")
    )
    if npy_header.get("fortran_order"):
        raise ArtifactError("rows.npy: fortran order is not supported")
    if npy_header.get("descr") not in ("<i4", "|i4"):
        raise ArtifactError(
            f"rows.npy: expected little-endian int32 rows, "
            f"got {npy_header.get('descr')!r}"
        )
    if npy_header.get("shape") != (b, r):
        raise ArtifactError(
            f"{path}: header says ({b}, {r}) but rows.npy holds "
            f"{npy_header.get('shape')}"
        )
    data_offset = member_offset + npy_offset
    data_size = 4 * b * r
    if npy_offset + data_size > member_size:
        raise ArtifactError("rows.npy: truncated row data")
    if _stream_digest(path, data_offset, data_size) != expected_digest:
        raise ArtifactError(
            f"{path}: rows checksum mismatch (corrupt artifact)"
        )
    view = _map_rows(path, data_offset, data_size)
    if validate:
        _validate_view(view, n, b, r, path)
    return Placement(
        n=n, rows=view, r=r, strategy=str(header.get("strategy", ""))
    )


def save_placement(placement: Placement, path: str) -> None:
    """Write a placement artifact; format chosen by extension.

    ``.npz`` gets the binary format; anything else gets the JSON snapshot
    (:meth:`Placement.to_dict`).
    """
    if path.endswith(".npz"):
        save_npz(placement, path)
        return
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(placement.to_dict(), handle)
        handle.write("\n")


def load_placement(
    path: str, validate: Optional[bool] = None, mmap: bool = False
) -> Placement:
    """Read a placement artifact; format chosen by extension.

    This is the boundary loader (the CLI routes through it), so rows are
    fully validated by default for both formats — a checksum-consistent
    ``.npz`` from an unknown writer can still hold out-of-range or
    duplicate node ids, which would otherwise reach the kernels' C index
    paths unchecked. Internal reload paths that wrote the artifact
    themselves pass ``validate=False`` (or call :func:`load_npz`
    directly) to skip the O(b r) re-check.

    ``mmap=True`` (``.npz`` only; ignored for JSON) backs the rows with a
    lazy copy-on-write mapping — see :func:`load_npz`. Validation still
    runs by default (in place over the view, no copy).
    """
    if path.endswith(".npz"):
        return load_npz(
            path, validate=True if validate is None else validate, mmap=mmap
        )
    with open(path, encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ArtifactError(f"{path}: not valid JSON: {exc}") from None
    try:
        return Placement.from_dict(payload)
    except (KeyError, TypeError) as exc:
        raise ArtifactError(
            f"{path}: missing placement fields: {exc}"
        ) from None
    except PlacementError:
        raise
