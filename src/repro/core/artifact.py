"""Binary placement artifacts: ``.npz`` with a versioned JSON header.

JSON placements (:meth:`Placement.to_dict`) are convenient but cost
seconds of parse + validation at million-object scale. This module adds a
binary format that round-trips the array-native core in milliseconds:

* ``rows.npy`` — the ``(b, r)`` row-sorted replica matrix as a standard
  NPY v1.0 array (little-endian int32), so ``numpy.load`` can open the
  archive directly;
* ``header.json`` — ``{"format": "repro-placement", "version": 1, "n",
  "b", "r", "strategy", "sha256"}`` where ``sha256`` digests the raw row
  bytes.

Both members live in an uncompressed zip (the ``.npz`` container). The
writer and reader are dependency-free — the NPY header is tiny and
hand-rolled — so the format works on the no-numpy ladder too.

Loading verifies shape and checksum and then takes the **trusted**
:meth:`Placement.from_arrays` path (``validate=False``): a placement that
hashed correctly was validated when it was saved, so re-running the
O(b r) structural checks on every reload is pure overhead. Pass
``validate=True`` to re-check anyway (e.g. for artifacts of unknown
provenance).

:func:`save_placement` / :func:`load_placement` dispatch on the file
extension, so every CLI entry point (``repro place/attack/audit/
simulate``) speaks both formats through one pair of calls.
"""

from __future__ import annotations

import ast
import hashlib
import json
import mmap as _mmaplib
import struct
import sys
import warnings
import zipfile
from array import array
from typing import Dict, Optional, Set, Tuple

from repro import obs
from repro.core.placement import Placement, PlacementError

# Reasons already warned about for mmap -> eager fallback (one warning
# per distinct reason per process, so a sweep over many artifacts does
# not spam while the degradation still gets surfaced once).
_MMAP_FALLBACK_WARNED: Set[str] = set()

try:  # optional accelerator for mmap-view validation
    import numpy as _np
except ImportError:  # pragma: no cover - exercised in the no-numpy CI leg
    _np = None

PLACEMENT_FORMAT = "repro-placement"
PLACEMENT_VERSION = 1

#: Engine-state snapshots: a placement plus the packed gain-kernel state
#: for one or more thresholds ``s`` (see ``repro.core.kernels``'s
#: ``GAIN_STATE_VERSION`` wire format), so a warm engine rehydrates from
#: mmap instead of paying the O(b r) cold build. Members beyond the
#: placement's ``rows.npy``: ``loads.npy`` (per-node replica counts),
#: ``node_objs.npy`` (the node -> objects CSR payload) and one
#: ``state_<s>.npy`` per threshold — all little-endian int32 column
#: vectors, individually checksummed in the header. The rows member is
#: gated by the placement *fingerprint* (sha256 over the shape prefix +
#: row bytes): the loader recomputes it from the file region, so a
#: tampered header cannot smuggle a mismatched fingerprint into the
#: batch engine's cache keys.
ENGINE_FORMAT = "repro-engine-state"
ENGINE_VERSION = 1

_NPY_MAGIC = b"\x93NUMPY"


class ArtifactError(ValueError):
    """Raised on malformed, corrupt, or version-incompatible artifacts."""


class ArtifactVersionError(ArtifactError):
    """An artifact from a *newer* writer (format or packed-state version).

    Distinct from corruption: the bytes are intact but this process
    cannot interpret them, so callers holding a rebuild path (engine
    hydration) fall back to the cold build instead of failing the run.
    """


def _row_bytes_le(placement: Placement) -> bytes:
    """The raw row buffer as little-endian int32 bytes."""
    return _i32_bytes_le(placement.replica_array())


def _i32_bytes_le(values) -> bytes:
    """Any int32 buffer (array/memoryview) as little-endian bytes."""
    packed = values if isinstance(values, array) else array("i", values)
    if sys.byteorder == "big":  # pragma: no cover - no big-endian CI leg
        packed = array("i", packed)
        packed.byteswap()
    return packed.tobytes()


def _npy_bytes(row_data: bytes, b: int, r: int) -> bytes:
    """A standard NPY v1.0 envelope around the little-endian int32 rows."""
    header = (
        "{'descr': '<i4', 'fortran_order': False, "
        f"'shape': ({b}, {r}), }}"
    ).encode("latin1")
    # Pad with spaces so magic + version + length + header is 64-aligned.
    unpadded = len(_NPY_MAGIC) + 2 + 2 + len(header) + 1
    header += b" " * (-unpadded % 64) + b"\n"
    return (
        _NPY_MAGIC + bytes((1, 0)) + struct.pack("<H", len(header))
        + header + row_data
    )


def _parse_npy(blob: bytes, name: str = "rows.npy"):
    """Minimal NPY v1/v2 reader for an int32 matrix member."""
    if blob[:6] != _NPY_MAGIC:
        raise ArtifactError(f"{name}: not an NPY file")
    major = blob[6]
    if major == 1:
        (header_len,) = struct.unpack("<H", blob[8:10])
        offset = 10
    elif major == 2:  # pragma: no cover - we never write v2
        (header_len,) = struct.unpack("<I", blob[8:12])
        offset = 12
    else:
        raise ArtifactError(f"{name}: unsupported NPY version {major}")
    header = ast.literal_eval(blob[offset:offset + header_len].decode("latin1"))
    if header.get("fortran_order"):
        raise ArtifactError(f"{name}: fortran order is not supported")
    descr = header.get("descr")
    if descr not in ("<i4", "|i4", ">i4"):
        raise ArtifactError(f"{name}: expected int32 rows, got {descr!r}")
    shape = header.get("shape")
    if not (isinstance(shape, tuple) and len(shape) == 2):
        raise ArtifactError(f"{name}: expected a (b, r) matrix, got {shape}")
    data = blob[offset + header_len:]
    rows = array("i")
    rows.frombytes(data[: 4 * shape[0] * shape[1]])
    if len(rows) != shape[0] * shape[1]:
        raise ArtifactError(f"{name}: truncated row data")
    swap = (descr == ">i4") != (sys.byteorder == "big")
    if swap:  # pragma: no cover - no big-endian CI leg
        rows.byteswap()
    return rows, shape


def _member_span(path: str, info: zipfile.ZipInfo) -> Tuple[int, int]:
    """``(file_offset, size)`` of an uncompressed zip member's raw data.

    ``ZipInfo.header_offset`` points at the member's *local* header, whose
    name/extra fields can differ in length from the central directory's
    copy — the offset must come from the local record itself.
    """
    if info.compress_type != zipfile.ZIP_STORED:
        # A compressed member is a *valid* artifact that simply has no
        # mappable byte range — plain ValueError so load_npz falls back
        # to the eager decompressing path instead of rejecting the file.
        raise ValueError(
            f"{path}: member {info.filename!r} is compressed; "
            f"mmap needs the stored layout save_npz writes"
        )
    with open(path, "rb") as handle:
        handle.seek(info.header_offset)
        local = handle.read(30)
    if len(local) != 30 or local[:4] != b"PK\x03\x04":
        raise ArtifactError(f"{path}: corrupt local header for {info.filename!r}")
    name_len, extra_len = struct.unpack("<HH", local[26:30])
    return info.header_offset + 30 + name_len + extra_len, info.file_size


def _npy_data_span(
    path: str, info: zipfile.ZipInfo, shape: Tuple[int, int]
) -> Tuple[int, int]:
    """``(file_offset, size)`` of the int32 payload inside a stored member.

    Parses just the NPY envelope (magic + header) from the member head
    and checks dtype/order/shape; raises :class:`ArtifactError` for bad
    artifacts and plain ``ValueError`` (via :func:`_member_span`) when
    the member has no mappable byte range.
    """
    name = info.filename
    member_offset, member_size = _member_span(path, info)
    with open(path, "rb") as handle:
        handle.seek(member_offset)
        head = handle.read(min(member_size, 1 << 12))
    if head[:6] != _NPY_MAGIC:
        raise ArtifactError(f"{name}: not an NPY file")
    if head[6] == 1:
        (header_len,) = struct.unpack("<H", head[8:10])
        header_start = 10
    elif head[6] == 2:  # pragma: no cover - we never write v2
        (header_len,) = struct.unpack("<I", head[8:12])
        header_start = 12
    else:
        raise ArtifactError(f"{name}: unsupported NPY version {head[6]}")
    npy_offset = header_start + header_len
    if npy_offset > len(head):
        raise ArtifactError(f"{name}: oversized NPY header")
    npy_header = ast.literal_eval(
        head[header_start:npy_offset].decode("latin1")
    )
    if npy_header.get("fortran_order"):
        raise ArtifactError(f"{name}: fortran order is not supported")
    if npy_header.get("descr") not in ("<i4", "|i4"):
        raise ArtifactError(
            f"{name}: expected little-endian int32 rows, "
            f"got {npy_header.get('descr')!r}"
        )
    if npy_header.get("shape") != shape:
        raise ArtifactError(
            f"{path}: header says {shape} but {name} holds "
            f"{npy_header.get('shape')}"
        )
    data_size = 4 * shape[0] * shape[1]
    if npy_offset + data_size > member_size:
        raise ArtifactError(f"{name}: truncated row data")
    return member_offset + npy_offset, data_size


def _stream_digest(path: str, offset: int, size: int, seed: bytes = b"") -> str:
    """sha256 of a file region, read in chunks (never via a mapping).

    ``seed`` is folded in before the region — the placement fingerprint
    is a digest over a shape prefix plus the row bytes, so passing the
    prefix here lets the loader verify rows *against the fingerprint
    itself* instead of a separate (tamperable) checksum field.
    """
    digest = hashlib.sha256(seed)
    with open(path, "rb") as handle:
        handle.seek(offset)
        remaining = size
        while remaining > 0:
            chunk = handle.read(min(remaining, 1 << 20))
            if not chunk:
                raise ArtifactError(f"{path}: truncated row data")
            digest.update(chunk)
            remaining -= len(chunk)
    return digest.hexdigest()


def _map_rows(path: str, offset: int, size: int):
    """An int32 memoryview over a file region via a copy-on-write mapping.

    ``ACCESS_COPY`` keeps the mapping writable (ctypes ``from_buffer``
    refuses read-only buffers) without ever dirtying the file; pages fault
    in lazily as kernels touch them. The returned view pins the mapping
    alive; the descriptor is closed immediately (mappings outlive fds).
    """
    grain = _mmaplib.ALLOCATIONGRANULARITY
    base = offset - offset % grain
    delta = offset - base
    with open(path, "rb") as handle:
        mapped = _mmaplib.mmap(
            handle.fileno(), delta + size,
            access=_mmaplib.ACCESS_COPY, offset=base,
        )
    return memoryview(mapped)[delta:delta + size].cast("i")


def _validate_view(view, n: int, b: int, r: int, path: str) -> None:
    """Structural validation of an int32 row view without copying it.

    Stricter than the artifact checksum: every row must be strictly
    ascending (which covers both sortedness — a format invariant — and
    replica distinctness) with nodes in ``[0, n)``.
    """
    if _np is not None:
        matrix = _np.frombuffer(view, dtype=_np.int32).reshape(b, r)
        ok = bool((matrix[:, 0] >= 0).all()) and bool((matrix[:, -1] < n).all())
        if ok and r > 1:
            ok = bool((matrix[:, 1:] > matrix[:, :-1]).all())
        if not ok:
            raise ArtifactError(
                f"{path}: rows are not sorted distinct in-range node ids"
            )
        return
    for obj_id in range(b):
        previous = -1
        for node in view[obj_id * r:(obj_id + 1) * r]:
            if not previous < node < n:
                raise ArtifactError(
                    f"{path}: object {obj_id} has invalid replica row "
                    f"{list(view[obj_id * r:(obj_id + 1) * r])}"
                )
            previous = node


def save_npz(placement: Placement, path: str) -> None:
    """Write ``placement`` as a ``.npz`` artifact (versioned, checksummed)."""
    row_data = _row_bytes_le(placement)
    header = {
        "format": PLACEMENT_FORMAT,
        "version": PLACEMENT_VERSION,
        "n": placement.n,
        "b": placement.b,
        "r": placement.r,
        "strategy": placement.strategy,
        "sha256": hashlib.sha256(row_data).hexdigest(),
    }
    with zipfile.ZipFile(path, "w", zipfile.ZIP_STORED) as archive:
        archive.writestr("header.json", json.dumps(header, indent=1) + "\n")
        archive.writestr(
            "rows.npy", _npy_bytes(row_data, placement.b, placement.r)
        )


def load_npz(path: str, validate: bool = False, mmap: bool = False) -> Placement:
    """Read a ``.npz`` placement artifact written by :func:`save_npz`.

    The rows checksum is always verified; ``validate=True`` additionally
    re-runs the full structural validation. The default trusts the
    artifact — the checksum only proves the bytes are the ones that were
    written, not that a well-behaved writer produced them — so this
    function is for artifacts *this program wrote* (the memoized reload
    path). Boundary code loading files of unknown provenance goes
    through :func:`load_placement`, which validates by default.

    ``mmap=True`` memory-maps the row matrix out of the archive instead
    of copying it into the heap: the checksum is still enforced (by
    streaming the file region, so page-cache reads — never the process
    mapping — pay for it) and the placement's row buffer becomes a lazy
    copy-on-write view whose pages fault in as kernels touch them — the
    difference between "engine-ready" RSS scaling with b and scaling with
    the touched working set. Falls back to the eager load when the
    filesystem refuses to map (network mounts, exotic platforms).
    """
    if mmap:
        try:
            return _load_npz_mmap(path, validate=validate)
        except ArtifactError:
            raise  # bad artifacts stay rejected; only mmap refusal falls back
        except (OSError, ValueError) as exc:
            # mmap refused (filesystem, platform, zero-length quirk):
            # the eager path reads the same checked bytes. Degrading
            # silently would hide a real capability loss (lazy page-in at
            # large b), so name the reason once per process.
            reason = f"{type(exc).__name__}: {exc}"
            # Every fallback is counted (capacity loss is per-load), but
            # the warning and the structured event fire once per reason —
            # a sweep over a network mount degrades loudly exactly once.
            obs.count("artifact.mmap_fallback")
            if reason not in _MMAP_FALLBACK_WARNED:
                _MMAP_FALLBACK_WARNED.add(reason)
                obs.record_event(
                    "artifact.mmap_fallback", path=str(path), reason=reason
                )
                warnings.warn(
                    f"{path}: mmap load failed ({reason}); falling back to "
                    "the eager loader — results are identical but rows are "
                    "read up front instead of paged in lazily",
                    RuntimeWarning,
                    stacklevel=2,
                )
    try:
        with zipfile.ZipFile(path) as archive:
            names = set(archive.namelist())
            if "header.json" not in names or "rows.npy" not in names:
                raise ArtifactError(
                    f"{path}: not a placement artifact "
                    f"(members: {sorted(names)})"
                )
            header = json.loads(archive.read("header.json"))
            blob = archive.read("rows.npy")
    except zipfile.BadZipFile as exc:
        raise ArtifactError(f"{path}: not a zip archive: {exc}") from None
    if header.get("format") != PLACEMENT_FORMAT:
        raise ArtifactError(
            f"{path}: unknown artifact format {header.get('format')!r}"
        )
    if int(header.get("version", -1)) > PLACEMENT_VERSION:
        raise ArtifactError(
            f"{path}: artifact version {header.get('version')} is newer "
            f"than supported version {PLACEMENT_VERSION}"
        )
    rows, shape = _parse_npy(blob)
    try:
        n = int(header["n"])
        b, r = int(header["b"]), int(header["r"])
        expected_digest = header["sha256"]
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactError(
            f"{path}: malformed artifact header: {exc!r}"
        ) from None
    if shape != (b, r):
        raise ArtifactError(
            f"{path}: header says ({b}, {r}) but rows.npy holds {shape}"
        )
    row_data = rows.tobytes()
    if sys.byteorder == "big":  # pragma: no cover - no big-endian CI leg
        swapped = array("i", rows)
        swapped.byteswap()
        row_data = swapped.tobytes()
    digest = hashlib.sha256(row_data).hexdigest()
    if digest != expected_digest:
        raise ArtifactError(
            f"{path}: rows checksum mismatch (corrupt artifact)"
        )
    return Placement.from_arrays(
        n,
        rows,
        r=r,
        strategy=str(header.get("strategy", "")),
        validate=validate,
    )


def _load_npz_mmap(path: str, validate: bool) -> Placement:
    """The mmap-backed arm of :func:`load_npz`.

    Header parsing and checksum verification read through the page cache;
    only the row matrix itself is mapped. Raises :class:`ArtifactError`
    for bad artifacts and ``OSError``/``ValueError`` when the platform or
    filesystem refuses the mapping (the caller falls back to eager).
    """
    if sys.byteorder == "big":  # pragma: no cover - no big-endian CI leg
        raise ValueError("mmap rows are little-endian; eager load byteswaps")
    try:
        with zipfile.ZipFile(path) as archive:
            names = set(archive.namelist())
            if "header.json" not in names or "rows.npy" not in names:
                raise ArtifactError(
                    f"{path}: not a placement artifact "
                    f"(members: {sorted(names)})"
                )
            header = json.loads(archive.read("header.json"))
            member = archive.getinfo("rows.npy")
    except zipfile.BadZipFile as exc:
        raise ArtifactError(f"{path}: not a zip archive: {exc}") from None
    if header.get("format") != PLACEMENT_FORMAT:
        raise ArtifactError(
            f"{path}: unknown artifact format {header.get('format')!r}"
        )
    if int(header.get("version", -1)) > PLACEMENT_VERSION:
        raise ArtifactError(
            f"{path}: artifact version {header.get('version')} is newer "
            f"than supported version {PLACEMENT_VERSION}"
        )
    try:
        n = int(header["n"])
        b, r = int(header["b"]), int(header["r"])
        expected_digest = header["sha256"]
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactError(
            f"{path}: malformed artifact header: {exc!r}"
        ) from None
    data_offset, data_size = _npy_data_span(path, member, (b, r))
    if _stream_digest(path, data_offset, data_size) != expected_digest:
        raise ArtifactError(
            f"{path}: rows checksum mismatch (corrupt artifact)"
        )
    view = _map_rows(path, data_offset, data_size)
    if validate:
        _validate_view(view, n, b, r, path)
    return Placement(
        n=n, rows=view, r=r, strategy=str(header.get("strategy", ""))
    )


def save_placement(placement: Placement, path: str) -> None:
    """Write a placement artifact; format chosen by extension.

    ``.npz`` gets the binary format; anything else gets the JSON snapshot
    (:meth:`Placement.to_dict`).
    """
    if path.endswith(".npz"):
        save_npz(placement, path)
        return
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(placement.to_dict(), handle)
        handle.write("\n")


def load_placement(
    path: str, validate: Optional[bool] = None, mmap: bool = False
) -> Placement:
    """Read a placement artifact; format chosen by extension.

    This is the boundary loader (the CLI routes through it), so rows are
    fully validated by default for both formats — a checksum-consistent
    ``.npz`` from an unknown writer can still hold out-of-range or
    duplicate node ids, which would otherwise reach the kernels' C index
    paths unchecked. Internal reload paths that wrote the artifact
    themselves pass ``validate=False`` (or call :func:`load_npz`
    directly) to skip the O(b r) re-check.

    ``mmap=True`` (``.npz`` only; ignored for JSON) backs the rows with a
    lazy copy-on-write mapping — see :func:`load_npz`. Validation still
    runs by default (in place over the view, no copy).
    """
    if path.endswith(".npz"):
        return load_npz(
            path, validate=True if validate is None else validate, mmap=mmap
        )
    with open(path, encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ArtifactError(f"{path}: not valid JSON: {exc}") from None
    try:
        return Placement.from_dict(payload)
    except (KeyError, TypeError) as exc:
        raise ArtifactError(
            f"{path}: missing placement fields: {exc}"
        ) from None
    except PlacementError:
        raise


# -- engine-state snapshots ---------------------------------------------------


class EngineStateArtifact:
    """A loaded engine-state bundle: the placement plus packed states.

    ``states`` maps each threshold ``s`` to the canonical little-endian
    packed bytes a gain kernel's ``seed_empty_state``/``import_state``
    accepts. The placement arrives with its load array, node -> objects
    CSR and fingerprint pre-seeded from the artifact's verified members,
    so no consumer pays the O(b r) cold derivations.
    """

    __slots__ = ("placement", "states", "fingerprint")

    def __init__(
        self, placement: Placement, states: Dict[int, bytes], fingerprint: str
    ) -> None:
        self.placement = placement
        self.states = states
        self.fingerprint = fingerprint


def save_engine_state(
    path: str,
    placement: Placement,
    states: Dict[int, bytes],
    state_version: int = 1,
) -> None:
    """Write an engine-state snapshot (placement + packed kernel states).

    ``states`` maps thresholds ``s`` to the packed bytes a gain kernel's
    ``export_state`` produced; ``state_version`` records the packed wire
    format (``repro.core.kernels.GAIN_STATE_VERSION``) so a future layout
    change degrades to a rebuild instead of misparsing.
    """
    b, n, r = placement.b, placement.n, placement.r
    expected = 4 * (b + n + 1)
    state_members = {}
    checks = {}
    for s in sorted(states):
        if not 1 <= int(s) <= r:
            raise ValueError(f"state threshold s={s} outside [1, {r}]")
        data = bytes(states[s])
        if len(data) != expected:
            raise ValueError(
                f"packed state for s={s} is {len(data)} bytes; "
                f"b={b}, n={n} needs {expected}"
            )
        name = f"state_{int(s)}.npy"
        checks[name] = hashlib.sha256(data).hexdigest()
        state_members[name] = _npy_bytes(data, b + n + 1, 1)
    row_data = _row_bytes_le(placement)
    loads_data = _i32_bytes_le(placement.load_array())
    node_objs = placement.node_csr()[1]
    objs_data = _i32_bytes_le(node_objs)
    checks["loads.npy"] = hashlib.sha256(loads_data).hexdigest()
    checks["node_objs.npy"] = hashlib.sha256(objs_data).hexdigest()
    header = {
        "format": ENGINE_FORMAT,
        "version": ENGINE_VERSION,
        "state_version": int(state_version),
        "n": n,
        "b": b,
        "r": r,
        "strategy": placement.strategy,
        "fingerprint": placement.fingerprint(),
        "s_values": [int(s) for s in sorted(states)],
        "sha256": checks,
    }
    with zipfile.ZipFile(path, "w", zipfile.ZIP_STORED) as archive:
        archive.writestr("header.json", json.dumps(header, indent=1) + "\n")
        archive.writestr("rows.npy", _npy_bytes(row_data, b, r))
        archive.writestr("loads.npy", _npy_bytes(loads_data, n, 1))
        archive.writestr("node_objs.npy", _npy_bytes(objs_data, b * r, 1))
        for name, blob in sorted(state_members.items()):
            archive.writestr(name, blob)


def _engine_header(path: str, archive, state_version: Optional[int]):
    """Parse and cross-check an engine-state header; shared by both arms."""
    names = set(archive.namelist())
    if "header.json" not in names or "rows.npy" not in names:
        raise ArtifactError(
            f"{path}: not an engine-state artifact (members: {sorted(names)})"
        )
    header = json.loads(archive.read("header.json"))
    if header.get("format") != ENGINE_FORMAT:
        raise ArtifactError(
            f"{path}: unknown artifact format {header.get('format')!r}"
        )
    if int(header.get("version", -1)) > ENGINE_VERSION:
        raise ArtifactVersionError(
            f"{path}: engine-state version {header.get('version')} is newer "
            f"than supported version {ENGINE_VERSION}"
        )
    try:
        n, b, r = int(header["n"]), int(header["b"]), int(header["r"])
        fingerprint = str(header["fingerprint"])
        s_values = [int(s) for s in header["s_values"]]
        checks = dict(header["sha256"])
        artifact_state_version = int(header.get("state_version", -1))
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactError(
            f"{path}: malformed artifact header: {exc!r}"
        ) from None
    if state_version is not None and artifact_state_version != int(state_version):
        raise ArtifactVersionError(
            f"{path}: packed-state version {artifact_state_version} does not "
            f"match this process's version {state_version}"
        )
    if n < 1 or b < 1 or r < 1:
        raise ArtifactError(f"{path}: invalid shape n={n}, b={b}, r={r}")
    if len(set(s_values)) != len(s_values) or any(
        not 1 <= s <= r for s in s_values
    ):
        raise ArtifactError(f"{path}: invalid s_values {s_values}")
    required = ["loads.npy", "node_objs.npy"]
    required += [f"state_{s}.npy" for s in s_values]
    for name in required:
        if name not in names:
            raise ArtifactError(f"{path}: missing member {name!r}")
        if name not in checks:
            raise ArtifactError(f"{path}: header lacks a checksum for {name!r}")
    return header, n, b, r, fingerprint, s_values, checks


def _member_i32(archive, name: str, shape, checks, path: str):
    """Read, shape-check and checksum one little-endian int32 member.

    Returns ``(machine_order_array, little_endian_bytes)``.
    """
    values, got = _parse_npy(archive.read(name), name=name)
    if got != shape:
        raise ArtifactError(
            f"{path}: header says {shape} but {name} holds {got}"
        )
    le_data = _i32_bytes_le(values)
    if hashlib.sha256(le_data).hexdigest() != checks[name]:
        raise ArtifactError(
            f"{path}: {name} checksum mismatch (corrupt artifact)"
        )
    return values, le_data


def _validate_objs(view, b: int, path: str) -> None:
    """Range-check CSR object ids without copying the buffer."""
    if _np is not None:
        ids = _np.frombuffer(view, dtype=_np.int32)
        if len(ids) and (int(ids.min()) < 0 or int(ids.max()) >= b):
            raise ArtifactError(
                f"{path}: node_objs holds out-of-range object ids"
            )
        return
    for obj_id in view:  # pragma: no cover - exercised in the no-numpy leg
        if not 0 <= obj_id < b:
            raise ArtifactError(
                f"{path}: node_objs holds out-of-range object ids"
            )


def _assemble_engine_state(
    path: str, n: int, b: int, r: int, header, fingerprint: str,
    loads, rows, node_objs, states: Dict[int, bytes], validate: bool,
) -> EngineStateArtifact:
    """Cross-check member consistency and seed the placement's caches."""
    node_off = array("i", bytes(4 * (n + 1)))
    position = 0
    for node, load in enumerate(loads):
        if load < 0:
            raise ArtifactError(f"{path}: negative load for node {node}")
        node_off[node] = position
        position += load
    node_off[n] = position
    if position != b * r:
        raise ArtifactError(
            f"{path}: loads sum to {position}, rows hold {b * r} replicas"
        )
    if validate:
        _validate_view(rows, n, b, r, path)
        _validate_objs(node_objs, b, path)
    placement = Placement(
        n=n, rows=rows, r=r, strategy=str(header.get("strategy", ""))
    )
    placement.__dict__["_load"] = array("i", loads)
    placement.__dict__["_node_csr"] = (node_off, node_objs)
    if sys.byteorder == "little":
        # The stored fingerprint digests little-endian row bytes, which
        # equal this host's in-memory buffer — safe to seed the cache.
        # (A big-endian host recomputes it lazily from machine bytes.)
        placement.__dict__["_fingerprint"] = fingerprint
    return EngineStateArtifact(placement, states, fingerprint)


def load_engine_state(
    path: str,
    mmap: bool = True,
    validate: bool = False,
    state_version: Optional[int] = None,
) -> EngineStateArtifact:
    """Read an engine-state snapshot written by :func:`save_engine_state`.

    The rows member is verified against the header *fingerprint* (the
    digest is recomputed over the file region with the placement's shape
    prefix as the seed) and every other member against its checksum;
    ``validate=True`` additionally re-runs structural validation of rows
    and CSR ids for artifacts of unknown provenance. ``state_version``
    pins the packed wire format; a mismatch (or a newer artifact
    version) raises :class:`ArtifactVersionError`, which hydration
    callers treat as "rebuild cold", while corruption stays a hard
    :class:`ArtifactError`.

    ``mmap=True`` maps the rows and CSR payloads copy-on-write (the
    checksums stream through the page cache first) and falls back to the
    eager loader — once-per-reason warning, ``artifact.mmap_fallback``
    count — when the filesystem refuses to map.
    """
    if mmap:
        try:
            return _load_engine_mmap(path, validate, state_version)
        except ArtifactError:
            raise  # bad artifacts stay rejected; only mmap refusal falls back
        except (OSError, ValueError) as exc:
            reason = f"{type(exc).__name__}: {exc}"
            obs.count("artifact.mmap_fallback")
            if reason not in _MMAP_FALLBACK_WARNED:
                _MMAP_FALLBACK_WARNED.add(reason)
                obs.record_event(
                    "artifact.mmap_fallback", path=str(path), reason=reason
                )
                warnings.warn(
                    f"{path}: mmap load failed ({reason}); falling back to "
                    "the eager loader — results are identical but state is "
                    "read up front instead of paged in lazily",
                    RuntimeWarning,
                    stacklevel=2,
                )
    return _load_engine_eager(path, validate, state_version)


def _load_engine_mmap(
    path: str, validate: bool, state_version: Optional[int]
) -> EngineStateArtifact:
    """The mmap-backed arm of :func:`load_engine_state`."""
    if sys.byteorder == "big":  # pragma: no cover - no big-endian CI leg
        raise ValueError("mmap members are little-endian; eager load byteswaps")
    try:
        with zipfile.ZipFile(path) as archive:
            header, n, b, r, fingerprint, s_values, checks = _engine_header(
                path, archive, state_version
            )
            rows_info = archive.getinfo("rows.npy")
            objs_info = archive.getinfo("node_objs.npy")
            loads, _ = _member_i32(archive, "loads.npy", (n, 1), checks, path)
            states = {}
            for s in s_values:
                _, le_data = _member_i32(
                    archive, f"state_{s}.npy", (b + n + 1, 1), checks, path
                )
                states[s] = le_data
    except zipfile.BadZipFile as exc:
        raise ArtifactError(f"{path}: not a zip archive: {exc}") from None
    rows_off, rows_size = _npy_data_span(path, rows_info, (b, r))
    seed = f"pla1:{n}:{b}:{r}|".encode()
    if _stream_digest(path, rows_off, rows_size, seed=seed) != fingerprint:
        raise ArtifactError(
            f"{path}: rows fingerprint mismatch (corrupt artifact)"
        )
    objs_off, objs_size = _npy_data_span(path, objs_info, (b * r, 1))
    if _stream_digest(path, objs_off, objs_size) != checks["node_objs.npy"]:
        raise ArtifactError(
            f"{path}: node_objs.npy checksum mismatch (corrupt artifact)"
        )
    rows_view = _map_rows(path, rows_off, rows_size)
    objs_view = _map_rows(path, objs_off, objs_size)
    return _assemble_engine_state(
        path, n, b, r, header, fingerprint, loads, rows_view, objs_view,
        states, validate,
    )


def _load_engine_eager(
    path: str, validate: bool, state_version: Optional[int]
) -> EngineStateArtifact:
    """The dependency-free eager arm of :func:`load_engine_state`."""
    try:
        with zipfile.ZipFile(path) as archive:
            header, n, b, r, fingerprint, s_values, checks = _engine_header(
                path, archive, state_version
            )
            rows, shape = _parse_npy(archive.read("rows.npy"))
            if shape != (b, r):
                raise ArtifactError(
                    f"{path}: header says ({b}, {r}) but rows.npy holds "
                    f"{shape}"
                )
            node_objs, _ = _member_i32(
                archive, "node_objs.npy", (b * r, 1), checks, path
            )
            loads, _ = _member_i32(archive, "loads.npy", (n, 1), checks, path)
            states = {}
            for s in s_values:
                _, le_data = _member_i32(
                    archive, f"state_{s}.npy", (b + n + 1, 1), checks, path
                )
                states[s] = le_data
    except zipfile.BadZipFile as exc:
        raise ArtifactError(f"{path}: not a zip archive: {exc}") from None
    digest = hashlib.sha256(f"pla1:{n}:{b}:{r}|".encode())
    digest.update(_i32_bytes_le(rows))
    if digest.hexdigest() != fingerprint:
        raise ArtifactError(
            f"{path}: rows fingerprint mismatch (corrupt artifact)"
        )
    return _assemble_engine_state(
        path, n, b, r, header, fingerprint, loads, rows, node_objs,
        states, validate,
    )
