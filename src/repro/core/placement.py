"""The ``Placement`` value type: objects mapped to replica node sets.

A placement ``pi : O -> 2^N`` (paper Sec. III) assigns each object a set of
``r`` distinct nodes. This module is deliberately strategy-agnostic: Simple,
Combo and Random builders all produce the same type, and the adversary,
availability evaluation and cluster simulator consume only this type.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple


class PlacementError(ValueError):
    """Raised when replica sets violate placement rules."""


@dataclass(frozen=True)
class Placement:
    """An immutable placement of ``b`` objects on ``n`` nodes.

    ``replica_sets[i]`` is the node set hosting object ``i``. Every replica
    set has the same size ``r`` and every node index lies in ``[0, n)``.
    """

    n: int
    replica_sets: Tuple[FrozenSet[int], ...]
    strategy: str = ""

    @staticmethod
    def from_replica_sets(
        n: int, replica_sets: Iterable[Iterable[int]], strategy: str = ""
    ) -> "Placement":
        frozen: List[FrozenSet[int]] = []
        r = None
        for obj_id, nodes in enumerate(replica_sets):
            node_list = list(nodes)
            node_set = frozenset(node_list)
            if len(node_set) != len(node_list):
                raise PlacementError(
                    f"object {obj_id} places multiple replicas on one node: "
                    f"{sorted(node_list)}"
                )
            if r is None:
                r = len(node_set)
                if r == 0:
                    raise PlacementError("objects need at least one replica")
            if len(node_set) != r:
                raise PlacementError(
                    f"object {obj_id} has {len(node_set)} replicas, expected {r}"
                )
            for node in node_set:
                if not 0 <= node < n:
                    raise PlacementError(
                        f"object {obj_id} places a replica on node {node}, "
                        f"outside [0, {n})"
                    )
            frozen.append(node_set)
        if not frozen:
            raise PlacementError("a placement needs at least one object")
        return Placement(n=n, replica_sets=tuple(frozen), strategy=strategy)

    @property
    def b(self) -> int:
        """Number of objects."""
        return len(self.replica_sets)

    @property
    def r(self) -> int:
        """Replicas per object."""
        return len(self.replica_sets[0])

    def _cached(self, name: str, build):
        # The dataclass is frozen but still carries a __dict__, so derived
        # structures are memoized via object.__setattr__: every adversary
        # kernel and load query reuses one computation per placement.
        value = self.__dict__.get(name)
        if value is None:
            value = build()
            object.__setattr__(self, name, value)
        return value

    def load_profile(self) -> Tuple[int, ...]:
        """Replicas hosted per node, computed once per placement."""

        def build() -> Tuple[int, ...]:
            loads = [0] * self.n
            for nodes in self.replica_sets:
                for node in nodes:
                    loads[node] += 1
            return tuple(loads)

        return self._cached("_load_profile", build)

    def loads(self) -> List[int]:
        """Replicas hosted per node (the load-balance profile)."""
        return list(self.load_profile())

    def max_load(self) -> int:
        return max(self.load_profile())

    def objects_on(self, node: int) -> List[int]:
        """Ids of objects with a replica on ``node``."""
        if not 0 <= node < self.n:
            raise PlacementError(f"node {node} outside [0, {self.n})")
        return list(self.node_incidence()[node])

    def node_incidence(self) -> Tuple[Tuple[int, ...], ...]:
        """Inverse map, computed once per placement: node -> hosted objects.

        The cached tuples are shared between every damage kernel built on
        this placement; use :meth:`node_to_objects` for mutable copies.
        """

        def build() -> Tuple[Tuple[int, ...], ...]:
            table: List[List[int]] = [[] for _ in range(self.n)]
            for obj_id, nodes in enumerate(self.replica_sets):
                for node in nodes:
                    table[node].append(obj_id)
            return tuple(tuple(row) for row in table)

        return self._cached("_node_incidence", build)

    def node_to_objects(self) -> List[List[int]]:
        """Inverse map: for each node, the objects it hosts."""
        return [list(row) for row in self.node_incidence()]

    def fingerprint(self) -> str:
        """A structural digest: equal iff (n, replica sets) are equal.

        Computed once per placement. The batch engine keys its warm
        attack-engine cache and result memo on this, so re-snapshotting an
        unchanged cluster (or reloading the same placement JSON) reuses
        incidence structures and prior attack results. The strategy label
        is deliberately excluded — attacks depend only on structure.
        """

        def build() -> str:
            digest = hashlib.sha256()
            digest.update(f"{self.n}:{len(self.replica_sets)}".encode())
            for nodes in self.replica_sets:
                digest.update(b"|")
                digest.update(",".join(map(str, sorted(nodes))).encode())
            return digest.hexdigest()

        return self._cached("_fingerprint", build)

    def failed_objects(self, failed_nodes: Iterable[int], s: int) -> List[int]:
        """Objects with at least ``s`` replicas on ``failed_nodes``."""
        failed = frozenset(failed_nodes)
        return [
            obj_id
            for obj_id, nodes in enumerate(self.replica_sets)
            if len(nodes & failed) >= s
        ]

    def surviving_objects(self, failed_nodes: Iterable[int], s: int) -> List[int]:
        """Objects with fewer than ``s`` replicas on ``failed_nodes``."""
        failed = frozenset(failed_nodes)
        return [
            obj_id
            for obj_id, nodes in enumerate(self.replica_sets)
            if len(nodes & failed) < s
        ]

    def restricted_to(self, object_ids: Sequence[int]) -> "Placement":
        """The sub-placement of the given objects (ids are re-numbered)."""
        if not object_ids:
            raise PlacementError("cannot restrict to zero objects")
        return Placement(
            n=self.n,
            replica_sets=tuple(self.replica_sets[i] for i in object_ids),
            strategy=self.strategy,
        )

    def concatenated_with(self, other: "Placement") -> "Placement":
        """Both object populations on the same node set."""
        if other.n != self.n:
            raise PlacementError(
                f"cannot concatenate placements on {self.n} and {other.n} nodes"
            )
        if other.r != self.r:
            raise PlacementError(
                f"cannot concatenate placements with r={self.r} and r={other.r}"
            )
        label = self.strategy if self.strategy == other.strategy else (
            f"{self.strategy}+{other.strategy}"
        )
        return Placement(
            n=self.n,
            replica_sets=self.replica_sets + other.replica_sets,
            strategy=label,
        )

    def to_dict(self) -> Dict[str, object]:
        """A JSON-friendly snapshot (used by the cluster simulator's logs)."""
        return {
            "n": self.n,
            "strategy": self.strategy,
            "replica_sets": [sorted(nodes) for nodes in self.replica_sets],
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "Placement":
        return Placement.from_replica_sets(
            int(payload["n"]),
            payload["replica_sets"],  # type: ignore[arg-type]
            strategy=str(payload.get("strategy", "")),
        )

    def __repr__(self) -> str:
        label = f", strategy={self.strategy!r}" if self.strategy else ""
        return f"Placement(n={self.n}, b={self.b}, r={self.r}{label})"
