"""The ``Placement`` value type: objects mapped to replica node sets.

A placement ``pi : O -> 2^N`` (paper Sec. III) assigns each object a set of
``r`` distinct nodes. This module is deliberately strategy-agnostic: Simple,
Combo and Random builders all produce the same type, and the adversary,
availability evaluation and cluster simulator consume only this type.

Storage is *array-native*: the canonical representation is one flat,
row-major ``array('i')`` of shape ``(b, r)`` with every row sorted
ascending — 4 bytes per replica instead of a Python ``frozenset`` per
object (~200 bytes each plus per-element boxes). Everything downstream
derives from that buffer:

* ``replica_matrix()`` — a zero-copy numpy ``(b, r)`` int32 view (when
  numpy is importable);
* ``node_csr()`` — the cached node -> objects incidence in CSR form
  (``node_off``/``node_objs`` int32 arrays), shared zero-copy with the
  damage kernels in :mod:`repro.core.kernels`;
* ``load_array()`` — per-node replica counts as an int32 array;
* ``fingerprint()`` — one ``sha256.update`` over the raw buffer.

The historical frozenset-facing API (``replica_sets``, ``node_incidence``)
remains as lazily built *views*, so existing call sites keep working; new
code and the hot engines consume the arrays. Builders use
:meth:`Placement.from_arrays` (with ``validate=False`` on trusted paths)
so a million-object placement never materializes a million sets.
"""

from __future__ import annotations

import hashlib
from array import array
from itertools import chain
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

try:  # optional accelerator for bulk validation / CSR construction
    import numpy as _np
except ImportError:  # pragma: no cover - exercised in the no-numpy CI leg
    _np = None

# The native kernels and the artifact format assume array('i') is int32,
# which holds on every supported platform (CPython on 32/64-bit Linux,
# macOS, Windows).
assert array("i").itemsize == 4, "array('i') must be 32-bit"

#: Entries per chunk of the streaming CSR counting sort.
_CSR_CHUNK = 1 << 20


def _as_int_array(buffer) -> array:
    """``buffer`` as an ``array('i')`` (identity for arrays, copy otherwise).

    Placements loaded with ``mmap=True`` carry an int32 ``memoryview`` as
    their row buffer; operations that need real array semantics
    (concatenation, mutation of a copy) normalize through this helper.
    """
    return buffer if isinstance(buffer, array) else array("i", buffer)


class PlacementError(ValueError):
    """Raised when replica sets violate placement rules."""


def _np_rows(flat: array, b: int, r: int):
    """Zero-copy numpy ``(b, r)`` int32 view over the flat buffer."""
    return _np.frombuffer(flat, dtype=_np.int32).reshape(b, r)


class Placement:
    """An immutable placement of ``b`` objects on ``n`` nodes.

    Object ``i``'s replicas live on the sorted node row
    ``rows[i*r : (i+1)*r]`` of the backing buffer; ``replica_sets[i]`` is
    the equivalent frozenset view. Instances are immutable by convention:
    the backing buffer must never be written after construction (derived
    caches, kernel bindings and fingerprints all assume it).
    """

    def __init__(
        self,
        n: int,
        replica_sets: Optional[Iterable[FrozenSet[int]]] = None,
        strategy: str = "",
        rows: Optional[array] = None,
        r: Optional[int] = None,
    ) -> None:
        """Non-validating constructor (the historical dataclass behaviour).

        Exactly one of ``replica_sets`` (iterable of node sets, trusted)
        or ``rows`` (flat row-sorted ``array('i')`` plus ``r``, trusted —
        ownership transfers to the placement) must be provided. External
        callers should prefer :meth:`from_replica_sets` /
        :meth:`from_arrays`, which validate.
        """
        self.n = n
        self.strategy = strategy
        if rows is not None:
            if r is None or r <= 0:
                raise PlacementError("rows-backed construction needs r >= 1")
            if len(rows) % r:
                raise PlacementError(
                    f"flat rows length {len(rows)} is not a multiple of r={r}"
                )
            self._rows: Optional[array] = rows
            self._b = len(rows) // r
            self._r = r
            self._sets: Optional[Tuple[FrozenSet[int], ...]] = None
        elif replica_sets is not None:
            sets = tuple(replica_sets)
            if not sets:
                raise PlacementError("a placement needs at least one object")
            self._rows = None
            self._sets = sets
            self._b = len(sets)
            self._r = len(sets[0])
        else:
            raise PlacementError("Placement needs replica_sets or rows")
        if self._b == 0:
            raise PlacementError("a placement needs at least one object")

    # -- constructors ------------------------------------------------------

    @staticmethod
    def from_replica_sets(
        n: int, replica_sets: Iterable[Iterable[int]], strategy: str = ""
    ) -> "Placement":
        """Validate per-object node iterables into a placement."""
        flat = array("i")
        r = None
        obj_id = -1
        for obj_id, nodes in enumerate(replica_sets):
            node_list = sorted(nodes)
            if r is None:
                r = len(node_list)
                if r == 0:
                    raise PlacementError("objects need at least one replica")
            if len(node_list) != r:
                raise PlacementError(
                    f"object {obj_id} has {len(node_list)} replicas, expected {r}"
                )
            if node_list[0] < 0 or node_list[-1] >= n:
                bad = node_list[0] if node_list[0] < 0 else node_list[-1]
                raise PlacementError(
                    f"object {obj_id} places a replica on node {bad}, "
                    f"outside [0, {n})"
                )
            for i in range(1, r):
                if node_list[i] == node_list[i - 1]:
                    raise PlacementError(
                        f"object {obj_id} places multiple replicas on one "
                        f"node: {node_list}"
                    )
            flat.extend(node_list)
        if obj_id < 0:
            raise PlacementError("a placement needs at least one object")
        return Placement(n=n, rows=flat, r=r, strategy=strategy)

    @staticmethod
    def from_arrays(
        n: int,
        rows,
        r: Optional[int] = None,
        strategy: str = "",
        validate: bool = True,
    ) -> "Placement":
        """Array-native constructor: the builders' and loaders' fast path.

        ``rows`` may be a numpy ``(b, r)`` integer matrix, a flat
        ``array('i')`` (requires ``r``), or a sequence of node sequences.
        With ``validate=True`` rows are copied/normalized (sorted
        ascending) and checked for distinct in-range nodes — O(b r) bulk
        work, vectorized under numpy. With ``validate=False`` the input is
        **trusted**: rows must already be row-sorted, duplicate-free and
        in ``[0, n)``, and flat-array input is adopted without copying —
        the path used by internal builders and checksum-verified artifact
        reloads, where re-validation would be pure overhead.
        """
        if _np is not None and isinstance(rows, _np.ndarray):
            if rows.ndim != 2:
                raise PlacementError(
                    f"rows matrix must be 2-D (b, r), got shape {rows.shape}"
                )
            width = int(rows.shape[1])
            if r is not None and r != width:
                raise PlacementError(f"r={r} does not match matrix width {width}")
            matrix = _np.ascontiguousarray(rows, dtype=_np.int32)
            if validate:
                if matrix is rows:
                    matrix = matrix.copy()
                matrix.sort(axis=1)
            flat = array("i")
            flat.frombytes(matrix.tobytes())
            placement = Placement(n=n, rows=flat, r=width, strategy=strategy)
        elif isinstance(rows, array) and rows.typecode == "i":
            if r is None:
                raise PlacementError("flat array rows need an explicit r")
            flat = array("i", rows) if validate else rows
            placement = Placement(n=n, rows=flat, r=r, strategy=strategy)
            if validate:
                placement._sort_rows()
        else:
            row_list = rows if isinstance(rows, (list, tuple)) else list(rows)
            if validate:
                return Placement.from_replica_sets(n, row_list, strategy=strategy)
            if not row_list:
                raise PlacementError("a placement needs at least one object")
            width = len(row_list[0])
            flat = array("i", chain.from_iterable(row_list))
            placement = Placement(n=n, rows=flat, r=width, strategy=strategy)
        if validate:
            placement._validate_rows()
        return placement

    def _sort_rows(self) -> None:
        """Sort each row of the (owned, pre-publication) buffer ascending."""
        flat, b, r = self._rows, self._b, self._r
        if r == 1:
            return
        if _np is not None:
            _np_rows(flat, b, r).sort(axis=1)
            return
        for i in range(0, b * r, r):
            row = sorted(flat[i:i + r])
            flat[i:i + r] = array("i", row)

    def _validate_rows(self) -> None:
        """Check distinct, in-range nodes per (already sorted) row."""
        flat, b, r, n = self._rows, self._b, self._r, self.n
        if _np is not None:
            matrix = _np_rows(flat, b, r)
            low = matrix[:, 0] < 0
            high = matrix[:, -1] >= n
            if low.any() or high.any():
                obj_id = int(_np.argmax(low | high))
                bad = int(matrix[obj_id, 0] if low[obj_id] else matrix[obj_id, -1])
                raise PlacementError(
                    f"object {obj_id} places a replica on node {bad}, "
                    f"outside [0, {n})"
                )
            if r > 1:
                dup = (matrix[:, 1:] == matrix[:, :-1]).any(axis=1)
                if dup.any():
                    obj_id = int(_np.argmax(dup))
                    raise PlacementError(
                        f"object {obj_id} places multiple replicas on one "
                        f"node: {matrix[obj_id].tolist()}"
                    )
            return
        for obj_id in range(b):
            base = obj_id * r
            previous = -1
            for offset in range(r):
                node = flat[base + offset]
                if not 0 <= node < n:
                    raise PlacementError(
                        f"object {obj_id} places a replica on node {node}, "
                        f"outside [0, {n})"
                    )
                if node == previous:
                    raise PlacementError(
                        f"object {obj_id} places multiple replicas on one "
                        f"node: {list(flat[base:base + r])}"
                    )
                previous = node

    # -- shape -------------------------------------------------------------

    @property
    def b(self) -> int:
        """Number of objects."""
        return self._b

    @property
    def r(self) -> int:
        """Replicas per object."""
        return self._r

    # -- array accessors ----------------------------------------------------

    def replica_array(self) -> array:
        """The canonical flat ``(b * r,)`` int32 buffer (row-sorted).

        Treat as read-only: kernels export zero-copy pointers into it.
        """
        if self._rows is None:
            flat = array("i")
            for nodes in self._sets:
                flat.extend(sorted(nodes))
            self._rows = flat
        return self._rows

    def replica_matrix(self):
        """Zero-copy numpy ``(b, r)`` int32 view (requires numpy)."""
        if _np is None:  # pragma: no cover - numpy-less guard
            raise RuntimeError("replica_matrix requires numpy")
        return _np_rows(self.replica_array(), self._b, self._r)

    def _cached(self, name: str, build):
        # Derived structures are memoized on the instance: every adversary
        # kernel and load query reuses one computation per placement.
        value = self.__dict__.get(name)
        if value is None:
            value = build()
            self.__dict__[name] = value
        return value

    def load_array(self) -> array:
        """Replicas hosted per node as an int32 array, computed once."""

        def build() -> array:
            flat = self.replica_array()
            if _np is not None:
                counts = _np.bincount(
                    _np.frombuffer(flat, dtype=_np.int32), minlength=self.n
                ).astype(_np.int32)
                loads = array("i")
                loads.frombytes(counts.tobytes())
                return loads
            loads = array("i", bytes(4 * self.n))
            for node in flat:
                loads[node] += 1
            return loads

        return self._cached("_load", build)

    def load_profile(self) -> Tuple[int, ...]:
        """Replicas hosted per node, as a tuple (compat view)."""
        return self._cached("_load_profile", lambda: tuple(self.load_array()))

    def loads(self) -> List[int]:
        """Replicas hosted per node (the load-balance profile)."""
        return list(self.load_array())

    def max_load(self) -> int:
        return max(self.load_array())

    def node_csr(self) -> Tuple[array, array]:
        """Node -> objects incidence as ``(node_off, node_objs)`` CSR arrays.

        ``node_objs[node_off[v] : node_off[v + 1]]`` lists the objects
        hosted on node ``v`` in ascending object-id order (``node_off``
        has ``n + 1`` entries). Built once per placement with a streaming
        counting sort and shared zero-copy with every damage kernel bound
        to this placement.
        """

        def build() -> Tuple[array, array]:
            flat = self.replica_array()
            n, r = self.n, self._r
            if _np is not None:
                # Streaming chunked counting sort. The historical one-shot
                # ``argsort(cols)`` materializes an int64 permutation of
                # all b*r entries (240 MB at b=1e7, r=3) before a thing is
                # written; chunking bounds temp memory at O(chunk) while
                # producing the identical result: per-node cursors carry
                # the global write positions across chunks, and the
                # *stable* per-chunk argsort keeps flat order — ascending
                # object id — within each node's run.
                cols = _np.frombuffer(flat, dtype=_np.int32)
                counts = _np.bincount(cols, minlength=n)
                node_off_np = _np.zeros(n + 1, dtype=_np.int32)
                _np.cumsum(counts, out=node_off_np[1:], dtype=_np.int32)
                total = len(cols)
                node_objs = array("i", bytes(4 * total))
                out = _np.frombuffer(node_objs, dtype=_np.int32)
                cursor = node_off_np[:n].astype(_np.int64)
                chunk = _CSR_CHUNK
                for lo in range(0, total, chunk):
                    sub = cols[lo:lo + chunk]
                    order = _np.argsort(sub, kind="stable")
                    sorted_nodes = sub[order]
                    seg_counts = _np.bincount(sub, minlength=n)
                    seg_off = _np.cumsum(seg_counts) - seg_counts
                    dest = cursor[sorted_nodes] + (
                        _np.arange(len(sub)) - seg_off[sorted_nodes]
                    )
                    out[dest] = ((order + lo) // r).astype(_np.int32)
                    cursor += seg_counts
                node_off = array("i")
                node_off.frombytes(node_off_np.tobytes())
                return node_off, node_objs
            loads = self.load_array()
            node_off = array("i", bytes(4 * (n + 1)))
            total = 0
            for node in range(n):
                node_off[node] = total
                total += loads[node]
            node_off[n] = total
            cursor = list(node_off[:n])
            node_objs = array("i", bytes(4 * total))
            for index, node in enumerate(flat):
                node_objs[cursor[node]] = index // r
                cursor[node] += 1
            return node_off, node_objs

        return self._cached("_node_csr", build)

    # -- frozenset-facing views ---------------------------------------------

    @property
    def replica_sets(self) -> Tuple[FrozenSet[int], ...]:
        """``replica_sets[i]`` is the node set hosting object ``i`` (view)."""
        if self._sets is None:
            flat, r = self._rows, self._r
            self._sets = tuple(
                frozenset(flat[i:i + r]) for i in range(0, self._b * r, r)
            )
        return self._sets

    def node_incidence(self) -> Tuple[Tuple[int, ...], ...]:
        """Inverse map, computed once per placement: node -> hosted objects.

        A tuple view over :meth:`node_csr`; the cached tuples are shared
        between every damage kernel built on this placement. Use
        :meth:`node_to_objects` for mutable copies.
        """

        def build() -> Tuple[Tuple[int, ...], ...]:
            node_off, node_objs = self.node_csr()
            return tuple(
                tuple(node_objs[node_off[v]:node_off[v + 1]])
                for v in range(self.n)
            )

        return self._cached("_node_incidence", build)

    def node_to_objects(self) -> List[List[int]]:
        """Inverse map: for each node, the objects it hosts."""
        node_off, node_objs = self.node_csr()
        return [
            list(node_objs[node_off[v]:node_off[v + 1]]) for v in range(self.n)
        ]

    def objects_on(self, node: int) -> List[int]:
        """Ids of objects with a replica on ``node``."""
        if not 0 <= node < self.n:
            raise PlacementError(f"node {node} outside [0, {self.n})")
        node_off, node_objs = self.node_csr()
        return list(node_objs[node_off[node]:node_off[node + 1]])

    # -- digests -------------------------------------------------------------

    def fingerprint(self) -> str:
        """A structural digest: equal iff ``(n, rows)`` are equal.

        One ``sha256.update`` over the raw int32 buffer (plus a shape
        header) instead of ``b`` per-object string joins. The batch engine
        keys its warm attack-engine cache and result memo on this, so
        re-snapshotting an unchanged cluster (or reloading the same
        placement artifact) reuses incidence structures and prior attack
        results. The strategy label is deliberately excluded — attacks
        depend only on structure.
        """

        def build() -> str:
            digest = hashlib.sha256()
            digest.update(f"pla1:{self.n}:{self._b}:{self._r}|".encode())
            digest.update(memoryview(self.replica_array()))
            return digest.hexdigest()

        return self._cached("_fingerprint", build)

    # -- failure queries -----------------------------------------------------

    def _hit_counts(self, failed_nodes: Iterable[int]):
        """Per-object failed-replica counts via the cached incidence."""
        failed = {
            node for node in failed_nodes if 0 <= node < self.n
        }
        if _np is not None:
            mask = _np.zeros(self.n, dtype=bool)
            if failed:
                mask[list(failed)] = True
            return mask[self.replica_matrix()].sum(axis=1)
        counts = [0] * self._b
        node_off, node_objs = self.node_csr()
        for node in failed:
            for obj_id in node_objs[node_off[node]:node_off[node + 1]]:
                counts[obj_id] += 1
        return counts

    def failed_objects(self, failed_nodes: Iterable[int], s: int) -> List[int]:
        """Objects with at least ``s`` replicas on ``failed_nodes``."""
        counts = self._hit_counts(failed_nodes)
        if _np is not None:
            return _np.nonzero(counts >= s)[0].tolist()
        return [obj_id for obj_id, c in enumerate(counts) if c >= s]

    def surviving_objects(self, failed_nodes: Iterable[int], s: int) -> List[int]:
        """Objects with fewer than ``s`` replicas on ``failed_nodes``."""
        counts = self._hit_counts(failed_nodes)
        if _np is not None:
            return _np.nonzero(counts < s)[0].tolist()
        return [obj_id for obj_id, c in enumerate(counts) if c < s]

    # -- combinators ---------------------------------------------------------

    def restricted_to(self, object_ids: Sequence[int]) -> "Placement":
        """The sub-placement of the given objects (ids are re-numbered)."""
        ids = list(object_ids)
        if not ids:
            raise PlacementError("cannot restrict to zero objects")
        flat, b, r = self.replica_array(), self._b, self._r
        if _np is not None:
            sub = _np_rows(flat, b, r)[ids]
            return Placement.from_arrays(
                self.n, sub, strategy=self.strategy, validate=False
            )
        out = array("i")
        for i in ids:
            if i < 0:
                i += b
            if not 0 <= i < b:
                raise IndexError(f"object id {i} outside [0, {b})")
            out.extend(flat[i * r:(i + 1) * r])
        return Placement(n=self.n, rows=out, r=r, strategy=self.strategy)

    def concatenated_with(self, other: "Placement") -> "Placement":
        """Both object populations on the same node set."""
        if other.n != self.n:
            raise PlacementError(
                f"cannot concatenate placements on {self.n} and {other.n} nodes"
            )
        if other.r != self.r:
            raise PlacementError(
                f"cannot concatenate placements with r={self.r} and r={other.r}"
            )
        label = self.strategy if self.strategy == other.strategy else (
            f"{self.strategy}+{other.strategy}"
        )
        return Placement(
            n=self.n,
            rows=_as_int_array(self.replica_array())
            + _as_int_array(other.replica_array()),
            r=self._r,
            strategy=label,
        )

    def relabeled(self, strategy: str) -> "Placement":
        """Same structure under a new strategy label (buffer shared)."""
        return Placement(
            n=self.n, rows=self.replica_array(), r=self._r, strategy=strategy
        )

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """A JSON-friendly snapshot (used by the cluster simulator's logs)."""
        flat, r = self.replica_array(), self._r
        return {
            "n": self.n,
            "strategy": self.strategy,
            "replica_sets": [
                list(flat[i:i + r]) for i in range(0, self._b * r, r)
            ],
        }

    @staticmethod
    def from_dict(payload: Dict[str, object], validate: bool = True) -> "Placement":
        return Placement.from_arrays(
            int(payload["n"]),
            payload["replica_sets"],  # type: ignore[arg-type]
            strategy=str(payload.get("strategy", "")),
            validate=validate,
        )

    # -- value semantics -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Placement):
            return NotImplemented
        return (
            self.n == other.n
            and self.strategy == other.strategy
            and self._b == other._b
            and self._r == other._r
            and self.replica_array() == other.replica_array()
        )

    def __hash__(self) -> int:
        return hash((self.n, self.strategy, self.fingerprint()))

    def __getstate__(self):
        # Pickle the compact buffer, never the frozenset views (workers
        # rebuild views lazily, and most never need them).
        return {
            "n": self.n,
            "strategy": self.strategy,
            "r": self._r,
            "rows": self.replica_array().tobytes(),
        }

    def __setstate__(self, state) -> None:
        self.n = state["n"]
        self.strategy = state["strategy"]
        flat = array("i")
        flat.frombytes(state["rows"])
        self._rows = flat
        self._r = state["r"]
        self._b = len(flat) // state["r"]
        self._sets = None

    def __repr__(self) -> str:
        label = f", strategy={self.strategy!r}" if self.strategy else ""
        return f"Placement(n={self.n}, b={self.b}, r={self.r}{label})"
