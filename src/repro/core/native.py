"""Optional C acceleration for the gain-table damage kernel.

The incremental gain engine (:class:`repro.core.kernels.GainKernel`) spends
its time in three tiny loops: fold one node's objects into the hit-count
vector, update the marginal-gain table for objects crossing the ``s - 1``
or ``s`` boundary, and argmax the gain table. Those loops are pure integer
index chasing — exactly the shape CPython is worst at and a C compiler is
best at — so this module compiles them with the system ``cc`` at first use
and drives them through :mod:`ctypes` over ``array('i')`` buffers.

This is an *accelerator*, not a dependency: no third-party packages, no
build step at install time. If no working compiler is found (or
``REPRO_GAIN_BACKING`` pins another backing) the gain kernel silently
falls back to its numpy or bitset backing with identical results — the
property tests in ``tests/core/test_kernels.py`` pin all backings to the
same bit-for-bit behaviour.

Compiled artifacts are cached under a per-user directory (override with
``REPRO_NATIVE_CACHE``), keyed by a hash of the embedded C source, so the
compiler runs once per source revision per machine. The compiler is
``REPRO_CC`` (or ``CC``) when set, else the first working of cc/gcc/clang;
optimization tries ``-O3`` and falls back to ``-O2``. :func:`compile_info`
reports what actually built (or was cached for) the loaded library.

**Multicore.** The library also carries a persistent pthread worker pool
(:func:`current_pool`, sized by ``REPRO_NATIVE_THREADS`` — default
``os.cpu_count()`` — or :func:`configure_threads`). The ``*_mt`` entry
points partition their work across the pool with per-thread gain-table
partials merged in index order, so results are **bit-for-bit identical to
the serial path at any thread count**; below fixed work thresholds they
delegate to the serial loops, so tiny instances never pay dispatch
overhead. Every foreign call goes through :class:`ctypes.CDLL`, which
releases the GIL for the call's duration — kernel threads therefore
*compose with* the process fan-out of :mod:`repro.core.batch` and
:mod:`repro.exp.runner` (which split the thread budget across workers)
instead of competing against the interpreter lock. Worker threads do not
survive ``fork``; an :func:`os.register_at_fork` hook drops the stale pool
in children, which lazily rebuild one on first use.

**Lanes.** On top of the fine-grained ``_mt`` sweeps the library offers
*replicated gain-state lanes* (``gk_lane_alloc`` / ``gk_polish_chains_mt``):
each lane holds a private copy of the packed gain state and runs whole
local-search polish chains to convergence — coarse tasks over the same
pool, one foreign call for an entire restart schedule. Inside a lane the
kernels stay serial (the chains are the parallelism, and ``gk_pool_run``
is not reentrant), so lanes never nest pool dispatch; results land per
chain index and are bit-identical to the serial chain loop at any lane
count. The driver is :class:`repro.core.adversary.LocalSearchAdversary`,
budgeted by ``REPRO_ATTACK_LANES``.
"""

from __future__ import annotations

import ctypes
import hashlib
import json
import os
import subprocess
import sys
import tempfile
from array import array
from typing import Any, Dict, Optional

from repro import obs

#: The C implementation of the gain-engine hot loops. ``counts`` is the
#: per-object hit vector, ``gain[v]`` the number of objects exactly one
#: failure from fatal that node ``v`` covers, ``dead`` the objects already
#: at >= s hits. ``add``/``remove`` touch only the objects incident to the
#: changed node (the O(delta) update of the gain-table engine); the fused
#: ``try_swap`` runs one local-search polish position in a single call.
_SOURCE = r"""
#include <pthread.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

typedef int32_t i32;
typedef int64_t i64;

typedef struct {
    i32 n, b, s;
    const i32 *node_off;   /* n: segment starts into node_objs */
    const i32 *node_end;   /* n: segment ends (start + load) */
    const i32 *node_objs;  /* objects hosted per node */
    const i32 *obj_off;    /* >= b + 1: CSR offsets into obj_nodes */
    const i32 *obj_nodes;  /* replica nodes per object */
} gk_model;

/* Separate start/end arrays (rather than the tight off[v]..off[v+1])
   let segments carry slack capacity, so the delta-aware incidence can
   absorb object churn by editing O(changed replicas) words in place
   instead of re-exporting the whole layout. */

/* One hits object is a single packed buffer: counts in state[0..b),
   the gain table in state[b..b+n), the dead counter at state[b+n].
   Packing keeps the ctypes surface to one pointer per call. */

void gk_add_node(const gk_model *m, i32 node, i32 *state)
{
    const i32 s = m->s;
    i32 *counts = state, *gain = state + m->b;
    i32 d = state[m->b + m->n];
    const i32 lo = m->node_off[node], hi = m->node_end[node];
    for (i32 i = lo; i < hi; i++) {
        const i32 o = m->node_objs[i];
        const i32 c = ++counts[o];
        if (c == s) {
            d++;
            for (i32 j = m->obj_off[o]; j < m->obj_off[o + 1]; j++)
                gain[m->obj_nodes[j]]--;
        } else if (c == s - 1) {
            for (i32 j = m->obj_off[o]; j < m->obj_off[o + 1]; j++)
                gain[m->obj_nodes[j]]++;
        }
    }
    state[m->b + m->n] = d;
}

void gk_remove_node(const gk_model *m, i32 node, i32 *state)
{
    const i32 s = m->s;
    i32 *counts = state, *gain = state + m->b;
    i32 d = state[m->b + m->n];
    const i32 lo = m->node_off[node], hi = m->node_end[node];
    for (i32 i = lo; i < hi; i++) {
        const i32 o = m->node_objs[i];
        const i32 c = counts[o]--;
        if (c == s) {
            d--;
            for (i32 j = m->obj_off[o]; j < m->obj_off[o + 1]; j++)
                gain[m->obj_nodes[j]]++;
        } else if (c == s - 1) {
            for (i32 j = m->obj_off[o]; j < m->obj_off[o + 1]; j++)
                gain[m->obj_nodes[j]]--;
        }
    }
    state[m->b + m->n] = d;
}

/* Zero the state and fold `count` nodes in — the bulk (re)build. */
void gk_bulk_build(const gk_model *m, const i32 *nodes, i32 count,
                   i32 *state)
{
    memset(state, 0, (size_t)(m->b + m->n + 1) * sizeof(i32));
    if (m->s == 1)  /* every object sits at s - 1 = 0 hits: gain = degree */
        for (i32 v = 0; v < m->n; v++)
            state[m->b + v] = m->node_end[v] - m->node_off[v];
    for (i32 i = 0; i < count; i++)
        gk_add_node(m, nodes[i], state);
}

/* Highest-gain non-banned node, ties toward the lowest id; returns the
   node (-1 if everything is banned) and writes the resulting damage. */
i32 gk_best_addition(const gk_model *m, const i32 *state, const i32 *banned,
                     i32 *damage_out)
{
    const i32 *gain = state + m->b;
    i32 best_node = -1, best_gain = -1;
    const i32 n = m->n;
    for (i32 v = 0; v < n; v++) {
        if (banned[v]) continue;
        const i32 g = gain[v];
        if (g > best_gain) { best_node = v; best_gain = g; }
    }
    *damage_out = best_node < 0 ? -1 : state[m->b + n] + best_gain;
    return best_node;
}

/* One polish position fused into a single call: remove `u`, find the best
   non-banned replacement, keep it iff it strictly beats `current`, else
   restore `u`. `banned` must not flag `u`. Returns the swapped-in node or
   -1; writes the resulting damage. */
i32 gk_try_swap(const gk_model *m, i32 u, const i32 *banned, i32 current,
                i32 *state, i32 *damage_out)
{
    gk_remove_node(m, u, state);
    i32 damage = 0;
    const i32 v = gk_best_addition(m, state, banned, &damage);
    if (v >= 0 && damage > current) {
        gk_add_node(m, v, state);
        *damage_out = damage;
        return v;
    }
    gk_add_node(m, u, state);
    *damage_out = current;
    return -1;
}

/* One full steepest-positional polish sweep: try_swap at every position
   in order, updating `nodes` and the banned flags in place. Flags must
   arrive marking exactly the nodes in `nodes`; they leave marking the
   final set. Returns 1 iff any position improved; writes the final
   damage. */
i32 gk_polish_pass(const gk_model *m, i32 *state, i32 *nodes, i32 k,
                   i32 *banned, i32 current, i32 *current_out)
{
    i32 improved = 0;
    for (i32 p = 0; p < k; p++) {
        const i32 u = nodes[p];
        banned[u] = 0;
        gk_remove_node(m, u, state);
        i32 damage = 0;
        const i32 v = gk_best_addition(m, state, banned, &damage);
        if (v >= 0 && damage > current) {
            gk_add_node(m, v, state);
            nodes[p] = v;
            banned[v] = 1;
            current = damage;
            improved = 1;
        } else {
            gk_add_node(m, u, state);
            banned[u] = 1;
        }
    }
    *current_out = current;
    return improved;
}

/* Deficit-based optimistic bound over counts; `suffix` is the flattened
   b x (n + 1) table of replicas on nodes >= j per object. */
i32 gk_optimistic_bound(const gk_model *m, const i32 *state,
                        const i32 *suffix, i32 start, i32 slots)
{
    const i32 s = m->s, b = m->b, stride = m->n + 1;
    i32 killable = 0;
    for (i32 o = 0; o < b; o++) {
        const i32 deficit = s - state[o];
        if (deficit <= 0)
            killable++;
        else if (deficit <= slots && suffix[o * stride + start] >= deficit)
            killable++;
    }
    return killable;
}

/* ================= persistent worker pool ================= */

/* Barrier-style pool: gk_pool_run hands one task to every lane (the
   caller participates as lane 0), then waits for the workers. Lanes
   write disjoint state regions plus per-lane partials that the caller
   merges in lane order, so results never depend on scheduling. The
   task-hand-off mutex provides the happens-before edges. */

typedef void (*gk_task_fn)(void *ctx, i32 tid, i32 nthreads);

typedef struct gk_pool gk_pool;

typedef struct {
    gk_pool *pool;
    i32 tid;
} gk_worker_arg;

struct gk_pool {
    i32 nthreads;              /* lanes, including the calling thread */
    pthread_t *threads;        /* nthreads - 1 workers */
    gk_worker_arg *args;
    pthread_mutex_t run_lock;  /* serializes concurrent gk_pool_run calls */
    pthread_mutex_t lock;
    pthread_cond_t work_cv;
    pthread_cond_t done_cv;
    unsigned long generation;
    i32 pending;
    i32 shutdown;
    gk_task_fn task;
    void *ctx;
};

static void *gk_worker(void *raw)
{
    gk_worker_arg *arg = (gk_worker_arg *)raw;
    gk_pool *pool = arg->pool;
    unsigned long seen = 0;
    pthread_mutex_lock(&pool->lock);
    for (;;) {
        while (!pool->shutdown && pool->generation == seen)
            pthread_cond_wait(&pool->work_cv, &pool->lock);
        if (pool->shutdown)
            break;
        seen = pool->generation;
        gk_task_fn task = pool->task;
        void *ctx = pool->ctx;
        pthread_mutex_unlock(&pool->lock);
        task(ctx, arg->tid, pool->nthreads);
        pthread_mutex_lock(&pool->lock);
        if (--pool->pending == 0)
            pthread_cond_signal(&pool->done_cv);
    }
    pthread_mutex_unlock(&pool->lock);
    return NULL;
}

gk_pool *gk_pool_create(i32 nthreads)
{
    if (nthreads < 1)
        nthreads = 1;
    gk_pool *pool = (gk_pool *)calloc(1, sizeof(gk_pool));
    if (!pool)
        return NULL;
    pool->nthreads = 1;
    pthread_mutex_init(&pool->run_lock, NULL);
    pthread_mutex_init(&pool->lock, NULL);
    pthread_cond_init(&pool->work_cv, NULL);
    pthread_cond_init(&pool->done_cv, NULL);
    if (nthreads > 1) {
        pool->threads = (pthread_t *)calloc((size_t)nthreads - 1,
                                            sizeof(pthread_t));
        pool->args = (gk_worker_arg *)calloc((size_t)nthreads - 1,
                                             sizeof(gk_worker_arg));
        if (pool->threads && pool->args) {
            for (i32 t = 1; t < nthreads; t++) {
                pool->args[t - 1].pool = pool;
                pool->args[t - 1].tid = t;
                /* nthreads is what workers read for their range split, so
                   it must already count this lane before it starts. */
                pool->nthreads = t + 1;
                if (pthread_create(&pool->threads[t - 1], NULL, gk_worker,
                                   &pool->args[t - 1])) {
                    pool->nthreads = t;  /* spawn failed: stop here */
                    break;
                }
            }
        }
    }
    return pool;
}

void gk_pool_destroy(gk_pool *pool)
{
    if (!pool)
        return;
    pthread_mutex_lock(&pool->lock);
    pool->shutdown = 1;
    pthread_cond_broadcast(&pool->work_cv);
    pthread_mutex_unlock(&pool->lock);
    for (i32 t = 1; t < pool->nthreads; t++)
        pthread_join(pool->threads[t - 1], NULL);
    pthread_mutex_destroy(&pool->run_lock);
    pthread_mutex_destroy(&pool->lock);
    pthread_cond_destroy(&pool->work_cv);
    pthread_cond_destroy(&pool->done_cv);
    free(pool->threads);
    free(pool->args);
    free(pool);
}

i32 gk_pool_threads(const gk_pool *pool)
{
    return pool ? pool->nthreads : 1;
}

static void gk_pool_run(gk_pool *pool, gk_task_fn task, void *ctx)
{
    if (!pool || pool->nthreads <= 1) {
        task(ctx, 0, 1);
        return;
    }
    pthread_mutex_lock(&pool->run_lock);
    pthread_mutex_lock(&pool->lock);
    pool->task = task;
    pool->ctx = ctx;
    pool->pending = pool->nthreads - 1;
    pool->generation++;
    pthread_cond_broadcast(&pool->work_cv);
    pthread_mutex_unlock(&pool->lock);
    task(ctx, 0, pool->nthreads);
    pthread_mutex_lock(&pool->lock);
    while (pool->pending > 0)
        pthread_cond_wait(&pool->done_cv, &pool->lock);
    pthread_mutex_unlock(&pool->lock);
    pthread_mutex_unlock(&pool->run_lock);
}

/* Work thresholds below which threading cannot pay for its dispatch. */
enum {
    GK_MT_MIN_BUILD = 1 << 14,   /* objects */
    GK_MT_MIN_MOVE = 1 << 13,    /* node-segment entries */
    GK_MT_MIN_ARGMAX = 1 << 15   /* nodes */
};

/* ---- threaded bulk rebuild: object-range partition ----

   The serial rebuild folds node by node; the final (counts, gain, dead)
   state is a pure function of the folded node multiset, so the threaded
   path may instead compute it directly: occurrence flags over nodes,
   then per-object hit counts (a contiguous stride-1 row walk when the
   object offsets are the uniform stride-r progression — the layout both
   incidence exports use — which the compiler can vectorize), then a
   stride-1 classify sweep accumulating per-lane gain partials that the
   caller merges in lane order. Bit-identical at any thread count. */

typedef struct {
    const gk_model *m;
    i32 *counts;
    const i32 *flags;
    i32 *partials;     /* lanes x (n + 1); gain partial + dead at [n] */
    i32 uniform_r;     /* row width when obj_off is the stride-r ramp */
} gk_build_ctx;

static void gk_build_task(void *raw, i32 tid, i32 nthreads)
{
    gk_build_ctx *c = (gk_build_ctx *)raw;
    const gk_model *m = c->m;
    const i32 b = m->b, s = m->s, n = m->n;
    const i32 lo = (i32)((i64)b * tid / nthreads);
    const i32 hi = (i32)((i64)b * (tid + 1) / nthreads);
    const i32 *flags = c->flags;
    i32 *counts = c->counts;
    i32 *gain = c->partials + (size_t)tid * (n + 1);
    if (c->uniform_r > 0) {
        const i32 r = c->uniform_r;
        const i32 *row = m->obj_nodes + (size_t)lo * r;
        for (i32 o = lo; o < hi; o++) {
            i32 hit = 0;
            for (i32 j = 0; j < r; j++)
                hit += flags[row[j]];
            counts[o] = hit;
            row += r;
        }
    } else {
        for (i32 o = lo; o < hi; o++) {
            i32 hit = 0;
            for (i32 j = m->obj_off[o]; j < m->obj_off[o + 1]; j++)
                hit += flags[m->obj_nodes[j]];
            counts[o] = hit;
        }
    }
    i32 dead = 0;
    for (i32 o = lo; o < hi; o++)
        dead += (counts[o] >= s);
    const i32 target = s - 1;
    for (i32 o = lo; o < hi; o++) {
        if (counts[o] == target) {
            for (i32 j = m->obj_off[o]; j < m->obj_off[o + 1]; j++)
                gain[m->obj_nodes[j]]++;
        }
    }
    gain[n] = dead;
}

/* Threaded twin of gk_bulk_build. `uniform_r` is the row width when the
   object offsets are the arithmetic stride-r progression (both CSR
   layouts), 0 otherwise. Falls back to the serial fold when the pool is
   absent, the instance is small, or the failed set is so sparse that the
   O(touched-objects) fold beats a full O(b) partition. */
void gk_bulk_build_mt(const gk_model *m, gk_pool *pool, const i32 *nodes,
                      i32 count, i32 uniform_r, i32 *state)
{
    const i32 n = m->n, b = m->b;
    const i32 lanes = gk_pool_threads(pool);
    i64 fold = 0;
    for (i32 i = 0; i < count; i++)
        fold += m->node_end[nodes[i]] - m->node_off[nodes[i]];
    if (lanes <= 1 || b < GK_MT_MIN_BUILD || fold < (i64)b / lanes) {
        gk_bulk_build(m, nodes, count, state);
        return;
    }
    i32 *flags = (i32 *)calloc((size_t)n, sizeof(i32));
    i32 *partials = (i32 *)calloc((size_t)lanes * (n + 1), sizeof(i32));
    if (!flags || !partials) {
        free(flags);
        free(partials);
        gk_bulk_build(m, nodes, count, state);
        return;
    }
    for (i32 i = 0; i < count; i++)
        flags[nodes[i]]++;
    gk_build_ctx ctx = {m, state, flags, partials, uniform_r};
    gk_pool_run(pool, gk_build_task, &ctx);
    i32 *gain = state + b;
    memset(gain, 0, (size_t)(n + 1) * sizeof(i32));
    i32 dead = 0;
    for (i32 t = 0; t < lanes; t++) {
        const i32 *part = partials + (size_t)t * (n + 1);
        for (i32 v = 0; v < n; v++)
            gain[v] += part[v];
        dead += part[n];
    }
    state[b + n] = dead;
    free(flags);
    free(partials);
}

/* ---- threaded single-node moves: segment-range partition ----

   One node's CSR segment lists distinct objects, so lanes may update
   disjoint count entries in place; boundary-crossing gain updates land
   in per-lane partials (signed deltas) merged in lane order. */

typedef struct {
    const gk_model *m;
    i32 lo, hi;
    i32 delta;         /* +1 add, -1 remove */
    i32 *counts;
    i32 *partials;     /* lanes x (n + 1); gain delta + dead delta at [n] */
} gk_move_ctx;

static void gk_move_task(void *raw, i32 tid, i32 nthreads)
{
    gk_move_ctx *c = (gk_move_ctx *)raw;
    const gk_model *m = c->m;
    const i32 s = m->s, n = m->n;
    const i32 span = c->hi - c->lo;
    const i32 lo = c->lo + (i32)((i64)span * tid / nthreads);
    const i32 hi = c->lo + (i32)((i64)span * (tid + 1) / nthreads);
    i32 *counts = c->counts;
    i32 *gain = c->partials + (size_t)tid * (n + 1);
    i32 dead = 0;
    if (c->delta > 0) {
        for (i32 i = lo; i < hi; i++) {
            const i32 o = m->node_objs[i];
            const i32 v = ++counts[o];
            if (v == s) {
                dead++;
                for (i32 j = m->obj_off[o]; j < m->obj_off[o + 1]; j++)
                    gain[m->obj_nodes[j]]--;
            } else if (v == s - 1) {
                for (i32 j = m->obj_off[o]; j < m->obj_off[o + 1]; j++)
                    gain[m->obj_nodes[j]]++;
            }
        }
    } else {
        for (i32 i = lo; i < hi; i++) {
            const i32 o = m->node_objs[i];
            const i32 v = counts[o]--;
            if (v == s) {
                dead--;
                for (i32 j = m->obj_off[o]; j < m->obj_off[o + 1]; j++)
                    gain[m->obj_nodes[j]]++;
            } else if (v == s - 1) {
                for (i32 j = m->obj_off[o]; j < m->obj_off[o + 1]; j++)
                    gain[m->obj_nodes[j]]--;
            }
        }
    }
    gain[n] = dead;
}

static void gk_move_mt(const gk_model *m, gk_pool *pool, i32 node, i32 delta,
                       i32 *state)
{
    const i32 lo = m->node_off[node], hi = m->node_end[node];
    const i32 lanes = gk_pool_threads(pool);
    if (lanes <= 1 || hi - lo < GK_MT_MIN_MOVE) {
        if (delta > 0)
            gk_add_node(m, node, state);
        else
            gk_remove_node(m, node, state);
        return;
    }
    const i32 n = m->n;
    i32 *partials = (i32 *)calloc((size_t)lanes * (n + 1), sizeof(i32));
    if (!partials) {
        if (delta > 0)
            gk_add_node(m, node, state);
        else
            gk_remove_node(m, node, state);
        return;
    }
    gk_move_ctx ctx = {m, lo, hi, delta, state, partials};
    gk_pool_run(pool, gk_move_task, &ctx);
    i32 *gain = state + m->b;
    i32 dead = state[m->b + n];
    for (i32 t = 0; t < lanes; t++) {
        const i32 *part = partials + (size_t)t * (n + 1);
        for (i32 v = 0; v < n; v++)
            gain[v] += part[v];
        dead += part[n];
    }
    state[m->b + n] = dead;
    free(partials);
}

void gk_add_node_mt(const gk_model *m, gk_pool *pool, i32 node, i32 *state)
{
    gk_move_mt(m, pool, node, 1, state);
}

void gk_remove_node_mt(const gk_model *m, gk_pool *pool, i32 node,
                       i32 *state)
{
    gk_move_mt(m, pool, node, -1, state);
}

/* ---- threaded argmax: node-range partition ----

   Per-lane (best gain, lowest-id node) over contiguous ascending ranges,
   merged in lane order with strict >, preserving the serial lowest-id
   tie-break exactly. */

typedef struct {
    const gk_model *m;
    const i32 *gain;
    const i32 *banned;
    i32 *best_nodes;   /* one per lane */
    i32 *best_gains;
} gk_argmax_ctx;

static void gk_argmax_task(void *raw, i32 tid, i32 nthreads)
{
    gk_argmax_ctx *c = (gk_argmax_ctx *)raw;
    const i32 n = c->m->n;
    const i32 lo = (i32)((i64)n * tid / nthreads);
    const i32 hi = (i32)((i64)n * (tid + 1) / nthreads);
    i32 best_node = -1, best_gain = -1;
    for (i32 v = lo; v < hi; v++) {
        if (c->banned[v])
            continue;
        const i32 g = c->gain[v];
        if (g > best_gain) {
            best_node = v;
            best_gain = g;
        }
    }
    c->best_nodes[tid] = best_node;
    c->best_gains[tid] = best_gain;
}

i32 gk_best_addition_mt(const gk_model *m, gk_pool *pool, const i32 *state,
                        const i32 *banned, i32 *damage_out)
{
    const i32 lanes = gk_pool_threads(pool);
    if (lanes <= 1 || m->n < GK_MT_MIN_ARGMAX)
        return gk_best_addition(m, state, banned, damage_out);
    i32 best_nodes[64], best_gains[64];
    if (lanes > 64)  /* static scratch bound; plenty for any real pool */
        return gk_best_addition(m, state, banned, damage_out);
    gk_argmax_ctx ctx = {m, state + m->b, banned, best_nodes, best_gains};
    gk_pool_run(pool, gk_argmax_task, &ctx);
    i32 best_node = -1, best_gain = -1;
    for (i32 t = 0; t < lanes; t++) {
        if (best_gains[t] > best_gain) {
            best_node = best_nodes[t];
            best_gain = best_gains[t];
        }
    }
    *damage_out = best_node < 0 ? -1 : state[m->b + m->n] + best_gain;
    return best_node;
}

/* Threaded twins of the fused search helpers: the position/sweep control
   flow is inherently sequential and stays byte-identical to the serial
   versions; only the per-position node folds and argmax fan out. */

i32 gk_try_swap_mt(const gk_model *m, gk_pool *pool, i32 u,
                   const i32 *banned, i32 current, i32 *state,
                   i32 *damage_out)
{
    gk_remove_node_mt(m, pool, u, state);
    i32 damage = 0;
    const i32 v = gk_best_addition_mt(m, pool, state, banned, &damage);
    if (v >= 0 && damage > current) {
        gk_add_node_mt(m, pool, v, state);
        *damage_out = damage;
        return v;
    }
    gk_add_node_mt(m, pool, u, state);
    *damage_out = current;
    return -1;
}

i32 gk_polish_pass_mt(const gk_model *m, gk_pool *pool, i32 *state,
                      i32 *nodes, i32 k, i32 *banned, i32 current,
                      i32 *current_out)
{
    i32 improved = 0;
    for (i32 p = 0; p < k; p++) {
        const i32 u = nodes[p];
        banned[u] = 0;
        gk_remove_node_mt(m, pool, u, state);
        i32 damage = 0;
        const i32 v = gk_best_addition_mt(m, pool, state, banned, &damage);
        if (v >= 0 && damage > current) {
            gk_add_node_mt(m, pool, v, state);
            nodes[p] = v;
            banned[v] = 1;
            current = damage;
            improved = 1;
        } else {
            gk_add_node_mt(m, pool, u, state);
            banned[u] = 1;
        }
    }
    *current_out = current;
    return improved;
}

/* ================= replicated gain-state lanes =================

   Coarse chain-level parallelism for the local-search adversary. Each
   lane owns a private replica of the packed gain state (counts[b] +
   gain[n] + dead) plus its own banned-flag vector, and runs whole
   polish-to-convergence chains on it — one foreign call for any number
   of chains. A chain is a pure function of (model, seed set), so
   scheduling chains across lanes in any order cannot change results;
   outputs land per chain index. The loops inside a chain stay serial
   on purpose: the chains themselves are the parallelism (the `_mt`
   fine-grained paths would oversubscribe the pool), and gk_pool_run is
   not reentrant, so a lane must never dispatch into the pool. */

typedef struct {
    i32 lanes;    /* lane replicas allocated */
    i32 words;    /* packed state words per lane: b + n + 1 */
    i32 n;        /* banned-flag words per lane */
    i32 *block;   /* lanes x (words + n): state, then banned flags */
} gk_lane_set;

gk_lane_set *gk_lane_alloc(i32 lanes, i32 b, i32 n)
{
    if (lanes < 1)
        lanes = 1;
    gk_lane_set *set = (gk_lane_set *)calloc(1, sizeof(gk_lane_set));
    if (!set)
        return NULL;
    set->lanes = lanes;
    set->words = b + n + 1;
    set->n = n;
    set->block = (i32 *)malloc(
        (size_t)lanes * ((size_t)set->words + n) * sizeof(i32)
    );
    if (!set->block) {
        free(set);
        return NULL;
    }
    /* Chains rebuild the state region from scratch but expect their
       banned flags clear on entry (and leave them clear on exit). */
    for (i32 t = 0; t < lanes; t++)
        memset(set->block + (size_t)t * (set->words + n) + set->words, 0,
               (size_t)n * sizeof(i32));
    return set;
}

void gk_lane_free(gk_lane_set *set)
{
    if (!set)
        return;
    free(set->block);
    free(set);
}

/* One polish-to-convergence chain on lane-private state: bulk-rebuild
   the gain state from the seed set, then repeat the steepest-positional
   sweep (same visit order, tie-breaks and strict-improvement rule as
   gk_polish_pass) until a sweep lands no swap. `banned` must arrive
   all-clear; it leaves all-clear. Returns the number of sweeps run
   (the driver's evaluation charge is sweeps x k x (n - k + 1)); writes
   the final damage and the accepted-swap count — a swapped-in node can
   never equal the one removed (re-adding it only restores `current`,
   never strictly beats it), so this equals the per-position occupant
   diff the serial driver counts. */
i32 gk_polish_chain(const gk_model *m, i32 *state, i32 *banned,
                    i32 *nodes, i32 k, i32 *damage_out, i32 *swaps_out)
{
    gk_bulk_build(m, nodes, k, state);
    for (i32 p = 0; p < k; p++)
        banned[nodes[p]] = 1;
    i32 current = state[m->b + m->n];
    i32 passes = 0, swaps = 0, improved = 1;
    while (improved) {
        improved = 0;
        for (i32 p = 0; p < k; p++) {
            const i32 u = nodes[p];
            banned[u] = 0;
            gk_remove_node(m, u, state);
            i32 damage = 0;
            const i32 v = gk_best_addition(m, state, banned, &damage);
            if (v >= 0 && damage > current) {
                gk_add_node(m, v, state);
                nodes[p] = v;
                banned[v] = 1;
                current = damage;
                improved = 1;
                swaps++;
            } else {
                gk_add_node(m, u, state);
                banned[u] = 1;
            }
        }
        passes++;
    }
    for (i32 p = 0; p < k; p++)
        banned[nodes[p]] = 0;
    *damage_out = current;
    *swaps_out = swaps;
    return passes;
}

typedef struct {
    const gk_model *m;
    gk_lane_set *set;
    i32 *all_nodes;   /* chains x k seed sets, polished in place */
    i32 *damages;     /* one per chain */
    i32 *passes;
    i32 *swaps;
    i32 chains, k;
} gk_chain_ctx;

static void gk_chain_task(void *raw, i32 tid, i32 nthreads)
{
    gk_chain_ctx *c = (gk_chain_ctx *)raw;
    i32 width = c->set->lanes < nthreads ? c->set->lanes : nthreads;
    if (width < 1)
        width = 1;
    if (tid >= width)
        return;
    const size_t stride = (size_t)c->set->words + c->set->n;
    i32 *state = c->set->block + (size_t)tid * stride;
    i32 *banned = state + c->set->words;
    for (i32 i = tid; i < c->chains; i += width)
        c->passes[i] = gk_polish_chain(
            c->m, state, banned, c->all_nodes + (size_t)i * c->k, c->k,
            &c->damages[i], &c->swaps[i]
        );
}

/* Run every chain to convergence, at most min(set->lanes, pool width)
   concurrently. Chain i always uses lane i % width and writes only its
   own output slots, so results are independent of both the pool size
   and the lane count. */
void gk_polish_chains_mt(const gk_model *m, gk_pool *pool,
                         gk_lane_set *set, i32 *all_nodes, i32 chains,
                         i32 k, i32 *damages, i32 *passes, i32 *swaps)
{
    gk_chain_ctx ctx = {m, set, all_nodes, damages, passes, swaps,
                        chains, k};
    if (!pool || set->lanes <= 1 || chains <= 1) {
        gk_chain_task(&ctx, 0, 1);
        return;
    }
    gk_pool_run(pool, gk_chain_task, &ctx);
}
"""

_CC_CANDIDATES = ("cc", "gcc", "clang")
_OPT_LEVELS = ("-O3", "-O2")

_lib: Optional[ctypes.CDLL] = None
_load_attempted = False
_load_error: Optional[str] = None
_compile_info: Optional[Dict[str, Any]] = None

_I32P = ctypes.POINTER(ctypes.c_int32)


class ModelStruct(ctypes.Structure):
    """ctypes mirror of the C ``gk_model``."""

    _fields_ = [
        ("n", ctypes.c_int32),
        ("b", ctypes.c_int32),
        ("s", ctypes.c_int32),
        ("node_off", _I32P),
        ("node_end", _I32P),
        ("node_objs", _I32P),
        ("obj_off", _I32P),
        ("obj_nodes", _I32P),
    ]


def i32_ptr(buffer: array) -> "ctypes._Pointer":
    """A ``int32*`` view of an ``array('i')`` (zero-copy)."""
    return ctypes.cast(
        (ctypes.c_int32 * len(buffer)).from_buffer(buffer), _I32P
    )


def model_ref(model: "ModelStruct"):
    """A reusable by-reference handle for passing the model struct."""
    return ctypes.byref(model)


def pack_i32_le(buffer) -> bytes:
    """Serialize an int32 sequence as little-endian bytes.

    The canonical on-disk word order for packed engine state; on the
    (overwhelmingly common) little-endian hosts this is a straight copy.
    """
    packed = array("i", buffer)
    if sys.byteorder == "big":  # pragma: no cover - BE hosts only
        packed.byteswap()
    return packed.tobytes()


def unpack_i32_le(data: bytes) -> array:
    """Parse little-endian int32 bytes into a machine-order ``array('i')``."""
    values = array("i")
    values.frombytes(data)
    if sys.byteorder == "big":  # pragma: no cover - BE hosts only
        values.byteswap()
    return values


def _cache_dir() -> str:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return override
    xdg = os.environ.get("XDG_CACHE_HOME") or os.path.expanduser("~/.cache")
    if os.path.isabs(xdg):
        return os.path.join(xdg, "repro-native")
    # No usable home directory: fall back to a per-user tempdir.
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return os.path.join(tempfile.gettempdir(), f"repro-native-{uid}")


def _assert_private(directory: str) -> None:
    """Refuse cache directories another local user could have planted.

    Loading a cached ``.so`` executes it, so before trusting one the
    directory must belong to us and admit no group/other writers — the
    predictable-path attack on shared machines.
    """
    if not hasattr(os, "getuid"):  # pragma: no cover - non-POSIX
        return
    info = os.stat(directory)
    if info.st_uid != os.getuid():
        raise RuntimeError(
            f"native cache dir {directory!r} is owned by uid {info.st_uid}, "
            f"not us; set REPRO_NATIVE_CACHE to a private directory"
        )
    if info.st_mode & 0o022:
        raise RuntimeError(
            f"native cache dir {directory!r} is group/world-writable; "
            f"set REPRO_NATIVE_CACHE to a private directory"
        )


def _compiler_candidates() -> tuple:
    """The compiler ladder: an env override pins one, else cc/gcc/clang."""
    override = os.environ.get("REPRO_CC") or os.environ.get("CC")
    if override:
        return (override,)
    return _CC_CANDIDATES


def _record_compile_info(info_path: str, info: Dict[str, Any]) -> None:
    global _compile_info
    _compile_info = dict(info)
    try:
        scratch = f"{info_path}.tmp.{os.getpid()}"
        with open(scratch, "w", encoding="utf-8") as handle:
            json.dump(info, handle, indent=2, sort_keys=True)
        os.replace(scratch, info_path)
    except OSError:
        pass  # introspection metadata only; the .so is what matters


def _compile() -> str:
    """Compile the embedded source, returning the shared-object path.

    The compiler is ``REPRO_CC`` (or ``CC``) when set, else the first
    working of cc/gcc/clang; each candidate tries ``-O3`` first and falls
    back to ``-O2``. The output is cached by source hash; concurrent
    processes race safely because each compiles to a unique temp name and
    ``os.replace`` is atomic. The winning recipe is persisted beside the
    ``.so`` and surfaced via :func:`compile_info`.
    """
    global _compile_info
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    directory = _cache_dir()
    target = os.path.join(directory, f"gain_kernel_{digest}.so")
    info_path = os.path.join(directory, f"gain_kernel_{digest}.json")
    if os.path.exists(target):
        _assert_private(directory)
        if _compile_info is None:
            try:
                with open(info_path, "r", encoding="utf-8") as handle:
                    _compile_info = dict(json.load(handle), cached=True)
            except (OSError, ValueError):
                _compile_info = {"cached": True, "source_digest": digest}
        return target
    os.makedirs(directory, mode=0o700, exist_ok=True)
    _assert_private(directory)
    source_path = os.path.join(directory, f"gain_kernel_{digest}.c")
    with open(source_path, "w", encoding="utf-8") as handle:
        handle.write(_SOURCE)
    scratch = f"{target}.tmp.{os.getpid()}"
    last_error = "no C compiler found"
    for compiler in _compiler_candidates():
        for opt in _OPT_LEVELS:
            flags = [opt, "-pthread", "-shared", "-fPIC"]
            try:
                result = subprocess.run(
                    [compiler, *flags, "-o", scratch, source_path],
                    capture_output=True,
                    timeout=120,
                )
            except (OSError, subprocess.TimeoutExpired) as exc:
                last_error = f"{compiler}: {exc}"
                break  # missing/hung compiler: no point retrying flags
            if result.returncode == 0:
                os.replace(scratch, target)
                _record_compile_info(info_path, {
                    "compiler": compiler,
                    "flags": flags,
                    "source_digest": digest,
                    "cached": False,
                })
                return target
            last_error = (
                f"{compiler} {opt}: "
                f"{result.stderr.decode(errors='replace')}"
            )
    raise RuntimeError(f"could not compile native gain kernel: {last_error}")


def _bind(lib: ctypes.CDLL) -> ctypes.CDLL:
    model_p = ctypes.POINTER(ModelStruct)
    lib.gk_add_node.argtypes = [model_p, ctypes.c_int32, _I32P]
    lib.gk_add_node.restype = None
    lib.gk_remove_node.argtypes = lib.gk_add_node.argtypes
    lib.gk_remove_node.restype = None
    lib.gk_bulk_build.argtypes = [model_p, _I32P, ctypes.c_int32, _I32P]
    lib.gk_bulk_build.restype = None
    lib.gk_best_addition.argtypes = [model_p, _I32P, _I32P, _I32P]
    lib.gk_best_addition.restype = ctypes.c_int32
    lib.gk_try_swap.argtypes = [
        model_p, ctypes.c_int32, _I32P, ctypes.c_int32, _I32P, _I32P
    ]
    lib.gk_try_swap.restype = ctypes.c_int32
    lib.gk_polish_pass.argtypes = [
        model_p, _I32P, _I32P, ctypes.c_int32, _I32P, ctypes.c_int32, _I32P
    ]
    lib.gk_polish_pass.restype = ctypes.c_int32
    lib.gk_optimistic_bound.argtypes = [
        model_p, _I32P, _I32P, ctypes.c_int32, ctypes.c_int32
    ]
    lib.gk_optimistic_bound.restype = ctypes.c_int32
    # Worker pool + threaded twins. The pool handle is opaque (void*).
    lib.gk_pool_create.argtypes = [ctypes.c_int32]
    lib.gk_pool_create.restype = ctypes.c_void_p
    lib.gk_pool_destroy.argtypes = [ctypes.c_void_p]
    lib.gk_pool_destroy.restype = None
    lib.gk_pool_threads.argtypes = [ctypes.c_void_p]
    lib.gk_pool_threads.restype = ctypes.c_int32
    lib.gk_bulk_build_mt.argtypes = [
        model_p, ctypes.c_void_p, _I32P, ctypes.c_int32, ctypes.c_int32,
        _I32P,
    ]
    lib.gk_bulk_build_mt.restype = None
    lib.gk_add_node_mt.argtypes = [
        model_p, ctypes.c_void_p, ctypes.c_int32, _I32P
    ]
    lib.gk_add_node_mt.restype = None
    lib.gk_remove_node_mt.argtypes = lib.gk_add_node_mt.argtypes
    lib.gk_remove_node_mt.restype = None
    lib.gk_best_addition_mt.argtypes = [
        model_p, ctypes.c_void_p, _I32P, _I32P, _I32P
    ]
    lib.gk_best_addition_mt.restype = ctypes.c_int32
    lib.gk_try_swap_mt.argtypes = [
        model_p, ctypes.c_void_p, ctypes.c_int32, _I32P, ctypes.c_int32,
        _I32P, _I32P,
    ]
    lib.gk_try_swap_mt.restype = ctypes.c_int32
    lib.gk_polish_pass_mt.argtypes = [
        model_p, ctypes.c_void_p, _I32P, _I32P, ctypes.c_int32, _I32P,
        ctypes.c_int32, _I32P,
    ]
    lib.gk_polish_pass_mt.restype = ctypes.c_int32
    # Replicated lanes + fused polish chains. Lane sets are opaque.
    lib.gk_lane_alloc.argtypes = [
        ctypes.c_int32, ctypes.c_int32, ctypes.c_int32
    ]
    lib.gk_lane_alloc.restype = ctypes.c_void_p
    lib.gk_lane_free.argtypes = [ctypes.c_void_p]
    lib.gk_lane_free.restype = None
    lib.gk_polish_chain.argtypes = [
        model_p, _I32P, _I32P, _I32P, ctypes.c_int32, _I32P, _I32P
    ]
    lib.gk_polish_chain.restype = ctypes.c_int32
    lib.gk_polish_chains_mt.argtypes = [
        model_p, ctypes.c_void_p, ctypes.c_void_p, _I32P, ctypes.c_int32,
        ctypes.c_int32, _I32P, _I32P, _I32P,
    ]
    lib.gk_polish_chains_mt.restype = None
    return lib


def load() -> ctypes.CDLL:
    """The compiled library, compiling on first use. Raises on failure."""
    global _lib, _load_attempted, _load_error
    if _lib is not None:
        return _lib
    if _load_attempted and _load_error is not None:
        raise RuntimeError(_load_error)
    _load_attempted = True
    try:
        # The ``native.compile`` injection point: an injected fault here
        # makes the backing "unavailable" for the rest of the process,
        # which is exactly what a broken toolchain looks like — the gain
        # ladder must degrade to numpy/bitset, never abort the run.
        from repro.faults import injector as _chaos

        _chaos.inject("native.compile")
        if array("i").itemsize != 4:  # pragma: no cover - exotic platforms
            raise RuntimeError("array('i') is not 32-bit on this platform")
        if sys.platform == "win32":  # pragma: no cover - not a target
            raise RuntimeError("native backing is not supported on Windows")
        with obs.span("native.compile"):
            _lib = _bind(ctypes.CDLL(_compile()))
        obs.count("native.compiles")
    except Exception as exc:  # noqa: BLE001 - any failure means "unavailable"
        _load_error = str(exc)
        raise RuntimeError(_load_error) from None
    return _lib


def available() -> bool:
    """True iff the native backing can be (or already was) loaded."""
    try:
        load()
    except RuntimeError:
        return False
    return True


def load_error() -> Optional[str]:
    """Why the last load failed (None if never attempted or it worked)."""
    return _load_error


def compile_info() -> Optional[Dict[str, Any]]:
    """How the loaded library was built: compiler, flags, cache status.

    None until a load is attempted (or when the load failed before the
    compile step). ``cached: True`` means a previously built ``.so`` was
    reused; the recorded compiler/flags then describe the build that
    produced it (read back from the JSON persisted beside the cache
    entry, when present).
    """
    return None if _compile_info is None else dict(_compile_info)


# --------------------------- worker pool ---------------------------
#
# One process-wide pool, created lazily on first threaded call and sized
# by configure_threads() / REPRO_NATIVE_THREADS / os.cpu_count(), in that
# order. pthreads do not survive fork(), so a forked child inherits a
# handle whose worker threads are gone — joining them would hang. The
# at-fork hook therefore *drops* the handle without destroying it (the
# leaked C memory is the price of fork safety) and bumps the pool epoch
# so kernel objects know to refetch.

_pool_handle: Optional[int] = None
_pool_threads = 0
_pool_epoch = 0
_configured_threads: Optional[int] = None


def thread_count() -> int:
    """The thread budget: configure_threads > REPRO_NATIVE_THREADS > cores."""
    if _configured_threads is not None:
        return _configured_threads
    env = os.environ.get("REPRO_NATIVE_THREADS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"REPRO_NATIVE_THREADS must be an integer >= 1, got {env!r}"
            ) from None
    return os.cpu_count() or 1


def configure_threads(count: Optional[int]) -> None:
    """Pin the kernel thread budget (None restores the env/cpu default).

    An existing pool of a different width is dropped; the next threaded
    call lazily builds one at the new width. Used by the sharded runners
    to split the budget across worker processes.
    """
    global _configured_threads
    _configured_threads = None if count is None else max(1, int(count))
    try:
        obs.gauge("native.threads", thread_count())
    except ValueError:
        pass  # garbage REPRO_NATIVE_THREADS still raises at first use
    if _pool_handle is not None and _pool_threads != thread_count():
        _drop_pool(destroy=True)


def configured_threads() -> Optional[int]:
    """The explicit configure_threads() pin, if any (None = env default)."""
    return _configured_threads


def current_pool() -> Optional[int]:
    """The process-wide pool handle, creating it on first use.

    Returns None when the budget is one thread (serial paths need no
    pool) or when the library is unavailable.
    """
    global _pool_handle, _pool_threads, _pool_epoch
    want = thread_count()
    if _pool_handle is not None:
        if _pool_threads == want:
            return _pool_handle
        _drop_pool(destroy=True)
    if want <= 1:
        return None
    try:
        lib = load()
    except RuntimeError:
        return None
    handle = lib.gk_pool_create(want)
    if not handle:
        return None
    _pool_handle = handle
    _pool_threads = lib.gk_pool_threads(handle)
    _pool_epoch += 1
    return _pool_handle


def pool_epoch() -> int:
    """Bumped whenever the pool handle changes (resize, fork, drop)."""
    return _pool_epoch


def pool_threads() -> int:
    """Lanes the live pool actually has (1 when no pool exists)."""
    return _pool_threads if _pool_handle is not None else 1


def worker_thread_budget(workers: int) -> int:
    """Per-process thread budget when fanning out across `workers`."""
    return max(1, thread_count() // max(1, workers))


def _drop_pool(destroy: bool) -> None:
    """Forget the pool; join+free its threads only when they are ours.

    ``destroy=False`` is the forked-child path: the workers died with the
    parent's address-space copy, so joining would hang — leak the handle.
    """
    global _pool_handle, _pool_threads, _pool_epoch
    handle = _pool_handle
    _pool_handle = None
    _pool_threads = 0
    _pool_epoch += 1
    if handle is not None and destroy and _lib is not None:
        _lib.gk_pool_destroy(handle)


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX targets
    os.register_at_fork(after_in_child=lambda: _drop_pool(destroy=False))
