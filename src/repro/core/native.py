"""Optional C acceleration for the gain-table damage kernel.

The incremental gain engine (:class:`repro.core.kernels.GainKernel`) spends
its time in three tiny loops: fold one node's objects into the hit-count
vector, update the marginal-gain table for objects crossing the ``s - 1``
or ``s`` boundary, and argmax the gain table. Those loops are pure integer
index chasing — exactly the shape CPython is worst at and a C compiler is
best at — so this module compiles them with the system ``cc`` at first use
and drives them through :mod:`ctypes` over ``array('i')`` buffers.

This is an *accelerator*, not a dependency: no third-party packages, no
build step at install time. If no working compiler is found (or
``REPRO_GAIN_BACKING`` pins another backing) the gain kernel silently
falls back to its numpy or bitset backing with identical results — the
property tests in ``tests/core/test_kernels.py`` pin all backings to the
same bit-for-bit behaviour.

Compiled artifacts are cached under a per-user directory (override with
``REPRO_NATIVE_CACHE``), keyed by a hash of the embedded C source, so the
compiler runs once per source revision per machine.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import sys
import tempfile
from array import array
from typing import Optional

#: The C implementation of the gain-engine hot loops. ``counts`` is the
#: per-object hit vector, ``gain[v]`` the number of objects exactly one
#: failure from fatal that node ``v`` covers, ``dead`` the objects already
#: at >= s hits. ``add``/``remove`` touch only the objects incident to the
#: changed node (the O(delta) update of the gain-table engine); the fused
#: ``try_swap`` runs one local-search polish position in a single call.
_SOURCE = r"""
#include <stdint.h>
#include <string.h>

typedef int32_t i32;

typedef struct {
    i32 n, b, s;
    const i32 *node_off;   /* n: segment starts into node_objs */
    const i32 *node_end;   /* n: segment ends (start + load) */
    const i32 *node_objs;  /* objects hosted per node */
    const i32 *obj_off;    /* >= b + 1: CSR offsets into obj_nodes */
    const i32 *obj_nodes;  /* replica nodes per object */
} gk_model;

/* Separate start/end arrays (rather than the tight off[v]..off[v+1])
   let segments carry slack capacity, so the delta-aware incidence can
   absorb object churn by editing O(changed replicas) words in place
   instead of re-exporting the whole layout. */

/* One hits object is a single packed buffer: counts in state[0..b),
   the gain table in state[b..b+n), the dead counter at state[b+n].
   Packing keeps the ctypes surface to one pointer per call. */

void gk_add_node(const gk_model *m, i32 node, i32 *state)
{
    const i32 s = m->s;
    i32 *counts = state, *gain = state + m->b;
    i32 d = state[m->b + m->n];
    const i32 lo = m->node_off[node], hi = m->node_end[node];
    for (i32 i = lo; i < hi; i++) {
        const i32 o = m->node_objs[i];
        const i32 c = ++counts[o];
        if (c == s) {
            d++;
            for (i32 j = m->obj_off[o]; j < m->obj_off[o + 1]; j++)
                gain[m->obj_nodes[j]]--;
        } else if (c == s - 1) {
            for (i32 j = m->obj_off[o]; j < m->obj_off[o + 1]; j++)
                gain[m->obj_nodes[j]]++;
        }
    }
    state[m->b + m->n] = d;
}

void gk_remove_node(const gk_model *m, i32 node, i32 *state)
{
    const i32 s = m->s;
    i32 *counts = state, *gain = state + m->b;
    i32 d = state[m->b + m->n];
    const i32 lo = m->node_off[node], hi = m->node_end[node];
    for (i32 i = lo; i < hi; i++) {
        const i32 o = m->node_objs[i];
        const i32 c = counts[o]--;
        if (c == s) {
            d--;
            for (i32 j = m->obj_off[o]; j < m->obj_off[o + 1]; j++)
                gain[m->obj_nodes[j]]++;
        } else if (c == s - 1) {
            for (i32 j = m->obj_off[o]; j < m->obj_off[o + 1]; j++)
                gain[m->obj_nodes[j]]--;
        }
    }
    state[m->b + m->n] = d;
}

/* Zero the state and fold `count` nodes in — the bulk (re)build. */
void gk_bulk_build(const gk_model *m, const i32 *nodes, i32 count,
                   i32 *state)
{
    memset(state, 0, (size_t)(m->b + m->n + 1) * sizeof(i32));
    if (m->s == 1)  /* every object sits at s - 1 = 0 hits: gain = degree */
        for (i32 v = 0; v < m->n; v++)
            state[m->b + v] = m->node_end[v] - m->node_off[v];
    for (i32 i = 0; i < count; i++)
        gk_add_node(m, nodes[i], state);
}

/* Highest-gain non-banned node, ties toward the lowest id; returns the
   node (-1 if everything is banned) and writes the resulting damage. */
i32 gk_best_addition(const gk_model *m, const i32 *state, const i32 *banned,
                     i32 *damage_out)
{
    const i32 *gain = state + m->b;
    i32 best_node = -1, best_gain = -1;
    const i32 n = m->n;
    for (i32 v = 0; v < n; v++) {
        if (banned[v]) continue;
        const i32 g = gain[v];
        if (g > best_gain) { best_node = v; best_gain = g; }
    }
    *damage_out = best_node < 0 ? -1 : state[m->b + n] + best_gain;
    return best_node;
}

/* One polish position fused into a single call: remove `u`, find the best
   non-banned replacement, keep it iff it strictly beats `current`, else
   restore `u`. `banned` must not flag `u`. Returns the swapped-in node or
   -1; writes the resulting damage. */
i32 gk_try_swap(const gk_model *m, i32 u, const i32 *banned, i32 current,
                i32 *state, i32 *damage_out)
{
    gk_remove_node(m, u, state);
    i32 damage = 0;
    const i32 v = gk_best_addition(m, state, banned, &damage);
    if (v >= 0 && damage > current) {
        gk_add_node(m, v, state);
        *damage_out = damage;
        return v;
    }
    gk_add_node(m, u, state);
    *damage_out = current;
    return -1;
}

/* One full steepest-positional polish sweep: try_swap at every position
   in order, updating `nodes` and the banned flags in place. Flags must
   arrive marking exactly the nodes in `nodes`; they leave marking the
   final set. Returns 1 iff any position improved; writes the final
   damage. */
i32 gk_polish_pass(const gk_model *m, i32 *state, i32 *nodes, i32 k,
                   i32 *banned, i32 current, i32 *current_out)
{
    i32 improved = 0;
    for (i32 p = 0; p < k; p++) {
        const i32 u = nodes[p];
        banned[u] = 0;
        gk_remove_node(m, u, state);
        i32 damage = 0;
        const i32 v = gk_best_addition(m, state, banned, &damage);
        if (v >= 0 && damage > current) {
            gk_add_node(m, v, state);
            nodes[p] = v;
            banned[v] = 1;
            current = damage;
            improved = 1;
        } else {
            gk_add_node(m, u, state);
            banned[u] = 1;
        }
    }
    *current_out = current;
    return improved;
}

/* Deficit-based optimistic bound over counts; `suffix` is the flattened
   b x (n + 1) table of replicas on nodes >= j per object. */
i32 gk_optimistic_bound(const gk_model *m, const i32 *state,
                        const i32 *suffix, i32 start, i32 slots)
{
    const i32 s = m->s, b = m->b, stride = m->n + 1;
    i32 killable = 0;
    for (i32 o = 0; o < b; o++) {
        const i32 deficit = s - state[o];
        if (deficit <= 0)
            killable++;
        else if (deficit <= slots && suffix[o * stride + start] >= deficit)
            killable++;
    }
    return killable;
}
"""

_CC_CANDIDATES = ("cc", "gcc", "clang")

_lib: Optional[ctypes.CDLL] = None
_load_attempted = False
_load_error: Optional[str] = None

_I32P = ctypes.POINTER(ctypes.c_int32)


class ModelStruct(ctypes.Structure):
    """ctypes mirror of the C ``gk_model``."""

    _fields_ = [
        ("n", ctypes.c_int32),
        ("b", ctypes.c_int32),
        ("s", ctypes.c_int32),
        ("node_off", _I32P),
        ("node_end", _I32P),
        ("node_objs", _I32P),
        ("obj_off", _I32P),
        ("obj_nodes", _I32P),
    ]


def i32_ptr(buffer: array) -> "ctypes._Pointer":
    """A ``int32*`` view of an ``array('i')`` (zero-copy)."""
    return ctypes.cast(
        (ctypes.c_int32 * len(buffer)).from_buffer(buffer), _I32P
    )


def model_ref(model: "ModelStruct"):
    """A reusable by-reference handle for passing the model struct."""
    return ctypes.byref(model)


def _cache_dir() -> str:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return override
    xdg = os.environ.get("XDG_CACHE_HOME") or os.path.expanduser("~/.cache")
    if os.path.isabs(xdg):
        return os.path.join(xdg, "repro-native")
    # No usable home directory: fall back to a per-user tempdir.
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return os.path.join(tempfile.gettempdir(), f"repro-native-{uid}")


def _assert_private(directory: str) -> None:
    """Refuse cache directories another local user could have planted.

    Loading a cached ``.so`` executes it, so before trusting one the
    directory must belong to us and admit no group/other writers — the
    predictable-path attack on shared machines.
    """
    if not hasattr(os, "getuid"):  # pragma: no cover - non-POSIX
        return
    info = os.stat(directory)
    if info.st_uid != os.getuid():
        raise RuntimeError(
            f"native cache dir {directory!r} is owned by uid {info.st_uid}, "
            f"not us; set REPRO_NATIVE_CACHE to a private directory"
        )
    if info.st_mode & 0o022:
        raise RuntimeError(
            f"native cache dir {directory!r} is group/world-writable; "
            f"set REPRO_NATIVE_CACHE to a private directory"
        )


def _compile() -> str:
    """Compile the embedded source, returning the shared-object path.

    The output is cached by source hash; concurrent processes race safely
    because each compiles to a unique temp name and ``os.replace`` is
    atomic.
    """
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    directory = _cache_dir()
    target = os.path.join(directory, f"gain_kernel_{digest}.so")
    if os.path.exists(target):
        _assert_private(directory)
        return target
    os.makedirs(directory, mode=0o700, exist_ok=True)
    _assert_private(directory)
    source_path = os.path.join(directory, f"gain_kernel_{digest}.c")
    with open(source_path, "w", encoding="utf-8") as handle:
        handle.write(_SOURCE)
    scratch = f"{target}.tmp.{os.getpid()}"
    last_error = "no C compiler found"
    for compiler in _CC_CANDIDATES:
        try:
            result = subprocess.run(
                [compiler, "-O2", "-shared", "-fPIC", "-o", scratch,
                 source_path],
                capture_output=True,
                timeout=120,
            )
        except (OSError, subprocess.TimeoutExpired) as exc:
            last_error = f"{compiler}: {exc}"
            continue
        if result.returncode == 0:
            os.replace(scratch, target)
            return target
        last_error = f"{compiler}: {result.stderr.decode(errors='replace')}"
    raise RuntimeError(f"could not compile native gain kernel: {last_error}")


def _bind(lib: ctypes.CDLL) -> ctypes.CDLL:
    model_p = ctypes.POINTER(ModelStruct)
    lib.gk_add_node.argtypes = [model_p, ctypes.c_int32, _I32P]
    lib.gk_add_node.restype = None
    lib.gk_remove_node.argtypes = lib.gk_add_node.argtypes
    lib.gk_remove_node.restype = None
    lib.gk_bulk_build.argtypes = [model_p, _I32P, ctypes.c_int32, _I32P]
    lib.gk_bulk_build.restype = None
    lib.gk_best_addition.argtypes = [model_p, _I32P, _I32P, _I32P]
    lib.gk_best_addition.restype = ctypes.c_int32
    lib.gk_try_swap.argtypes = [
        model_p, ctypes.c_int32, _I32P, ctypes.c_int32, _I32P, _I32P
    ]
    lib.gk_try_swap.restype = ctypes.c_int32
    lib.gk_polish_pass.argtypes = [
        model_p, _I32P, _I32P, ctypes.c_int32, _I32P, ctypes.c_int32, _I32P
    ]
    lib.gk_polish_pass.restype = ctypes.c_int32
    lib.gk_optimistic_bound.argtypes = [
        model_p, _I32P, _I32P, ctypes.c_int32, ctypes.c_int32
    ]
    lib.gk_optimistic_bound.restype = ctypes.c_int32
    return lib


def load() -> ctypes.CDLL:
    """The compiled library, compiling on first use. Raises on failure."""
    global _lib, _load_attempted, _load_error
    if _lib is not None:
        return _lib
    if _load_attempted and _load_error is not None:
        raise RuntimeError(_load_error)
    _load_attempted = True
    try:
        if array("i").itemsize != 4:  # pragma: no cover - exotic platforms
            raise RuntimeError("array('i') is not 32-bit on this platform")
        if sys.platform == "win32":  # pragma: no cover - not a target
            raise RuntimeError("native backing is not supported on Windows")
        _lib = _bind(ctypes.CDLL(_compile()))
    except Exception as exc:  # noqa: BLE001 - any failure means "unavailable"
        _load_error = str(exc)
        raise RuntimeError(_load_error) from None
    return _lib


def available() -> bool:
    """True iff the native backing can be (or already was) loaded."""
    try:
        load()
    except RuntimeError:
        return False
    return True


def load_error() -> Optional[str]:
    """Why the last load failed (None if never attempted or it worked)."""
    return _load_error
