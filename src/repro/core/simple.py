"""The Simple(x, lambda) placement strategy (paper Definition 2).

A Simple(x, lambda) placement never lets more than ``lambda`` objects share
``x + 1`` common nodes — i.e. the replica sets form an
``(x+1)-(n, r, lambda)`` packing. Placements are realized from catalogued
designs by Observation 1 (copying) and Observation 2 (chunking); the
lambda actually achieved for ``b`` objects is the minimal one of Eqn. 1.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.bounds import lb_avail_simple
from repro.core.placement import Placement
from repro.core.subsystems import Subsystem, select_subsystem
from repro.designs.blocks import Block, DesignError
from repro.designs.catalog import Existence, build
from repro.designs.packing import (
    chunked_packing_blocks,
    sampled_distinct_subsets,
    shuffled_design_rows,
)


class SimpleStrategy:
    """Builds Simple(x, ·) placements on ``n`` nodes for ``r`` replicas.

    Args:
        n: cluster size.
        r: replicas per object.
        x: overlap bound; replicas of more than ``lambda`` objects may never
            share ``x + 1`` nodes. Must satisfy ``x < s`` at evaluation time
            (Definition 2's discussion), which is checked when bounds are
            requested, not at construction.
        subsystem: explicit realization plan; selected from the catalog when
            omitted.
        tier: catalog tier used for automatic subsystem selection.
    """

    def __init__(
        self,
        n: int,
        r: int,
        x: int,
        subsystem: Optional[Subsystem] = None,
        tier: Existence = Existence.CONSTRUCTIBLE,
    ) -> None:
        if not 0 <= x < r:
            raise ValueError(f"need 0 <= x < r, got x={x}, r={r}")
        if not 1 <= r <= n:
            raise ValueError(f"need 1 <= r <= n, got r={r}, n={n}")
        self.n = n
        self.r = r
        self.x = x
        if subsystem is None:
            subsystem = select_subsystem(n, r, x, tier=tier)
        if subsystem is None:
            raise DesignError(
                f"no ({x + 1})-(n_x, {r}, mu) subsystem available at tier "
                f"{tier.name} for n={n}"
            )
        if subsystem.r != r or subsystem.x != x:
            raise ValueError(
                f"subsystem is for (r={subsystem.r}, x={subsystem.x}), "
                f"expected (r={r}, x={x})"
            )
        if subsystem.total_nodes > n:
            raise ValueError(
                f"subsystem spans {subsystem.total_nodes} nodes > n={n}"
            )
        self.subsystem = subsystem

    def capacity(self, lam: int) -> int:
        """Objects supported at the given lambda (Lemma 1 / Observation 1)."""
        return self.subsystem.capacity(lam)

    def minimal_lambda(self, b: int) -> int:
        """The minimal lambda of Eqn. 1 for hosting ``b`` objects."""
        return self.subsystem.minimal_lambda(b)

    def lower_bound(self, b: int, k: int, s: int) -> int:
        """Lemma 2's availability lower bound at the minimal lambda."""
        if self.x >= s:
            raise ValueError(
                f"Simple(x={self.x}) offers no guarantee for s={s} (need x < s)"
            )
        return lb_avail_simple(b, k, s, self.x, self.minimal_lambda(b))

    def place(self, b: int) -> Placement:
        """Materialize a placement for objects ``0..b-1``.

        Requires every chunk's design to be catalog-constructible; analysis
        at the KNOWN tier works without this, but actual placement needs
        blocks.
        """
        if b < 1:
            raise ValueError(f"need b >= 1, got {b}")
        # All realization paths emit sorted, validated-by-construction
        # rows, so the placement takes the trusted array path — at large b
        # this skips both per-object set creation and O(b r) revalidation.
        return Placement.from_arrays(
            self.n,
            self._realize_rows(b),
            r=self.r,
            strategy=f"Simple(x={self.x})",
            validate=False,
        )

    def _realize_rows(self, b: int):
        """The packing for ``b`` objects as a flat row-major int32 buffer."""
        from array import array
        from itertools import chain

        t = self.x + 1
        if t == self.r:
            # Trivial stratum: distinct r-subsets in seeded random order
            # (for load balance), cycling into lambda-fold copies when b
            # exceeds C(n, r) (small-n case, e.g. r = 2 pairs on a modest
            # cluster).
            from repro.util.combinatorics import binom

            per_copy = binom(self.n, self.r)
            blocks: List[Block] = []
            copy_index = 0
            while len(blocks) < b:
                take = min(per_copy, b - len(blocks))
                blocks.extend(
                    sampled_distinct_subsets(self.n, self.r, take, seed=copy_index)
                )
                copy_index += 1
            return array("i", chain.from_iterable(blocks))
        chunks = self.subsystem.chunks
        designs = []
        for chunk in chunks:
            if chunk.mu != 1:
                raise DesignError(
                    f"block realization implemented for mu=1 chunks only, "
                    f"got mu={chunk.mu} (capacity analysis supports mu>1)"
                )
            designs.append(build(chunk.nx, self.r, t))
        if len(designs) == 1:
            return shuffled_design_rows(designs[0], b)
        return array(
            "i", chain.from_iterable(chunked_packing_blocks(designs, b, self.n))
        )

    def __repr__(self) -> str:
        return (
            f"SimpleStrategy(n={self.n}, r={self.r}, x={self.x}, "
            f"subsystem={self.subsystem})"
        )
