"""Placement inspection: measured overlap profiles and implied guarantees.

The paper's bounds are stated for placements *constructed* as packings, but
they apply to any placement through its measured overlaps: every placement
π is a ``(x+1)-(n, r, λ_x(π))`` packing for ``λ_x(π)`` = the largest number
of objects sharing some ``x+1`` nodes. Lemma 2 then gives a valid
availability floor for each ``x < s``, and the best of them is a
certificate that holds for *any* adversary — no search required.

This is the auditing path for placements that came from elsewhere (an
existing cluster, another allocator): measure, then bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, Optional, Tuple

from repro.core.bounds import lb_avail_simple
from repro.core.placement import Placement
from repro.util.combinatorics import binom


@dataclass(frozen=True)
class PackingProfile:
    """Measured multiplicities: λ_x(π) for each overlap size x+1 up to r."""

    n: int
    b: int
    r: int
    multiplicities: Tuple[int, ...]  # index x: max (x+1)-subset coverage

    def lam(self, x: int) -> int:
        if not 0 <= x < self.r:
            raise ValueError(f"x must be in [0, {self.r}), got {x}")
        return self.multiplicities[x]


def packing_profile(placement: Placement, max_x: Optional[int] = None) -> PackingProfile:
    """Measure λ_x(π) for x = 0 .. min(max_x, r-1).

    Cost is ``O(b * C(r, x+1))`` per level — cheap for the paper's r <= 5.
    Levels above ``max_x`` are reported as 0 and must not be used.
    """
    r = placement.r
    top = r - 1 if max_x is None else min(max_x, r - 1)
    multiplicities = []
    for x in range(top + 1):
        counts: Dict[Tuple[int, ...], int] = {}
        best = 0
        for nodes in placement.replica_sets:
            ordered = sorted(nodes)
            for subset in combinations(ordered, x + 1):
                value = counts.get(subset, 0) + 1
                counts[subset] = value
                if value > best:
                    best = value
        multiplicities.append(best)
    multiplicities.extend([0] * (r - 1 - top))
    return PackingProfile(
        n=placement.n,
        b=placement.b,
        r=r,
        multiplicities=tuple(multiplicities),
    )


def certified_availability(
    placement: Placement,
    k: int,
    s: int,
    profile: Optional[PackingProfile] = None,
) -> int:
    """The best Lemma-2 floor valid for ``placement`` under k failures.

    Maximizes ``lbAvail_si(x, λ_x(π))`` over the admissible strata
    ``x < s``; the result lower-bounds ``Avail(π)`` with no adversary
    search (possibly by a wide margin — it is a certificate, not an
    estimate).
    """
    if not 1 <= s <= placement.r:
        raise ValueError(f"need 1 <= s <= r={placement.r}, got {s}")
    if not s <= k < placement.n:
        raise ValueError(f"need s <= k < n={placement.n}, got k={k}")
    profile = profile or packing_profile(placement, max_x=s - 1)
    best = 0  # the trivial floor: availability is never negative
    for x in range(s):
        lam = profile.lam(x)
        if lam <= 0:
            continue
        best = max(best, lb_avail_simple(placement.b, k, s, x, lam))
    return best


@dataclass(frozen=True)
class PlacementAudit:
    """A full audit: profile, certificates, load shape."""

    profile: PackingProfile
    certificates: Dict[Tuple[int, int], int]  # (k, s) -> certified floor
    max_load: int
    mean_load: float

    def render(self) -> str:
        lines = [
            f"placement audit: n={self.profile.n} b={self.profile.b} "
            f"r={self.profile.r}",
            "overlap profile (lambda_x = max objects sharing x+1 nodes):",
        ]
        for x, lam in enumerate(self.profile.multiplicities):
            lines.append(f"  x={x}: lambda={lam}")
        lines.append(
            f"load: max={self.max_load}, mean={self.mean_load:.2f} "
            f"(imbalance {self.max_load / self.mean_load:.2f}x)"
        )
        lines.append("certified availability floors (Lemma 2 on measured overlaps):")
        for (k, s), floor in sorted(self.certificates.items()):
            lines.append(
                f"  k={k}, s={s}: >= {floor} of {self.profile.b} objects survive"
            )
        return "\n".join(lines)


def audit_placement(
    placement: Placement,
    k_values: Tuple[int, ...],
    s_values: Tuple[int, ...],
) -> PlacementAudit:
    """Audit a placement against a grid of failure counts and thresholds."""
    if not k_values or not s_values:
        raise ValueError("need at least one k and one s")
    max_s = max(s_values)
    profile = packing_profile(placement, max_x=min(max_s - 1, placement.r - 1))
    certificates = {}
    for s in s_values:
        for k in k_values:
            if s <= placement.r and s <= k < placement.n:
                certificates[(k, s)] = certified_availability(
                    placement, k, s, profile=profile
                )
    loads = placement.loads()
    return PlacementAudit(
        profile=profile,
        certificates=certificates,
        max_load=max(loads),
        mean_load=sum(loads) / len(loads),
    )


def expected_random_multiplicity(n: int, b: int, r: int, x: int) -> float:
    """Mean coverage of a fixed (x+1)-subset under Random' placement.

    ``b * C(r, x+1) / C(n, x+1)`` — the baseline to judge a measured λ_x
    against: values far above it indicate engineered or accidental
    correlation that a worst-case adversary will exploit.
    """
    if not 0 <= x < r:
        raise ValueError(f"need 0 <= x < r, got x={x}, r={r}")
    return b * binom(r, x + 1) / binom(n, x + 1)
