"""Parameter selection: choosing (n_x, mu_x) subsystems (paper Sec. III-C).

A ``Simple(x, lambda)`` placement on ``n`` nodes is realized from a
``(x+1)-(n_x, r, mu_x)`` design on ``n_x <= n`` nodes, copied
``lambda / mu_x`` times (Observation 1), possibly over several disjoint
node chunks (Observation 2). This module selects those subsystems from the
existence catalog and computes the *capacity gap* the paper plots in
Figs. 5–6: the fraction of ideal Lemma-1 capacity lost by having to use
concrete systems on ``n_x < n`` points.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

from repro.designs.catalog import Existence, existence, min_lambda
from repro.util.combinatorics import binom, lcm_many


@dataclass(frozen=True)
class Chunk:
    """One node chunk: an ``(x+1)-(nx, r, mu)`` design lives on ``nx`` nodes."""

    nx: int
    mu: int


@dataclass(frozen=True)
class Subsystem:
    """The concrete realization plan for one Simple(x, ·) stratum."""

    r: int
    x: int
    chunks: Tuple[Chunk, ...]
    tier: Existence

    def __post_init__(self) -> None:
        if not self.chunks:
            raise ValueError("a subsystem needs at least one chunk")
        t = self.x + 1
        for chunk in self.chunks:
            step = chunk.mu * binom(chunk.nx, t)
            if step % binom(self.r, t):
                raise ValueError(
                    f"mu*C({chunk.nx},{t})/C({self.r},{t}) not integral for "
                    f"chunk {chunk}"
                )

    @property
    def t(self) -> int:
        return self.x + 1

    @property
    def mu(self) -> int:
        """The composite multiplier: lcm of chunk multipliers (Observation 2)."""
        return lcm_many(chunk.mu for chunk in self.chunks)

    @property
    def total_nodes(self) -> int:
        return sum(chunk.nx for chunk in self.chunks)

    @property
    def unit_capacity(self) -> int:
        """Objects accommodated per lambda step of ``mu``.

        With lambda = d * mu, each chunk holds ``lambda * C(nx,t)/C(r,t)``
        objects, so one step contributes ``mu * sum_i C(nx_i,t)/C(r,t)``.
        """
        mu = self.mu
        t = self.t
        total = 0
        for chunk in self.chunks:
            total += (mu * binom(chunk.nx, t)) // binom(self.r, t)
        return total

    def capacity(self, lam: int) -> int:
        """Objects accommodated by Simple(x, lam); lam must be a mu multiple."""
        if lam % self.mu:
            raise ValueError(f"lambda={lam} is not a multiple of mu={self.mu}")
        return (lam // self.mu) * self.unit_capacity

    def minimal_lambda(self, b: int) -> int:
        """Eqn. 1: smallest mu-multiple lambda whose capacity covers ``b``."""
        if b < 1:
            raise ValueError(f"need b >= 1, got {b}")
        unit = self.unit_capacity
        steps = -(-b // unit)
        return steps * self.mu


def select_subsystem(
    n: int,
    r: int,
    x: int,
    tier: Existence = Existence.KNOWN,
    max_mu: int = 1,
    max_chunks: int = 1,
) -> Optional[Subsystem]:
    """The best subsystem for a Simple(x, ·) stratum on ``n`` nodes.

    Follows the paper's selection: the trivial design when ``x + 1 = r``,
    the largest partitionable prefix when ``x = 0``, and otherwise the
    best chunk decomposition of catalogued orders (maximizing capacity).
    Returns ``None`` when nothing at the requested tier fits.
    """
    if not 0 <= x < r:
        return None
    if r > n:
        return None
    t = x + 1
    if t == r:
        return Subsystem(r=r, x=x, chunks=(Chunk(nx=n, mu=1),), tier=Existence.CONSTRUCTIBLE)
    if x == 0:
        nx = r * (n // r)
        if nx == 0:
            return None
        return Subsystem(r=r, x=x, chunks=(Chunk(nx=nx, mu=1),), tier=Existence.CONSTRUCTIBLE)
    chunks = best_chunk_decomposition(n, r, t, tier=tier, max_mu=max_mu, max_chunks=max_chunks)
    if not chunks:
        return None
    return Subsystem(r=r, x=x, chunks=tuple(chunks), tier=tier)


@lru_cache(maxsize=None)
def _admissible_orders(
    r: int, t: int, max_v: int, tier: Existence, max_mu: int
) -> Tuple[Tuple[int, int], ...]:
    """(v, mu) pairs admitting a ``t-(v, r, mu)`` design, mu <= max_mu, descending v."""
    pairs: List[Tuple[int, int]] = []
    for v in range(max_v, r - 1, -1):
        if max_mu == 1:
            if existence(v, r, t) >= tier:
                pairs.append((v, 1))
        else:
            mu = min_lambda(v, r, t, max_mu, tier=tier)
            if mu is not None:
                pairs.append((v, mu))
    return tuple(pairs)


def best_chunk_decomposition(
    n: int,
    r: int,
    t: int,
    tier: Existence = Existence.KNOWN,
    max_mu: int = 1,
    max_chunks: int = 1,
) -> List[Chunk]:
    """Up to ``max_chunks`` catalogued orders, total <= n, maximizing capacity.

    Capacity of a decomposition is proportional to ``sum_i C(v_i, t)`` (per
    unit lambda), which is what the search maximizes. Branch and bound over
    orders in descending size: since ``C(v, t)`` is increasing in ``v``, the
    remaining-chunk bound ``slots * C(v_current, t)`` prunes aggressively.
    """
    orders = _admissible_orders(r, t, n, tier, max_mu)
    if not orders:
        return []
    best_value = 0
    best_combo: List[Tuple[int, int]] = []

    def recurse(
        budget: int, slots: int, start: int, value: int, combo: List[Tuple[int, int]]
    ) -> None:
        nonlocal best_value, best_combo
        if value > best_value:
            best_value = value
            best_combo = list(combo)
        if slots == 0:
            return
        for i in range(start, len(orders)):
            v, mu = orders[i]
            if v > budget:
                continue
            gain = binom(v, t)
            if value + gain * slots <= best_value:
                break  # orders are descending; nothing later can catch up
            combo.append((v, mu))
            recurse(budget - v, slots - 1, i, value + gain, combo)
            combo.pop()

    recurse(n, max_chunks, 0, 0, [])
    return [Chunk(nx=v, mu=mu) for v, mu in best_combo]


def ideal_capacity_numerator(n: int, t: int) -> int:
    """``C(n, t)``: the Lemma-1 ideal, up to the shared ``1/C(r, t)`` factor."""
    return binom(n, t)


def capacity_gap(
    n: int,
    r: int,
    x: int,
    tier: Existence = Existence.KNOWN,
    max_mu: int = 1,
    max_chunks: int = 3,
) -> float:
    """The paper's capacity gap: 1 - achievable / ideal (0 is perfect, 1 is none).

    Matches Figs. 5-6: ideal is ``floor(C(n,t)/C(r,t))`` with a single ideal
    system on all ``n`` nodes; achievable comes from the best decomposition
    into at most ``max_chunks`` catalogued systems.
    """
    t = x + 1
    if t == r:
        return 0.0
    if x == 0:
        achievable = r * (n // r)  # points covered by the partition
        return 1.0 - achievable / n if n else 1.0
    chunks = best_chunk_decomposition(
        n, r, t, tier=tier, max_mu=max_mu, max_chunks=max_chunks
    )
    ideal = binom(n, t)
    achieved = sum(binom(chunk.nx, t) for chunk in chunks)
    return 1.0 - achieved / ideal


def select_combo_subsystems(
    n: int,
    r: int,
    s: int,
    tier: Existence = Existence.KNOWN,
    max_mu: int = 1,
    max_chunks: int = 1,
) -> Tuple[Optional[Subsystem], ...]:
    """One subsystem per stratum ``x in [s]`` for a Combo placement."""
    if not 1 <= s <= r:
        raise ValueError(f"need 1 <= s <= r, got s={s}, r={r}")
    return tuple(
        select_subsystem(n, r, x, tier=tier, max_mu=max_mu, max_chunks=max_chunks)
        for x in range(s)
    )
