"""Availability evaluation: Definition 1 tied to the adversary engines.

Single-cell evaluation and whole grids both route through the batched
attack engine (:mod:`repro.core.batch`), so the incidence structure is
built once per placement (and kept warm across calls via the process
engine cache), searches share incumbents across cells, and repeated
identical evaluations are served from the attack-result memo.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.adversary import AttackResult
from repro.core.batch import AttackCell, batch_attack
from repro.core.placement import Placement


@dataclass(frozen=True)
class AvailabilityReport:
    """``Avail(pi)`` for one placement under worst-case ``k`` failures."""

    b: int
    k: int
    s: int
    available: int  # surviving objects (b - damage)
    attack: AttackResult

    @property
    def failed(self) -> int:
        return self.b - self.available

    @property
    def fraction_available(self) -> float:
        return self.available / self.b

    @property
    def exact(self) -> bool:
        """True iff `available` is exactly Avail(pi), not just an upper bound."""
        return self.attack.exact


def evaluate_availability(
    placement: Placement,
    k: int,
    s: int,
    effort: str = "auto",
    rng: Optional[random.Random] = None,
    backend: Optional[str] = None,
    cache: Optional[bool] = None,
) -> AvailabilityReport:
    """Compute (or upper-bound) ``Avail(pi)`` = b - worst-case damage.

    With a heuristic adversary (``exact=False`` on the attack) the reported
    availability is an *upper* bound on the true worst case: the adversary
    may have missed a better attack, never overstated one. ``cache``
    overrides the attack-memo default (memoization only applies when
    ``rng`` is None — see :mod:`repro.core.batch`).
    """
    [attack] = batch_attack(
        placement, [AttackCell(k, s, effort)], backend=backend, rng=rng,
        cache=cache,
    )
    return AvailabilityReport(
        b=placement.b,
        k=k,
        s=s,
        available=placement.b - attack.damage,
        attack=attack,
    )


def evaluate_availability_grid(
    placement: Placement,
    cells: Sequence[AttackCell],
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    seed: int = 0,
    cache: Optional[bool] = None,
) -> List[AvailabilityReport]:
    """Batched ``Avail(pi)`` over a grid of (k, s, effort) cells.

    One warm engine per placement structure, shared kernels per threshold,
    chained incumbents, memoized repeats (and optional multiprocessing) —
    see :func:`repro.core.batch.batch_attack`. Reports align with ``cells``.
    """
    attacks = batch_attack(
        placement, cells, backend=backend, workers=workers, seed=seed,
        cache=cache,
    )
    return [
        AvailabilityReport(
            b=placement.b,
            k=cell.k,
            s=cell.s,
            available=placement.b - attack.damage,
            attack=attack,
        )
        for cell, attack in zip(cells, attacks)
    ]


def survivors_under(
    placement: Placement, failed_nodes: Tuple[int, ...], s: int
) -> int:
    """Objects surviving one concrete failure set (no search)."""
    return len(placement.surviving_objects(failed_nodes, s))
