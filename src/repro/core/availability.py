"""Availability evaluation: Definition 1 tied to the adversary engines."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.adversary import AttackResult, best_attack
from repro.core.placement import Placement


@dataclass(frozen=True)
class AvailabilityReport:
    """``Avail(pi)`` for one placement under worst-case ``k`` failures."""

    b: int
    k: int
    s: int
    available: int  # surviving objects (b - damage)
    attack: AttackResult

    @property
    def failed(self) -> int:
        return self.b - self.available

    @property
    def fraction_available(self) -> float:
        return self.available / self.b

    @property
    def exact(self) -> bool:
        """True iff `available` is exactly Avail(pi), not just an upper bound."""
        return self.attack.exact


def evaluate_availability(
    placement: Placement,
    k: int,
    s: int,
    effort: str = "auto",
    rng: Optional[random.Random] = None,
) -> AvailabilityReport:
    """Compute (or upper-bound) ``Avail(pi)`` = b - worst-case damage.

    With a heuristic adversary (``exact=False`` on the attack) the reported
    availability is an *upper* bound on the true worst case: the adversary
    may have missed a better attack, never overstated one.
    """
    attack = best_attack(placement, k, s, effort=effort, rng=rng)
    return AvailabilityReport(
        b=placement.b,
        k=k,
        s=s,
        available=placement.b - attack.damage,
        attack=attack,
    )


def survivors_under(
    placement: Placement, failed_nodes: Tuple[int, ...], s: int
) -> int:
    """Objects surviving one concrete failure set (no search)."""
    return len(placement.surviving_objects(failed_nodes, s))
