"""The paper's contribution: placement strategies, bounds, adversary, analysis.

Public API of the reproduction: Simple(x, λ) and Combo placements built on
t-packings (Sec. III), the Random baseline (Sec. IV), availability bounds
(Lemmas 1–3, Theorem 1), the worst-case adversary ladder (Definition 1),
and the analytical treatment of Random under adaptive failures (Theorem 2,
Lemma 4).
"""

from repro.core.adaptive import AdaptiveComboPlacement
from repro.core.artifact import (
    ArtifactError,
    load_npz,
    load_placement,
    save_npz,
    save_placement,
)
from repro.core.adversary import (
    AttackResult,
    BranchAndBoundAdversary,
    ExhaustiveAdversary,
    GreedyAdversary,
    LocalSearchAdversary,
    best_attack,
    damage,
)
from repro.core.availability import (
    AvailabilityReport,
    evaluate_availability,
    evaluate_availability_grid,
    survivors_under,
)
from repro.core.batch import (
    AttackCell,
    AttackEngine,
    attack_grid,
    batch_attack,
    engine_for,
    worker_count,
)
from repro.core.bounds import (
    CompetitiveConstants,
    lb_avail_combo,
    lb_avail_simple,
    minimal_lambda,
    simple_capacity,
    theorem1_constants,
)
from repro.core.combo import ComboPlan, ComboStrategy
from repro.core.inspect import (
    PackingProfile,
    PlacementAudit,
    audit_placement,
    certified_availability,
    expected_random_multiplicity,
    packing_profile,
)
from repro.core.params import (
    SystemParams,
    majority_threshold,
    read_one_threshold,
    write_all_threshold,
)
from repro.core.kernels import (
    BitsetKernel,
    DamageKernel,
    DeltaIncidence,
    Incidence,
    NumpyKernel,
    PythonKernel,
    force_backend,
    make_kernel,
    resolve_backend,
)
from repro.core.placement import Placement, PlacementError
from repro.core.random_placement import RandomStrategy, UnconstrainedRandomStrategy
from repro.core.rand_analysis import (
    alpha,
    failure_probability,
    lemma4_upper_bound,
    log_vulnerability,
    max_vulnerable_objects,
    pr_avail_fraction,
    pr_avail_rnd,
)
from repro.core.simple import SimpleStrategy
from repro.core.subsystems import (
    Chunk,
    Subsystem,
    best_chunk_decomposition,
    capacity_gap,
    select_combo_subsystems,
    select_subsystem,
)

__all__ = [
    "AdaptiveComboPlacement",
    "ArtifactError",
    "AttackCell",
    "AttackEngine",
    "AttackResult",
    "AvailabilityReport",
    "BitsetKernel",
    "BranchAndBoundAdversary",
    "Chunk",
    "ComboPlan",
    "ComboStrategy",
    "CompetitiveConstants",
    "DamageKernel",
    "DeltaIncidence",
    "ExhaustiveAdversary",
    "GreedyAdversary",
    "Incidence",
    "LocalSearchAdversary",
    "NumpyKernel",
    "PackingProfile",
    "Placement",
    "PlacementAudit",
    "PlacementError",
    "PythonKernel",
    "RandomStrategy",
    "SimpleStrategy",
    "Subsystem",
    "SystemParams",
    "UnconstrainedRandomStrategy",
    "attack_grid",
    "batch_attack",
    "alpha",
    "audit_placement",
    "best_attack",
    "best_chunk_decomposition",
    "capacity_gap",
    "certified_availability",
    "damage",
    "engine_for",
    "load_npz",
    "load_placement",
    "save_npz",
    "save_placement",
    "evaluate_availability",
    "evaluate_availability_grid",
    "expected_random_multiplicity",
    "failure_probability",
    "force_backend",
    "lb_avail_combo",
    "lb_avail_simple",
    "lemma4_upper_bound",
    "log_vulnerability",
    "majority_threshold",
    "make_kernel",
    "max_vulnerable_objects",
    "minimal_lambda",
    "packing_profile",
    "pr_avail_fraction",
    "pr_avail_rnd",
    "read_one_threshold",
    "resolve_backend",
    "select_combo_subsystems",
    "select_subsystem",
    "simple_capacity",
    "survivors_under",
    "theorem1_constants",
    "worker_count",
    "write_all_threshold",
]
