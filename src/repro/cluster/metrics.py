"""Measurement: availability reports and load statistics for scenarios."""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Sequence


@dataclass(frozen=True)
class LoadStats:
    """Replica-load distribution across nodes."""

    minimum: int
    maximum: int
    mean: float
    stdev: float

    @staticmethod
    def from_loads(loads: Sequence[int]) -> "LoadStats":
        if not loads:
            raise ValueError("no loads to summarize")
        return LoadStats(
            minimum=min(loads),
            maximum=max(loads),
            mean=statistics.fmean(loads),
            stdev=statistics.pstdev(loads) if len(loads) > 1 else 0.0,
        )

    @property
    def imbalance(self) -> float:
        """max/mean — 1.0 is perfectly balanced."""
        return self.maximum / self.mean if self.mean else float("inf")


@dataclass(frozen=True)
class ScenarioReport:
    """Outcome of one failure scenario on one placement."""

    strategy: str
    b: int
    k: int
    s: int
    failed_nodes: tuple
    objects_lost: int
    load: LoadStats

    @property
    def objects_available(self) -> int:
        return self.b - self.objects_lost

    @property
    def fraction_available(self) -> float:
        return self.objects_available / self.b if self.b else 1.0


@dataclass
class AvailabilityTimeline:
    """Availability over a churn/failure trace (adaptive-placement metric)."""

    samples: List[Dict[str, float]] = field(default_factory=list)

    def record(self, step: int, b: int, available: int, lower_bound: int) -> None:
        self.samples.append(
            {
                "step": step,
                "objects": b,
                "available": available,
                "lower_bound": lower_bound,
            }
        )

    def worst_fraction(self) -> float:
        if not self.samples:
            return 1.0
        return min(
            s["available"] / s["objects"] for s in self.samples if s["objects"]
        )

    def bound_violations(self) -> int:
        """How many samples fell below their Lemma-3 lower bound (must be 0)."""
        return sum(1 for s in self.samples if s["available"] < s["lower_bound"])
