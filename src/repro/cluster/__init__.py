"""Cluster simulation substrate: nodes, failures, liveness, scenarios.

The execution environment the placements deploy into: a simulated cluster
with per-node capacity and rack topology, failure injectors at three
adversity levels (random, rack-correlated, worst-case), quorum-style
liveness rules, and scenario drivers that tie placements to measurements.
"""

from repro.cluster.cluster import Cluster, ClusterError
from repro.cluster.engine import (
    compare_strategies,
    run_attack_scenario,
    run_churn_scenario,
    run_random_failure_scenario,
)
from repro.cluster.failures import (
    CorrelatedInjector,
    RandomInjector,
    WorstCaseInjector,
    fail_specific,
)
from repro.cluster.metrics import AvailabilityTimeline, LoadStats, ScenarioReport
from repro.cluster.node import Node, NodeState
from repro.cluster.objects import (
    LivenessRule,
    StoredObject,
    majority_quorum_rule,
    read_one_rule,
    threshold_rule,
    write_all_rule,
)
from repro.cluster.workload import (
    ChurnEvent,
    ChurnKind,
    churn_trace,
    geometric_object_counts,
)

__all__ = [
    "AvailabilityTimeline",
    "ChurnEvent",
    "ChurnKind",
    "Cluster",
    "ClusterError",
    "CorrelatedInjector",
    "LivenessRule",
    "LoadStats",
    "Node",
    "NodeState",
    "RandomInjector",
    "ScenarioReport",
    "StoredObject",
    "WorstCaseInjector",
    "churn_trace",
    "compare_strategies",
    "fail_specific",
    "geometric_object_counts",
    "majority_quorum_rule",
    "read_one_rule",
    "run_attack_scenario",
    "run_churn_scenario",
    "run_random_failure_scenario",
    "threshold_rule",
    "write_all_rule",
]
