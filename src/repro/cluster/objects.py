"""Stored objects and liveness rules.

The paper's model: an object fails once ``s`` of its ``r`` replicas are on
failed nodes, with ``s`` decoupled from ``r`` to capture different
replication protocols (Sec. I). The presets here name the three standard
protocol shapes the paper motivates:

* read-one / primary-backup — any surviving replica keeps the object alive
  (``s = r``);
* majority quorum — the object needs a live majority (``s = ceil(r/2)``);
* write-all — a single replica failure already blocks the object (``s = 1``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

from repro.core.params import (
    majority_threshold,
    read_one_threshold,
    write_all_threshold,
)


@dataclass(frozen=True)
class LivenessRule:
    """Threshold semantics: the object dies at ``s`` replica failures."""

    name: str
    s: int

    def object_alive(self, replicas_failed: int) -> bool:
        return replicas_failed < self.s


def read_one_rule(r: int) -> LivenessRule:
    """Alive while at least one replica survives (primary-backup[s])."""
    return LivenessRule(name="read-one", s=read_one_threshold(r))


def majority_quorum_rule(r: int) -> LivenessRule:
    """Alive while a majority of replicas survives (quorum replication)."""
    return LivenessRule(name="majority-quorum", s=majority_threshold(r))


def write_all_rule() -> LivenessRule:
    """Alive only while all replicas survive (write-all / s = 1)."""
    return LivenessRule(name="write-all", s=write_all_threshold())


def threshold_rule(s: int) -> LivenessRule:
    """An explicit fatality threshold (the paper's raw ``s``)."""
    if s < 1:
        raise ValueError(f"threshold must be >= 1, got {s}")
    return LivenessRule(name=f"threshold-{s}", s=s)


@dataclass(frozen=True)
class StoredObject:
    """One replicated object and where its replicas live."""

    obj_id: int
    replica_nodes: FrozenSet[int]

    @property
    def r(self) -> int:
        return len(self.replica_nodes)

    def replicas_failed(self, failed_nodes: FrozenSet[int]) -> int:
        return len(self.replica_nodes & failed_nodes)

    def alive(self, failed_nodes: FrozenSet[int], rule: LivenessRule) -> bool:
        return rule.object_alive(self.replicas_failed(failed_nodes))
