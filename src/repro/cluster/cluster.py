"""The simulated cluster: nodes, hosted replicas, failure state."""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional

from repro.cluster.node import Node, NodeState
from repro.cluster.objects import LivenessRule, StoredObject
from repro.core.placement import Placement


class ClusterError(RuntimeError):
    """Raised on invalid cluster operations (double faults, unknown ids...)."""


class Cluster:
    """``n`` nodes hosting replicated objects, with failure injection.

    The cluster is the execution substrate for placements: apply a
    :class:`~repro.core.placement.Placement`, fail nodes (by hand or via
    the injectors in :mod:`repro.cluster.failures`), and query object
    liveness under a :class:`~repro.cluster.objects.LivenessRule`.
    """

    def __init__(
        self,
        n: int,
        capacity: Optional[int] = None,
        racks: int = 1,
    ) -> None:
        if n < 1:
            raise ClusterError(f"need at least one node, got {n}")
        if racks < 1:
            raise ClusterError(f"need at least one rack, got {racks}")
        self.nodes: List[Node] = [
            Node(node_id=i, capacity=capacity, rack=i % racks) for i in range(n)
        ]
        self.objects: Dict[int, StoredObject] = {}

    @property
    def n(self) -> int:
        return len(self.nodes)

    @property
    def racks(self) -> int:
        return max(node.rack for node in self.nodes) + 1

    # -- placement ---------------------------------------------------------

    def apply_placement(self, placement: Placement) -> None:
        """Host every object of ``placement`` (object ids offset past existing)."""
        if placement.n != self.n:
            raise ClusterError(
                f"placement is for {placement.n} nodes, cluster has {self.n}"
            )
        base = max(self.objects) + 1 if self.objects else 0
        for i, replica_nodes in enumerate(placement.replica_sets):
            self.add_object(base + i, replica_nodes)

    def add_object(self, obj_id: int, replica_nodes: Iterable[int]) -> None:
        if obj_id in self.objects:
            raise ClusterError(f"object {obj_id} already exists")
        nodes = frozenset(replica_nodes)
        for node_id in nodes:
            if not 0 <= node_id < self.n:
                raise ClusterError(f"node {node_id} outside [0, {self.n})")
        for node_id in nodes:
            self.nodes[node_id].host(obj_id)
        self.objects[obj_id] = StoredObject(obj_id=obj_id, replica_nodes=nodes)

    def remove_object(self, obj_id: int) -> None:
        if obj_id not in self.objects:
            raise ClusterError(f"object {obj_id} does not exist")
        for node_id in self.objects[obj_id].replica_nodes:
            self.nodes[node_id].evict(obj_id)
        del self.objects[obj_id]

    # -- failures ------------------------------------------------------------

    def fail_nodes(self, node_ids: Iterable[int]) -> None:
        ids = list(node_ids)
        for node_id in ids:
            if not 0 <= node_id < self.n:
                raise ClusterError(f"node {node_id} outside [0, {self.n})")
            if not self.nodes[node_id].is_up:
                raise ClusterError(f"node {node_id} is already failed")
        for node_id in ids:
            self.nodes[node_id].fail()

    def recover_all(self) -> None:
        for node in self.nodes:
            node.recover()

    def failed_nodes(self) -> FrozenSet[int]:
        return frozenset(
            node.node_id for node in self.nodes if node.state == NodeState.FAILED
        )

    # -- liveness ------------------------------------------------------------

    def live_objects(self, rule: LivenessRule) -> List[int]:
        failed = self.failed_nodes()
        return [
            obj.obj_id
            for obj in self.objects.values()
            if obj.alive(failed, rule)
        ]

    def dead_objects(self, rule: LivenessRule) -> List[int]:
        failed = self.failed_nodes()
        return [
            obj.obj_id
            for obj in self.objects.values()
            if not obj.alive(failed, rule)
        ]

    def availability(self, rule: LivenessRule) -> float:
        if not self.objects:
            return 1.0
        return len(self.live_objects(rule)) / len(self.objects)

    # -- introspection ---------------------------------------------------------

    def loads(self) -> List[int]:
        return [node.load for node in self.nodes]

    def placement_snapshot(self) -> Placement:
        """The current object population as a Placement (ids renumbered)."""
        if not self.objects:
            raise ClusterError("cluster hosts no objects")
        from array import array

        # Replica sets were validated at add_object time (in-range,
        # distinct via frozenset), so the snapshot takes the trusted
        # array path — no per-object revalidation per attack snapshot.
        rows = array("i")
        r = len(next(iter(self.objects.values())).replica_nodes)
        for obj_id in sorted(self.objects):
            nodes = self.objects[obj_id].replica_nodes
            if len(nodes) != r:
                raise ClusterError(
                    f"object {obj_id} has {len(nodes)} replicas, expected {r}"
                )
            rows.extend(sorted(nodes))
        return Placement.from_arrays(
            self.n, rows, r=r, strategy="snapshot", validate=False
        )

    def __repr__(self) -> str:
        return (
            f"Cluster(n={self.n}, objects={len(self.objects)}, "
            f"failed={len(self.failed_nodes())})"
        )
