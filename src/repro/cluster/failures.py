"""Failure injectors: who decides which k nodes die.

Three adversity levels, matching the paper's comparison axes:

* :class:`RandomInjector` — nodes fail uniformly at random (the model of
  the prior work the paper contrasts itself with, e.g. Yu & Gibbons);
* :class:`CorrelatedInjector` — a whole rack (or another correlated group)
  fails together, a common practical failure domain;
* :class:`WorstCaseInjector` — the paper's adversary: picks the k nodes
  that kill the most objects, via the :mod:`repro.core.adversary` engines.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.cluster.cluster import Cluster, ClusterError
from repro.cluster.objects import LivenessRule
from repro.core.batch import AttackCell, AttackEngine, engine_for


class RandomInjector:
    """Fail ``k`` uniformly random up-nodes."""

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self.rng = rng or random.Random()

    def select(self, cluster: Cluster, k: int, rule: LivenessRule) -> List[int]:
        up = [node.node_id for node in cluster.nodes if node.is_up]
        if k > len(up):
            raise ClusterError(f"cannot fail {k} of {len(up)} up nodes")
        return sorted(self.rng.sample(up, k))

    def inject(self, cluster: Cluster, k: int, rule: LivenessRule) -> List[int]:
        nodes = self.select(cluster, k, rule)
        cluster.fail_nodes(nodes)
        return nodes


class CorrelatedInjector:
    """Fail all nodes of one failure domain (rack), chosen at random."""

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self.rng = rng or random.Random()

    def select(self, cluster: Cluster, rack: Optional[int] = None) -> List[int]:
        if rack is None:
            rack = self.rng.randrange(cluster.racks)
        nodes = [
            node.node_id
            for node in cluster.nodes
            if node.rack == rack and node.is_up
        ]
        if not nodes:
            raise ClusterError(f"rack {rack} has no up nodes")
        return nodes

    def inject(self, cluster: Cluster, rack: Optional[int] = None) -> List[int]:
        nodes = self.select(cluster, rack)
        cluster.fail_nodes(nodes)
        return nodes


class WorstCaseInjector:
    """The paper's adversary: fail the k nodes that disable the most objects.

    Search runs through the warm attack-engine layer; the damage kernel
    follows the ``REPRO_KERNEL`` knob unless ``backend`` overrides it.
    Cluster snapshots are keyed structurally in the engine's warm cache,
    so re-attacking an unchanged population — the common case in churn
    scenarios, which re-inject every few events — reuses the incidence
    and, when ``rng`` is None (the deterministic default, deriving cell
    randomness from ``seed``), returns the memoized attack outright.
    (Each injection is a single attack cell, so worker fan-out does not
    apply here — use :func:`repro.cluster.engine.run_attack_grid` to
    evaluate whole k-grids in one batched, parallelizable pass.)

    An *online* adversary — one that re-attacks the same cluster as it
    mutates — can skip the per-injection snapshot + fingerprint + rebuild
    entirely by pinning a delta-aware ``engine``
    (:class:`repro.core.batch.AttackEngine`): the caller keeps the engine
    aligned with the cluster population via
    :meth:`~repro.core.batch.AttackEngine.apply_delta` and every
    injection reuses the warm kernel state. The lifetime simulator
    (:mod:`repro.sim`) is the canonical such caller. The last search
    outcome is kept on :attr:`last_result` so drivers can record damage
    without re-deriving it from cluster state.
    """

    def __init__(
        self,
        effort: str = "auto",
        rng: Optional[random.Random] = None,
        backend: Optional[str] = None,
        seed: int = 0,
        cache: Optional[bool] = None,
        engine: Optional[AttackEngine] = None,
        lanes: Optional[int] = None,
    ) -> None:
        self.effort = effort
        self.rng = rng
        self.backend = backend
        self.seed = seed
        self.cache = cache
        self.engine = engine
        self.lanes = lanes
        self.last_result = None

    def select(
        self,
        cluster: Cluster,
        k: int,
        rule: LivenessRule,
        warm_start: Optional[Sequence[int]] = None,
    ) -> List[int]:
        engine = self.engine
        if engine is None:
            engine = engine_for(cluster.placement_snapshot(), self.backend)
        attack = engine.attack(
            AttackCell(k, rule.s, self.effort),
            seed=self.seed,
            rng=self.rng,
            warm_start=warm_start,
            cache=self.cache,
            lanes=self.lanes,
        )
        self.last_result = attack
        return sorted(attack.nodes)

    def inject(
        self,
        cluster: Cluster,
        k: int,
        rule: LivenessRule,
        warm_start: Optional[Sequence[int]] = None,
    ) -> List[int]:
        nodes = self.select(cluster, k, rule, warm_start=warm_start)
        cluster.fail_nodes(nodes)
        return nodes


def fail_specific(cluster: Cluster, nodes: Sequence[int]) -> List[int]:
    """Fail an explicit node list (scenario scripting helper)."""
    node_list = sorted(nodes)
    cluster.fail_nodes(node_list)
    return node_list
