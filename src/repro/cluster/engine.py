"""Scenario driver: placement -> failure injection -> measurement."""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.failures import RandomInjector, WorstCaseInjector, fail_specific
from repro.cluster.metrics import LoadStats, ScenarioReport
from repro.cluster.objects import LivenessRule
from repro.core.batch import AttackCell, batch_attack
from repro.core.placement import Placement
from repro.util.rng import derive_rng


def run_attack_scenario(
    placement: Placement,
    k: int,
    rule: LivenessRule,
    effort: str = "auto",
    racks: int = 1,
    rng: Optional[random.Random] = None,
    seed: int = 0,
) -> ScenarioReport:
    """Deploy ``placement`` on a fresh cluster and apply a worst-case attack.

    The attack goes through the warm batch engine: repeating a scenario on
    a structurally unchanged placement reuses kernel state and (with the
    default derived randomness, ``rng=None``) the memoized attack result.
    """
    cluster = Cluster(placement.n, racks=racks)
    cluster.apply_placement(placement)
    injector = WorstCaseInjector(effort=effort, rng=rng, seed=seed)
    failed = injector.inject(cluster, k, rule)
    lost = len(cluster.dead_objects(rule))
    return ScenarioReport(
        strategy=placement.strategy or "unknown",
        b=placement.b,
        k=k,
        s=rule.s,
        failed_nodes=tuple(failed),
        objects_lost=lost,
        load=LoadStats.from_loads(cluster.loads()),
    )


def run_attack_grid(
    placement: Placement,
    k_values: Sequence[int],
    rule: LivenessRule,
    effort: str = "auto",
    racks: int = 1,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    seed: int = 0,
) -> List[ScenarioReport]:
    """Deploy once, then worst-case attack every ``k`` in one batched pass.

    The whole grid shares one warm engine (incidence + per-threshold
    kernels, persistent across calls) and chains incumbents (the k-attack
    seeds the k+1 search) via the batch engine — the failed nodes are then
    replayed on the cluster (recovering between cells) so each report
    reflects real cluster state, not just search output. Re-running the
    same grid is served from the attack memo.
    """
    cluster = Cluster(placement.n, racks=racks)
    cluster.apply_placement(placement)
    cells = [AttackCell(k, rule.s, effort) for k in k_values]
    attacks = batch_attack(
        placement, cells, backend=backend, workers=workers, seed=seed
    )
    reports = []
    for cell, attack in zip(cells, attacks):
        failed = fail_specific(cluster, attack.nodes)
        lost = len(cluster.dead_objects(rule))
        reports.append(
            ScenarioReport(
                strategy=placement.strategy or "unknown",
                b=placement.b,
                k=cell.k,
                s=rule.s,
                failed_nodes=tuple(failed),
                objects_lost=lost,
                load=LoadStats.from_loads(cluster.loads()),
            )
        )
        cluster.recover_all()
    return reports


def run_random_failure_scenario(
    placement: Placement,
    k: int,
    rule: LivenessRule,
    repetitions: int = 20,
    racks: int = 1,
    rng: Optional[random.Random] = None,
    seed: int = 0,
) -> List[ScenarioReport]:
    """Deploy once, fail k random nodes ``repetitions`` times (recovering between).

    Parameter parity with :func:`run_attack_scenario`: ``racks`` deploys
    onto the same rack topology (uniform node draws are rack-oblivious,
    so it changes no numbers — it exists so callers can swap injectors
    without reshaping the call) and, with ``rng=None``, the failure
    draws derive deterministically from ``(seed, k, s)`` — the same
    derived-seed discipline as the attack scenarios, so repeated runs
    replay bit-for-bit without threading a generator through.
    """
    rng = rng or derive_rng(seed, "random-failures", k, rule.s)
    cluster = Cluster(placement.n, racks=racks)
    cluster.apply_placement(placement)
    injector = RandomInjector(rng=rng)
    reports = []
    for _ in range(repetitions):
        failed = injector.inject(cluster, k, rule)
        lost = len(cluster.dead_objects(rule))
        reports.append(
            ScenarioReport(
                strategy=placement.strategy or "unknown",
                b=placement.b,
                k=k,
                s=rule.s,
                failed_nodes=tuple(failed),
                objects_lost=lost,
                load=LoadStats.from_loads(cluster.loads()),
            )
        )
        cluster.recover_all()
    return reports


def compare_strategies(
    placements: List[Placement],
    k: int,
    rule: LivenessRule,
    effort: str = "auto",
) -> List[ScenarioReport]:
    """Worst-case-attack every placement; one report per strategy."""
    return [run_attack_scenario(p, k, rule, effort=effort) for p in placements]


def run_churn_scenario(
    adaptive,
    events,
    k: int,
    rule: LivenessRule,
    measure_every: int = 16,
    effort: str = "fast",
    on_sample: Optional[Callable[[int, int, int, int], None]] = None,
):
    """Drive an AdaptiveComboPlacement through a churn trace with periodic attacks.

    Every ``measure_every`` events the current population is snapshotted,
    attacked with a worst-case injector, and (optionally) reported through
    ``on_sample(step, b, available, lower_bound)``. Snapshots of an
    unchanged population hit the attack memo (structural fingerprint
    keying), so measurement frequency can be cranked up without paying for
    redundant searches.
    """
    from repro.cluster.workload import ChurnKind  # local to avoid cycle at import

    rng = random.Random(1)
    live: List[int] = []
    for step, event in enumerate(events):
        if event.kind == ChurnKind.ARRIVAL:
            live.append(adaptive.add_object())
        elif live:
            victim = live.pop(rng.randrange(len(live)))
            adaptive.remove_object(victim)
        if live and step % measure_every == measure_every - 1:
            placement = adaptive.placement()
            report = run_attack_scenario(placement, k, rule, effort=effort)
            if on_sample is not None:
                on_sample(
                    step,
                    placement.b,
                    report.objects_available,
                    adaptive.lower_bound(),
                )
    return live
