"""Synthetic workloads: object populations and churn traces.

The paper evaluates static object populations at geometric sizes
(b = 600, 1200, ..., 38400) and mentions object churn as future work; this
module generates both shapes so examples and the adaptive-placement
extension have realistic drivers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Iterator, List, Optional


def geometric_object_counts(start: int = 600, doublings: int = 6) -> List[int]:
    """The paper's object-count ladder: start, 2*start, ..., start * 2^doublings."""
    if start < 1 or doublings < 0:
        raise ValueError(
            f"need start >= 1 and doublings >= 0, got {start}, {doublings}"
        )
    return [start << i for i in range(doublings + 1)]


class ChurnKind(Enum):
    ARRIVAL = "arrival"
    DEPARTURE = "departure"


@dataclass(frozen=True)
class ChurnEvent:
    """One workload step: an object arrives or a random live object departs."""

    kind: ChurnKind
    # For departures the driver picks the victim; traces stay placement-free.


def churn_trace(
    steps: int,
    arrival_probability: float = 0.6,
    warmup_arrivals: int = 32,
    rng: Optional[random.Random] = None,
) -> Iterator[ChurnEvent]:
    """A biased birth–death trace: warmup arrivals, then mixed churn.

    ``arrival_probability > 0.5`` grows the population over time, matching
    the "new objects come and go" regime of the paper's Sec. IV-D.
    """
    if not 0.0 <= arrival_probability <= 1.0:
        raise ValueError(
            f"arrival_probability must be in [0, 1], got {arrival_probability}"
        )
    if steps < 0 or warmup_arrivals < 0:
        raise ValueError("steps and warmup_arrivals must be non-negative")
    rng = rng or random.Random()
    for _ in range(warmup_arrivals):
        yield ChurnEvent(kind=ChurnKind.ARRIVAL)
    for _ in range(steps):
        if rng.random() < arrival_probability:
            yield ChurnEvent(kind=ChurnKind.ARRIVAL)
        else:
            yield ChurnEvent(kind=ChurnKind.DEPARTURE)
