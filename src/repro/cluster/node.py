"""Node model for the cluster simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Set


class NodeState(Enum):
    """Lifecycle of a simulated node; the paper's model is UP/FAILED."""

    UP = "up"
    FAILED = "failed"


@dataclass
class Node:
    """A physical node hosting object replicas.

    Capacity is the maximum number of replicas the node may host
    (``None`` = unbounded); the Random strategy's load quota and the
    paper's per-node capacity discussion (Sec. IV-D) map onto it.
    """

    node_id: int
    capacity: Optional[int] = None
    rack: int = 0
    state: NodeState = NodeState.UP
    replicas: Set[int] = field(default_factory=set)

    @property
    def is_up(self) -> bool:
        return self.state == NodeState.UP

    @property
    def load(self) -> int:
        return len(self.replicas)

    def host(self, obj_id: int) -> None:
        """Place one replica of ``obj_id`` here."""
        if obj_id in self.replicas:
            raise ValueError(
                f"node {self.node_id} already hosts a replica of object {obj_id}"
            )
        if self.capacity is not None and self.load >= self.capacity:
            raise ValueError(
                f"node {self.node_id} is full (capacity {self.capacity})"
            )
        self.replicas.add(obj_id)

    def evict(self, obj_id: int) -> None:
        """Remove this node's replica of ``obj_id``."""
        if obj_id not in self.replicas:
            raise ValueError(
                f"node {self.node_id} hosts no replica of object {obj_id}"
            )
        self.replicas.discard(obj_id)

    def fail(self) -> None:
        self.state = NodeState.FAILED

    def recover(self) -> None:
        self.state = NodeState.UP

    def __repr__(self) -> str:
        return (
            f"Node({self.node_id}, {self.state.value}, load={self.load}, "
            f"rack={self.rack})"
        )
