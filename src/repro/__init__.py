"""repro: worst-case availability replica placement (ICDCS 2015 reproduction).

A from-scratch implementation of Li, Gao & Reiter, *Replica Placement for
Availability in the Worst Case* (ICDCS 2015): t-packing-based Simple and
Combo placement strategies, the load-balanced Random baseline, exact and
heuristic worst-case failure adversaries, the analytical availability
bounds (Lemmas 1-4, Theorems 1-2), the combinatorial design substrate the
placements are built from, and a cluster simulator for end-to-end
scenarios.

Quickstart::

    from repro import ComboStrategy, RandomStrategy, evaluate_availability

    combo = ComboStrategy(n=71, r=3, s=2)
    plan = combo.plan(b=1200, k=3)          # DP of Sec. III-B1
    placement = combo.place(b=1200, k=3)    # concrete replica sets
    report = evaluate_availability(placement, k=3, s=2)
    assert report.available >= plan.lower_bound

See README.md for the architecture tour and DESIGN.md for the
paper-to-module map.
"""

from repro.core import (
    AdaptiveComboPlacement,
    AttackCell,
    AttackEngine,
    AttackResult,
    AvailabilityReport,
    BranchAndBoundAdversary,
    ComboPlan,
    ComboStrategy,
    DamageKernel,
    ExhaustiveAdversary,
    GreedyAdversary,
    Incidence,
    LocalSearchAdversary,
    Placement,
    PlacementError,
    RandomStrategy,
    SimpleStrategy,
    Subsystem,
    SystemParams,
    UnconstrainedRandomStrategy,
    attack_grid,
    audit_placement,
    batch_attack,
    best_attack,
    capacity_gap,
    certified_availability,
    evaluate_availability,
    evaluate_availability_grid,
    force_backend,
    make_kernel,
    lb_avail_combo,
    lb_avail_simple,
    lemma4_upper_bound,
    majority_threshold,
    minimal_lambda,
    packing_profile,
    pr_avail_rnd,
    select_combo_subsystems,
    select_subsystem,
    simple_capacity,
    theorem1_constants,
)
from repro.sim import LifetimeSimulator, SimConfig, SimReport, simulate

__version__ = "1.0.0"

__all__ = [
    "AdaptiveComboPlacement",
    "AttackCell",
    "AttackEngine",
    "AttackResult",
    "AvailabilityReport",
    "BranchAndBoundAdversary",
    "ComboPlan",
    "ComboStrategy",
    "DamageKernel",
    "ExhaustiveAdversary",
    "GreedyAdversary",
    "Incidence",
    "LifetimeSimulator",
    "LocalSearchAdversary",
    "Placement",
    "PlacementError",
    "RandomStrategy",
    "SimConfig",
    "SimReport",
    "SimpleStrategy",
    "Subsystem",
    "SystemParams",
    "UnconstrainedRandomStrategy",
    "__version__",
    "attack_grid",
    "audit_placement",
    "batch_attack",
    "best_attack",
    "capacity_gap",
    "certified_availability",
    "evaluate_availability",
    "evaluate_availability_grid",
    "force_backend",
    "make_kernel",
    "lb_avail_combo",
    "lb_avail_simple",
    "lemma4_upper_bound",
    "majority_threshold",
    "minimal_lambda",
    "packing_profile",
    "pr_avail_rnd",
    "select_combo_subsystems",
    "select_subsystem",
    "simple_capacity",
    "simulate",
    "theorem1_constants",
]
