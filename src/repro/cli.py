"""Command-line interface: ``python -m repro <command>``.

The commands cover the library's workflows without writing Python:

* ``figure``   — regenerate one of the paper's figures/tables as text
  (``--list`` enumerates them with descriptions);
* ``run``      — run a registered figure or a custom ``spec.json`` sweep
  through the declarative experiment engine (:mod:`repro.exp`) with a
  resumable content-addressed run store (``--resume``, ``--workers``,
  ``--limit``; ``--list`` shows the catalog);
* ``place``    — compute a placement (combo/simple/random) and print it,
  save it as JSON, or save the binary ``.npz`` artifact (``--format``);
* ``attack``   — run the worst-case adversary against a saved placement
  (JSON or ``.npz``);
* ``simulate`` — run the discrete-event cluster lifetime simulator
  (churn + failures + repair + a recurring online adversary) and render
  its time series;
* ``bounds``   — compare the Combo guarantee against Random's probable
  availability for a parameter point (one Fig. 9 cell);
* ``audit``    — measure a placement's overlaps and certify floors;
* ``catalog``  — query the design-existence catalog;
* ``stats``    — render a run manifest's ``"obs"`` metrics snapshot, or
  validate and profile a span trace JSONL (``repro.obs``).

``run``, ``attack``, and ``simulate`` all accept ``--stats`` (record and
print the metrics registry; exported as ``$REPRO_METRICS`` so forked
workers inherit it) and ``--trace <path>`` (append timing spans as JSONL;
exported as ``$REPRO_TRACE``).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
from typing import List, Optional

from repro import __version__
from repro.core.combo import ComboStrategy
from repro.core.rand_analysis import pr_avail_rnd
from repro.core.random_placement import RandomStrategy
from repro.core.simple import SimpleStrategy
from repro.designs.catalog import Existence, existence, largest_order, steiner_orders
from repro.exp.registry import describe_figures, figure_names


def _print_figure_catalog() -> None:
    entries = describe_figures()
    width = max(len(name) for name, _ in entries)
    for name, description in entries:
        print(f"{name:<{width}}  {description}")


def _add_obs_flags(command: argparse.ArgumentParser) -> None:
    """The shared observability flags (run / attack / simulate)."""
    command.add_argument(
        "--stats", action="store_true",
        help="record the metrics registry during this invocation and "
        "print it to stderr afterwards (exported as $REPRO_METRICS=1 "
        "so worker processes inherit it)",
    )
    command.add_argument(
        "--trace", type=str, default=None, metavar="PATH",
        help="append one JSON line per timing span to PATH (exported as "
        "$REPRO_TRACE; inspect with `repro stats PATH`)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Worst-case availability replica placement (ICDCS 2015).",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    figure = commands.add_parser("figure", help="regenerate a paper figure/table")
    figure.add_argument("which", nargs="?", choices=(*figure_names(), "all"),
                        help="figure name (see --list) or 'all'")
    figure.add_argument("--list", action="store_true",
                        help="list registered figures with descriptions")

    run = commands.add_parser(
        "run",
        help="run a figure or spec.json sweep via the experiment engine",
    )
    run.add_argument("target", nargs="?",
                     help="registered figure name (see --list) or a path to "
                     "an experiment spec JSON file")
    run.add_argument("--list", action="store_true",
                     help="list runnable figures with descriptions")
    run.add_argument("--workers", type=int, default=None,
                     help="worker processes for shard fan-out "
                     "(default: $REPRO_WORKERS/1; results are identical "
                     "for every value)")
    run.add_argument("--store", type=str, default=None,
                     help="run-store root directory "
                     "(default: $REPRO_RUNS_DIR or ./runs)")
    run.add_argument("--no-store", action="store_true",
                     help="compute without persisting (not resumable)")
    run.add_argument("--resume", action="store_true",
                     help="continue a partially stored run instead of "
                     "restarting it")
    run.add_argument("--limit", type=int, default=None,
                     help="stop after computing about this many new cells "
                     "(at the next shard boundary), leaving a resumable "
                     "partial run")
    run.add_argument("--threads", type=int, default=None,
                     help="native-kernel thread budget for this run, split "
                     "across --workers processes (default: "
                     "$REPRO_NATIVE_THREADS/cpu count; results are "
                     "identical for every value)")
    run.add_argument("--lanes", type=int, default=None,
                     help="polish-chain lane budget for this run, split "
                     "across --workers processes (default: "
                     "$REPRO_ATTACK_LANES/auto = the thread budget; "
                     "results are identical for every value)")
    run.add_argument("--chaos", type=str, default=None, metavar="PLAN",
                     help="fault-injection plan: a plan JSON file, inline "
                     "JSON, or prob:<p>[:<seed>] shorthand (exported as "
                     "$REPRO_CHAOS so worker processes inherit it)")
    run.add_argument("--shard-timeout", type=float, default=None,
                     help="per-shard wall-clock watchdog in seconds; a "
                     "shard past its deadline is killed and retried "
                     "(default: $REPRO_SHARD_TIMEOUT/off)")
    run.add_argument("--shard-retries", type=int, default=None,
                     help="re-dispatch attempts per failed shard before "
                     "the run errors (default: $REPRO_SHARD_RETRIES/2)")
    run.add_argument("--engine-state", type=str, default=None, metavar="DIR",
                     help="hydrate attack engines from DIR/<fingerprint>"
                     ".npz snapshots and persist cold builds there "
                     "('auto': the run store's per-run engine/ sidecar); "
                     "results are identical either way")
    _add_obs_flags(run)

    place = commands.add_parser("place", help="compute and emit a placement")
    place.add_argument("--strategy", choices=("combo", "simple", "random"),
                       default="combo")
    place.add_argument("--n", type=int, required=True, help="number of nodes")
    place.add_argument("--r", type=int, required=True, help="replicas per object")
    place.add_argument("--b", type=int, required=True, help="number of objects")
    place.add_argument("--s", type=int, default=None,
                       help="fatality threshold (combo; default: majority)")
    place.add_argument("--k", type=int, default=None,
                       help="failures planned for (combo; default: s)")
    place.add_argument("--x", type=int, default=1, help="overlap bound (simple)")
    place.add_argument("--seed", type=int, default=0, help="rng seed (random)")
    place.add_argument("--output", type=str, default=None,
                       help="write the placement here instead of stdout")
    place.add_argument("--format", choices=("auto", "json", "npz"),
                       default="auto",
                       help="artifact format (auto: by --output extension; "
                       "npz is the binary format and needs --output)")
    place.add_argument("--engine-state", type=str, default=None,
                       metavar="PATH",
                       help="also save a checksummed engine-state snapshot "
                       "(placement + packed gain-kernel state) that "
                       "`repro attack --engine-state` rehydrates without "
                       "a cold engine build")

    attack = commands.add_parser("attack", help="worst-case attack a placement")
    attack.add_argument("placement", type=str, nargs="?", default=None,
                        help="placement artifact (JSON or .npz); optional "
                        "when --engine-state supplies the placement")
    attack.add_argument("--engine-state", type=str, default=None,
                        metavar="PATH",
                        help="rehydrate the warm attack engine from an "
                        "engine-state snapshot (see `repro place "
                        "--engine-state`) instead of cold-building it")
    attack.add_argument("--k", type=int, action="append", required=True,
                        help="nodes to fail (repeatable: batches a k-grid "
                        "through one shared incidence structure)")
    attack.add_argument("--s", type=int, required=True, help="fatality threshold")
    attack.add_argument("--effort", choices=("fast", "auto", "exact"),
                        default="auto")
    attack.add_argument("--kernel",
                        choices=("auto", "gain", "bitset", "numpy", "python"),
                        default=None,
                        help="damage-kernel backend (default: $REPRO_KERNEL/"
                        "auto = the incremental gain engine)")
    attack.add_argument("--workers", type=int, default=None,
                        help="worker processes for batched attacks "
                        "(default: $REPRO_WORKERS/1)")
    attack.add_argument("--no-cache", action="store_true",
                        help="always search, skipping the warm attack-result "
                        "memo (default: $REPRO_ATTACK_CACHE/on)")
    attack.add_argument("--threads", type=int, default=None,
                        help="native-kernel thread budget (default: "
                        "$REPRO_NATIVE_THREADS/cpu count; results are "
                        "identical for every value)")
    attack.add_argument("--lanes", type=int, default=None,
                        help="polish-chain lane count for restart chains "
                        "(default: $REPRO_ATTACK_LANES/auto = the thread "
                        "budget; results are identical for every value)")
    attack.add_argument("--mmap", action="store_true",
                        help="memory-map .npz placement rows instead of "
                        "loading them eagerly (lazy page-in at large b)")
    _add_obs_flags(attack)

    simulate = commands.add_parser(
        "simulate",
        help="discrete-event cluster lifetime simulation (repro.sim)",
    )
    simulate.add_argument("--n", type=int, default=31, help="number of nodes")
    simulate.add_argument("--r", type=int, default=3, help="replicas per object")
    simulate.add_argument("--s", type=int, default=2, help="fatality threshold")
    simulate.add_argument("--k", type=int, default=3,
                          help="nodes per adversary strike")
    simulate.add_argument("--events", type=int, default=2000,
                          help="event budget (churn, failures, strikes, ...)")
    simulate.add_argument("--seed", type=int, default=0, help="master seed")
    simulate.add_argument("--racks", type=int, default=4,
                          help="failure-domain count")
    simulate.add_argument("--churn-prob", type=float, default=0.6,
                          help="arrival probability per churn step")
    simulate.add_argument("--warmup", type=int, default=64,
                          help="leading arrivals before mixed churn")
    simulate.add_argument("--failure-rate", type=float, default=0.02,
                          help="random node crashes per time unit (0 = off)")
    simulate.add_argument("--rack-failure-rate", type=float, default=0.0,
                          help="correlated rack crashes per time unit (0 = off)")
    simulate.add_argument("--repair-time", type=float, default=8.0,
                          help="node downtime before recovery")
    simulate.add_argument("--strike-period", type=float, default=16.0,
                          help="time between adversary strikes (0 = off)")
    simulate.add_argument("--measure-period", type=float, default=8.0,
                          help="time between metric samples (0 = off)")
    simulate.add_argument("--effort", choices=("fast", "auto", "exact"),
                          default="fast", help="adversary effort per strike")
    simulate.add_argument("--kernel",
                          choices=("auto", "gain", "bitset", "numpy", "python"),
                          default=None, help="damage-kernel backend")
    simulate.add_argument("--engine", choices=("delta", "rebuild"),
                          default="delta",
                          help="delta-aware warm engine vs per-strike rebuild")
    simulate.add_argument("--lanes", type=int, default=None,
                          help="polish-chain lane count for adversary "
                          "strikes (default: $REPRO_ATTACK_LANES/auto; "
                          "results are identical for every value)")
    simulate.add_argument("--repair", choices=("eager", "lazy", "none"),
                          default="none", help="re-replication policy")
    simulate.add_argument("--grace", type=float, default=4.0,
                          help="lazy-repair grace period")
    simulate.add_argument("--json", type=str, default=None,
                          help="also write the full report as JSON here")
    simulate.add_argument("--final-placement", type=str, default=None,
                          help="write the final population snapshot as a "
                          "placement artifact (JSON or .npz, by extension)")
    _add_obs_flags(simulate)

    soak = commands.add_parser(
        "chaos-soak",
        help="run a figure grid under injected faults; verify the final "
        "store is byte-identical to a fault-free run",
    )
    soak.add_argument("target", nargs="?", default="fig2",
                      help="registered figure name or a spec.json path "
                      "(default: fig2)")
    soak.add_argument("--faults", type=int, default=20,
                      help="injected-fault budget, split across worker "
                      "crashes, torn store writes, transient kernel "
                      "errors, and (with --shard-timeout) hangs")
    soak.add_argument("--seed", type=int, default=0,
                      help="fault-schedule seed (same seed, same faults)")
    soak.add_argument("--workers", type=int, default=2,
                      help="worker processes per soak iteration")
    soak.add_argument("--root", type=str, default="chaos-soak",
                      help="scratch directory for the spec, plan, chaos "
                      "store, and fault-free reference store")
    soak.add_argument("--shard-timeout", type=float, default=None,
                      help="arm the shard watchdog and include hang "
                      "faults (seconds)")
    soak.add_argument("--shard-retries", type=int, default=3,
                      help="re-dispatch attempts per failed shard")

    bounds = commands.add_parser(
        "bounds", help="Combo guarantee vs Random prediction for one cell"
    )
    for flag, help_text in (
        ("--n", "nodes"), ("--r", "replicas"), ("--s", "threshold"),
        ("--b", "objects"), ("--k", "failures"),
    ):
        bounds.add_argument(flag, type=int, required=True, help=help_text)

    audit = commands.add_parser(
        "audit", help="measure a placement's overlaps and certify floors"
    )
    audit.add_argument("placement", type=str,
                       help="placement artifact (JSON or .npz)")
    audit.add_argument("--k", type=int, action="append", required=True,
                       help="failure count (repeatable)")
    audit.add_argument("--s", type=int, action="append", required=True,
                       help="fatality threshold (repeatable)")

    stats = commands.add_parser(
        "stats",
        help="render a run manifest's metrics snapshot or profile a "
        "span trace JSONL",
    )
    stats.add_argument(
        "path",
        help="a span trace JSONL file (from --trace / $REPRO_TRACE), a "
        "run manifest.json, or a run directory / store root holding "
        "exactly one run",
    )
    stats.add_argument("--json", action="store_true", dest="as_json",
                       help="emit JSON instead of text tables")
    stats.add_argument("--validate", action="store_true",
                       help="only validate the trace against the span "
                       "schema and report the span count")

    catalog = commands.add_parser("catalog", help="query design existence")
    catalog.add_argument("--r", type=int, required=True, help="block size")
    catalog.add_argument("--t", type=int, required=True, help="design strength")
    catalog.add_argument("--v", type=int, default=None,
                         help="query one order (default: list orders)")
    catalog.add_argument("--max-v", type=int, default=150)
    catalog.add_argument("--tier", choices=("constructible", "known"),
                         default="known")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "figure": _run_figure,
        "run": _run_exp,
        "chaos-soak": _run_chaos_soak,
        "place": _run_place,
        "attack": _run_attack,
        "simulate": _run_simulate,
        "audit": _run_audit,
        "bounds": _run_bounds,
        "catalog": _run_catalog,
        "stats": _run_stats,
    }[args.command]
    return handler(args)


def _arm_obs(args):
    """Honor --stats/--trace; returns the checkpoint to report against."""
    from repro import obs

    if getattr(args, "trace", None):
        # Exported (not just configured in-process) so forked shard and
        # pool workers inherit the export path.
        os.environ["REPRO_TRACE"] = args.trace
        obs.reset_trace()
    if getattr(args, "stats", False):
        os.environ["REPRO_METRICS"] = "1"
        obs.set_metrics(True)
        return obs.checkpoint()
    return None


def _report_obs(mark) -> None:
    """Print the metrics recorded since ``mark`` (from --stats)."""
    if mark is None:
        return
    from repro import obs
    from repro.obs.report import render_metrics

    print(
        render_metrics(
            obs.delta_since(mark), title="metrics (this invocation)"
        ),
        file=sys.stderr,
    )


def _resolve_manifest_path(path: str) -> Optional[str]:
    """The manifest.json a stats path refers to, or None (trace file).

    Accepts the manifest itself, a run directory containing one, or a
    store root whose subdirectories hold exactly one run.
    """
    if os.path.basename(path) == "manifest.json":
        return path
    if not os.path.isdir(path):
        return None
    direct = os.path.join(path, "manifest.json")
    if os.path.exists(direct):
        return direct
    nested = [
        os.path.join(path, entry, "manifest.json")
        for entry in sorted(os.listdir(path))
        if os.path.exists(os.path.join(path, entry, "manifest.json"))
    ]
    if len(nested) == 1:
        return nested[0]
    if nested:
        raise ValueError(
            f"{path} holds {len(nested)} runs; point at one run directory "
            "or its manifest.json"
        )
    raise ValueError(f"{path}: no manifest.json found")


def _run_stats(args) -> int:
    from repro.obs.profile import build_profile, render_profile
    from repro.obs.report import load_trace, metrics_json, render_metrics

    try:
        manifest_path = _resolve_manifest_path(args.path)
    except ValueError as exc:
        print(f"stats: {exc}", file=sys.stderr)
        return 2
    if manifest_path is not None:
        try:
            with open(manifest_path, encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"stats: cannot read {manifest_path}: {exc}",
                  file=sys.stderr)
            return 2
        record = manifest.get("obs")
        if not record:
            print(
                f"stats: {manifest_path} has no \"obs\" record — the run "
                "was not instrumented (rerun with --stats or "
                "REPRO_METRICS=1)",
                file=sys.stderr,
            )
            return 1
        if args.as_json:
            print(metrics_json(record))
        else:
            print(render_metrics(record, title="manifest obs snapshot"))
        return 0
    try:
        records = load_trace(args.path)
    except OSError as exc:
        print(f"stats: cannot read trace: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"stats: {exc}", file=sys.stderr)
        return 1
    if args.validate:
        print(f"{args.path}: {len(records)} spans, schema ok")
        return 0
    if args.as_json:
        print(json.dumps(build_profile(records), indent=1))
        return 0
    print(f"{args.path}: {len(records)} spans")
    print(render_profile(build_profile(records)))
    return 0


def _run_simulate(args) -> int:
    from repro.analysis.timeseries import render_report
    from repro.sim import LifetimeSimulator, SimConfig

    mark = _arm_obs(args)
    backend = None if args.kernel in (None, "auto") else args.kernel
    config = SimConfig(
        n=args.n, r=args.r, s=args.s, k=args.k,
        events=args.events, seed=args.seed, racks=args.racks,
        arrival_probability=args.churn_prob, warmup_arrivals=args.warmup,
        failure_rate=args.failure_rate,
        rack_failure_rate=args.rack_failure_rate,
        repair_time=args.repair_time, strike_period=args.strike_period,
        measure_period=args.measure_period, effort=args.effort,
        backend=backend, engine_mode=args.engine, repair=args.repair,
        repair_grace=args.grace, lanes=args.lanes,
    )
    simulator = LifetimeSimulator(config)
    report = simulator.run()
    print(render_report(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
            handle.write("\n")
        print(f"\nwrote report JSON to {args.json}", file=sys.stderr)
    if args.final_placement:
        from repro.core.artifact import save_placement

        if not simulator.cluster.objects:
            print(
                "population is empty; no final placement written",
                file=sys.stderr,
            )
        else:
            snapshot = simulator.cluster.placement_snapshot()
            save_placement(snapshot, args.final_placement)
            print(
                f"wrote final placement ({snapshot.b} objects) to "
                f"{args.final_placement}",
                file=sys.stderr,
            )
    _report_obs(mark)
    return 0


def _run_audit(args) -> int:
    from repro.core.artifact import load_placement
    from repro.core.inspect import audit_placement

    placement = load_placement(args.placement)
    audit = audit_placement(
        placement, k_values=tuple(args.k), s_values=tuple(args.s)
    )
    print(audit.render())
    return 0


def _run_figure(args) -> int:
    from repro.exp.registry import figure_spec
    from repro.exp.runner import run_experiment

    if args.list:
        _print_figure_catalog()
        return 0
    if args.which is None:
        print("figure: name required (or --list to see the catalog)",
              file=sys.stderr)
        return 2
    targets = figure_names() if args.which == "all" else (args.which,)
    for which in targets:
        print(run_experiment(figure_spec(which)).render())
        print()
    return 0


def _load_run_target(target: str, command: str):
    """Resolve a figure name or spec.json path; exits are (None, code)."""
    from repro.exp.registry import figure_spec, spec_from_payload
    from repro.exp.spec import SpecError

    try:
        if target.endswith(".json") or os.path.sep in target:
            with open(target, encoding="utf-8") as handle:
                return spec_from_payload(json.load(handle)), 0
        return figure_spec(target), 0
    except OSError as exc:
        print(f"{command}: cannot read spec file: {exc}", file=sys.stderr)
        return None, 2
    except (SpecError, ValueError) as exc:
        print(f"{command}: {exc}", file=sys.stderr)
        return None, 2


def _run_exp(args) -> int:
    from repro.exp.runner import run_experiment
    from repro.exp.store import RunStoreError
    from repro.faults import FaultPlanError
    from repro.faults.plan import FaultPlan

    if args.list:
        _print_figure_catalog()
        return 0
    if args.target is None:
        print("run: target required (figure name or spec.json; --list "
              "shows the catalog)", file=sys.stderr)
        return 2
    if args.chaos is not None:
        try:
            FaultPlan.from_env(args.chaos)  # fail fast on a bad plan
        except FaultPlanError as exc:
            print(f"run: {exc}", file=sys.stderr)
            return 2
        # Exported (not just configured in-process) so forked shard
        # workers inherit the plan.
        os.environ["REPRO_CHAOS"] = args.chaos
    mark = _arm_obs(args)
    spec, code = _load_run_target(args.target, "run")
    if spec is None:
        return code
    store = None
    if not args.no_store:
        store = args.store or os.environ.get("REPRO_RUNS_DIR") or "runs"
    engine_state = args.engine_state
    if engine_state == "auto":
        if store is None:
            print("run: --engine-state auto needs a run store "
                  "(drop --no-store)", file=sys.stderr)
            return 2
        from repro.exp.store import RunStore

        engine_state = RunStore(store).engine_state_dir(spec)
    try:
        run = run_experiment(
            spec,
            workers=args.workers,
            store=store,
            resume=args.resume,
            limit=args.limit,
            threads=args.threads,
            lanes=args.lanes,
            shard_timeout=args.shard_timeout,
            shard_retries=args.shard_retries,
            engine_state=engine_state,
        )
    except RunStoreError as exc:
        print(f"run: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        # SpecError from a kernel reading a malformed custom spec,
        # ExperimentError on kernel-contract violations, bad --workers/
        # --limit values: user input, not internal state.
        print(f"run: {exc}", file=sys.stderr)
        return 2
    if run.complete:
        print(run.render())
    else:
        resume_cmd = ["repro", "run", args.target, "--resume"]
        if args.store:
            resume_cmd += ["--store", args.store]
        if args.workers is not None:
            resume_cmd += ["--workers", str(args.workers)]
        print(
            f"partial run: {len(run.cells) - run.loaded - run.computed} "
            f"cells still missing; finish with "
            f"`{' '.join(resume_cmd)}`",
            file=sys.stderr,
        )
    print(run.summary(), file=sys.stderr)
    if run.store_path is not None:
        print(f"run store: {run.store_path}", file=sys.stderr)
    _report_obs(mark)
    return 0


def _run_chaos_soak(args) -> int:
    from repro.faults.soak import SoakError, soak

    spec, code = _load_run_target(args.target, "chaos-soak")
    if spec is None:
        return code
    try:
        report = soak(
            spec,
            args.root,
            faults=args.faults,
            seed=args.seed,
            workers=args.workers,
            shard_timeout=args.shard_timeout,
            shard_retries=args.shard_retries,
        )
    except SoakError as exc:
        print(f"chaos-soak: {exc}", file=sys.stderr)
        return 1
    planned = report["planned_faults"]
    print(
        f"chaos-soak: {spec.experiment} survived {planned['total']} planned "
        f"faults ({planned['crashes']} crashes, {planned['torn_writes']} "
        f"torn writes, {planned['dispatch_errors']} transient errors, "
        f"{planned['hangs']} hangs)"
    )
    print(
        f"  {report['runs']} runs ({report['restarts']} restarts), "
        f"{report['shard_retries']} shard retries, "
        f"{report['cells']} cells, {report['recomputed']} recomputed "
        f"on resume, {report['elapsed']:.1f}s"
    )
    print("  final store byte-identical to the fault-free reference")
    print(f"  plan {report['plan_hash'][:16]} under {args.root}/")
    return 0


def _run_place(args) -> int:
    chosen_format = args.format
    if chosen_format == "auto":
        chosen_format = (
            "npz" if args.output and args.output.endswith(".npz") else "json"
        )
    if chosen_format == "npz" and not args.output:
        # Reject before doing the placement work, not after.
        print("--format npz needs --output", file=sys.stderr)
        return 2
    if args.strategy == "random":
        placement = RandomStrategy(args.n, args.r).place(
            args.b, random.Random(args.seed)
        )
    elif args.strategy == "simple":
        strategy = SimpleStrategy(args.n, args.r, args.x)
        placement = strategy.place(args.b)
        print(
            f"# Simple(x={args.x}) lambda={strategy.minimal_lambda(args.b)}",
            file=sys.stderr,
        )
    else:
        s = args.s if args.s is not None else (args.r + 1) // 2
        k = args.k if args.k is not None else s
        strategy = ComboStrategy(
            args.n, args.r, s, tier=Existence.CONSTRUCTIBLE
        )
        plan = strategy.plan(args.b, k)
        placement = strategy.place(args.b, k, plan=plan)
        print(
            f"# Combo lambdas={plan.lambdas} lower_bound={plan.lower_bound}",
            file=sys.stderr,
        )
    if args.engine_state:
        from repro.core.batch import AttackEngine, snapshot_engine

        state_path = args.engine_state
        if not state_path.endswith(".npz"):
            state_path += ".npz"
        snapshot_engine(AttackEngine(placement), state_path)
        print(
            f"wrote engine state ({placement.b} objects, "
            f"{placement.r} thresholds) to {state_path}",
            file=sys.stderr,
        )
    if chosen_format == "npz":
        from repro.core.artifact import save_npz

        target = args.output
        if not target.endswith(".npz"):
            target += ".npz"
        save_npz(placement, target)
        print(f"wrote {placement.b} objects to {target}", file=sys.stderr)
        return 0
    payload = json.dumps(placement.to_dict())
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"wrote {placement.b} objects to {args.output}", file=sys.stderr)
    else:
        print(payload)
    return 0


def _run_attack(args) -> int:
    from repro.core import native
    from repro.core.artifact import load_placement
    from repro.core.batch import AttackCell, batch_attack

    if args.threads is not None:
        if args.threads < 1:
            print(f"--threads must be >= 1, got {args.threads}",
                  file=sys.stderr)
            return 2
        native.configure_threads(args.threads)
    if args.lanes is not None and args.lanes < 1:
        print(f"--lanes must be >= 1, got {args.lanes}", file=sys.stderr)
        return 2
    mark = _arm_obs(args)
    placement = None
    if args.engine_state:
        from repro.core.artifact import ArtifactError
        from repro.core.batch import hydrate_engine

        try:
            engine = hydrate_engine(
                args.engine_state, backend=args.kernel, validate=True
            )
        except (ArtifactError, OSError) as exc:
            print(f"attack: {exc}", file=sys.stderr)
            return 1
        if engine is not None:
            placement = engine.placement
        elif args.placement is None:
            print(
                f"attack: {args.engine_state} was written by a newer "
                "version; pass the placement artifact to rebuild cold",
                file=sys.stderr,
            )
            return 1
        else:
            print(
                f"attack: {args.engine_state} was written by a newer "
                "version; rebuilding cold from the placement",
                file=sys.stderr,
            )
    if placement is None:
        if args.placement is None:
            print("attack: placement artifact required "
                  "(or --engine-state)", file=sys.stderr)
            return 2
        placement = load_placement(args.placement, mmap=args.mmap)
    cells = [AttackCell(k, args.s, args.effort) for k in args.k]
    results = batch_attack(
        placement, cells, backend=args.kernel, workers=args.workers,
        cache=False if args.no_cache else None, lanes=args.lanes,
    )
    print(f"placement: {placement}")
    for cell, result in zip(cells, results):
        if len(cells) > 1:
            print(f"--- k={cell.k} ---")
        print(f"attack nodes: {sorted(result.nodes)}")
        print(f"objects killed: {result.damage} / {placement.b}")
        print(f"availability: {placement.b - result.damage}")
        print(
            f"certified optimal: {'yes' if result.exact else 'no (lower bound)'}"
        )
    _report_obs(mark)
    return 0


def _run_bounds(args) -> int:
    strategy = ComboStrategy(args.n, args.r, args.s)
    plan = strategy.plan(args.b, args.k)
    pr = pr_avail_rnd(args.n, args.k, args.r, args.s, args.b)
    print(f"Combo plan lambdas: {plan.lambdas} (objects: {plan.counts})")
    print(f"lbAvail_co (guaranteed):   {plan.lower_bound}")
    print(f"prAvail_rnd (Random, probable): {pr}")
    margin = plan.lower_bound - pr
    denominator = args.b - pr
    if denominator > 0:
        print(
            f"improvement: {margin} objects "
            f"({100 * margin / denominator:.0f}% of b - prAvail)"
        )
    winner = "combo" if margin > 0 else ("random" if margin < 0 else "tie")
    print(f"winner: {winner}")
    return 0


def _run_catalog(args) -> int:
    tier = (
        Existence.CONSTRUCTIBLE
        if args.tier == "constructible"
        else Existence.KNOWN
    )
    if args.v is not None:
        result = existence(args.v, args.r, args.t)
        print(f"{args.t}-({args.v},{args.r},1): {result.name}")
        return 0
    orders = steiner_orders(args.r, args.t, args.max_v, tier)
    print(
        f"{args.t}-(v,{args.r},1) orders at tier >= {tier.name}, "
        f"v <= {args.max_v}:"
    )
    print(" ".join(str(v) for v in orders) if orders else "(none)")
    best = largest_order(args.max_v, args.r, args.t, tier)
    print(f"largest: {best}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
