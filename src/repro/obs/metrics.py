"""Process-wide metrics registry: named counters, gauges, histograms, events.

The registry is the single accounting surface for the whole stack —
kernels, adversaries, the warm engine cache, the sharded runner, the
simulator, the run store, and the fault injector all report here. Design
rules, in priority order:

* **Strict catalog.** Every instrument is declared in :data:`CATALOG`
  with a kind, a determinism class, and a description; recording against
  an undeclared name raises. Typos fail loudly and the catalog doubles
  as the documentation the ``repro stats`` renderer and the README
  print.
* **Deterministic vs ops instruments.** ``deterministic`` instruments
  count *semantic work* — searches run, candidate evaluations, node
  adds/removes/swaps, strikes, cells committed. For a fixed spec and
  seed their values are bit-identical across gain backings, native
  thread counts, runner worker counts, and chaos retries that succeed,
  which makes them a correctness oracle tests can pin (and the only
  instruments the run-store manifest snapshots). ``ops`` instruments
  describe *how* the work was executed (cache hits, engine builds,
  retries, demotions, fault fires) and legitimately vary with process
  topology, so they are reported but never pinned.
* **Gated vs always.** Hot-path instruments record only when metrics
  are enabled (``REPRO_METRICS=1`` / :func:`set_metrics`), so the
  default-off overhead is one flag check per coarse operation.
  Control-plane instruments (``always=True``: shard retries, backing
  demotions, fault fires, mmap fallbacks, native compiles) are so rare
  and so diagnostic that they record unconditionally — they are the
  single source of truth the runner's fault record is built from.
* **Fork-aware by protocol, not by magic.** A forked worker inherits
  the parent's values; workers therefore report the *delta* between a
  :func:`checkpoint` taken at task start and task end, and the
  supervisor merges only the deltas of attempts that succeeded
  (:func:`merge_delta`). That is what makes counter totals exact across
  any worker count and invariant under retried-then-successful shards.
  In-process retries use :func:`rollback`, which restores gated
  instruments to a checkpoint while always-instruments keep counting.

Everything here is stdlib-only and imports nothing from ``repro`` —
every layer of the stack can depend on it without cycles.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

__all__ = [
    "CATALOG",
    "Instrument",
    "MetricsError",
    "metrics_enabled",
    "set_metrics",
    "count",
    "gauge",
    "observe",
    "record_event",
    "events",
    "counter_value",
    "snapshot",
    "checkpoint",
    "delta_since",
    "delta_value",
    "deterministic_delta",
    "merge_delta",
    "rollback",
    "reset_metrics",
]


class MetricsError(ValueError):
    """Raised on unknown instruments or malformed ``REPRO_METRICS`` values."""


@dataclass(frozen=True)
class Instrument:
    """One declared instrument: its kind, determinism class, and meaning."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    deterministic: bool  # pinned across backings/threads/workers/retries
    always: bool  # records even when metrics are disabled
    description: str


def _c(name: str, description: str, *, det: bool = False, always: bool = False) -> Instrument:
    return Instrument(name, "counter", det, always, description)


def _g(name: str, description: str) -> Instrument:
    return Instrument(name, "gauge", False, False, description)


def _h(name: str, description: str, *, det: bool = False) -> Instrument:
    return Instrument(name, "histogram", det, False, description)


#: Every instrument the stack records, keyed by name. ``deterministic``
#: entries are the manifest-snapshot / test-oracle set; the rest are
#: operational visibility. ``always`` entries record with metrics off.
CATALOG: Dict[str, Instrument] = {
    inst.name: inst
    for inst in (
        # -- deterministic semantic-work counters --------------------------
        _c("attack.searches",
           "worst-case searches executed (memo hits excluded)", det=True),
        _c("attack.restarts",
           "local-search restart chains polished (lane-count invariant)",
           det=True),
        _c("kernel.evaluations",
           "candidate damage evaluations spent across searches", det=True),
        _c("kernel.node_adds",
           "semantic node additions (greedy steps, seed builds, B&B pushes)",
           det=True),
        _c("kernel.node_removes",
           "semantic node removals (polish positions, B&B pops)", det=True),
        _c("kernel.swaps",
           "accepted strict-improvement polish swaps", det=True),
        _c("sim.events", "simulator events handled", det=True),
        _c("sim.strikes", "adversary strikes recorded", det=True),
        _c("sim.strikes.delta",
           "strikes served by the delta-aware warm engine", det=True),
        _c("sim.strikes.rebuild",
           "strikes served by per-strike engine rebuilds", det=True),
        _c("store.cells_committed",
           "cells appended to the run store", det=True),
        # -- deterministic histograms --------------------------------------
        _h("attack.damage", "damage found per worst-case search", det=True),
        _h("store.commit_bytes", "bytes per committed run-store cell",
           det=True),
        # -- operational counters (vary with process topology) -------------
        _c("engine.builds", "warm attack engines constructed"),
        _c("engine.cache.hits", "engine-cache fingerprint hits"),
        _c("engine.cache.misses", "engine-cache fingerprint misses"),
        _c("engine.cache.evictions", "warm engines evicted past the LRU cap"),
        _c("engine.hydrations",
           "warm engines rehydrated from engine-state snapshots"),
        _c("engine.builds_avoided",
           "cold engine builds skipped via snapshot hydration"),
        _c("attack.memo.hits", "attack-result memo hits"),
        _c("attack.memo.misses", "attack-result memo misses"),
        _c("kernel.dispatch.native", "gain kernels built on the native rung"),
        _c("kernel.dispatch.numpy", "gain kernels built on the numpy rung"),
        _c("kernel.dispatch.bitset", "gain kernels built on the bitset rung"),
        _c("kernel.dispatch.python", "gain kernels built on the python rung"),
        _c("store.cells_loaded", "cells served from a stored run prefix"),
        _c("store.cells_recomputed",
           "stored cells re-executed because their shard straddled the prefix"),
        # -- control-plane counters (always on) ----------------------------
        _c("runner.shard_retries",
           "shard attempts re-dispatched after a failure", always=True),
        _c("kernel.demotions",
           "gain-backing degradation-ladder demotions", always=True),
        _c("faults.injected", "fault-plan rules fired", always=True),
        _c("artifact.mmap_fallback",
           "mmap placement loads that fell back to the eager loader",
           always=True),
        _c("native.compiles",
           "native gain library loads (compiled or cache-reused)",
           always=True),
        # -- gauges ---------------------------------------------------------
        _g("engine.cache.size", "warm engines currently cached"),
        _g("native.threads", "configured native kernel thread budget"),
    )
}

_EVENT_CAP = 1024

_LOCK = threading.Lock()
_counters: Dict[str, int] = {}
_gauges: Dict[str, float] = {}
_hists: Dict[str, Dict[str, Any]] = {}
_events: "deque[Dict[str, Any]]" = deque(maxlen=_EVENT_CAP)
_event_seq = 0
_enabled: Optional[bool] = None


def _env_enabled() -> bool:
    raw = os.environ.get("REPRO_METRICS", "0").strip().lower()
    if raw in ("1", "true", "yes", "on"):
        return True
    if raw in ("0", "false", "no", "off", ""):
        return False
    raise MetricsError(f"REPRO_METRICS must be boolean-like, got {raw!r}")


def metrics_enabled() -> bool:
    """Whether gated instruments record (``REPRO_METRICS`` / set_metrics)."""
    global _enabled
    if _enabled is None:
        _enabled = _env_enabled()
    return _enabled


def set_metrics(enabled: Optional[bool]) -> None:
    """Pin metrics on/off for this process; ``None`` re-reads the env."""
    global _enabled
    _enabled = None if enabled is None else bool(enabled)


def _instrument(name: str, kind: str) -> Instrument:
    inst = CATALOG.get(name)
    if inst is None:
        raise MetricsError(
            f"unknown instrument {name!r}; declare it in repro.obs.metrics."
            "CATALOG"
        )
    if inst.kind != kind:
        raise MetricsError(
            f"instrument {name!r} is a {inst.kind}, not a {kind}"
        )
    return inst


def count(name: str, n: int = 1) -> None:
    """Add ``n`` to a counter (no-op when gated and metrics are off)."""
    inst = _instrument(name, "counter")
    if not inst.always and not metrics_enabled():
        return
    with _LOCK:
        _counters[name] = _counters.get(name, 0) + int(n)


def gauge(name: str, value: float) -> None:
    """Set a gauge to its current value."""
    inst = _instrument(name, "gauge")
    if not inst.always and not metrics_enabled():
        return
    with _LOCK:
        _gauges[name] = value


def observe(name: str, value: float) -> None:
    """Record one observation into a histogram (power-of-two buckets)."""
    inst = _instrument(name, "histogram")
    if not inst.always and not metrics_enabled():
        return
    bucket = str(max(0, int(value)).bit_length())
    with _LOCK:
        hist = _hists.get(name)
        if hist is None:
            hist = {"count": 0, "sum": 0, "buckets": {}}
            _hists[name] = hist
        hist["count"] += 1
        hist["sum"] += int(value)
        hist["buckets"][bucket] = hist["buckets"].get(bucket, 0) + 1


def record_event(name: str, **fields: Any) -> None:
    """Record one structured control-plane event (always on, bounded)."""
    global _event_seq
    with _LOCK:
        _event_seq += 1
        _events.append({"seq": _event_seq, "event": name, "fields": fields})


def events() -> List[Dict[str, Any]]:
    """The retained structured events, oldest first."""
    with _LOCK:
        return [dict(entry) for entry in _events]


def counter_value(name: str) -> int:
    """Current value of one counter (0 when never recorded)."""
    _instrument(name, "counter")
    return _counters.get(name, 0)


def _copy_hists() -> Dict[str, Dict[str, Any]]:
    return {
        name: {
            "count": hist["count"],
            "sum": hist["sum"],
            "buckets": dict(hist["buckets"]),
        }
        for name, hist in _hists.items()
    }


def snapshot() -> Dict[str, Any]:
    """A full copy of the registry: counters, gauges, histograms, events."""
    with _LOCK:
        return {
            "counters": dict(_counters),
            "gauges": dict(_gauges),
            "histograms": _copy_hists(),
            "events": [dict(entry) for entry in _events],
        }


def checkpoint() -> Dict[str, Any]:
    """An opaque mark for :func:`delta_since` / :func:`rollback`."""
    with _LOCK:
        return {
            "counters": dict(_counters),
            "gauges": dict(_gauges),
            "histograms": _copy_hists(),
            "event_seq": _event_seq,
        }


def delta_since(mark: Dict[str, Any]) -> Dict[str, Any]:
    """Everything recorded since ``mark`` (zero entries dropped).

    The result is mergeable with :func:`merge_delta`; gauges carry their
    current values (a gauge has no meaningful difference).
    """
    with _LOCK:
        counters = {}
        base = mark["counters"]
        for name, value in _counters.items():
            diff = value - base.get(name, 0)
            if diff:
                counters[name] = diff
        hists = {}
        hist_base = mark["histograms"]
        for name, hist in _hists.items():
            before = hist_base.get(name, {"count": 0, "sum": 0, "buckets": {}})
            count_diff = hist["count"] - before["count"]
            if not count_diff:
                continue
            buckets = {}
            for bucket, n in hist["buckets"].items():
                diff = n - before["buckets"].get(bucket, 0)
                if diff:
                    buckets[bucket] = diff
            hists[name] = {
                "count": count_diff,
                "sum": hist["sum"] - before["sum"],
                "buckets": buckets,
            }
        return {
            "counters": counters,
            "gauges": dict(_gauges),
            "histograms": hists,
            "events": [
                dict(entry)
                for entry in _events
                if entry["seq"] > mark["event_seq"]
            ],
        }


def delta_value(name: str, mark: Dict[str, Any]) -> int:
    """One counter's growth since ``mark``."""
    _instrument(name, "counter")
    return _counters.get(name, 0) - mark["counters"].get(name, 0)


def deterministic_delta(mark: Dict[str, Any]) -> Dict[str, Any]:
    """The manifest-grade snapshot: deterministic instruments only.

    Keys are sorted and zero values dropped, so for a fixed spec + seed
    the returned dict is bit-identical across gain backings, thread
    counts, worker counts, and chaos retries that succeed.
    """
    delta = delta_since(mark)
    counters = {
        name: delta["counters"][name]
        for name in sorted(delta["counters"])
        if CATALOG[name].deterministic
    }
    hists = {
        name: {
            "count": delta["histograms"][name]["count"],
            "sum": delta["histograms"][name]["sum"],
            "buckets": {
                bucket: delta["histograms"][name]["buckets"][bucket]
                for bucket in sorted(
                    delta["histograms"][name]["buckets"], key=int
                )
            },
        }
        for name in sorted(delta["histograms"])
        if CATALOG[name].deterministic
    }
    return {"counters": counters, "histograms": hists}


def merge_delta(delta: Dict[str, Any]) -> None:
    """Fold a worker-reported delta into this process's registry."""
    global _event_seq
    with _LOCK:
        for name, value in delta.get("counters", {}).items():
            _counters[name] = _counters.get(name, 0) + value
        for name, value in delta.get("gauges", {}).items():
            _gauges[name] = value
        for name, hist in delta.get("histograms", {}).items():
            mine = _hists.get(name)
            if mine is None:
                mine = {"count": 0, "sum": 0, "buckets": {}}
                _hists[name] = mine
            mine["count"] += hist["count"]
            mine["sum"] += hist["sum"]
            for bucket, n in hist["buckets"].items():
                mine["buckets"][bucket] = mine["buckets"].get(bucket, 0) + n
        for entry in delta.get("events", []):
            _event_seq += 1
            _events.append(
                {"seq": _event_seq, "event": entry["event"],
                 "fields": dict(entry.get("fields", {}))}
            )


def rollback(mark: Dict[str, Any]) -> None:
    """Discard a failed attempt's gated recordings; keep always-counters.

    Restores every gated counter/gauge/histogram to its ``mark`` value —
    the retry will re-record the work — while control-plane instruments
    (``always=True``) keep whatever the failed attempt added, because a
    retry *happened* even though its work was discarded.
    """
    with _LOCK:
        for name in list(_counters):
            if not CATALOG[name].always:
                base = mark["counters"].get(name)
                if base is None:
                    del _counters[name]
                else:
                    _counters[name] = base
        for name in list(_gauges):
            base = mark["gauges"].get(name)
            if base is None:
                del _gauges[name]
            else:
                _gauges[name] = base
        for name in list(_hists):
            base = mark["histograms"].get(name)
            if base is None:
                del _hists[name]
            else:
                _hists[name] = {
                    "count": base["count"],
                    "sum": base["sum"],
                    "buckets": dict(base["buckets"]),
                }


def reset_metrics() -> None:
    """Zero the whole registry (tests, benchmark isolation)."""
    global _event_seq
    with _LOCK:
        _counters.clear()
        _gauges.clear()
        _hists.clear()
        _events.clear()
        _event_seq = 0
