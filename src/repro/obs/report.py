"""Renderers and validators for metrics snapshots and span traces.

Text rendering backs ``repro stats`` and the ``--stats`` flags; the span
schema validator backs ``repro stats --validate`` and the CI obs-smoke
job, which asserts every exported JSONL line against :data:`SPAN_FIELDS`
before trusting a trace.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping

from repro.obs.metrics import CATALOG
from repro.util.tables import TextTable

__all__ = [
    "SPAN_FIELDS",
    "validate_span",
    "load_trace",
    "render_metrics",
    "metrics_json",
]

#: The exported span record schema: field -> accepted types. ``parent``
#: additionally accepts None (a root span).
SPAN_FIELDS: Dict[str, tuple] = {
    "name": (str,),
    "ts": (int, float),
    "dur": (int, float),
    "pid": (int,),
    "seq": (int,),
    "parent": (int, type(None)),
    "depth": (int,),
    "attrs": (dict,),
}


def validate_span(record: Any) -> None:
    """Raise ``ValueError`` unless ``record`` is a well-formed span."""
    if not isinstance(record, dict):
        raise ValueError(f"span record must be an object, got {type(record).__name__}")
    for field, types in SPAN_FIELDS.items():
        if field not in record:
            raise ValueError(f"span record is missing {field!r}")
        value = record[field]
        if not isinstance(value, types) or isinstance(value, bool):
            raise ValueError(
                f"span field {field!r} has type {type(value).__name__}"
            )
    extra = set(record) - set(SPAN_FIELDS)
    if extra:
        raise ValueError(f"span record has unknown fields {sorted(extra)}")
    if record["dur"] < 0:
        raise ValueError(f"span duration is negative: {record['dur']}")
    if record["depth"] < 0:
        raise ValueError(f"span depth is negative: {record['depth']}")
    if (record["parent"] is None) != (record["depth"] == 0):
        raise ValueError(
            "span parent/depth disagree: root spans (depth 0) must have "
            "parent null and nested spans a parent id"
        )


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Parse and validate a JSONL trace; raises ``ValueError`` with line no."""
    records: List[Dict[str, Any]] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}") from None
            try:
                validate_span(record)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from None
            records.append(record)
    return records


def _describe(name: str) -> str:
    inst = CATALOG.get(name)
    return inst.description if inst is not None else ""


def render_metrics(
    snapshot: Mapping[str, Any], title: str = "metrics"
) -> str:
    """The text report for a registry snapshot or delta."""
    sections: List[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        table = TextTable(["counter", "value", "description"], title=title)
        for name in sorted(counters):
            table.add_row([name, counters[name], _describe(name)])
        sections.append(table.render())
    gauges = snapshot.get("gauges", {})
    if gauges:
        table = TextTable(["gauge", "value", "description"])
        for name in sorted(gauges):
            table.add_row([name, gauges[name], _describe(name)])
        sections.append(table.render())
    histograms = snapshot.get("histograms", {})
    if histograms:
        table = TextTable(["histogram", "count", "sum", "mean", "description"])
        for name in sorted(histograms):
            hist = histograms[name]
            mean = hist["sum"] / hist["count"] if hist["count"] else 0.0
            table.add_row(
                [name, hist["count"], hist["sum"], f"{mean:.1f}", _describe(name)]
            )
        sections.append(table.render())
    events = snapshot.get("events", [])
    if events:
        lines = ["events:"]
        for entry in events:
            fields = " ".join(
                f"{key}={value!r}" for key, value in sorted(entry["fields"].items())
            )
            lines.append(f"  {entry['event']} {fields}".rstrip())
        sections.append("\n".join(lines))
    if not sections:
        return f"{title}: (nothing recorded)"
    return "\n\n".join(sections)


def metrics_json(snapshot: Mapping[str, Any]) -> str:
    """The JSON form of a snapshot (sorted keys, stable across processes)."""
    return json.dumps(snapshot, sort_keys=True, indent=1)
