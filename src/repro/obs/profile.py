"""Sampling-free deterministic profiler over exported span trees.

No signals, no timers: the profile is a pure aggregation of the span
records :mod:`repro.obs.trace` already produced, so the same trace file
always yields the same table. Per span, *self* time is its duration
minus the summed durations of its direct children (clamped at zero —
clock granularity can make children appear to exceed the parent); *cum*
time is the plain duration. Aggregating by span name gives the classic
self/cumulative table. Note that nested same-name spans each contribute
their full duration to ``cum``, the usual recursive-profile caveat.

Parent links are only meaningful within one process, so records are
keyed by ``(pid, seq)`` — traces merged from a sharded run profile
correctly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence

from repro.util.tables import TextTable

__all__ = ["build_profile", "render_profile"]


def build_profile(records: Sequence[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    """Aggregate span records into per-name self/cum rows (self-desc order)."""
    child_time: Dict[tuple, float] = {}
    for record in records:
        parent = record.get("parent")
        if parent is not None:
            key = (record["pid"], parent)
            child_time[key] = child_time.get(key, 0.0) + record["dur"]
    rows: Dict[str, Dict[str, Any]] = {}
    for record in records:
        own = max(
            0.0,
            record["dur"] - child_time.get((record["pid"], record["seq"]), 0.0),
        )
        row = rows.get(record["name"])
        if row is None:
            row = {
                "name": record["name"],
                "calls": 0,
                "self": 0.0,
                "cum": 0.0,
                "min": record["dur"],
                "max": record["dur"],
            }
            rows[record["name"]] = row
        row["calls"] += 1
        row["self"] += own
        row["cum"] += record["dur"]
        row["min"] = min(row["min"], record["dur"])
        row["max"] = max(row["max"], record["dur"])
    return sorted(
        rows.values(), key=lambda row: (-row["self"], row["name"])
    )


def render_profile(rows: Sequence[Mapping[str, Any]]) -> str:
    """The text table for :func:`build_profile` output."""
    table = TextTable(
        ["span", "calls", "self s", "cum s", "min s", "max s"],
        title="deterministic profile (self time, descending)",
    )
    for row in rows:
        table.add_row(
            [
                row["name"],
                row["calls"],
                f"{row['self']:.4f}",
                f"{row['cum']:.4f}",
                f"{row['min']:.4f}",
                f"{row['max']:.4f}",
            ]
        )
    return table.render()
