"""Nestable timing spans: in-memory ring buffer + JSONL exporter.

A *span* wraps one unit of work — a kernel dispatch, an engine attack, a
shard run, a sim strike, a store commit, a native compile — and records
its wall-clock duration together with its position in the call tree
(sequence id, parent id, nesting depth). Spans are:

* **free when off** — :func:`span` returns a shared no-op context
  manager unless a trace path is configured, so instrumented hot paths
  pay one env lookup;
* **nestable per thread** — each thread keeps its own span stack, so
  parent/depth links are always well formed;
* **fork-safe** — records carry the recording pid, a child process
  starts with a cleared stack and ring (the at-fork hook), and the JSONL
  exporter writes each record as a single ``O_APPEND`` write so parent
  and worker lines interleave without tearing;
* **deterministic in everything except time** — names, attributes,
  parent links and counts are functions of the work; only ``ts`` and
  ``dur`` carry wall-clock.

Export: set ``REPRO_TRACE=<path>`` (or call :func:`configure_trace`)
and every finished span appends one JSON line; ``repro stats <path>``
validates and aggregates them (:mod:`repro.obs.profile`).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

__all__ = [
    "span",
    "trace_enabled",
    "trace_path",
    "configure_trace",
    "reset_trace",
    "trace_spans",
    "clear_trace",
    "TRACE_RING_CAP",
]

#: Finished spans retained in memory (newest win; JSONL export is unbounded).
TRACE_RING_CAP = 4096

_RING: "deque[Dict[str, Any]]" = deque(maxlen=TRACE_RING_CAP)
_seq = itertools.count(1)
_tls = threading.local()
_override_path: Optional[str] = None
_override_set = False
_fd: Optional[int] = None
_fd_path: Optional[str] = None
_fd_lock = threading.Lock()


def trace_path() -> Optional[str]:
    """The active JSONL export path (None = tracing off)."""
    if _override_set:
        return _override_path or None
    return os.environ.get("REPRO_TRACE") or None


def trace_enabled() -> bool:
    return trace_path() is not None


def configure_trace(path: Optional[str]) -> None:
    """Pin the export path (None = explicitly off), overriding the env."""
    global _override_path, _override_set
    _override_path, _override_set = path, True


def reset_trace() -> None:
    """Drop any override (``REPRO_TRACE`` rules again) and clear the ring."""
    global _override_path, _override_set
    _override_path, _override_set = None, False
    clear_trace()


def trace_spans() -> List[Dict[str, Any]]:
    """The retained finished spans, oldest first."""
    return [dict(record) for record in _RING]


def clear_trace() -> None:
    """Empty the in-memory ring (the JSONL file is never touched)."""
    _RING.clear()


def _stack() -> List["_Span"]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = []
        _tls.stack = stack
    return stack


def _export(record: Dict[str, Any]) -> None:
    """Append one record to the JSONL file as a single atomic write."""
    global _fd, _fd_path
    path = trace_path()
    if path is None:
        return
    line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
    with _fd_lock:
        if _fd is None or _fd_path != path:
            if _fd is not None:
                os.close(_fd)
            _fd = os.open(path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644)
            _fd_path = path
        os.write(_fd, line.encode("utf-8"))


class _NoopSpan:
    """The shared do-nothing span handed out when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP = _NoopSpan()


class _Span:
    __slots__ = ("name", "attrs", "seq", "parent", "depth", "_ts", "_t0")

    def __init__(self, name: str, attrs: Dict[str, Any]):
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        stack = _stack()
        self.parent = stack[-1].seq if stack else None
        self.depth = len(stack)
        self.seq = next(_seq)
        stack.append(self)
        self._ts = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._t0
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        record = {
            "name": self.name,
            "ts": round(self._ts, 6),
            "dur": round(duration, 9),
            "pid": os.getpid(),
            "seq": self.seq,
            "parent": self.parent,
            "depth": self.depth,
            "attrs": self.attrs,
        }
        _RING.append(record)
        _export(record)
        return False


def span(name: str, **attrs: Any):
    """A context manager timing one unit of work (no-op when tracing is off).

    ``attrs`` must be JSON-serializable (ints, strings) — they land
    verbatim in the exported record.
    """
    if trace_path() is None:
        return _NOOP
    return _Span(name, attrs)


def _after_fork_in_child() -> None:
    # The child owns none of the parent's in-flight spans: fresh stack,
    # empty ring. The export fd stays valid (O_APPEND interleaves safely)
    # and records carry the child's pid.
    global _tls
    _tls = threading.local()
    _RING.clear()


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX targets
    os.register_at_fork(after_in_child=_after_fork_in_child)
