"""``repro.obs`` — zero-dependency observability for the whole stack.

Four small pieces, composable and individually optional:

* :mod:`repro.obs.metrics` — a process-wide, fork-aware registry of
  named counters/gauges/histograms/events with a strict catalog and a
  hard split between *deterministic* instruments (semantic work counts,
  bit-identical across backings/threads/workers/successful retries —
  snapshotted into run-store manifests and pinned by tests) and *ops*
  instruments (caches, retries, demotions — reported, never pinned).
  Off by default; ``REPRO_METRICS=1`` / ``--stats`` turns the gated
  instruments on, control-plane counters record always.
* :mod:`repro.obs.trace` — nestable timing spans with a ring buffer
  and a fork-safe JSONL exporter (``REPRO_TRACE=<path>`` / ``--trace``),
  emitted at kernel dispatch, engine attack, shard run, sim strike,
  store commit, and native compile sites.
* :mod:`repro.obs.profile` — a sampling-free profiler aggregating span
  records into a self/cumulative time table.
* :mod:`repro.obs.report` — text/JSON renderers, the span schema
  validator, and the machinery behind ``repro stats``.

This package imports nothing from the rest of ``repro`` (stdlib plus
``repro.util.tables`` only), so every layer can instrument itself
without import cycles.
"""

from repro.obs.metrics import (
    CATALOG,
    Instrument,
    MetricsError,
    checkpoint,
    count,
    counter_value,
    delta_since,
    delta_value,
    deterministic_delta,
    events,
    gauge,
    merge_delta,
    metrics_enabled,
    observe,
    record_event,
    reset_metrics,
    rollback,
    set_metrics,
    snapshot,
)
from repro.obs.trace import (
    TRACE_RING_CAP,
    clear_trace,
    configure_trace,
    reset_trace,
    span,
    trace_enabled,
    trace_path,
    trace_spans,
)

__all__ = [
    "CATALOG",
    "Instrument",
    "MetricsError",
    "checkpoint",
    "count",
    "counter_value",
    "delta_since",
    "delta_value",
    "deterministic_delta",
    "events",
    "gauge",
    "merge_delta",
    "metrics_enabled",
    "observe",
    "record_event",
    "reset_metrics",
    "rollback",
    "set_metrics",
    "snapshot",
    "TRACE_RING_CAP",
    "clear_trace",
    "configure_trace",
    "reset_trace",
    "span",
    "trace_enabled",
    "trace_path",
    "trace_spans",
]
