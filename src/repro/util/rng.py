"""Deterministic randomness plumbing.

Every stochastic component in the library (Random placement, Monte-Carlo
experiments, local-search adversaries, workload generators) draws from a
:class:`random.Random` instance passed in explicitly — never from the module
level global — so experiments replay bit-for-bit from a single seed. These
helpers derive independent child generators from a parent seed without the
correlation pitfalls of reusing one generator across parallel streams.
"""

from __future__ import annotations

import hashlib
import random
from typing import List


def derive_rng(seed: int, *labels: object) -> random.Random:
    """A generator deterministically derived from ``seed`` and a label path.

    Labels namespace the stream (e.g. ``derive_rng(seed, "fig7", n, r, rep)``)
    so that adding a new consumer never perturbs existing streams. SHA-256 is
    used as the mixing function: it is available everywhere, and collision
    behaviour is irrelevant at this scale — only decorrelation matters.
    """
    digest = hashlib.sha256()
    digest.update(str(seed).encode())
    for label in labels:
        digest.update(b"/")
        digest.update(repr(label).encode())
    return random.Random(int.from_bytes(digest.digest()[:8], "big"))


def spawn_seeds(seed: int, count: int, *labels: object) -> List[int]:
    """``count`` independent integer seeds derived from ``seed`` and labels."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    rng = derive_rng(seed, "spawn", *labels)
    return [rng.getrandbits(63) for _ in range(count)]
