"""Shared utilities: exact combinatorics, integer math, RNG, table rendering.

These modules deliberately avoid third-party dependencies so that the core
library runs on a bare Python installation; ``numpy``/``scipy`` are used only
as optional accelerators elsewhere.
"""

from repro.util.combinatorics import (
    binom,
    ceil_div,
    falling_factorial,
    k_subsets,
    lcm_many,
    rank_subset,
    unrank_subset,
)
from repro.util.intmath import (
    Rational,
    floor_ratio,
    log_binom,
    log_binom_tail,
    logsumexp,
)
from repro.util.rng import derive_rng, spawn_seeds
from repro.util.tables import TextTable, format_grid

__all__ = [
    "Rational",
    "TextTable",
    "binom",
    "ceil_div",
    "derive_rng",
    "falling_factorial",
    "floor_ratio",
    "format_grid",
    "k_subsets",
    "lcm_many",
    "log_binom",
    "log_binom_tail",
    "logsumexp",
    "rank_subset",
    "spawn_seeds",
    "unrank_subset",
]
