"""Exact combinatorial primitives used throughout the library.

Everything here is exact integer arithmetic: the availability bounds in the
paper (Lemmas 1–3) are quotients of binomial coefficients under floors, and
floating-point evaluation of those floors is wrong surprisingly often (for
example ``C(257, 3) / C(5, 3)`` is exactly representable but nearby parameter
choices are not). All public functions therefore work on ``int``.
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import Iterable, Iterator, Sequence, Tuple


def binom(n: int, k: int) -> int:
    """Binomial coefficient ``C(n, k)``, zero outside ``0 <= k <= n``.

    Unlike :func:`math.comb`, negative ``n`` or ``k`` yield 0 instead of
    raising: the paper's formulas index binomials with expressions such as
    ``C(k, x+1)`` where the convention ``C(a, b) = 0`` for ``b > a`` is
    assumed implicitly.
    """
    if k < 0 or n < 0 or k > n:
        return 0
    return math.comb(n, k)


def falling_factorial(n: int, k: int) -> int:
    """``n * (n-1) * ... * (n-k+1)`` with the empty product equal to 1."""
    if k < 0:
        raise ValueError(f"falling_factorial undefined for k={k} < 0")
    result = 1
    for i in range(k):
        result *= n - i
    return result


def ceil_div(a: int, b: int) -> int:
    """Exact ceiling of ``a / b`` for integers, ``b > 0``."""
    if b <= 0:
        raise ValueError(f"ceil_div requires positive divisor, got {b}")
    return -((-a) // b)


def lcm_many(values: Iterable[int]) -> int:
    """Least common multiple of an iterable of positive integers."""
    result = 1
    seen_any = False
    for value in values:
        if value <= 0:
            raise ValueError(f"lcm_many requires positive integers, got {value}")
        result = math.lcm(result, value)
        seen_any = True
    if not seen_any:
        raise ValueError("lcm_many requires at least one value")
    return result


def k_subsets(items: Sequence[int], k: int) -> Iterator[Tuple[int, ...]]:
    """All ``k``-subsets of ``items`` in lexicographic order.

    Thin wrapper over :func:`itertools.combinations` that exists so call
    sites read as design-theory statements (``for block in k_subsets(...)``).
    """
    return combinations(items, k)


def rank_subset(subset: Sequence[int], n: int) -> int:
    """Rank of a sorted ``k``-subset of ``range(n)`` in colex order.

    Colex ranking is used to give every node subset a stable integer id so
    adversary search can memoize visited failure sets compactly.
    """
    rank = 0
    for position, element in enumerate(sorted(subset), start=1):
        rank += binom(element, position)
    return rank


def unrank_subset(rank: int, n: int, k: int) -> Tuple[int, ...]:
    """Inverse of :func:`rank_subset`: the colex-``rank`` ``k``-subset of ``range(n)``."""
    if not 0 <= rank < binom(n, k):
        raise ValueError(f"rank {rank} out of range for C({n},{k})")
    result = []
    remaining = rank
    for position in range(k, 0, -1):
        # Largest element e with C(e, position) <= remaining.
        element = position - 1
        while binom(element + 1, position) <= remaining:
            element += 1
        result.append(element)
        remaining -= binom(element, position)
    return tuple(reversed(result))


def pairs_within(block: Sequence[int]) -> Iterator[Tuple[int, int]]:
    """All unordered pairs inside a block (sorted within each pair)."""
    ordered = sorted(block)
    return combinations(ordered, 2)


def is_prime(n: int) -> bool:
    """Deterministic primality check adequate for design-theory sizes.

    Trial division is fine: this library constructs designs over prime powers
    below a few thousand, where sqrt-bounded division beats the constant
    factors of Miller–Rabin.
    """
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    divisor = 3
    while divisor * divisor <= n:
        if n % divisor == 0:
            return False
        divisor += 2
    return True


def prime_power_decomposition(n: int) -> Tuple[int, int] | None:
    """Return ``(p, m)`` with ``n == p**m`` and ``p`` prime, else ``None``."""
    if n < 2:
        return None
    for p in range(2, n + 1):
        if p * p > n:
            break
        if n % p:
            continue
        m = 0
        remaining = n
        while remaining % p == 0:
            remaining //= p
            m += 1
        return (p, m) if remaining == 1 else None
    return (n, 1) if is_prime(n) else None
