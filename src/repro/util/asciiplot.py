"""ASCII line plots for the paper's curve figures.

The evaluation figures (2, 3, 5–8, 11) are curve families. Tables carry
the exact numbers; these plots give the *shape* at a glance directly in
terminal output and in ``bench_output.txt``, with no plotting dependency.

Rendering model: a fixed character grid, one glyph per series (``*+ox#@``),
linear x/y scaling with padded bounds, y-axis labels on the left, x-axis
labels underneath, and a legend line. Overlapping points show the glyph of
the later series (documented, deterministic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

GLYPHS = "*+ox#@%&"


@dataclass(frozen=True)
class Series:
    """One named curve: monotone-x point list."""

    name: str
    points: Tuple[Tuple[float, float], ...]

    @staticmethod
    def from_pairs(name: str, pairs: Sequence[Tuple[float, float]]) -> "Series":
        if not pairs:
            raise ValueError(f"series {name!r} has no points")
        return Series(name=name, points=tuple((float(x), float(y)) for x, y in pairs))


def _bounds(
    series: Sequence[Series],
    y_min: Optional[float],
    y_max: Optional[float],
) -> Tuple[float, float, float, float]:
    xs = [x for s in series for x, _ in s.points]
    ys = [y for s in series for _, y in s.points]
    lo_x, hi_x = min(xs), max(xs)
    lo_y = min(ys) if y_min is None else y_min
    hi_y = max(ys) if y_max is None else y_max
    if hi_x == lo_x:
        hi_x = lo_x + 1.0
    if hi_y == lo_y:
        hi_y = lo_y + 1.0
    return lo_x, hi_x, lo_y, hi_y


def line_plot(
    series: Sequence[Series],
    width: int = 60,
    height: int = 16,
    title: Optional[str] = None,
    x_label: str = "",
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
) -> str:
    """Render curves onto a ``width`` x ``height`` character grid."""
    if not series:
        raise ValueError("need at least one series")
    if width < 8 or height < 4:
        raise ValueError(f"grid too small: {width}x{height}")
    if len(series) > len(GLYPHS):
        raise ValueError(f"at most {len(GLYPHS)} series supported")

    lo_x, hi_x, lo_y, hi_y = _bounds(series, y_min, y_max)
    grid = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        frac = (x - lo_x) / (hi_x - lo_x)
        return min(width - 1, max(0, round(frac * (width - 1))))

    def to_row(y: float) -> int:
        frac = (y - lo_y) / (hi_y - lo_y)
        return min(height - 1, max(0, round((1.0 - frac) * (height - 1))))

    for glyph, entry in zip(GLYPHS, series):
        previous: Optional[Tuple[int, int]] = None
        for x, y in entry.points:
            col, row = to_col(x), to_row(y)
            if previous is not None:
                _draw_segment(grid, previous, (col, row), glyph)
            grid[row][col] = glyph
            previous = (col, row)

    label_width = max(len(_fmt(lo_y)), len(_fmt(hi_y)))
    lines: List[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = _fmt(hi_y)
        elif row_index == height - 1:
            label = _fmt(lo_y)
        else:
            label = ""
        lines.append(f"{label.rjust(label_width)} |{''.join(row)}")
    axis = "-" * width
    lines.append(f"{' ' * label_width} +{axis}")
    left = _fmt(lo_x)
    right = _fmt(hi_x)
    gap = max(1, width - len(left) - len(right))
    lines.append(f"{' ' * label_width}  {left}{' ' * gap}{right}  {x_label}")
    legend = "   ".join(
        f"{glyph}={entry.name}" for glyph, entry in zip(GLYPHS, series)
    )
    lines.append(f"{' ' * label_width}  legend: {legend}")
    return "\n".join(lines)


def _draw_segment(grid, start, end, glyph) -> None:
    """Bresenham-style interpolation between consecutive points."""
    (c0, r0), (c1, r1) = start, end
    steps = max(abs(c1 - c0), abs(r1 - r0))
    for i in range(1, steps):
        col = round(c0 + (c1 - c0) * i / steps)
        row = round(r0 + (r1 - r0) * i / steps)
        if grid[row][col] == " ":
            grid[row][col] = "."


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.3g}"


def cdf_plot(
    name_to_values: Sequence[Tuple[str, Sequence[float]]],
    width: int = 60,
    height: int = 16,
    title: Optional[str] = None,
    x_label: str = "value",
) -> str:
    """Empirical CDFs of one or more samples (the shape of Figs. 5–6)."""
    series = []
    for name, values in name_to_values:
        if not values:
            raise ValueError(f"sample {name!r} is empty")
        ordered = sorted(values)
        n = len(ordered)
        points = [(v, (i + 1) / n) for i, v in enumerate(ordered)]
        series.append(Series.from_pairs(name, points))
    return line_plot(
        series,
        width=width,
        height=height,
        title=title,
        x_label=x_label,
        y_min=0.0,
        y_max=1.0,
    )
