"""Exact rational arithmetic and log-space tail sums.

Two needs drive this module:

* Capacity expressions such as ``lambda * C(nx, x+1) / C(r, x+1)`` must be
  floored or compared exactly (Eqn. 1 of the paper brackets ``b`` between two
  such quantities); :class:`Rational` keeps them exact without pulling in
  :mod:`fractions` ergonomics everywhere.
* ``Vuln_rnd(f)`` (Theorem 2) multiplies ``C(n,k)`` — astronomically large —
  by a binomial tail probability — astronomically small. Both are tractable
  only in log space; :func:`log_binom_tail` computes ``log P(Bin(b,p) >= f)``
  stably for ``b`` up to the paper's 38 400 objects and beyond.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class Rational:
    """An exact non-negative rational with design-theory helpers.

    A tiny value type rather than :class:`fractions.Fraction` so that the
    arithmetic used in capacity formulas stays explicit and the invariants
    (positive denominator, normalized sign) hold by construction.
    """

    numerator: int
    denominator: int = 1

    def __post_init__(self) -> None:
        if self.denominator == 0:
            raise ZeroDivisionError("Rational with zero denominator")
        num, den = self.numerator, self.denominator
        if den < 0:
            num, den = -num, -den
        g = math.gcd(num, den) or 1
        object.__setattr__(self, "numerator", num // g)
        object.__setattr__(self, "denominator", den // g)

    def __add__(self, other: "Rational | int") -> "Rational":
        other = _as_rational(other)
        return Rational(
            self.numerator * other.denominator + other.numerator * self.denominator,
            self.denominator * other.denominator,
        )

    def __sub__(self, other: "Rational | int") -> "Rational":
        other = _as_rational(other)
        return Rational(
            self.numerator * other.denominator - other.numerator * self.denominator,
            self.denominator * other.denominator,
        )

    def __mul__(self, other: "Rational | int") -> "Rational":
        other = _as_rational(other)
        return Rational(self.numerator * other.numerator, self.denominator * other.denominator)

    def __truediv__(self, other: "Rational | int") -> "Rational":
        other = _as_rational(other)
        return Rational(self.numerator * other.denominator, self.denominator * other.numerator)

    def __lt__(self, other: "Rational | int") -> bool:
        other = _as_rational(other)
        return self.numerator * other.denominator < other.numerator * self.denominator

    def __le__(self, other: "Rational | int") -> bool:
        other = _as_rational(other)
        return self.numerator * other.denominator <= other.numerator * self.denominator

    def __gt__(self, other: "Rational | int") -> bool:
        return _as_rational(other) < self

    def __ge__(self, other: "Rational | int") -> bool:
        return _as_rational(other) <= self

    def floor(self) -> int:
        return self.numerator // self.denominator

    def ceil(self) -> int:
        return -((-self.numerator) // self.denominator)

    def is_integral(self) -> bool:
        return self.numerator % self.denominator == 0

    def __float__(self) -> float:
        return self.numerator / self.denominator

    def __repr__(self) -> str:
        if self.denominator == 1:
            return f"Rational({self.numerator})"
        return f"Rational({self.numerator}/{self.denominator})"


def _as_rational(value: "Rational | int") -> Rational:
    if isinstance(value, Rational):
        return value
    if isinstance(value, int):
        return Rational(value)
    raise TypeError(f"cannot coerce {type(value).__name__} to Rational")


def floor_ratio(numerator: int, denominator: int) -> int:
    """Exact ``floor(numerator / denominator)`` for ``denominator > 0``."""
    if denominator <= 0:
        raise ValueError(f"floor_ratio requires positive denominator, got {denominator}")
    return numerator // denominator


def log_binom(n: int, k: int) -> float:
    """Natural log of ``C(n, k)``; ``-inf`` outside the valid range."""
    if k < 0 or n < 0 or k > n:
        return float("-inf")
    return math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)


def logsumexp(values: Iterable[float]) -> float:
    """Stable ``log(sum(exp(v)))`` over an iterable of floats."""
    items = [v for v in values if v != float("-inf")]
    if not items:
        return float("-inf")
    peak = max(items)
    if peak == float("inf"):
        return float("inf")
    return peak + math.log(sum(math.exp(v - peak) for v in items))


def log_binom_pmf(n: int, p_log: float, q_log: float, k: int) -> float:
    """``log P(Bin(n, p) = k)`` given ``log p`` and ``log (1-p)``.

    Passing both logs avoids catastrophic cancellation when ``p`` is close
    to 0 or 1, which happens routinely for the failure probabilities
    ``alpha / C(n, r)`` in Theorem 2.
    """
    if k < 0 or k > n:
        return float("-inf")
    if p_log == float("-inf"):
        return 0.0 if k == 0 else float("-inf")
    if q_log == float("-inf"):
        return 0.0 if k == n else float("-inf")
    return log_binom(n, k) + k * p_log + (n - k) * q_log


def log_binom_tail(n: int, p: float, f: int) -> float:
    """``log P(Bin(n, p) >= f)`` computed stably in log space.

    Sums the pmf from ``f`` upward; once terms decay 60+ nats below the
    running peak they can no longer influence a double, so the sum is cut
    short — this keeps the routine O(stddev) rather than O(n) in practice.
    """
    if f <= 0:
        return 0.0
    if f > n:
        return float("-inf")
    if p <= 0.0:
        return float("-inf")
    if p >= 1.0:
        return 0.0
    p_log = math.log(p)
    q_log = math.log1p(-p)
    terms = []
    peak = float("-inf")
    for k in range(f, n + 1):
        term = log_binom_pmf(n, p_log, q_log, k)
        terms.append(term)
        peak = max(peak, term)
        # Terms are unimodal in k; once past the mode and far below the
        # peak they cannot change the double-precision sum.
        if term < peak - 60.0 and k > n * p:
            break
    return logsumexp(terms)


def log_binom_head(n: int, p: float, f: int) -> float:
    """``log P(Bin(n, p) <= f)`` — the complementary head sum."""
    if f >= n:
        return 0.0
    if f < 0:
        return float("-inf")
    if p <= 0.0:
        return 0.0
    if p >= 1.0:
        return float("-inf")
    p_log = math.log(p)
    q_log = math.log1p(-p)
    terms = []
    peak = float("-inf")
    for k in range(f, -1, -1):
        term = log_binom_pmf(n, p_log, q_log, k)
        terms.append(term)
        peak = max(peak, term)
        if term < peak - 60.0 and k < n * p:
            break
    return logsumexp(terms)
