"""Fixed-width text rendering for the paper's tables and figure series.

The paper's evaluation is a set of dense numeric tables (Figs. 4, 9, 10) and
curve families (Figs. 2, 3, 5–8, 11). Benchmarks emit these as aligned text so
`bench_output.txt` is directly comparable against the paper; no plotting
dependency is required.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


class TextTable:
    """An aligned text table with a header row and optional row labels."""

    def __init__(self, headers: Sequence[str], title: Optional[str] = None) -> None:
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add_row(self, cells: Iterable[object]) -> None:
        row = [_format_cell(cell) for cell in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append("  ".join(h.rjust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _format_cell(cell: object) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def format_grid(
    row_labels: Sequence[object],
    col_labels: Sequence[object],
    values: Sequence[Sequence[object]],
    corner: str = "",
    title: Optional[str] = None,
) -> str:
    """Render a labeled 2-D grid (the shape of the paper's Fig. 9 tables)."""
    if len(values) != len(row_labels):
        raise ValueError(
            f"{len(values)} value rows but {len(row_labels)} row labels"
        )
    table = TextTable([corner, *[str(c) for c in col_labels]], title=title)
    for label, row in zip(row_labels, values):
        if len(row) != len(col_labels):
            raise ValueError(
                f"row for {label!r} has {len(row)} cells but {len(col_labels)} columns"
            )
        table.add_row([label, *row])
    return table.render()


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Sequence[tuple],
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render curve families (one x column, one column per named series)."""
    table = TextTable([x_label, *[name for name, _ in series]], title=title)
    for i, x in enumerate(x_values):
        row: List[object] = [x]
        for _, ys in series:
            y = ys[i]
            row.append(round(y, precision) if isinstance(y, float) else y)
        table.add_row(row)
    return table.render()
