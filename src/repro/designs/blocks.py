"""Block design containers and verification.

A *block design* here is a multiset of ``r``-subsets ("blocks") of a point
set ``{0, ..., v-1}``. The paper's ``Simple(x, lambda)`` placement is exactly
a ``(x+1)-(n, r, lambda)`` *packing*: every ``(x+1)``-subset of points lies
in at most ``lambda`` blocks. A *design* ("maximum packing" / t-design) has
every ``t``-subset in exactly ``lambda`` blocks.

Verification is exhaustive over blocks (never over all ``C(v, t)`` subsets):
counting coverage from the block side costs ``O(#blocks * C(r, t))``, which
is what makes verifying e.g. STS(255) with 10 795 blocks instantaneous.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.util.combinatorics import binom

Block = Tuple[int, ...]


class DesignError(ValueError):
    """Raised when a block set violates the structural rules it claims."""


@dataclass(frozen=True)
class BlockDesign:
    """An immutable collection of equal-size blocks over ``v`` points.

    Attributes:
        v: number of points; points are ``0..v-1``.
        block_size: common size ``r`` of every block.
        blocks: tuple of sorted point tuples. Duplicates are allowed (a
            ``lambda``-fold copy of a design is itself a valid packing with
            multiplier ``lambda``), so this is a multiset.
    """

    v: int
    block_size: int
    blocks: Tuple[Block, ...]
    name: str = field(default="", compare=False)

    @staticmethod
    def from_blocks(
        v: int, blocks: Iterable[Sequence[int]], name: str = ""
    ) -> "BlockDesign":
        """Validate and normalize raw blocks into a :class:`BlockDesign`."""
        normalized: List[Block] = []
        block_size = None
        for raw in blocks:
            block = tuple(sorted(raw))
            if len(set(block)) != len(block):
                raise DesignError(f"block {raw!r} repeats a point")
            if block and not (0 <= block[0] and block[-1] < v):
                raise DesignError(f"block {raw!r} has points outside [0, {v})")
            if block_size is None:
                block_size = len(block)
            elif len(block) != block_size:
                raise DesignError(
                    f"block {raw!r} has size {len(block)}, expected {block_size}"
                )
            normalized.append(block)
        if block_size is None:
            raise DesignError("a design needs at least one block")
        return BlockDesign(v=v, block_size=block_size, blocks=tuple(normalized), name=name)

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def coverage_counts(self, t: int) -> Dict[Block, int]:
        """How many blocks contain each ``t``-subset that is covered at all."""
        if not 1 <= t <= self.block_size:
            raise ValueError(f"t must be in [1, {self.block_size}], got {t}")
        counts: Dict[Block, int] = {}
        for block in self.blocks:
            for subset in combinations(block, t):
                counts[subset] = counts.get(subset, 0) + 1
        return counts

    def max_coverage(self, t: int) -> int:
        """Largest number of blocks sharing any single ``t``-subset."""
        counts = self.coverage_counts(t)
        return max(counts.values()) if counts else 0

    def is_packing(self, t: int, lam: int) -> bool:
        """True iff this is a ``t-(v, r, lam)`` packing (Definition 2 with x = t-1)."""
        return self.max_coverage(t) <= lam

    def is_design(self, t: int, lam: int) -> bool:
        """True iff every ``t``-subset of the point set is in exactly ``lam`` blocks."""
        counts = self.coverage_counts(t)
        if len(counts) != binom(self.v, t):
            return False
        return all(count == lam for count in counts.values())

    def replication_counts(self) -> List[int]:
        """Number of blocks through each point (load per node when placed)."""
        per_point = [0] * self.v
        for block in self.blocks:
            for point in block:
                per_point[point] += 1
        return per_point

    def relabel(self, mapping: Sequence[int], v: int) -> "BlockDesign":
        """Map point ``i`` to ``mapping[i]`` into a space of ``v`` points."""
        if len(mapping) < self.v:
            raise DesignError(
                f"mapping covers {len(mapping)} points but design has {self.v}"
            )
        if any(not 0 <= m < v for m in mapping[: self.v]):
            raise DesignError("mapping sends points outside the target space")
        if len(set(mapping[: self.v])) != self.v:
            raise DesignError("mapping must be injective on design points")
        blocks = [tuple(sorted(mapping[p] for p in block)) for block in self.blocks]
        return BlockDesign.from_blocks(v, blocks, name=self.name)

    def point_sets(self) -> List[FrozenSet[int]]:
        """Blocks as frozensets (the historical set-facing view)."""
        return [frozenset(block) for block in self.blocks]

    def rows_array(self):
        """Blocks flattened row-major into an int32 buffer (cached).

        The shape the array-native :class:`~repro.core.placement.Placement`
        consumes: blocks are already sorted, so the buffer can feed
        ``Placement.from_arrays(..., validate=False)`` and the row-gather
        fast paths in :mod:`repro.designs.packing` directly.
        """
        from array import array

        cached = self.__dict__.get("_rows_array")
        if cached is None:
            cached = array("i")
            for block in self.blocks:
                cached.extend(block)
            object.__setattr__(self, "_rows_array", cached)
        return cached

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"BlockDesign(v={self.v}, r={self.block_size}, "
            f"b={self.num_blocks}{label})"
        )


def design_block_count(v: int, r: int, t: int, lam: int) -> int:
    """Number of blocks of a ``t-(v, r, lam)`` design; raises if non-integral.

    By double counting, a t-design has exactly ``lam * C(v,t) / C(r,t)``
    blocks; integrality of this (and of the derived counts for every
    ``i < t``) is the classical necessary condition for existence.
    """
    numerator = lam * binom(v, t)
    denominator = binom(r, t)
    if numerator % denominator:
        raise DesignError(
            f"no {t}-({v},{r},{lam}) design: block count "
            f"{numerator}/{denominator} is not integral"
        )
    return numerator // denominator


def divisibility_conditions_hold(v: int, r: int, t: int, lam: int) -> bool:
    """All of Fisher's divisibility conditions for a ``t-(v, r, lam)`` design.

    For each ``0 <= i <= t`` the count ``lam * C(v-i, t-i) / C(r-i, t-i)``
    (blocks through a fixed i-subset) must be an integer.
    """
    for i in range(t + 1):
        numerator = lam * binom(v - i, t - i)
        denominator = binom(r - i, t - i)
        if denominator == 0 or numerator % denominator:
            return False
    return True


def packing_capacity(v: int, r: int, t: int, lam: int) -> int:
    """Lemma 1: max number of blocks in any ``t-(v, r, lam)`` packing.

    ``b <= floor(lam * C(v, t) / C(r, t))``. This is the paper's bound with
    ``t = x + 1``; it is necessary, not sufficient.
    """
    if not 1 <= t <= r <= v:
        raise ValueError(f"need 1 <= t <= r <= v, got t={t}, r={r}, v={v}")
    if lam < 1:
        raise ValueError(f"lambda must be >= 1, got {lam}")
    return (lam * binom(v, t)) // binom(r, t)
