"""Steiner triple systems STS(v) = ``2-(v, 3, 1)`` designs for every admissible v.

Kirkman's theorem: STS(v) exists iff ``v ≡ 1 or 3 (mod 6)``. The two
classical direct constructions cover the whole spectrum:

* **Bose** (``v = 6t + 3``) — built from the idempotent commutative
  quasigroup on Z_{2t+1} (odd order, so halving is well defined);
* **Skolem** (``v = 6t + 1``) — built from the half-idempotent commutative
  quasigroup on Z_{2t} plus one infinite point.

The paper's evaluations use STS(31) and STS(255) (also reachable as PG
lines) and STS(69) — the ``n1`` subsystem for ``n = 71, r = 3`` that
underlies its Fig. 2 simulation — which only Bose provides directly.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.designs.blocks import BlockDesign

Block = Tuple[int, ...]


def sts_exists(v: int) -> bool:
    """Kirkman's existence criterion for Steiner triple systems."""
    return v >= 3 and v % 6 in (1, 3)


def steiner_triple_system(v: int) -> BlockDesign:
    """An STS(v) via Bose (v ≡ 3 mod 6) or Skolem (v ≡ 1 mod 6)."""
    if not sts_exists(v):
        raise ValueError(f"no STS({v}): v must be 1 or 3 mod 6 and >= 3")
    if v % 6 == 3:
        blocks = _bose_blocks(v)
        name = f"STS({v}) [Bose]"
    else:
        blocks = _skolem_blocks(v)
        name = f"STS({v}) [Skolem]"
    return BlockDesign.from_blocks(v, blocks, name=name)


def _bose_blocks(v: int) -> List[Block]:
    """Bose construction on points Z_m x {0,1,2} with m = v/3 odd."""
    m = v // 3
    half = (m + 1) // 2  # multiplicative inverse of 2 modulo odd m

    def point(x: int, level: int) -> int:
        return x + level * m

    blocks: List[Block] = []
    for x in range(m):
        blocks.append((point(x, 0), point(x, 1), point(x, 2)))
    for x in range(m):
        for y in range(x + 1, m):
            merged = ((x + y) * half) % m
            for level in range(3):
                blocks.append(
                    tuple(
                        sorted(
                            (
                                point(x, level),
                                point(y, level),
                                point(merged, (level + 1) % 3),
                            )
                        )
                    )
                )
    return blocks


def _skolem_blocks(v: int) -> List[Block]:
    """Skolem construction on points (Z_{2t} x {0,1,2}) + one infinite point.

    Uses the half-idempotent commutative quasigroup ``i ∘ j = f(i + j)``
    on Z_{2t}, where f maps evens ``2k -> k`` and odds ``2k+1 -> t + k``.
    """
    t = (v - 1) // 6
    m = 2 * t
    infinity = v - 1

    def point(x: int, level: int) -> int:
        return x + level * m

    def quasigroup(i: int, j: int) -> int:
        total = (i + j) % m
        return total // 2 if total % 2 == 0 else t + (total - 1) // 2

    blocks: List[Block] = []
    for i in range(t):  # idempotent half only
        blocks.append((point(i, 0), point(i, 1), point(i, 2)))
    for i in range(t):
        for level in range(3):
            blocks.append(
                tuple(
                    sorted(
                        (
                            infinity,
                            point(t + i, level),
                            point(i, (level + 1) % 3),
                        )
                    )
                )
            )
    for i in range(m):
        for j in range(i + 1, m):
            merged = quasigroup(i, j)
            for level in range(3):
                blocks.append(
                    tuple(
                        sorted(
                            (
                                point(i, level),
                                point(j, level),
                                point(merged, (level + 1) % 3),
                            )
                        )
                    )
                )
    return blocks
