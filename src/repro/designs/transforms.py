"""Design transformations: derived designs, copies, disjoint unions, complements.

These are the standard design-theory operations the paper leans on:

* ``lambda``-fold **copies** realize Observation 1 (a Simple(x, λ) from λ/μ
  copies of a Simple(x, μ));
* **disjoint unions** realize Observation 2 (chunking the node set when no
  single subsystem order fits);
* **derived** designs turn S(5,6,12) into the S(4,5,11) the catalog lists;
* the **trivial design** of all r-subsets covers the ``x + 1 = r`` case,
  where the paper notes the Steiner constraints are vacuously satisfied.
"""

from __future__ import annotations

from itertools import combinations, islice
from typing import Iterator, List, Sequence, Tuple

from repro.designs.blocks import Block, BlockDesign, DesignError


def repeat_design(design: BlockDesign, copies: int) -> BlockDesign:
    """The ``copies``-fold multiset union: a t-(v, r, copies * lam) design."""
    if copies < 1:
        raise ValueError(f"copies must be >= 1, got {copies}")
    return BlockDesign(
        v=design.v,
        block_size=design.block_size,
        blocks=design.blocks * copies,
        name=f"{design.name} x{copies}" if design.name else "",
    )


def disjoint_union(designs: Sequence[BlockDesign]) -> BlockDesign:
    """Union on disjoint point sets (chunking; Observation 2 of the paper).

    Chunk ``i``'s points are shifted by the total size of chunks before it.
    All chunks must share the block size. Coverage of any t-subset touching
    two chunks is zero, so a union of t-(v_i, r, λ) packings is a
    t-(Σ v_i, r, λ) packing.
    """
    if not designs:
        raise ValueError("disjoint_union needs at least one design")
    block_size = designs[0].block_size
    blocks: List[Block] = []
    offset = 0
    for design in designs:
        if design.block_size != block_size:
            raise DesignError(
                f"mixed block sizes {design.block_size} and {block_size}"
            )
        blocks.extend(
            tuple(point + offset for point in block) for block in design.blocks
        )
        offset += design.v
    names = ", ".join(d.name for d in designs if d.name)
    return BlockDesign.from_blocks(offset, blocks, name=f"union[{names}]")


def derived_design(design: BlockDesign, point: int) -> BlockDesign:
    """Derived design at ``point``: blocks through it, with it removed.

    The derived design of a t-(v, r, λ) design is a (t-1)-(v-1, r-1, λ)
    design. Points are relabeled to close the gap left by ``point``.
    """
    if not 0 <= point < design.v:
        raise ValueError(f"point {point} outside design on {design.v} points")

    def relabel(p: int) -> int:
        return p if p < point else p - 1

    blocks = [
        tuple(sorted(relabel(p) for p in block if p != point))
        for block in design.blocks
        if point in block
    ]
    if not blocks:
        raise DesignError(f"no blocks through point {point}")
    return BlockDesign.from_blocks(
        design.v - 1, blocks, name=f"derived({design.name or 'design'}@{point})"
    )


def residual_design(design: BlockDesign, point: int) -> BlockDesign:
    """Residual design at ``point``: the blocks avoiding it, points relabeled."""
    if not 0 <= point < design.v:
        raise ValueError(f"point {point} outside design on {design.v} points")

    def relabel(p: int) -> int:
        return p if p < point else p - 1

    blocks = [
        tuple(sorted(relabel(p) for p in block))
        for block in design.blocks
        if point not in block
    ]
    if not blocks:
        raise DesignError(f"every block passes through point {point}")
    return BlockDesign.from_blocks(
        design.v - 1, blocks, name=f"residual({design.name or 'design'}@{point})"
    )


def complement_design(design: BlockDesign) -> BlockDesign:
    """Replace every block by its complement in the point set."""
    if design.block_size >= design.v:
        raise DesignError("complement of spanning blocks would be empty")
    full = set(range(design.v))
    blocks = [tuple(sorted(full - set(block))) for block in design.blocks]
    return BlockDesign.from_blocks(
        design.v, blocks, name=f"complement({design.name or 'design'})"
    )


def all_subsets_blocks(v: int, r: int) -> Iterator[Block]:
    """Lazily enumerate all r-subsets of ``v`` points in lexicographic order.

    The trivial design for the ``x + 1 = r`` stratum. It is deliberately a
    generator: at the paper's scale (e.g. v = 257, r = 5) the full design
    has ~2.8 billion blocks, but placements only ever consume a prefix.
    """
    if not 1 <= r <= v:
        raise ValueError(f"need 1 <= r <= v, got r={r}, v={v}")
    return combinations(range(v), r)


def trivial_design_prefix(v: int, r: int, num_blocks: int) -> BlockDesign:
    """The first ``num_blocks`` r-subsets as a concrete design object."""
    blocks = list(islice(all_subsets_blocks(v, r), num_blocks))
    if len(blocks) < num_blocks:
        raise DesignError(
            f"only C({v},{r})={len(blocks)} distinct {r}-subsets exist, "
            f"cannot provide {num_blocks}"
        )
    return BlockDesign.from_blocks(v, blocks, name=f"trivial({v},{r})[:{num_blocks}]")
