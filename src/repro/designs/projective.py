"""Lines of projective space PG(d, q): ``2-((q^{d+1}-1)/(q-1), q+1, 1)`` designs.

The second geometric family from Sec. III-C of the paper. The points of
PG(d, q) are the one-dimensional subspaces of GF(q)^{d+1}; lines are the
two-dimensional subspaces, each containing ``q + 1`` points, and every pair
of points spans exactly one line. Notable instances used in the paper:

* PG(2, q) — the projective plane of order ``q`` (2-(q^2+q+1, q+1, 1));
* PG(4, 2), PG(7, 2) — Steiner triple systems STS(31), STS(255), the
  paper's ``n1`` entries for ``r = 3`` at ``n = 31`` and ``n = 257``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.designs.blocks import BlockDesign
from repro.designs.gf import GF, gf

Vector = Tuple[int, ...]


def projective_space_size(d: int, q: int) -> int:
    """Number of points of PG(d, q) = (q^{d+1} - 1) / (q - 1)."""
    return (q ** (d + 1) - 1) // (q - 1)


def _projective_points(field: GF, d: int) -> List[Vector]:
    """Normalized representatives (first nonzero coordinate 1) of PG(d, q)."""
    points: List[Vector] = []
    vectors: List[Vector] = [()]
    for _ in range(d + 1):
        vectors = [v + (x,) for v in vectors for x in field.elements()]
    for vector in vectors:
        leading = next((x for x in vector if x != 0), None)
        if leading == 1:
            points.append(vector)
    return points


def _normalize(field: GF, vector: Vector) -> Vector:
    leading = next((x for x in vector if x != 0), None)
    if leading is None:
        raise ValueError("zero vector has no projective normalization")
    inverse = field.inv(leading)
    return tuple(field.mul(inverse, x) for x in vector)


def projective_geometry_design(d: int, q: int) -> BlockDesign:
    """The design of lines of PG(d, q)."""
    if d < 2:
        raise ValueError(f"PG lines need dimension >= 2, got {d}")
    field = gf(q)
    points = _projective_points(field, d)
    index: Dict[Vector, int] = {point: i for i, point in enumerate(points)}
    v = len(points)
    blocks = []
    seen = set()
    for i in range(v):
        for j in range(i + 1, v):
            # The line through points i and j: {p_i} union {p_j + t*p_i}
            # (the first term is the alpha*p_i + 0*p_j combination).
            line = {i}
            for t in field.elements():
                combo = tuple(
                    field.add(points[j][c], field.mul(t, points[i][c]))
                    for c in range(d + 1)
                )
                line.add(index[_normalize(field, combo)])
            key = frozenset(line)
            if key not in seen:
                seen.add(key)
                blocks.append(tuple(sorted(line)))
    design = BlockDesign.from_blocks(v, blocks, name=f"PG({d},{q}) lines")
    return design


def projective_plane(q: int) -> BlockDesign:
    """The projective plane of order ``q``: a ``2-(q^2+q+1, q+1, 1)`` design."""
    return projective_geometry_design(2, q)
