"""Permutation-group orbits on the projective line, for orbit designs.

Several of the Steiner systems the paper relies on (Sec. III-C) are orbits
of a single base block under a fractional-linear group acting on the
projective line PG(1, q): inversive planes and their higher-dimensional
subline relatives ``S(3, q+1, q^d+1)``, the small Witt design S(5, 6, 12)
(an orbit under PSL(2, 11)), and S(3, 4, 10) / S(3, 4, 14) under PSL(2, 9)
and PSL(2, 13). This module provides:

* the standard generators of PGL(2, q) / PSL(2, q) / PGammaL(2, q) as
  permutations of the ``q + 1`` points of PG(1, q) (point ``q`` is infinity);
* orbit closure of a block set under a generator list;
* a search helper that scans base blocks for one whose orbit is a
  ``t``-design — the verification step makes the construction self-checking,
  so no unproven group-theoretic fact is load-bearing.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.designs.blocks import BlockDesign
from repro.designs.gf import GF, gf
from repro.util.combinatorics import binom

Permutation = Tuple[int, ...]


def projective_line_size(q: int) -> int:
    """Number of points of PG(1, q); point ``q`` denotes infinity."""
    return q + 1


def _mobius_permutation(field: GF, a: int, b: int, c: int, d: int) -> Permutation:
    """Permutation of PG(1, q) induced by ``x -> (a x + b) / (c x + d)``.

    Requires ``ad - bc != 0``. Point index ``q`` is infinity.
    """
    q = field.q
    det = field.sub(field.mul(a, d), field.mul(b, c))
    if det == 0:
        raise ValueError("Mobius map needs nonzero determinant")
    image = []
    for x in range(q):
        numerator = field.add(field.mul(a, x), b)
        denominator = field.add(field.mul(c, x), d)
        if denominator == 0:
            image.append(q)
        else:
            image.append(field.div(numerator, denominator))
    # Image of infinity is a/c (or infinity when c == 0).
    image.append(q if c == 0 else field.div(a, c))
    return tuple(image)


def pgl2_generators(q: int) -> List[Permutation]:
    """Generators of PGL(2, q) on PG(1, q): translation, scaling, inversion."""
    field = gf(q)
    translation = _mobius_permutation(field, 1, 1, 0, 1)
    scaling = _mobius_permutation(field, field.primitive_element, 0, 0, 1)
    inversion = _mobius_permutation(field, 0, 1, 1, 0)
    return [translation, scaling, inversion]


def psl2_generators(q: int) -> List[Permutation]:
    """Generators of PSL(2, q): scale by a *square* of the primitive element.

    PSL(2, q) = maps with square determinant. ``x -> g^2 x`` together with
    the translation and the determinant-(-1) inversion composed suitably
    generate it; we use the standard set {x+1, g^2 x, -1/x}.
    """
    field = gf(q)
    translation = _mobius_permutation(field, 1, 1, 0, 1)
    square = field.mul(field.primitive_element, field.primitive_element)
    scaling = _mobius_permutation(field, square, 0, 0, 1)
    neg_inversion = _mobius_permutation(field, 0, field.neg(1), 1, 0)
    return [translation, scaling, neg_inversion]


def frobenius_permutation(q: int) -> Permutation:
    """The field automorphism ``x -> x^p`` extended to PG(1, q) (fixes infinity)."""
    field = gf(q)
    image = [field.pow(x, field.p) for x in range(q)] + [q]
    return tuple(image)


def pgammal2_generators(q: int) -> List[Permutation]:
    """Generators of PGammaL(2, q) = PGL(2, q) extended by Frobenius."""
    return pgl2_generators(q) + [frobenius_permutation(q)]


def orbit_of_block(
    block: Iterable[int], generators: Sequence[Permutation]
) -> Set[FrozenSet[int]]:
    """Closure of one block under a generator set (BFS over images)."""
    start = frozenset(block)
    seen: Set[FrozenSet[int]] = {start}
    frontier = [start]
    while frontier:
        current = frontier.pop()
        for perm in generators:
            image = frozenset(perm[p] for p in current)
            if image not in seen:
                seen.add(image)
                frontier.append(image)
    return seen


def orbit_design(
    v: int,
    base_block: Iterable[int],
    generators: Sequence[Permutation],
    t: int,
    lam: int = 1,
    name: str = "",
) -> BlockDesign:
    """Build the orbit of ``base_block`` and verify it is a ``t-(v,·,lam)`` design."""
    orbit = orbit_of_block(base_block, generators)
    design = BlockDesign.from_blocks(v, [tuple(sorted(b)) for b in orbit], name=name)
    if not design.is_design(t, lam):
        raise ValueError(
            f"orbit of {sorted(base_block)} under the given group is not a "
            f"{t}-({v},{design.block_size},{lam}) design"
        )
    return design


def search_orbit_steiner(
    v: int,
    block_size: int,
    t: int,
    generators: Sequence[Permutation],
    name: str = "",
) -> Optional[BlockDesign]:
    """Scan base blocks for one whose group orbit is a Steiner system.

    Used for the small sporadic systems (S(3,4,10), S(3,4,14), S(5,6,12)):
    the candidate space ``C(v, block_size)`` is tiny, the orbit closure is
    cheap, and full verification guards correctness. Returns ``None`` when
    no base block works (caller falls back to exact-cover search).
    """
    target_blocks = binom(v, t) // binom(block_size, t)
    if binom(v, t) % binom(block_size, t):
        return None
    tried: Set[FrozenSet[int]] = set()
    for candidate in combinations(range(v), block_size):
        block = frozenset(candidate)
        if block in tried:
            continue
        orbit = orbit_of_block(block, generators)
        tried.update(orbit)
        if len(orbit) != target_blocks:
            continue
        design = BlockDesign.from_blocks(
            v, [tuple(sorted(b)) for b in orbit], name=name
        )
        if design.is_design(t, 1):
            return design
    return None
