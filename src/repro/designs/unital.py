"""Hermitian unitals: ``2-(q^3 + 1, q + 1, 1)`` designs.

The points are the absolute points of a unitary polarity of PG(2, q^2) —
equivalently the GF(q^2)-rational points of the Hermitian curve
``x^{q+1} + y^{q+1} + z^{q+1} = 0`` — and the blocks are the intersections
with secant lines, each of size ``q + 1``.

The paper's subsystem table needs two instances:

* q = 3: ``2-(28, 4, 1)`` — the ``n1 = 28`` entry for ``n = 31, r = 4``;
* q = 4: ``2-(65, 5, 1)`` — the ``n1 = 65`` entry for ``n = 71, r = 5``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.designs.blocks import BlockDesign
from repro.designs.gf import GF, gf

Point = Tuple[int, int, int]


def _hermitian_points(field: GF, q: int) -> List[Point]:
    """Normalized projective points with ``x^{q+1} + y^{q+1} + z^{q+1} = 0``."""
    points = []
    for x in field.elements():
        for y in field.elements():
            for z in field.elements():
                if (x, y, z) == (0, 0, 0):
                    continue
                leading = next(c for c in (x, y, z) if c != 0)
                if leading != 1:
                    continue  # one representative per projective point
                norm_sum = 0
                for coordinate in (x, y, z):
                    norm_sum = field.add(norm_sum, field.pow(coordinate, q + 1))
                if norm_sum == 0:
                    points.append((x, y, z))
    return points


def hermitian_unital(q: int) -> BlockDesign:
    """The Hermitian unital H(q) as a ``2-(q^3+1, q+1, 1)`` design."""
    field = gf(q * q)
    points = _hermitian_points(field, q)
    expected = q**3 + 1
    if len(points) != expected:
        raise AssertionError(
            f"Hermitian curve over GF({q * q}) has {len(points)} points, "
            f"expected {expected}"
        )
    index: Dict[Point, int] = {point: i for i, point in enumerate(points)}
    on_curve = set(points)

    blocks = []
    seen = set()
    for i in range(len(points)):
        for j in range(i + 1, len(points)):
            block = {i, j}
            a, b = points[i], points[j]
            # Points of the PG(2, q^2) line through a and b: b + t*a and a.
            for t in field.elements():
                candidate = tuple(
                    field.add(b[c], field.mul(t, a[c])) for c in range(3)
                )
                normalized = _normalize(field, candidate)
                if normalized in on_curve:
                    block.add(index[normalized])
            key = frozenset(block)
            if key in seen:
                continue
            seen.add(key)
            if len(block) != q + 1:
                raise AssertionError(
                    f"secant line meets unital in {len(block)} points, "
                    f"expected {q + 1}"
                )
            blocks.append(tuple(sorted(block)))
    return BlockDesign.from_blocks(expected, blocks, name=f"Hermitian unital H({q})")


def _normalize(field: GF, vector: Point) -> Point:
    leading = next((c for c in vector if c != 0), None)
    if leading is None:
        raise ValueError("zero vector is not projective")
    inverse = field.inv(leading)
    return tuple(field.mul(inverse, c) for c in vector)
