"""Resolutions: partitioning a design's blocks into parallel classes.

A *parallel class* is a set of blocks partitioning the point set; a design
is *resolvable* when its blocks split into parallel classes. Resolvable
consumption order matters operationally: a placement that consumes blocks
class-by-class keeps per-node replica load perfectly uniform at every
class boundary (the strongest form of the paper's load-balancing aside).

Affine line designs are resolvable by construction (classes = directions);
pair designs resolve into the round-robin one-factorization. For arbitrary
designs this module *searches* for a resolution by peeling parallel
classes with exact cover, which decides resolvability for small systems
(e.g. it proves the Fano plane has none in microseconds — 7 blocks cannot
even split into integral classes).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.designs.blocks import Block, BlockDesign
from repro.designs.exact_cover import ExactCover, SearchBudgetExceeded


def resolution_block_shape(design: BlockDesign) -> Optional[Tuple[int, int]]:
    """(classes, blocks per class) when the counting conditions allow one."""
    if design.v % design.block_size:
        return None
    per_class = design.v // design.block_size
    if design.num_blocks % per_class:
        return None
    return design.num_blocks // per_class, per_class


def find_resolution(
    design: BlockDesign, max_nodes_per_class: int = 200_000
) -> Optional[List[List[Block]]]:
    """Partition blocks into parallel classes, or ``None``.

    Greedy peeling with per-class exact cover and chronological
    backtracking across classes: if the residual block set admits no
    parallel class, the previous class choice is re-enumerated. Complete
    for small designs (subject to the per-class node budget); returns
    ``None`` on budget exhaustion as well as on proven non-resolvability.
    """
    shape = resolution_block_shape(design)
    if shape is None:
        return None
    num_classes, _ = shape

    remaining = list(design.blocks)
    classes: List[List[Block]] = []
    # Iterators over per-class exact covers, for chronological backtracking.
    stack: List = []

    def class_candidates(blocks: List[Block]):
        problem = ExactCover(design.v)
        rows: Dict[int, int] = {}
        for index, block in enumerate(blocks):
            row_id = problem.add_row(list(block))
            rows[row_id] = index
        try:
            for solution in problem.solutions(max_nodes=max_nodes_per_class):
                yield sorted(rows[row_id] for row_id in solution)
        except SearchBudgetExceeded:
            return

    iterator = class_candidates(remaining)
    while True:
        choice = next(iterator, None)
        if choice is None:
            if not stack:
                return None
            remaining, iterator = stack.pop()
            classes.pop()
            continue
        chosen_blocks = [remaining[i] for i in choice]
        classes.append(chosen_blocks)
        if len(classes) == num_classes:
            return classes
        stack.append((remaining, iterator))
        chosen_set = set(choice)
        remaining = [blk for i, blk in enumerate(remaining) if i not in chosen_set]
        iterator = class_candidates(remaining)


def is_resolution(design: BlockDesign, classes: List[List[Block]]) -> bool:
    """Validate: classes partition the blocks, each partitioning the points."""
    flattened = sorted(block for cls in classes for block in cls)
    if flattened != sorted(design.blocks):
        return False
    full = set(range(design.v))
    for cls in classes:
        points = [p for block in cls for p in block]
        if len(points) != design.v or set(points) != full:
            return False
    return True


def resolved_block_order(design: BlockDesign) -> Optional[List[Block]]:
    """Blocks reordered class-by-class, or ``None`` if no resolution found.

    Feeding this order into packing consumption gives perfectly uniform
    per-node load at every class boundary.
    """
    classes = find_resolution(design)
    if classes is None:
        return None
    return [block for cls in classes for block in cls]
