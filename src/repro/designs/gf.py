"""Finite fields GF(p^m) for small prime powers.

The geometric design constructions (lines of affine and projective spaces,
Sec. III-C of the paper) need arithmetic over GF(q) for q up to a few
hundred. Elements are represented as integers in ``[0, q)`` encoding the
base-``p`` digit vector of a polynomial over GF(p); multiplication reduces
modulo a monic irreducible polynomial found by exhaustive search (fast at
these sizes, and deterministic so field tables are reproducible).

For fields of this size, full log/antilog tables give O(1) multiplication
and inversion, so the table build cost — O(q^2) at worst during the
irreducibility search — is paid once per field and cached.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Sequence, Tuple

from repro.util.combinatorics import prime_power_decomposition


class GF:
    """The finite field with ``q = p**m`` elements.

    Elements are plain ``int`` in ``[0, q)``. The integer ``e`` encodes the
    polynomial ``sum(digit_i * X**i)`` where ``digit_i`` are the base-``p``
    digits of ``e``; for prime fields (``m == 1``) this is ordinary
    arithmetic mod ``p``.
    """

    def __init__(self, q: int) -> None:
        decomposition = prime_power_decomposition(q)
        if decomposition is None:
            raise ValueError(f"GF order must be a prime power, got {q}")
        self.q = q
        self.p, self.m = decomposition
        if self.m == 1:
            self._modulus: Tuple[int, ...] = ()
        else:
            self._modulus = _find_irreducible(self.p, self.m)
        self._exp: List[int] = []
        self._log: List[int] = []
        self._build_tables()

    # -- element arithmetic -------------------------------------------------

    def add(self, a: int, b: int) -> int:
        self._check(a)
        self._check(b)
        if self.m == 1:
            return (a + b) % self.p
        result = 0
        scale = 1
        while a or b:
            digit = (a % self.p + b % self.p) % self.p
            result += digit * scale
            scale *= self.p
            a //= self.p
            b //= self.p
        return result

    def neg(self, a: int) -> int:
        self._check(a)
        if self.m == 1:
            return (-a) % self.p
        result = 0
        scale = 1
        while a:
            result += ((-a) % self.p) * scale
            scale *= self.p
            a //= self.p
        return result

    def sub(self, a: int, b: int) -> int:
        return self.add(a, self.neg(b))

    def mul(self, a: int, b: int) -> int:
        self._check(a)
        self._check(b)
        if a == 0 or b == 0:
            return 0
        return self._exp[(self._log[a] + self._log[b]) % (self.q - 1)]

    def inv(self, a: int) -> int:
        self._check(a)
        if a == 0:
            raise ZeroDivisionError("inverse of 0 in GF")
        return self._exp[(-self._log[a]) % (self.q - 1)]

    def div(self, a: int, b: int) -> int:
        return self.mul(a, self.inv(b))

    def pow(self, a: int, e: int) -> int:
        self._check(a)
        if a == 0:
            if e < 0:
                raise ZeroDivisionError("0 to a negative power in GF")
            return 0 if e else 1
        return self._exp[(self._log[a] * e) % (self.q - 1)]

    def elements(self) -> range:
        return range(self.q)

    @property
    def primitive_element(self) -> int:
        if self.q == 2:
            return 1  # the multiplicative group is trivial
        return self._exp[1]

    # -- internals ----------------------------------------------------------

    def _check(self, a: int) -> None:
        if not 0 <= a < self.q:
            raise ValueError(f"{a} is not an element of GF({self.q})")

    def _mul_slow(self, a: int, b: int) -> int:
        """Polynomial multiplication mod the irreducible; table-free path."""
        if self.m == 1:
            return (a * b) % self.p
        pa = _int_to_poly(a, self.p)
        pb = _int_to_poly(b, self.p)
        product = [0] * (len(pa) + len(pb) - 1) if pa and pb else []
        for i, ca in enumerate(pa):
            if not ca:
                continue
            for j, cb in enumerate(pb):
                product[i + j] = (product[i + j] + ca * cb) % self.p
        reduced = _poly_mod(product, self._modulus, self.p)
        return _poly_to_int(reduced, self.p)

    def _build_tables(self) -> None:
        """Find a generator of the multiplicative group and tabulate powers."""
        order = self.q - 1
        for candidate in range(1, self.q):
            if candidate == 0:
                continue
            exp_table = [1]
            value = 1
            for _ in range(order - 1):
                value = self._mul_slow(value, candidate)
                if value == 1:
                    break
                exp_table.append(value)
            if len(exp_table) == order:
                self._exp = exp_table
                self._log = [0] * self.q
                for power, element in enumerate(exp_table):
                    self._log[element] = power
                return
        raise AssertionError(f"no primitive element found for GF({self.q})")

    def __repr__(self) -> str:
        return f"GF({self.q})"


@lru_cache(maxsize=None)
def gf(q: int) -> GF:
    """Cached field constructor: fields are immutable, so share them."""
    return GF(q)


def _int_to_poly(value: int, p: int) -> List[int]:
    digits = []
    while value:
        digits.append(value % p)
        value //= p
    return digits


def _poly_to_int(poly: Sequence[int], p: int) -> int:
    result = 0
    for coefficient in reversed(poly):
        result = result * p + coefficient
    return result


def _poly_mod(poly: List[int], modulus: Sequence[int], p: int) -> List[int]:
    """Remainder of ``poly`` divided by monic ``modulus`` over GF(p)."""
    remainder = list(poly)
    degree = len(modulus) - 1
    while len(remainder) > degree:
        lead = remainder[-1]
        if lead:
            shift = len(remainder) - 1 - degree
            for i, coefficient in enumerate(modulus):
                remainder[shift + i] = (remainder[shift + i] - lead * coefficient) % p
        remainder.pop()
    while remainder and remainder[-1] == 0:
        remainder.pop()
    return remainder


def _is_irreducible(candidate: Sequence[int], p: int) -> bool:
    """Check irreducibility by trial division with all lower-degree monics."""
    degree = len(candidate) - 1
    if degree <= 1:
        return degree == 1
    for divisor_degree in range(1, degree // 2 + 1):
        for encoded in range(p**divisor_degree):
            divisor = _int_to_poly(encoded, p)
            divisor += [0] * (divisor_degree - len(divisor))
            divisor.append(1)  # monic
            if not _poly_mod(list(candidate), divisor, p):
                return False
    return True


def _find_irreducible(p: int, m: int) -> Tuple[int, ...]:
    """Smallest monic irreducible polynomial of degree ``m`` over GF(p)."""
    for encoded in range(p**m):
        lower = _int_to_poly(encoded, p)
        lower += [0] * (m - len(lower))
        candidate = (*lower, 1)
        if _is_irreducible(candidate, p):
            return candidate
    raise AssertionError(f"no irreducible polynomial of degree {m} over GF({p})")
