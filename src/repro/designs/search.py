"""Exact-cover search for small Steiner systems.

Maps ``t-(v, r, 1)`` existence to exact cover (columns = t-subsets, rows =
candidate blocks) and runs DLX. Practical for the small sporadic orders
(Fano plane, SQS(8)/SQS(10), S(2,3,13), ...) where no algebraic
construction is wired up, and as an independent oracle to cross-check the
algebraic constructions in tests.

Symmetry breaking: the first block may be fixed to ``{0, 1, ..., r-1}``
after relabeling points, which shrinks the search by a factor of roughly
``C(v, r) / C(v - t, r - t)`` without losing completeness.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Optional, Tuple

from repro.designs.blocks import BlockDesign, divisibility_conditions_hold
from repro.designs.exact_cover import ExactCover


def search_steiner_system(
    v: int,
    r: int,
    t: int,
    max_nodes: Optional[int] = 2_000_000,
    fix_first_block: bool = True,
) -> Optional[BlockDesign]:
    """Find a ``t-(v, r, 1)`` design by exact cover, or ``None`` if none exists.

    Raises :class:`SearchBudgetExceeded` when the node budget runs out
    before the instance is decided.
    """
    if not 1 <= t <= r <= v:
        raise ValueError(f"need 1 <= t <= r <= v, got t={t}, r={r}, v={v}")
    if not divisibility_conditions_hold(v, r, t, 1):
        return None

    column_of: Dict[Tuple[int, ...], int] = {
        subset: i for i, subset in enumerate(combinations(range(v), t))
    }
    problem = ExactCover(len(column_of))
    rows: Dict[int, Tuple[int, ...]] = {}

    first_block = tuple(range(r))
    first_row_id = None
    for block in combinations(range(v), r):
        row_id = problem.add_row([column_of[subset] for subset in combinations(block, t)])
        rows[row_id] = block
        if block == first_block:
            first_row_id = row_id

    if fix_first_block and first_row_id is not None:
        # Every design has a block through points 0..t-1; after relabeling it
        # is {0..r-1}, so forcing that row in keeps the search complete while
        # collapsing the point-relabeling symmetry.
        problem.select_row(first_row_id)

    solution = problem.solve(max_nodes=max_nodes)
    if solution is None:
        return None
    return BlockDesign.from_blocks(
        v, [rows[row_id] for row_id in solution], name=f"S({t},{r},{v}) [DLX]"
    )
