"""Subline designs ``S(3, q+1, q^d + 1)``: inversive planes and their relatives.

This is the paper's third infinite family (Sec. III-C): "x+1 = 3, r = q+1,
and nx = q^d + 1". The points are PG(1, q^d); the blocks are the images of
the standard subline ``PG(1, q) = GF(q) ∪ {∞}`` under the semilinear group
PGammaL(2, q^d). For ``d = 2`` this is the Miquelian inversive plane of
order ``q``. Any three points lie on exactly one such circle.

Instances used by the paper (all with q = 4, r = 5):

* d = 2 → S(3, 5, 17)
* d = 3 → S(3, 5, 65)   (``n2`` for ``n = 71``)
* d = 4 → S(3, 5, 257)  (``n2`` for ``n = 257``)

The construction is orbit closure plus full verification, so group-theoretic
facts (orbit size, stabilizer shape) are checked rather than assumed.
"""

from __future__ import annotations

from functools import lru_cache

from repro.designs.blocks import BlockDesign
from repro.designs.gf import gf
from repro.designs.group_orbit import orbit_of_block, pgammal2_generators
from repro.util.combinatorics import prime_power_decomposition


def subfield_points(big_q: int, small_q: int) -> list:
    """Elements of GF(small_q) inside GF(big_q): the fixed points of x -> x^q."""
    field = gf(big_q)
    return [x for x in field.elements() if field.pow(x, small_q) == x]


@lru_cache(maxsize=None)
def subline_design(q: int, d: int) -> BlockDesign:
    """The design S(3, q+1, q^d+1) of sublines of PG(1, q^d).

    Requires ``d >= 2`` and ``q`` a prime power. The result is verified to
    be a 3-design before being returned.
    """
    if d < 2:
        raise ValueError(f"subline design needs d >= 2, got {d}")
    if prime_power_decomposition(q) is None:
        raise ValueError(f"q must be a prime power, got {q}")
    big_q = q**d
    v = big_q + 1
    infinity = big_q
    base_block = frozenset(subfield_points(big_q, q) + [infinity])
    if len(base_block) != q + 1:
        raise AssertionError(
            f"standard subline has {len(base_block)} points, expected {q + 1}"
        )
    orbit = orbit_of_block(base_block, pgammal2_generators(big_q))
    design = BlockDesign.from_blocks(
        v, [tuple(sorted(block)) for block in orbit], name=f"S(3,{q + 1},{v}) [sublines]"
    )
    if not design.is_design(3, 1):
        raise AssertionError(
            f"subline orbit over PG(1,{big_q}) is not a 3-(v,{q + 1},1) design"
        )
    return design


def inversive_plane(q: int) -> BlockDesign:
    """The Miquelian inversive plane of order ``q``: S(3, q+1, q^2+1)."""
    return subline_design(q, 2)
