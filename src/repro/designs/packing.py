"""t-packing builders: the bridge from designs to Simple(x, λ) placements.

A ``Simple(x, λ)`` placement is a ``(x+1)-(n, r, λ)`` packing (Definition 2
/ Lemma 1 of the paper). This module assembles packings of a requested size
from catalogued designs by the paper's two mechanisms:

* **Observation 1** — λ/μ-fold copying of a ``(x+1)-(n_x, r, μ)`` design;
* **Observation 2** — disjoint unions over node chunks when no single
  subsystem order fits ``n`` well;

plus a greedy fallback packing for parameter sets with no catalogued
construction at all (useful for examples on arbitrary cluster sizes, never
required for the paper's own parameter choices).
"""

from __future__ import annotations

import random
from itertools import combinations, islice
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.designs.blocks import Block, BlockDesign, DesignError, packing_capacity
from repro.designs.transforms import all_subsets_blocks
from repro.util.combinatorics import binom, ceil_div


def packing_blocks_from_design(
    design: BlockDesign, num_blocks: int
) -> List[Block]:
    """First ``num_blocks`` blocks of ceil(num_blocks / b)-fold copies.

    With the base design a ``t-(v, r, μ)`` design, the result is a
    ``t-(v, r, μ * ceil(num_blocks / b))`` packing — and the multiplier is
    the minimal λ of Eqn. 1 when blocks are consumed copy by copy.
    """
    if num_blocks < 0:
        raise ValueError(f"num_blocks must be >= 0, got {num_blocks}")
    blocks: List[Block] = []
    while len(blocks) < num_blocks:
        take = min(design.num_blocks, num_blocks - len(blocks))
        blocks.extend(design.blocks[:take])
    return blocks


def copies_needed(design_blocks: int, num_blocks: int) -> int:
    """How many full copies cover ``num_blocks`` (the λ/μ of Observation 1)."""
    if design_blocks <= 0:
        raise ValueError("base design must have blocks")
    return max(1, ceil_div(num_blocks, design_blocks))


def chunked_packing_blocks(
    chunk_designs: Sequence[BlockDesign],
    num_blocks: int,
    total_points: int,
) -> List[Block]:
    """Observation 2: interleave copies of per-chunk designs on disjoint points.

    Chunk ``i`` occupies points ``offset_i .. offset_i + v_i - 1``. Blocks
    are consumed round-robin across chunks so that replica load grows evenly
    across the whole node set rather than filling one chunk first.
    """
    if not chunk_designs:
        raise DesignError("chunked packing needs at least one chunk")
    offsets = []
    offset = 0
    for design in chunk_designs:
        offsets.append(offset)
        offset += design.v
    if offset > total_points:
        raise DesignError(
            f"chunks span {offset} points but only {total_points} available"
        )
    # Split the demand across chunks proportionally to capacity, so the
    # copy multiplier (and hence λ) grows in lockstep on every chunk.
    capacity = sum(d.num_blocks for d in chunk_designs)
    quotas = [(d.num_blocks * num_blocks) // capacity for d in chunk_designs]
    shortfall = num_blocks - sum(quotas)
    for i in range(shortfall):
        quotas[i % len(quotas)] += 1
    streams: List[Iterator[Block]] = [
        _shifted_cycle(design, offsets[i]) for i, design in enumerate(chunk_designs)
    ]
    per_chunk: List[List[Block]] = [
        list(islice(stream, quota)) for stream, quota in zip(streams, quotas)
    ]
    # Interleave chunk outputs so any b-prefix stays balanced across chunks.
    blocks: List[Block] = []
    indices = [0] * len(per_chunk)
    while len(blocks) < num_blocks:
        for i, chunk_blocks in enumerate(per_chunk):
            if indices[i] < len(chunk_blocks):
                blocks.append(chunk_blocks[indices[i]])
                indices[i] += 1
            if len(blocks) == num_blocks:
                break
    return blocks


def _shifted_cycle(design: BlockDesign, offset: int) -> Iterator[Block]:
    while True:
        for block in design.blocks:
            yield tuple(point + offset for point in block)


def trivial_packing_blocks(v: int, r: int, num_blocks: int) -> List[Block]:
    """Prefix of all r-subsets: an ``r-(v, r, 1)`` packing of any size <= C(v,r)."""
    if num_blocks > binom(v, r):
        raise DesignError(
            f"trivial packing on {v} points holds at most C({v},{r}) blocks"
        )
    return list(islice(all_subsets_blocks(v, r), num_blocks))


def shuffled_design_blocks(
    design: BlockDesign, num_blocks: int, seed: int = 0
) -> List[Block]:
    """Copies of a design with block order shuffled *within* each copy.

    Reordering blocks inside a copy leaves every coverage count unchanged,
    so the result is the same ``t-(v, r, mu * copies)`` packing as
    :func:`packing_blocks_from_design` — but a partial last copy now spreads
    its replica load across the whole point set instead of piling onto the
    lexicographically-early points. Deterministic under ``seed``.
    """
    if num_blocks < 0:
        raise ValueError(f"num_blocks must be >= 0, got {num_blocks}")
    from repro.util.rng import derive_rng

    blocks: List[Block] = []
    copy_index = 0
    while len(blocks) < num_blocks:
        order = list(design.blocks)
        derive_rng(seed, "packing-copy", copy_index).shuffle(order)
        take = min(len(order), num_blocks - len(blocks))
        blocks.extend(order[:take])
        copy_index += 1
    return blocks


def shuffled_design_rows(
    design: BlockDesign, num_blocks: int, seed: int = 0
):
    """Array-native :func:`shuffled_design_blocks`: the same packing, flat.

    Shuffles block *indices* with the same derived generators (an equal
    length list sees the identical permutation), then gathers rows from
    the design's cached int32 buffer — a vectorized copy under numpy and
    zero per-block tuple allocation either way. Returns a flat row-major
    ``array('i')`` ready for ``Placement.from_arrays(validate=False)``.
    """
    if num_blocks < 0:
        raise ValueError(f"num_blocks must be >= 0, got {num_blocks}")
    from array import array

    from repro.util.rng import derive_rng

    try:
        import numpy as _np
    except ImportError:
        _np = None

    base = design.rows_array()
    block_count = design.num_blocks
    r = design.block_size
    matrix = (
        _np.frombuffer(base, dtype=_np.int32).reshape(block_count, r)
        if _np is not None else None
    )
    rows = array("i")
    copy_index = 0
    while len(rows) < num_blocks * r:
        order = list(range(block_count))
        derive_rng(seed, "packing-copy", copy_index).shuffle(order)
        take = min(block_count, num_blocks - len(rows) // r)
        if matrix is not None:
            rows.frombytes(matrix[order[:take]].tobytes())
        else:
            for index in order[:take]:
                rows.extend(base[index * r:(index + 1) * r])
        copy_index += 1
    return rows


def sampled_distinct_subsets(
    v: int, r: int, count: int, seed: int = 0
) -> List[Block]:
    """``count`` distinct r-subsets of ``v`` points in a seeded random order.

    The load-balanced realization of the trivial (``x + 1 = r``) stratum:
    a lexicographic prefix would place every block on the first points,
    while a random sample spreads load evenly in expectation. Materializes
    and shuffles the full subset list when it is small; otherwise rejection
    sampling with a seen-set (O(count) memory, vanishing collision rate at
    the scales where this path triggers).
    """
    total = binom(v, r)
    if count > total:
        raise DesignError(
            f"only C({v},{r})={total} distinct {r}-subsets exist, "
            f"cannot provide {count}"
        )
    from repro.util.rng import derive_rng

    rng = derive_rng(seed, "trivial-sample", v, r)
    if total <= max(4 * count, 100_000):
        population = list(all_subsets_blocks(v, r))
        rng.shuffle(population)
        return population[:count]
    chosen: List[Block] = []
    seen = set()
    points = list(range(v))
    while len(chosen) < count:
        block = tuple(sorted(rng.sample(points, r)))
        if block not in seen:
            seen.add(block)
            chosen.append(block)
    return chosen


def greedy_packing(
    v: int,
    r: int,
    t: int,
    lam: int,
    num_blocks: int,
    rng: Optional[random.Random] = None,
    max_rejects: int = 50_000,
    restarts: int = 3,
) -> List[Block]:
    """Greedy randomized ``t-(v, r, lam)`` packing of ``num_blocks`` blocks.

    Samples random r-subsets and keeps those that do not push any t-subset
    above ``lam``. This does not reach the Lemma-1 capacity in general, but
    for loads well below capacity it succeeds quickly and yields a valid
    packing for *any* ``v`` — the fallback when the catalog has nothing.
    Greedy choices can dead-end close to capacity, so a stalled attempt is
    retried from scratch up to ``restarts`` times before giving up.

    Raises :class:`DesignError` when ``num_blocks`` exceeds the Lemma-1
    capacity or every attempt stalls.
    """
    if num_blocks > packing_capacity(v, r, t, lam):
        raise DesignError(
            f"{num_blocks} blocks exceed the Lemma-1 capacity "
            f"{packing_capacity(v, r, t, lam)} of a {t}-({v},{r},{lam}) packing"
        )
    rng = rng or random.Random(0)
    population = list(range(v))
    best_attempt = 0
    for _attempt in range(restarts + 1):
        coverage: Dict[Tuple[int, ...], int] = {}
        blocks: List[Block] = []
        rejects = 0
        while len(blocks) < num_blocks:
            block = tuple(sorted(rng.sample(population, r)))
            subsets = list(combinations(block, t))
            if all(coverage.get(subset, 0) < lam for subset in subsets):
                for subset in subsets:
                    coverage[subset] = coverage.get(subset, 0) + 1
                blocks.append(block)
                rejects = 0
            else:
                rejects += 1
                if rejects > max_rejects:
                    break
        if len(blocks) == num_blocks:
            return blocks
        best_attempt = max(best_attempt, len(blocks))
    raise DesignError(
        f"greedy packing stalled at {best_attempt}/{num_blocks} blocks "
        f"after {restarts + 1} attempts"
    )
