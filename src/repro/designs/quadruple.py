"""Steiner quadruple systems SQS(v) = ``3-(v, 4, 1)`` designs.

Hanani's theorem: SQS(v) exists iff ``v ≡ 2 or 4 (mod 6)`` (or v < 4
trivially). We cover a large, explicitly constructible slice of the
spectrum with three mechanisms:

* **Boolean construction** for ``v = 2^m``: the blocks are the quadruples
  ``{a, b, c, a XOR b XOR c}`` — the planes of AG(m, 2). This yields the
  SQS(256) the paper needs at ``n = 257, r = 4`` (``n2 = 256``).
* **Hanani doubling** SQS(v) → SQS(2v), seeded by the boolean systems and
  the orbit-found small systems; this yields SQS(20), SQS(28) (the paper's
  ``n2`` for ``n = 31, r = 4``), SQS(40), ...
* **Exact-cover search** (DLX) for the sporadic seeds SQS(10) and SQS(14);
  results are fully verified and cached.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

from repro.designs.blocks import BlockDesign, DesignError
from repro.designs.resolvable import one_factorization
from repro.designs.search import search_steiner_system

Block = Tuple[int, ...]


def sqs_exists(v: int) -> bool:
    """Hanani's existence criterion for Steiner quadruple systems."""
    return v >= 4 and v % 6 in (2, 4)


def boolean_sqs(m: int) -> BlockDesign:
    """SQS(2^m): quadruples of GF(2)^m vectors XOR-summing to zero.

    Any three distinct vectors a, b, c determine the unique fourth
    d = a ^ b ^ c (distinct from all three exactly when c != a ^ b), so
    every triple lies in exactly one block.
    """
    if m < 2:
        raise ValueError(f"boolean SQS needs m >= 2, got {m}")
    v = 1 << m
    blocks: List[Block] = []
    for a in range(v):
        for b in range(a + 1, v):
            ab = a ^ b
            for c in range(b + 1, v):
                d = ab ^ c
                if d > c:
                    blocks.append((a, b, c, d))
    return BlockDesign.from_blocks(v, blocks, name=f"SQS({v}) [boolean]")


def double_sqs(base: BlockDesign) -> BlockDesign:
    """Hanani's doubling: an SQS(2v) from an SQS(v).

    Points are two copies of the base point set (copy ``i`` holds
    ``x + i*v``). Blocks:

    1. each base block, repeated on both copies;
    2. for every factor of a one-factorization of K_v and every (ordered
       across copies) pair of its edges {a,b}, {c,d} — possibly the same
       edge — the crossing block {a, b, c+v, d+v}.

    Triples within one copy are covered by type 1; triples crossing copies
    are covered exactly once by type 2 because the two same-copy points
    {a, b} lie in exactly one factor, and the third point's partner is
    forced by that factor's matching.
    """
    v = base.v
    if v % 2:
        raise DesignError(f"doubling needs an even base order, got {v}")
    blocks: List[Block] = []
    for block in base.blocks:
        blocks.append(block)
        blocks.append(tuple(point + v for point in block))
    for factor in one_factorization(v):
        for a, b in factor:
            for c, d in factor:
                blocks.append(tuple(sorted((a, b, c + v, d + v))))
    return BlockDesign.from_blocks(2 * v, blocks, name=f"SQS({2 * v}) [doubling]")


@lru_cache(maxsize=None)
def _searched_sqs(v: int) -> BlockDesign:
    """SQS(v) by exact-cover search (the sporadic seeds SQS(10), SQS(14)).

    Deterministic: DLX explores rows in a fixed order, so repeated calls
    (and different machines) produce the identical system.
    """
    design = search_steiner_system(v, 4, 3, max_nodes=50_000_000)
    if design is None:
        raise DesignError(f"exact-cover search found no SQS({v})")
    return design


@lru_cache(maxsize=None)
def steiner_quadruple_system(v: int) -> BlockDesign:
    """An SQS(v) for constructible orders (see module docstring).

    Raises :class:`DesignError` for orders that exist but fall outside the
    implemented constructions (e.g. SQS(26), SQS(34)); the existence
    catalog still reports those as known.
    """
    if not sqs_exists(v):
        raise DesignError(f"no SQS({v}): v must be 2 or 4 mod 6")
    if v & (v - 1) == 0:  # power of two
        return boolean_sqs(v.bit_length() - 1)
    if v in (10, 14):
        return _searched_sqs(v)
    if v % 2 == 0 and sqs_exists(v // 2):
        return double_sqs(steiner_quadruple_system(v // 2))
    raise DesignError(
        f"SQS({v}) exists but no construction is implemented for this order"
    )


def sqs_constructible(v: int) -> bool:
    """True when :func:`steiner_quadruple_system` can build SQS(v)."""
    if not sqs_exists(v):
        return False
    if v & (v - 1) == 0 or v in (10, 14):
        return True
    return v % 2 == 0 and sqs_constructible(v // 2)
