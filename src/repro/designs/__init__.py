"""Combinatorial design substrate: the building blocks of Simple placements.

This subpackage implements, from scratch, every design-theoretic object the
paper's placement strategies consume: finite fields, affine/projective line
designs, Steiner triple and quadruple systems, Hermitian unitals, subline
(inversive-plane) designs, the small Witt design, exact-cover search for
sporadic systems, packing assembly (copies + chunking), and an existence
catalog with explicit provenance tiers.
"""

from repro.designs.affine import affine_geometry_design, affine_plane
from repro.designs.blocks import (
    Block,
    BlockDesign,
    DesignError,
    design_block_count,
    divisibility_conditions_hold,
    packing_capacity,
)
from repro.designs.catalog import (
    Existence,
    build,
    existence,
    largest_order,
    min_lambda,
    small_witt_design,
    steiner_orders,
)
from repro.designs.exact_cover import ExactCover, SearchBudgetExceeded
from repro.designs.gf import GF, gf
from repro.designs.group_orbit import (
    orbit_design,
    orbit_of_block,
    pgammal2_generators,
    pgl2_generators,
    psl2_generators,
    search_orbit_steiner,
)
from repro.designs.packing import (
    chunked_packing_blocks,
    copies_needed,
    greedy_packing,
    packing_blocks_from_design,
    sampled_distinct_subsets,
    shuffled_design_blocks,
    trivial_packing_blocks,
)
from repro.designs.projective import (
    projective_geometry_design,
    projective_plane,
    projective_space_size,
)
from repro.designs.quadruple import (
    boolean_sqs,
    double_sqs,
    sqs_constructible,
    sqs_exists,
    steiner_quadruple_system,
)
from repro.designs.resolvable import (
    one_factorization,
    one_factorization_design,
    pairs_design,
    partition_design,
)
from repro.designs.search import search_steiner_system
from repro.designs.steiner_triple import steiner_triple_system, sts_exists
from repro.designs.subline import inversive_plane, subline_design
from repro.designs.transforms import (
    all_subsets_blocks,
    complement_design,
    derived_design,
    disjoint_union,
    repeat_design,
    residual_design,
    trivial_design_prefix,
)
from repro.designs.unital import hermitian_unital

__all__ = [
    "GF",
    "Block",
    "BlockDesign",
    "DesignError",
    "ExactCover",
    "Existence",
    "SearchBudgetExceeded",
    "affine_geometry_design",
    "affine_plane",
    "all_subsets_blocks",
    "boolean_sqs",
    "build",
    "chunked_packing_blocks",
    "complement_design",
    "copies_needed",
    "derived_design",
    "design_block_count",
    "disjoint_union",
    "divisibility_conditions_hold",
    "double_sqs",
    "existence",
    "gf",
    "greedy_packing",
    "hermitian_unital",
    "inversive_plane",
    "largest_order",
    "min_lambda",
    "one_factorization",
    "one_factorization_design",
    "orbit_design",
    "orbit_of_block",
    "packing_blocks_from_design",
    "packing_capacity",
    "pairs_design",
    "partition_design",
    "pgammal2_generators",
    "pgl2_generators",
    "projective_geometry_design",
    "projective_plane",
    "projective_space_size",
    "psl2_generators",
    "repeat_design",
    "residual_design",
    "sampled_distinct_subsets",
    "search_orbit_steiner",
    "search_steiner_system",
    "shuffled_design_blocks",
    "small_witt_design",
    "sqs_constructible",
    "sqs_exists",
    "steiner_orders",
    "steiner_quadruple_system",
    "steiner_triple_system",
    "sts_exists",
    "subline_design",
    "trivial_design_prefix",
    "trivial_packing_blocks",
]
