"""Lines of affine space AG(d, q): the ``2-(q^d, q, 1)`` designs.

One of the paper's infinite families (Sec. III-C). The points of AG(d, q)
are the vectors of GF(q)^d; the lines are the cosets ``{a + t*b : t in
GF(q)}`` of the one-dimensional subspaces. Every pair of distinct points
lies on exactly one line, giving a Steiner system ``S(2, q, q^d)``:

* ``d = 2`` is the affine plane of order ``q`` (e.g. the 2-(25, 5, 1) the
  paper uses as ``n1`` for ``n = 31, r = 5``);
* ``d = 3, q = 4`` gives 2-(64, 4, 1) (our corrected ``n1`` for
  ``n = 71, r = 4``; see DESIGN.md on the source table's corrupted cell).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.designs.blocks import BlockDesign
from repro.designs.gf import GF, gf

Vector = Tuple[int, ...]


def _all_vectors(field: GF, d: int) -> List[Vector]:
    """All of GF(q)^d in lexicographic order."""
    vectors: List[Vector] = [()]
    for _ in range(d):
        vectors = [v + (x,) for v in vectors for x in field.elements()]
    return vectors


def _normalized_directions(field: GF, d: int) -> List[Vector]:
    """One representative per 1-d subspace: first nonzero coordinate is 1."""
    directions = []
    for vector in _all_vectors(field, d):
        leading = next((x for x in vector if x != 0), None)
        if leading == 1:
            directions.append(vector)
    return directions


def affine_geometry_design(d: int, q: int) -> BlockDesign:
    """The design of lines of AG(d, q): a ``2-(q^d, q, 1)`` Steiner system."""
    if d < 2:
        raise ValueError(f"AG lines need dimension >= 2, got {d}")
    field = gf(q)
    points = _all_vectors(field, d)
    index = {point: i for i, point in enumerate(points)}
    blocks = []
    seen_pairs = set()
    for direction in _normalized_directions(field, d):
        # Each direction partitions the space into q^(d-1) parallel lines;
        # enumerate each line once via its smallest-index point.
        visited = [False] * len(points)
        for start_index, start in enumerate(points):
            if visited[start_index]:
                continue
            line = []
            for t in field.elements():
                point = tuple(
                    field.add(start[i], field.mul(t, direction[i])) for i in range(d)
                )
                point_index = index[point]
                visited[point_index] = True
                line.append(point_index)
            key = frozenset(line)
            if key not in seen_pairs:
                seen_pairs.add(key)
                blocks.append(tuple(sorted(line)))
    return BlockDesign.from_blocks(q**d, blocks, name=f"AG({d},{q}) lines")


def affine_plane(q: int) -> BlockDesign:
    """The affine plane of order ``q``: a ``2-(q^2, q, 1)`` design."""
    return affine_geometry_design(2, q)
