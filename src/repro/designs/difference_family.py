"""Cyclic difference families: ``2-(v, r, 1)`` designs from base blocks.

A ``(v, r, 1)`` difference family over Z_v is a collection of ``t`` base
blocks of size ``r`` whose pairwise differences cover every nonzero residue
exactly once (so ``t * r * (r - 1) = v - 1``). Developing each base block
through all ``v`` translations yields a cyclic ``2-(v, r, 1)`` design.

This widens the constructible slice of the catalog beyond the geometric
families: e.g. ``2-(25, 4, 1)`` and ``2-(37, 4, 1)`` (v = 1 mod 12) and
``2-(41, 5, 1)`` (v = 1 mod 20) come from difference families found here by
backtracking search. Search results are verified and cached; a budget keeps
the existence probe cheap enough to sit inside catalog queries.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional, Set, Tuple

from repro.designs.blocks import Block, BlockDesign, DesignError

_DEFAULT_BUDGET = 500_000


def difference_family_admissible(v: int, r: int) -> bool:
    """Necessary condition for a cyclic DF over Z_v: r(r-1) divides v-1.

    (Each of the ``t`` base blocks contributes ``r (r - 1)`` ordered
    differences and every nonzero residue must appear exactly once.)
    """
    return v > r >= 2 and (v - 1) % (r * (r - 1)) == 0


@lru_cache(maxsize=None)
def find_difference_family(
    v: int, r: int, max_nodes: int = _DEFAULT_BUDGET
) -> Optional[Tuple[Block, ...]]:
    """Search for a ``(v, r, 1)`` difference family; ``None`` if none found.

    Backtracking over base blocks normalized to contain 0 with ascending
    elements; the difference set is tracked incrementally, and blocks are
    ordered by their second element to break permutation symmetry. The
    search is exact up to ``max_nodes`` expansions — exceeding the budget
    also returns ``None`` (treated as "not constructible here", never as
    nonexistence).
    """
    if not difference_family_admissible(v, r):
        return None
    num_blocks = (v - 1) // (r * (r - 1))
    used: Set[int] = set()
    blocks: List[List[int]] = []
    budget = [max_nodes]

    def pair_differences(block: List[int], element: int) -> Optional[List[int]]:
        """Residues consumed by adding ``element``; None on conflict."""
        consumed = []
        for other in block:
            d = (element - other) % v
            d_neg = (other - element) % v
            if d in used or d_neg in used or d == 0:
                return None
            consumed.extend((d, d_neg))
        # A pair at distance v/2 yields d == d_neg; consumed then holds
        # duplicates which would double-mark; reject (cannot be covered
        # exactly once by the +- convention unless counted twice).
        if len(set(consumed)) != len(consumed):
            return None
        return consumed

    def extend_block(block: List[int], start: int) -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        if len(block) == r:
            blocks.append(list(block))
            if len(blocks) == num_blocks:
                return True
            # Next block: the smallest uncovered difference d must appear
            # as a pair in some remaining block; translating that block so
            # the pair is {0, d} and making it the next one loses no
            # generality (block order is free). The block's *other*
            # elements may lie anywhere in Z_v — they are enumerated
            # ascending from 1 for deduplication, with collisions against
            # 0/d rejected by the zero-difference check.
            smallest = min(d for d in range(1, v) if d not in used)
            consumed = pair_differences([0], smallest)
            if consumed is not None:
                used.update(consumed)
                if extend_block([0, smallest], 1):
                    return True
                used.difference_update(consumed)
            blocks.pop()
            return False
        for element in range(start, v):
            consumed = pair_differences(block, element)
            if consumed is None:
                continue
            used.update(consumed)
            block.append(element)
            if extend_block(block, element + 1):
                return True
            block.pop()
            used.difference_update(consumed)
        return False

    # First block: {0, d, ...} where d is the smallest difference overall.
    first_consumed = pair_differences([0], 1)
    found = False
    if first_consumed is not None:
        used.update(first_consumed)
        found = extend_block([0, 1], 2)
        if not found:
            used.difference_update(first_consumed)
    if not found:
        return None
    return tuple(tuple(sorted(block)) for block in blocks)


def develop_difference_family(
    v: int, base_blocks: Tuple[Block, ...]
) -> BlockDesign:
    """Develop base blocks through Z_v translations into the cyclic design."""
    if not base_blocks:
        raise DesignError("difference family needs at least one base block")
    blocks = [
        tuple(sorted((element + shift) % v for element in base))
        for base in base_blocks
        for shift in range(v)
    ]
    return BlockDesign.from_blocks(
        v, blocks, name=f"cyclic 2-({v},{len(base_blocks[0])},1)"
    )


@lru_cache(maxsize=None)
def cyclic_2design(v: int, r: int, max_nodes: int = _DEFAULT_BUDGET) -> BlockDesign:
    """A cyclic ``2-(v, r, 1)`` design via difference family, fully verified."""
    family = find_difference_family(v, r, max_nodes)
    if family is None:
        raise DesignError(f"no ({v},{r},1) difference family found within budget")
    design = develop_difference_family(v, family)
    if not design.is_design(2, 1):
        raise AssertionError(
            f"developed family {family} is not a 2-({v},{r},1) design"
        )
    return design


@lru_cache(maxsize=None)
def difference_family_constructible(v: int, r: int) -> bool:
    """Cheap cached probe used by the existence catalog."""
    # The first block is rooted at {0, 1}, which loses generality: a valid
    # family need not contain difference 1 inside a single block... but the
    # family can be rescaled: multiplying all blocks by a unit u maps a
    # family to a family and maps some difference to 1 only if that
    # difference is a unit. For prime v every nonzero difference is a unit,
    # so the normalization is complete; for composite v the probe may miss
    # families (conservative: report not-constructible).
    try:
        cyclic_2design(v, r)
    except DesignError:
        return False
    return True
