"""Knuth's Algorithm X with dancing links (DLX).

Finding a Steiner system ``t-(v, r, 1)`` is an exact-cover problem: columns
are the ``t``-subsets of points, rows are candidate ``r``-subsets (each
covering its ``C(r, t)`` t-subsets), and a solution is a row set covering
every column exactly once. This solver is the fallback constructor for small
sporadic systems with no catalogued algebraic construction, and doubles as a
general substrate utility (it is reused by tests to cross-check the algebraic
constructions on small orders).

The implementation is the classical array-based DLX: nodes live in flat
integer arrays (left/right/up/down/column), which in CPython is roughly 3x
faster than an object-per-node graph and allocation-free during search.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence


class ExactCover:
    """Exact-cover instance over columns ``0..num_columns-1``."""

    def __init__(self, num_columns: int) -> None:
        if num_columns <= 0:
            raise ValueError(f"need at least one column, got {num_columns}")
        self.num_columns = num_columns
        # Node arrays. Nodes 0..num_columns are headers (0 is the root).
        size = num_columns + 1
        self._left = list(range(-1 + 0, size - 1 + 0))
        self._left[0] = num_columns
        self._right = [i + 1 for i in range(size)]
        self._right[num_columns] = 0
        self._up = list(range(size))
        self._down = list(range(size))
        self._column = list(range(size))
        self._column_size = [0] * size
        self._row_of_node: List[int] = [-1] * size
        self._row_first_node: List[int] = []
        self._rows: List[Sequence[int]] = []
        self._preselected: List[int] = []

    def add_row(self, columns: Sequence[int]) -> int:
        """Add a row covering ``columns``; returns its row id."""
        if not columns:
            raise ValueError("a row must cover at least one column")
        row_id = len(self._rows)
        self._rows.append(tuple(columns))
        first_node = None
        previous = None
        for column in columns:
            if not 0 <= column < self.num_columns:
                raise ValueError(f"column {column} out of range")
            header = column + 1
            node = len(self._left)
            self._left.append(node)
            self._right.append(node)
            self._up.append(self._up[header])
            self._down.append(header)
            self._column.append(header)
            self._row_of_node.append(row_id)
            self._down[self._up[header]] = node
            self._up[header] = node
            self._column_size[header] += 1
            if first_node is None:
                first_node = node
            else:
                self._left[node] = previous
                self._right[node] = first_node
                self._right[previous] = node
                self._left[first_node] = node
            previous = node
        self._row_first_node.append(first_node)
        return row_id

    def select_row(self, row_id: int) -> None:
        """Force ``row_id`` into every solution (symmetry breaking).

        Covers the row's columns exactly as the search would when choosing
        it, so conflicting rows disappear from the matrix. Must be called
        before :meth:`solve` / :meth:`solutions`.
        """
        if not 0 <= row_id < len(self._rows):
            raise ValueError(f"unknown row {row_id}")
        node = self._row_first_node[row_id]
        self._cover(self._column[node])
        sibling = self._right[node]
        while sibling != node:
            self._cover(self._column[sibling])
            sibling = self._right[sibling]
        self._preselected.append(row_id)

    # -- search ---------------------------------------------------------

    def solve(
        self, max_nodes: Optional[int] = None
    ) -> Optional[List[int]]:
        """First exact cover as a list of row ids, or ``None``.

        ``max_nodes`` bounds the number of search-tree nodes expanded;
        exceeding it raises :class:`SearchBudgetExceeded` so callers can
        distinguish "provably none" from "gave up".
        """
        for solution in self.solutions(max_nodes=max_nodes):
            return solution
        return None

    def solutions(
        self, max_nodes: Optional[int] = None
    ) -> Iterator[List[int]]:
        """Iterate over all exact covers (depth-first, deterministic)."""
        stack: List[int] = []
        budget = [max_nodes if max_nodes is not None else -1]
        yield from self._search(stack, budget)

    def _search(self, stack: List[int], budget: List[int]) -> Iterator[List[int]]:
        root = 0
        if self._right[root] == root:
            yield self._preselected + [self._row_of_node[node] for node in stack]
            return
        if budget[0] == 0:
            raise SearchBudgetExceeded("DLX node budget exhausted")
        if budget[0] > 0:
            budget[0] -= 1
        # Choose the most constrained column (fewest rows) to branch on.
        header = self._right[root]
        best = header
        while header != root:
            if self._column_size[header] < self._column_size[best]:
                best = header
            header = self._right[header]
        if self._column_size[best] == 0:
            return
        self._cover(best)
        node = self._down[best]
        while node != best:
            stack.append(node)
            sibling = self._right[node]
            while sibling != node:
                self._cover(self._column[sibling])
                sibling = self._right[sibling]
            yield from self._search(stack, budget)
            sibling = self._left[node]
            while sibling != node:
                self._uncover(self._column[sibling])
                sibling = self._left[sibling]
            stack.pop()
            node = self._down[node]
        self._uncover(best)

    def _cover(self, header: int) -> None:
        left, right, up, down = self._left, self._right, self._up, self._down
        right[left[header]] = right[header]
        left[right[header]] = left[header]
        row_node = down[header]
        while row_node != header:
            sibling = right[row_node]
            while sibling != row_node:
                down[up[sibling]] = down[sibling]
                up[down[sibling]] = up[sibling]
                self._column_size[self._column[sibling]] -= 1
                sibling = right[sibling]
            row_node = down[row_node]

    def _uncover(self, header: int) -> None:
        left, right, up, down = self._left, self._right, self._up, self._down
        row_node = up[header]
        while row_node != header:
            sibling = left[row_node]
            while sibling != row_node:
                self._column_size[self._column[sibling]] += 1
                down[up[sibling]] = sibling
                up[down[sibling]] = sibling
                sibling = left[sibling]
            row_node = up[row_node]
        right[left[header]] = header
        left[right[header]] = header


class SearchBudgetExceeded(RuntimeError):
    """The DLX search hit its node budget before deciding the instance."""
