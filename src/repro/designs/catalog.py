"""Existence catalog for Steiner systems ``t-(v, r, lambda)``.

The paper's parameter-selection machinery (Sec. III-C, Figs. 4–6) needs to
answer, for given ``r`` and ``x`` (with ``t = x + 1``): *which subsystem
orders ``n_x`` admit a design, and can we build one?* This module encodes
that knowledge with explicit provenance tiers:

* ``CONSTRUCTIBLE`` — :func:`build` returns actual blocks (verified
  constructions elsewhere in :mod:`repro.designs`);
* ``KNOWN`` — existence is a literature theorem (complete spectra by Hanani
  and Kirkman; sporadic lists from the design-theory handbooks the paper
  cites) but no constructor is wired up here;
* ``DIVISIBILITY`` — only the necessary divisibility conditions hold; used
  (and documented as optimistic) for the paper's Fig. 6 exploration of
  ``mu_x > 1``;
* ``NONE`` — divisibility fails, or nonexistence is a known theorem
  (e.g. S(4, 5, 17), Ostergard & Pottonen 2008 — the paper's [32]).

Keeping the tier explicit lets the analysis layer make the same distinction
the paper makes between "constructions of which we are aware" (Fig. 5) and
"parameter sets passing necessary conditions" (Fig. 6).
"""

from __future__ import annotations

from enum import IntEnum
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Tuple

from repro.designs.affine import affine_geometry_design
from repro.designs.blocks import BlockDesign, DesignError, divisibility_conditions_hold
from repro.designs.difference_family import (
    cyclic_2design,
    difference_family_constructible,
)
from repro.designs.group_orbit import psl2_generators, search_orbit_steiner
from repro.designs.projective import projective_geometry_design, projective_space_size
from repro.designs.quadruple import sqs_constructible, sqs_exists, steiner_quadruple_system
from repro.designs.resolvable import pairs_design, partition_design
from repro.designs.search import search_steiner_system
from repro.designs.steiner_triple import steiner_triple_system, sts_exists
from repro.designs.subline import subline_design
from repro.designs.transforms import derived_design, trivial_design_prefix
from repro.designs.unital import hermitian_unital
from repro.util.combinatorics import binom, prime_power_decomposition


class Existence(IntEnum):
    """Provenance tier for a parameter set, ordered by strength."""

    NONE = 0
    DIVISIBILITY = 1
    KNOWN = 2
    CONSTRUCTIBLE = 3


# Known nonexistence results beyond divisibility.
_KNOWN_NONEXISTENT: Dict[Tuple[int, int], Tuple[int, ...]] = {
    # S(4, 5, 17) does not exist [Ostergard & Pottonen 2008; paper ref 32].
    (4, 5): (17,),
}

# Sporadic known orders for spectra that are not completely determined.
# S(3,5,v): the q = 4 subline family 4^d + 1 plus the Hanani-Hartman-Kramer
# order 26 (paper ref 20). S(4,5,v): the derived S(5,6,v+1) list (paper
# refs 13, 32 discuss this range).
_SPORADIC_KNOWN: Dict[Tuple[int, int], Tuple[int, ...]] = {
    (3, 5): (17, 26, 65, 257, 1025),
    (4, 5): (11, 23, 47, 83, 107, 131, 167, 243),
}

_DLX_SEARCH_LIMIT = 20  # max v for exact-cover fallback construction
_DLX_NODE_BUDGET = 4_000_000
# Max v for the cyclic difference-family probe. Above this the bounded
# search spends seconds before giving up on orders with no (findable)
# family, so the catalog stops claiming constructibility rather than pay
# that on every cold existence query. (All probes below 64 settle in
# under ~1.5 s and are cached for the process lifetime.)
_DIFFERENCE_FAMILY_LIMIT = 64


def existence(v: int, r: int, t: int, lam: int = 1) -> Existence:
    """Strongest provenance tier for a ``t-(v, r, lam)`` design."""
    if not 1 <= t <= r <= v or lam < 1:
        return Existence.NONE
    if not divisibility_conditions_hold(v, r, t, lam):
        return Existence.NONE
    if v in _KNOWN_NONEXISTENT.get((t, r), ()) and lam == 1:
        return Existence.NONE
    base = _unit_lambda_existence(v, r, t)
    if lam == 1:
        return base
    # lam > 1: fold copies of the unit-lambda system realize any multiple;
    # other multiplicities are only divisibility-supported here.
    if base >= Existence.KNOWN:
        return base
    complete_lam = binom(v - t, r - t)
    if complete_lam and lam % complete_lam == 0:
        return Existence.CONSTRUCTIBLE  # folds of the trivial complete design
    return Existence.DIVISIBILITY


def _unit_lambda_existence(v: int, r: int, t: int) -> Existence:
    if t == r:
        return Existence.CONSTRUCTIBLE  # all r-subsets (lazy prefix)
    if t == 1:
        return Existence.CONSTRUCTIBLE if v % r == 0 else Existence.NONE
    if t == 2 and r == 2:
        return Existence.CONSTRUCTIBLE
    if t == 2 and r == 3:
        return Existence.CONSTRUCTIBLE if sts_exists(v) else Existence.NONE
    if t == 2 and r in (4, 5):
        # Hanani: spectra are complete (v = 1, 4 mod 12 for r=4;
        # v = 1, 5 mod 20 for r=5).
        if not divisibility_conditions_hold(v, r, 2, 1):
            return Existence.NONE
        if _geometric_2design_constructible(v, r):
            return Existence.CONSTRUCTIBLE
        if v <= _DLX_SEARCH_LIMIT:
            return Existence.CONSTRUCTIBLE
        if v <= _DIFFERENCE_FAMILY_LIMIT and difference_family_constructible(v, r):
            return Existence.CONSTRUCTIBLE
        return Existence.KNOWN
    if t == 3 and r == 4:
        if not sqs_exists(v):
            return Existence.NONE
        return Existence.CONSTRUCTIBLE if sqs_constructible(v) else Existence.KNOWN
    if (t, r) in _SPORADIC_KNOWN:
        if v in _constructible_sporadic(t, r):
            return Existence.CONSTRUCTIBLE
        if v in _SPORADIC_KNOWN[(t, r)]:
            return Existence.KNOWN
        return Existence.DIVISIBILITY
    return Existence.DIVISIBILITY


def _geometric_2design_constructible(v: int, r: int) -> bool:
    """Is there a PG/AG/unital construction of a 2-(v, r, 1) design?"""
    # Lines of AG(d, q) with q = r: v = r^d.
    if prime_power_decomposition(r) is not None:
        size = r * r
        while size <= v:
            if size == v:
                return True
            size *= r
    # Lines of PG(d, q) with q = r - 1: v = (q^{d+1} - 1)/(q - 1).
    q = r - 1
    if q >= 2 and prime_power_decomposition(q) is not None:
        d = 2
        while projective_space_size(d, q) <= v:
            if projective_space_size(d, q) == v:
                return True
            d += 1
    # Hermitian unital H(q) with q = r - 1: v = q^3 + 1.
    if q >= 2 and prime_power_decomposition(q) is not None and v == q**3 + 1:
        return True
    return False


def _constructible_sporadic(t: int, r: int) -> Tuple[int, ...]:
    if (t, r) == (3, 5):
        return (17, 65, 257)  # subline designs, q = 4, d = 2..4
    if (t, r) == (4, 5):
        return (11,)  # derived from the orbit-searched S(5, 6, 12)
    return ()


@lru_cache(maxsize=None)
def small_witt_design() -> BlockDesign:
    """S(5, 6, 12), found as a PSL(2, 11) orbit on PG(1, 11) and verified."""
    design = search_orbit_steiner(
        12, block_size=6, t=5, generators=psl2_generators(11), name="S(5,6,12)"
    )
    if design is None:
        raise DesignError("no PSL(2,11)-invariant S(5,6,12) found")
    return design


def build(v: int, r: int, t: int, trivial_prefix: Optional[int] = None) -> BlockDesign:
    """Construct a ``t-(v, r, 1)`` design (unit lambda).

    ``trivial_prefix`` bounds the number of blocks materialized for the
    ``t == r`` trivial design, whose full block set is astronomically large
    at the paper's scales; other constructions ignore it.

    Raises :class:`DesignError` when the parameter set is not at the
    CONSTRUCTIBLE tier.
    """
    tier = existence(v, r, t)
    if tier != Existence.CONSTRUCTIBLE:
        raise DesignError(
            f"{t}-({v},{r},1) is not constructible here (tier: {tier.name})"
        )
    if t == r:
        limit = trivial_prefix if trivial_prefix is not None else binom(v, r)
        if limit > 5_000_000:
            raise DesignError(
                f"refusing to materialize {limit} blocks of the trivial design; "
                f"pass trivial_prefix or use all_subsets_blocks()"
            )
        return trivial_design_prefix(v, r, limit)
    return _build_nontrivial(v, r, t)


@lru_cache(maxsize=64)
def _build_nontrivial(v: int, r: int, t: int) -> BlockDesign:
    """Memoized materialization of the algebraic constructions.

    Designs are immutable, so repeated placements over one parameter set
    (strategy sweeps, the adaptive simulator's per-stratum streams) share
    a single instance — and with it the cached flat ``rows_array`` the
    array-native placement builders gather from. Trivial designs are
    excluded (their prefix parameter makes instances unbounded in size).
    """
    return _resolve_builder(v, r, t)()


def _resolve_builder(v: int, r: int, t: int) -> Callable[[], BlockDesign]:
    if t == 1:
        return lambda: partition_design(v, r)
    if t == 2 and r == 2:
        return lambda: pairs_design(v)
    if t == 2 and r == 3:
        return lambda: steiner_triple_system(v)
    if t == 2 and r in (4, 5):
        return lambda: _build_2design(v, r)
    if t == 3 and r == 4:
        return lambda: steiner_quadruple_system(v)
    if (t, r) == (3, 5):
        d = _subline_dimension(v)
        return lambda: subline_design(4, d)
    if (t, r) == (4, 5) and v == 11:
        return lambda: derived_design(small_witt_design(), 0)
    raise DesignError(f"no builder for {t}-({v},{r},1)")


def _subline_dimension(v: int) -> int:
    d = 2
    while 4**d + 1 < v:
        d += 1
    if 4**d + 1 != v:
        raise DesignError(f"{v} is not of the form 4^d + 1")
    return d


def _build_2design(v: int, r: int) -> BlockDesign:
    # Affine lines (needs r to be a prime power).
    if prime_power_decomposition(r) is not None:
        size = r * r
        d = 2
        while size <= v:
            if size == v:
                return affine_geometry_design(d, r)
            size *= r
            d += 1
    # Projective lines.
    q = r - 1
    if q >= 2 and prime_power_decomposition(q) is not None:
        d = 2
        while projective_space_size(d, q) <= v:
            if projective_space_size(d, q) == v:
                return projective_geometry_design(d, q)
            d += 1
        if v == q**3 + 1:
            return hermitian_unital(q)
    # Cyclic designs from difference families (e.g. 2-(37,4,1), 2-(41,5,1)).
    if v <= _DIFFERENCE_FAMILY_LIMIT and difference_family_constructible(v, r):
        return cyclic_2design(v, r)
    # Exact-cover fallback for small admissible orders.
    if v <= _DLX_SEARCH_LIMIT:
        design = search_steiner_system(v, r, 2, max_nodes=_DLX_NODE_BUDGET)
        if design is not None:
            return design
    raise DesignError(f"no construction available for 2-({v},{r},1)")


def steiner_orders(
    r: int, t: int, max_v: int, tier: Existence = Existence.KNOWN
) -> List[int]:
    """All orders ``v <= max_v`` whose existence tier is at least ``tier``."""
    return [v for v in range(t, max_v + 1) if existence(v, r, t) >= tier]


def largest_order(
    n: int, r: int, t: int, tier: Existence = Existence.KNOWN
) -> Optional[int]:
    """Largest ``v <= n`` at tier >= ``tier`` (the paper's ``n_x`` choice)."""
    for v in range(n, t - 1, -1):
        if existence(v, r, t) >= tier:
            return v
    return None


def min_lambda(
    v: int, r: int, t: int, max_lam: int, tier: Existence = Existence.KNOWN
) -> Optional[int]:
    """Smallest ``lambda <= max_lam`` whose tier is at least ``tier``."""
    for lam in range(1, max_lam + 1):
        if existence(v, r, t, lam) >= tier:
            return lam
    return None
