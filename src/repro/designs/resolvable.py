"""Resolvable structures: 1-factorizations and partition designs.

Two places in the paper need these:

* ``Simple(0, λ)`` placements are 1-(n, r, λ) packings — with μ0 = 1 these
  are partitions of (a subset of) the nodes into replica groups, built here
  as :func:`partition_design`.
* The Hanani doubling construction for Steiner quadruple systems consumes a
  one-factorization of the complete graph K_v (v even), built here with the
  classical round-robin (circle) method.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.designs.blocks import BlockDesign

Edge = Tuple[int, int]


def one_factorization(v: int) -> List[List[Edge]]:
    """Partition the edges of K_v (v even) into ``v - 1`` perfect matchings.

    Round-robin construction: fix point ``v - 1``; in round ``h`` it is
    matched with ``h``, and the remaining points pair off symmetrically
    around ``h`` modulo ``v - 1``.
    """
    if v < 2 or v % 2:
        raise ValueError(f"one-factorization of K_v needs even v >= 2, got {v}")
    rounds: List[List[Edge]] = []
    m = v - 1
    for h in range(m):
        factor: List[Edge] = [tuple(sorted((m, h)))]
        for i in range(1, v // 2):
            a = (h + i) % m
            b = (h - i) % m
            factor.append(tuple(sorted((a, b))))
        rounds.append(factor)
    return rounds


def is_one_factorization(v: int, rounds: List[List[Edge]]) -> bool:
    """Validate: each round a perfect matching, all C(v,2) edges exactly once."""
    seen = set()
    for factor in rounds:
        touched = set()
        for a, b in factor:
            if a == b or not (0 <= a < v and 0 <= b < v):
                return False
            if a in touched or b in touched:
                return False
            touched.update((a, b))
            edge = (min(a, b), max(a, b))
            if edge in seen:
                return False
            seen.add(edge)
        if len(touched) != v:
            return False
    return len(seen) == v * (v - 1) // 2


def partition_design(v: int, r: int) -> BlockDesign:
    """Partition ``v`` points into ``v / r`` blocks: a ``1-(v, r, 1)`` design.

    This is the μ = 1 building block for ``Simple(0, λ)`` placements; it
    requires ``r | v`` (otherwise callers shrink to the largest multiple —
    the ``n0`` selection of the paper's Sec. III-C).
    """
    if r < 1:
        raise ValueError(f"block size must be >= 1, got {r}")
    if v % r:
        raise ValueError(f"partition design needs r | v, got v={v}, r={r}")
    blocks = [tuple(range(start, start + r)) for start in range(0, v, r)]
    return BlockDesign.from_blocks(v, blocks, name=f"partition {v}/{r}")


def pairs_design(v: int) -> BlockDesign:
    """All pairs of ``v`` points: the (unique) ``2-(v, 2, 1)`` design."""
    if v < 2:
        raise ValueError(f"pairs design needs v >= 2, got {v}")
    blocks = [(a, b) for a in range(v) for b in range(a + 1, v)]
    return BlockDesign.from_blocks(v, blocks, name=f"K_{v} edges")


def one_factorization_design(v: int) -> BlockDesign:
    """The pairs design with blocks ordered round-by-round (resolution order).

    Consuming blocks in this order keeps per-node load as even as possible
    at every prefix — the property Random placement gets from its quota and
    Simple(0, ·)/pairs placements get from resolvability.
    """
    rounds = one_factorization(v)
    blocks = [edge for factor in rounds for edge in factor]
    return BlockDesign.from_blocks(v, blocks, name=f"K_{v} edges [resolved]")
