"""Fault plans: pure-data chaos descriptions with a canonical identity.

A :class:`FaultPlan` is to fault injection what
:class:`~repro.exp.spec.ExperimentSpec` is to experiments: everything in
it is JSON-native, it round-trips losslessly through
``to_dict``/``from_dict``, and :meth:`FaultPlan.plan_hash` digests the
sorted-key canonical JSON so the same plan always has the same identity.
A chaos soak therefore names exactly which faults it injected, and two
runs of one plan inject bit-identical fault schedules.

Each :class:`FaultRule` names an injection *site*, a fault *kind*, and
when it fires:

* ``prob`` — per-visit firing probability (decided by a deterministic
  hash of the plan seed, rule, site visit counter, and call context —
  never the global RNG);
* ``when`` — a subset match against the site's call context (e.g.
  ``{"start": 12, "attempt": 0}`` fires only for the shard at expansion
  index 12 on its first attempt; the pseudo-key ``hit`` matches the
  per-process visit counter of the site);
* ``times`` — a per-process cap on how often the rule fires.

``REPRO_CHAOS`` accepts a plan three ways: a path to a plan JSON file,
inline JSON (starts with ``{``), or the shorthand ``prob:<p>[:<seed>]``
— transient-error rules at every site with probability ``p``, the form
the chaos-smoke CI job uses (only ``error`` faults, which every hardened
consumer retries, so suites still pass underneath it).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

PLAN_FORMAT = "repro-fault-plan"
PLAN_VERSION = 1

#: Injection points threaded through the stack.
SITES: Tuple[str, ...] = (
    "store.commit",
    "runner.shard_start",
    "native.compile",
    "kernels.dispatch",
    "sim.strike",
)

#: ``crash`` calls ``os._exit`` (or SIGKILLs itself with
#: ``args={"signal": "kill"}``); ``hang`` sleeps ``args["seconds"]``;
#: ``error`` raises a transient :class:`~repro.faults.injector.InjectedFault`;
#: ``torn`` makes the cooperating site write a prefix of its payload and
#: die mid-append; ``backend`` forces a backing failure that the kernel
#: degradation ladder must absorb.
FAULT_KINDS: Tuple[str, ...] = ("crash", "hang", "error", "torn", "backend")


class FaultPlanError(ValueError):
    """Raised on malformed plans or unparsable ``REPRO_CHAOS`` values."""


def _scalar(value: Any, where: str) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise FaultPlanError(
        f"{where}: fault-plan values must be JSON-native scalars, "
        f"got {type(value).__name__}"
    )


def _freeze_mapping(payload: Any, where: str) -> Tuple[Tuple[str, Any], ...]:
    if payload in (None, (), {}):
        return ()
    if not isinstance(payload, Mapping):
        raise FaultPlanError(f"{where} must be a mapping, got {type(payload).__name__}")
    frozen = []
    for key in sorted(payload):
        if not isinstance(key, str):
            raise FaultPlanError(f"{where} keys must be strings, got {key!r}")
        frozen.append((key, _scalar(payload[key], f"{where}[{key!r}]")))
    return tuple(frozen)


@dataclass(frozen=True)
class FaultRule:
    """One fault: site + kind + firing condition + kind-specific args."""

    site: str
    kind: str
    prob: float = 1.0
    when: Tuple[Tuple[str, Any], ...] = ()
    times: Optional[int] = None
    args: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def build(cls, payload: Mapping[str, Any]) -> "FaultRule":
        if not isinstance(payload, Mapping):
            raise FaultPlanError(
                f"fault rules must be mappings, got {type(payload).__name__}"
            )
        unknown = set(payload) - {"site", "kind", "prob", "when", "times", "args"}
        if unknown:
            raise FaultPlanError(f"unknown fault-rule fields: {sorted(unknown)}")
        site = payload.get("site")
        if site not in SITES:
            raise FaultPlanError(
                f"unknown injection site {site!r}; use one of {SITES}"
            )
        kind = payload.get("kind")
        if kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {kind!r}; use one of {FAULT_KINDS}"
            )
        prob = payload.get("prob", 1.0)
        if not isinstance(prob, (int, float)) or isinstance(prob, bool) or not 0.0 <= prob <= 1.0:
            raise FaultPlanError(f"rule prob must be in [0, 1], got {prob!r}")
        times = payload.get("times")
        if times is not None and (not isinstance(times, int) or isinstance(times, bool) or times < 1):
            raise FaultPlanError(f"rule times must be a positive int, got {times!r}")
        return cls(
            site=site,
            kind=kind,
            prob=float(prob),
            when=_freeze_mapping(payload.get("when"), "rule 'when'"),
            times=times,
            args=_freeze_mapping(payload.get("args"), "rule 'args'"),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "site": self.site,
            "kind": self.kind,
            "prob": self.prob,
            "when": dict(self.when),
            "times": self.times,
            "args": dict(self.args),
        }


@dataclass(frozen=True)
class FaultPlan:
    """An ordered rule list plus the seed for probabilistic decisions."""

    seed: int = 0
    rules: Tuple[FaultRule, ...] = ()
    version: int = PLAN_VERSION

    @classmethod
    def build(
        cls,
        rules: Sequence[Any],
        seed: int = 0,
        version: int = PLAN_VERSION,
    ) -> "FaultPlan":
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise FaultPlanError(f"plan seed must be an int, got {seed!r}")
        built = tuple(
            rule if isinstance(rule, FaultRule) else FaultRule.build(rule)
            for rule in rules
        )
        return cls(seed=seed, rules=built, version=int(version))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": PLAN_FORMAT,
            "version": self.version,
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        if not isinstance(payload, Mapping):
            raise FaultPlanError(
                f"fault plan must be a mapping, got {type(payload).__name__}"
            )
        if payload.get("format", PLAN_FORMAT) != PLAN_FORMAT:
            raise FaultPlanError(f"unknown fault-plan format {payload.get('format')!r}")
        version = int(payload.get("version", PLAN_VERSION))
        if version > PLAN_VERSION:
            raise FaultPlanError(
                f"fault-plan version {version} is newer than supported {PLAN_VERSION}"
            )
        return cls.build(
            payload.get("rules", ()),
            seed=payload.get("seed", 0),
            version=version,
        )

    def canonical_json(self) -> str:
        """Sorted-key, tight-separator JSON — the hashed identity text."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def plan_hash(self) -> str:
        """sha256 hex digest of the canonical JSON: the plan's identity."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    @classmethod
    def from_env(cls, value: str) -> Optional["FaultPlan"]:
        """Parse a ``REPRO_CHAOS`` value: path, inline JSON, or shorthand.

        Returns None for the explicit off values (empty, ``off``, ``0``).
        Anything unparsable raises :class:`FaultPlanError` naming the
        knob, never silently disables chaos.
        """
        text = (value or "").strip()
        if not text or text.lower() in ("off", "0", "none"):
            return None
        if text.startswith("prob:"):
            parts = text.split(":")
            if len(parts) not in (2, 3):
                raise FaultPlanError(
                    f"REPRO_CHAOS shorthand must be prob:<p>[:<seed>], got {value!r}"
                )
            try:
                probability = float(parts[1])
                seed = int(parts[2]) if len(parts) == 3 else 0
            except ValueError:
                raise FaultPlanError(
                    f"REPRO_CHAOS shorthand must be prob:<p>[:<seed>], got {value!r}"
                ) from None
            return prob_plan(probability, seed=seed)
        if text.startswith("{"):
            try:
                payload = json.loads(text)
            except ValueError as exc:
                raise FaultPlanError(
                    f"REPRO_CHAOS inline plan is not valid JSON: {exc}"
                ) from None
            return cls.from_dict(payload)
        try:
            with open(text, encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise FaultPlanError(f"REPRO_CHAOS plan file unreadable: {exc}") from None
        except ValueError as exc:
            raise FaultPlanError(
                f"REPRO_CHAOS plan file {text!r} is not valid JSON: {exc}"
            ) from None
        return cls.from_dict(payload)


def prob_plan(
    probability: float,
    seed: int = 0,
    sites: Sequence[str] = SITES,
    kind: str = "error",
) -> FaultPlan:
    """A uniform low-probability plan: one ``kind`` rule per site.

    The default (transient ``error`` faults everywhere) is the only shape
    safe to run underneath an arbitrary process — every hardened consumer
    retries transient faults, while crash/torn/hang faults would kill the
    host process and belong in explicit targeted plans.
    """
    if not 0.0 <= probability <= 1.0:
        raise FaultPlanError(
            f"fault probability must be in [0, 1], got {probability!r}"
        )
    return FaultPlan.build(
        [{"site": site, "kind": kind, "prob": probability} for site in sites],
        seed=seed,
    )
