"""The fault-injection runtime: named sites, deterministic decisions.

Consumers call :func:`inject` at a named site with their call context
(shard index, attempt number, payload length, ...). With no active plan
the call is a dictionary lookup and a return — cheap enough to leave in
hot paths. With one, every decision is a deterministic function of
(plan seed, rule, per-process site visit counter, context), so a chaos
run replays bit-identically: same plan, same faults, same places.

Kinds ``crash``/``hang``/``error`` are handled here (die, sleep, raise
:class:`InjectedFault`). ``torn`` and ``backend`` need the site's
cooperation: ``torn`` returns a :class:`TornWrite` telling the store how
many bytes to write before dying mid-append, and ``backend`` raises an
:class:`InjectedFault` whose ``kind`` tells the kernel ladder to demote
the backing rather than retry it.

The active plan comes from :func:`configure` (tests, the soak driver) or
else the ``REPRO_CHAOS`` environment variable (parsed once per value, so
fork-inherited workers see the same plan). Visit counters are
per-process; a forked worker starts counting from its fork point.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from typing import Any, Dict, Mapping, Optional

from repro import obs
from repro.faults.plan import FaultPlan, FaultRule

_EXIT_CRASH = 134  # simulated abort(); distinguishable from python errors
_EXIT_TORN = 137  # what a SIGKILL mid-append looks like to a supervisor


class InjectedFault(RuntimeError):
    """A transient (``error``) or backend-demoting (``backend``) fault."""

    def __init__(self, site: str, kind: str):
        super().__init__(f"injected {kind} fault at {site}")
        self.site = site
        self.kind = kind


class TornWrite:
    """Cooperative torn-write: write ``length`` bytes, then exit hard."""

    __slots__ = ("length", "exit_code")

    def __init__(self, length: int, exit_code: int = _EXIT_TORN):
        self.length = length
        self.exit_code = exit_code


_override: Optional[FaultPlan] = None
_override_set = False
_env_raw: Optional[str] = None
_env_plan: Optional[FaultPlan] = None
_hits: Dict[str, int] = {}
_fired: Dict[int, int] = {}


def configure(plan: Optional[FaultPlan]) -> None:
    """Pin the active plan (None = chaos off), overriding ``REPRO_CHAOS``."""
    global _override, _override_set
    _override, _override_set = plan, True
    reset_counters()


def clear() -> None:
    """Drop any :func:`configure` override; ``REPRO_CHAOS`` rules again."""
    global _override, _override_set
    _override, _override_set = None, False
    reset_counters()


def reset_counters() -> None:
    """Zero the per-process visit and fire counters."""
    _hits.clear()
    _fired.clear()


def active_plan() -> Optional[FaultPlan]:
    """The plan now in force: the override if set, else ``REPRO_CHAOS``."""
    global _env_raw, _env_plan
    if _override_set:
        return _override
    raw = os.environ.get("REPRO_CHAOS")
    if not raw:
        return None
    if raw != _env_raw:
        _env_plan = FaultPlan.from_env(raw)
        _env_raw = raw
    return _env_plan


def fired_total() -> int:
    """How many faults fired in this process since the last reset."""
    return sum(_fired.values())


def fired_by_rule() -> Dict[int, int]:
    """Per-rule fire counts (rule index in the active plan's order)."""
    return dict(_fired)


def _decision(
    seed: int, rule_index: int, site: str, hit: int,
    context: Mapping[str, Any], label: str = "fire",
) -> float:
    """Deterministic uniform draw in [0, 1) for one rule at one visit."""
    digest = hashlib.sha256()
    digest.update(f"{seed}/{rule_index}/{site}/{hit}/{label}".encode())
    for key in sorted(context):
        digest.update(f"/{key}={context[key]!r}".encode())
    return int.from_bytes(digest.digest()[:8], "big") / 2.0 ** 64


def _matches(rule: FaultRule, context: Mapping[str, Any], hit: int) -> bool:
    for key, want in rule.when:
        have = hit if key == "hit" else context.get(key, _MISSING)
        if have != want:
            return False
    return True


_MISSING = object()


def inject(site: str, **context: Any) -> Optional[TornWrite]:
    """Evaluate the active plan at ``site``; act on the first firing rule.

    Returns None (no fault, or a handled hang), raises
    :class:`InjectedFault` for ``error``/``backend`` kinds, never returns
    for ``crash``, and returns a :class:`TornWrite` for ``torn`` — the
    caller must then write that prefix and exit with the action's code.
    """
    plan = active_plan()
    if plan is None:
        return None
    hit = _hits.get(site, 0)
    _hits[site] = hit + 1
    for index, rule in enumerate(plan.rules):
        if rule.site != site:
            continue
        if rule.times is not None and _fired.get(index, 0) >= rule.times:
            continue
        if not _matches(rule, context, hit):
            continue
        if rule.prob < 1.0 and _decision(
            plan.seed, index, site, hit, context
        ) >= rule.prob:
            continue
        _fired[index] = _fired.get(index, 0) + 1
        obs.count("faults.injected")
        obs.record_event(
            "faults.injected", site=site, kind=rule.kind, rule=index, hit=hit
        )
        return _act(rule, index, site, hit, context, plan.seed)
    return None


def _act(
    rule: FaultRule, index: int, site: str, hit: int,
    context: Mapping[str, Any], seed: int,
) -> Optional[TornWrite]:
    args = dict(rule.args)
    if rule.kind in ("error", "backend"):
        raise InjectedFault(site, rule.kind)
    if rule.kind == "hang":
        time.sleep(float(args.get("seconds", 30.0)))
        return None
    if rule.kind == "crash":
        if args.get("signal") == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        os._exit(int(args.get("exit", _EXIT_CRASH)))
    # torn: pick a byte offset strictly inside the payload so the victim
    # dies mid-line (offset 0 would be a clean shard-boundary kill).
    length = int(context.get("length", 0))
    cut = args.get("bytes")
    if cut is None:
        if length > 1:
            span = length - 1
            cut = 1 + int(
                _decision(seed, index, site, hit, context, label="offset") * span
            )
        else:
            cut = 0
    cut = max(0, min(int(cut), max(0, length - 1)))
    return TornWrite(cut, int(args.get("exit", _EXIT_TORN)))
