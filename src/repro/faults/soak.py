"""Chaos soak: run a figure grid to completion under injected faults.

The soak is the end-to-end proof behind the fault framework: build a
:class:`~repro.faults.plan.FaultPlan` that schedules worker crashes,
torn store writes, hangs, and transient kernel failures across a real
figure grid, then drive ``repro run --resume`` in a subprocess restart
loop until the store completes.  Because shards are pure functions of
the spec and the store commits in expansion order, the final
``cells.jsonl`` must be **byte-identical** to a fault-free run — the
soak verifies exactly that, and accounts for how much work the faults
cost (restarts, shard retries, recomputed cells).

Faults that kill a *worker* (crash, hang + watchdog) are absorbed
in-process by the shard supervisor; faults that kill the *parent*
(torn writes fsync a strict prefix of one line, then ``os._exit``)
surface as a non-zero subprocess exit and are healed by the next
``--resume`` iteration.  Both paths are exercised deliberately.

Used by ``repro chaos-soak`` and ``benchmarks/bench_chaos.py``.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import repro
from repro.exp import registry
from repro.exp.runner import _contiguous_groups, run_experiment
from repro.exp.spec import ExperimentSpec
from repro.exp.store import RunStore
from repro.faults.plan import FaultPlan, FaultPlanError
from repro.util.rng import derive_rng

_SUMMARY = re.compile(
    r"(?P<state>complete|partial): (?P<cells>\d+) cells "
    r"\((?P<loaded>\d+) loaded, (?P<computed>\d+) computed, "
    r"(?P<recomputed>\d+) recomputed\)"
)
_RETRIES = re.compile(r"\[(\d+) shard retries\]")

#: torn writes exit the parent with this code (mirrors SIGKILL's 128+9).
TORN_EXIT = 137


class SoakError(RuntimeError):
    """The soak failed to converge or its invariants did not hold."""


def build_soak_plan(
    spec: ExperimentSpec,
    *,
    crashes: int = 0,
    torn_writes: int = 0,
    dispatch_errors: int = 0,
    hangs: int = 0,
    hang_seconds: float = 30.0,
    seed: int = 0,
) -> FaultPlan:
    """Schedule faults against a spec's actual shard/cell layout.

    Every rule is pinned to stable coordinates — shard ``start`` offsets
    for crashes/hangs, absolute cell ``index`` values for torn writes —
    so the schedule survives process restarts: a fault fires exactly
    where planned no matter how many times the run is resumed.
    Dispatch errors are keyed on per-process visit counters instead
    (``hit``), so they re-arm after a restart; the dispatch retry loop
    absorbs them either way.
    """
    kernel = registry.kernel(spec.experiment)
    cells = [dict(cell) for cell in kernel.expand(spec)]
    if not cells:
        raise SoakError(f"spec {spec.experiment!r} expands to zero cells")
    groups = _contiguous_groups(spec, kernel, cells)
    rng = derive_rng(seed, "chaos-soak", spec.spec_hash())

    rules: List[Dict[str, Any]] = []
    # Crashes: distinct shards first, then a second strike at attempt 1
    # on the earliest-hit shards (exercises the demotion-after-repeat
    # path without ever exceeding the retry budget).
    starts = [group.start for group in groups]
    rng.shuffle(starts)
    for ordinal in range(crashes):
        attempt, slot = divmod(ordinal, len(starts))
        if attempt >= 2:  # never schedule past the default retry budget
            break
        rules.append({
            "site": "runner.shard_start",
            "kind": "crash",
            # mode=shard: only supervised worker dispatches crash.  A
            # resume that leaves one pending shard runs serially in the
            # parent — crashing there would loop the restart forever.
            "when": {"start": starts[slot], "attempt": attempt,
                     "mode": "shard"},
            "times": 1,
        })
    for ordinal in range(hangs):
        attempt, slot = divmod(crashes + ordinal, len(starts))
        if attempt >= 2:
            break
        rules.append({
            "site": "runner.shard_start",
            "kind": "hang",
            "when": {"start": starts[slot], "attempt": attempt,
                     "mode": "shard"},
            "times": 1,
            "args": {"seconds": hang_seconds},
        })
    # Torn writes: distinct absolute cell indices, each fired exactly
    # once across the whole soak.  A rule keyed on ``index`` alone would
    # never converge — tearing at index i leaves i off disk, so every
    # resume recommits i and re-triggers the re-armed rule.  Commits are
    # strictly sequential, so pinning ``hit`` (the per-process append
    # counter) to ``index - previous_torn_index`` matches only the
    # first-ever commit of that index: after the restart the resumed
    # process reaches index i at hit 0, never at the pinned delta
    # (deltas are >= 1 because indices are distinct and exclude 0).
    population = range(1, len(cells))
    indices = sorted(
        rng.sample(population, min(torn_writes, len(population)))
    )
    previous = 0
    for index in indices:
        rules.append({
            "site": "store.commit",
            "kind": "torn",
            "when": {"index": index, "hit": index - previous},
            "times": 1,
        })
        previous = index
    for ordinal in range(dispatch_errors):
        rules.append({
            "site": "kernels.dispatch",
            "kind": "error",
            "when": {"hit": 2 * ordinal},
            "times": 1,
        })
    return FaultPlan.build(seed=seed, rules=rules)


def _python_env(extra: Optional[Dict[str, str]] = None) -> Dict[str, str]:
    env = dict(os.environ)
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__
    )))
    existing = env.get("PYTHONPATH")
    if not existing:
        env["PYTHONPATH"] = package_root
    elif package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = package_root + os.pathsep + existing
    if extra:
        env.update(extra)
    return env


def run_soak(
    spec: ExperimentSpec,
    plan: FaultPlan,
    root: str,
    *,
    workers: int = 2,
    shard_timeout: Optional[float] = None,
    shard_retries: int = 3,
    max_restarts: Optional[int] = None,
    quiet: bool = False,
) -> Dict[str, Any]:
    """Drive ``repro run --resume`` under ``plan`` until the store completes.

    Returns an accounting dict: subprocess ``runs``, ``restarts`` (runs
    that died, expected to match the torn-write schedule), summed
    ``computed``/``recomputed`` cells, in-run ``shard_retries``, and the
    fault counts the child processes reported via their exit behavior.
    """
    os.makedirs(root, exist_ok=True)
    spec_path = os.path.join(root, "spec.json")
    with open(spec_path, "w", encoding="utf-8") as handle:
        handle.write(spec.canonical_json() + "\n")
    plan_path = os.path.join(root, "fault-plan.json")
    with open(plan_path, "w", encoding="utf-8") as handle:
        handle.write(plan.canonical_json() + "\n")
    store_root = os.path.join(root, "store")

    torn_planned = sum(
        1 for rule in plan.rules
        if rule.site == "store.commit" and rule.kind == "torn"
    )
    if max_restarts is None:
        max_restarts = 2 * torn_planned + 10

    command = [
        sys.executable, "-m", "repro", "run", spec_path,
        "--store", store_root, "--resume", "--workers", str(workers),
        "--chaos", plan_path, "--shard-retries", str(shard_retries),
    ]
    if shard_timeout is not None:
        command += ["--shard-timeout", str(shard_timeout)]
    env = _python_env()

    report: Dict[str, Any] = {
        "runs": 0, "restarts": 0, "computed": 0, "recomputed": 0,
        "loaded_final": 0, "shard_retries": 0, "cells": 0,
    }
    started = time.perf_counter()
    for _ in range(max_restarts + 1):
        proc = subprocess.run(
            command, capture_output=True, text=True, env=env,
        )
        report["runs"] += 1
        summary = None
        for line in reversed(proc.stderr.splitlines()):
            match = _SUMMARY.search(line)
            if match:
                summary = match
                retries = _RETRIES.search(line)
                report["shard_retries"] += (
                    int(retries.group(1)) if retries else 0
                )
                break
        if summary is not None:
            report["computed"] += int(summary.group("computed"))
            report["recomputed"] += int(summary.group("recomputed"))
        if proc.returncode == 0:
            if summary is None or summary.group("state") != "complete":
                raise SoakError(
                    "soak subprocess exited 0 without a complete run:\n"
                    + proc.stderr[-2000:]
                )
            report["cells"] = int(summary.group("cells"))
            report["loaded_final"] = int(summary.group("loaded"))
            report["elapsed"] = time.perf_counter() - started
            report["store"] = store_root
            report["plan_hash"] = plan.plan_hash()
            return report
        # Died mid-run (torn write exits TORN_EXIT; anything else is
        # still worth restarting — the store heals on resume).
        report["restarts"] += 1
        if not quiet:
            print(
                f"chaos-soak: run {report['runs']} died "
                f"(exit {proc.returncode}); resuming",
                file=sys.stderr,
            )
    raise SoakError(
        f"store did not complete within {max_restarts} restarts "
        f"({torn_planned} torn writes planned) — the fault schedule "
        "is not converging"
    )


def verify_against_reference(
    spec: ExperimentSpec,
    chaos_store: str,
    reference_root: str,
) -> Tuple[int, bytes]:
    """Run the spec fault-free and assert byte-identity of the stores.

    Returns ``(cell_count, sha-ready bytes)`` of the verified file.
    Raises :class:`SoakError` on any divergence.  Chaos is force-disabled
    for the reference run (the soak itself may be running under
    ``REPRO_CHAOS``); the injector reverts to the environment afterwards.
    """
    from repro import faults

    reference = RunStore(reference_root)
    faults.configure(None)
    try:
        result = run_experiment(spec, store=reference, workers=2)
    finally:
        faults.clear()
    if not result.complete:
        raise SoakError("fault-free reference run did not complete")
    with open(reference.cells_file(spec), "rb") as handle:
        want = handle.read()
    with open(RunStore(chaos_store).cells_file(spec), "rb") as handle:
        got = handle.read()
    if got != want:
        raise SoakError(
            "chaos store diverged from the fault-free reference "
            f"({len(got)} vs {len(want)} bytes)"
        )
    return len(result.cells), want


def soak(
    spec: ExperimentSpec,
    root: str,
    *,
    faults: int = 20,
    seed: int = 0,
    workers: int = 2,
    shard_timeout: Optional[float] = None,
    shard_retries: int = 3,
    hang_seconds: float = 30.0,
    quiet: bool = False,
) -> Dict[str, Any]:
    """Plan ``faults`` injections, soak the spec, verify byte-identity.

    The fault budget is split roughly 40% worker crashes / 30% torn
    writes / 20% transient dispatch errors, with the remainder as hangs
    when a ``shard_timeout`` watchdog is armed (hangs without a watchdog
    would stall the soak instead of testing it).
    """
    if faults < 1:
        raise SoakError("need at least one fault to soak")
    crashes = max(1, (2 * faults) // 5)
    torn_writes = max(1, (3 * faults) // 10)
    dispatch_errors = max(1, faults // 5)
    hangs = 0
    if shard_timeout is not None:
        hangs = max(0, faults - crashes - torn_writes - dispatch_errors)
    else:
        dispatch_errors = max(
            dispatch_errors, faults - crashes - torn_writes
        )
    plan = build_soak_plan(
        spec,
        crashes=crashes,
        torn_writes=torn_writes,
        dispatch_errors=dispatch_errors,
        hangs=hangs,
        hang_seconds=hang_seconds,
        seed=seed,
    )
    report = run_soak(
        spec, plan, root,
        workers=workers,
        shard_timeout=shard_timeout,
        shard_retries=shard_retries,
        quiet=quiet,
    )
    cell_count, _ = verify_against_reference(
        spec, report["store"], os.path.join(root, "reference")
    )
    report["byte_identical"] = True
    report["planned_faults"] = {
        "crashes": crashes,
        "torn_writes": torn_writes,
        "dispatch_errors": dispatch_errors,
        "hangs": hangs,
        "total": crashes + torn_writes + dispatch_errors + hangs,
    }
    # Fault-cost invariants.  Worker faults (crashes, hangs, dispatch
    # errors) are absorbed in-run by the supervisor; only torn writes
    # kill the parent, so restarts must match the torn schedule exactly.
    torn = report["planned_faults"]["torn_writes"]
    if report["restarts"] != torn:
        raise SoakError(
            f"expected exactly {torn} restarts (one per torn write), "
            f"saw {report['restarts']} — a fault escaped the supervisor "
            "or a torn rule misfired"
        )
    # Only fault-straddling shards may be recomputed on resume: each
    # restart re-runs at most one shard's prefix overlap.
    kernel = registry.kernel(spec.experiment)
    cells = [dict(cell) for cell in kernel.expand(spec)]
    groups = _contiguous_groups(spec, kernel, cells)
    max_group = max(group.size for group in groups)
    budget = report["restarts"] * max_group
    if report["recomputed"] > budget:
        raise SoakError(
            f"resumes recomputed {report['recomputed']} stored cells; "
            f"at most {budget} ({report['restarts']} restarts x "
            f"{max_group}-cell shards) are attributable to the faults"
        )
    report["cell_count"] = cell_count
    report["max_group"] = max_group
    return report
