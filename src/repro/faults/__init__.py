"""Deterministic, seeded fault injection for chaos-hardening the stack.

The package has two halves:

* :mod:`repro.faults.plan` — :class:`FaultPlan`, a pure-data description
  of *which* faults fire *where* (sha256-identified, like
  :class:`~repro.exp.spec.ExperimentSpec`), parsed from ``REPRO_CHAOS``;
* :mod:`repro.faults.injector` — the runtime: consumers call
  :func:`inject` at named sites; with no active plan this is a cheap
  no-op, with one it deterministically crashes, hangs, tears a write,
  raises a transient :class:`InjectedFault`, or forces a backend failure.

Sites threaded through the stack: ``store.commit`` (run-store appends),
``runner.shard_start`` (shard workers), ``native.compile`` (the C
accelerator build), ``kernels.dispatch`` (gain-backing selection) and
``sim.strike`` (the simulator's adversary step). The consumers are
hardened — supervised retries, quarantine-and-truncate, a degradation
ladder — so an injected fault degrades a run instead of corrupting it.
"""

from repro.faults.injector import (
    InjectedFault,
    TornWrite,
    active_plan,
    clear,
    configure,
    fired_by_rule,
    fired_total,
    inject,
    reset_counters,
)
from repro.faults.plan import (
    FAULT_KINDS,
    SITES,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    prob_plan,
)

__all__ = [
    "FAULT_KINDS",
    "SITES",
    "FaultPlan",
    "FaultPlanError",
    "FaultRule",
    "InjectedFault",
    "TornWrite",
    "active_plan",
    "clear",
    "configure",
    "fired_by_rule",
    "fired_total",
    "inject",
    "prob_plan",
    "reset_counters",
]
