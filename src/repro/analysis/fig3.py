"""Fig. 3: sensitivity of the Combo DP to the configured failure count k.

For a placement tuned for ``k`` failures but subjected to ``k'``, the paper
plots ``lbAvail_co(<lambda_x tuned for k>) / lbAvail_co(<lambda_x tuned for
k'>)`` (both evaluated at ``k'``) as a percentage; values near 100% mean
the DP's choice is robust to mis-estimating k.

Paper setting: r = 5, s = 3, k = 6; (n, b) in {(31, 4800), (71, 1200),
(257, 9600)}; k' in [4, 8]. One shard per (n, b) system shares its
ComboStrategy and the plan tuned for the configured k.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.combo import ComboStrategy
from repro.designs.catalog import Existence
from repro.exp.registry import ExperimentKernel
from repro.exp.runner import run_figure
from repro.exp.spec import ExperimentSpec
from repro.util.tables import TextTable


@dataclass(frozen=True)
class Fig3Point:
    n: int
    b: int
    k_configured: int
    k_actual: int
    bound_tuned_for_k: int
    bound_tuned_for_k_actual: int

    @property
    def ratio_percent(self) -> float:
        if self.bound_tuned_for_k_actual == 0:
            return float("nan")
        return 100.0 * self.bound_tuned_for_k / self.bound_tuned_for_k_actual


@dataclass(frozen=True)
class Fig3Result:
    r: int
    s: int
    k: int
    points: Tuple[Fig3Point, ...]

    def render(self) -> str:
        table = TextTable(
            ["n", "b", "k'", "lb(cfg k)", "lb(cfg k')", "ratio %"],
            title=(
                f"Fig 3: Combo sensitivity to configured k "
                f"(r={self.r}, s={self.s}, k={self.k})"
            ),
        )
        for p in self.points:
            table.add_row(
                [
                    p.n,
                    p.b,
                    p.k_actual,
                    p.bound_tuned_for_k,
                    p.bound_tuned_for_k_actual,
                    round(p.ratio_percent, 2),
                ]
            )
        return table.render()


def default_spec(
    r: int = 5,
    s: int = 3,
    k: int = 6,
    systems: Tuple[Tuple[int, int], ...] = ((31, 4800), (71, 1200), (257, 9600)),
    k_prime_range: Tuple[int, int] = (4, 8),
    tier: Existence = Existence.KNOWN,
) -> ExperimentSpec:
    return ExperimentSpec.build(
        "fig3",
        axes={"k_prime": list(range(k_prime_range[0], k_prime_range[1] + 1))},
        constants={
            "r": r,
            "s": s,
            "k": k,
            "systems": [[n, b] for n, b in systems],
            "tier": tier.name,
        },
    )


def _expand(spec: ExperimentSpec) -> List[dict]:
    return [
        {"n": n, "b": b, "k_prime": k_prime}
        for n, b in spec.constant("systems")
        for k_prime in spec.axis("k_prime")
    ]


def _run_group(spec: ExperimentSpec, cells) -> List[dict]:
    n, b = cells[0]["n"], cells[0]["b"]
    strategy = ComboStrategy(
        n, spec.constant("r"), spec.constant("s"),
        tier=Existence[spec.constant("tier")],
    )
    plan_for_k = strategy.plan(b, spec.constant("k"))
    return [
        {
            "lb_cfg_k": plan_for_k.lower_bound_at(cell["k_prime"]),
            "lb_cfg_kp": strategy.plan(b, cell["k_prime"]).lower_bound_at(
                cell["k_prime"]
            ),
        }
        for cell in cells
    ]


def _assemble(spec: ExperimentSpec, cells, metrics) -> Fig3Result:
    return Fig3Result(
        r=spec.constant("r"),
        s=spec.constant("s"),
        k=spec.constant("k"),
        points=tuple(
            Fig3Point(
                n=cell["n"],
                b=cell["b"],
                k_configured=spec.constant("k"),
                k_actual=cell["k_prime"],
                bound_tuned_for_k=entry["lb_cfg_k"],
                bound_tuned_for_k_actual=entry["lb_cfg_kp"],
            )
            for cell, entry in zip(cells, metrics)
        ),
    )


KERNELS = {
    "fig3": ExperimentKernel(
        name="fig3",
        expand=_expand,
        group_key=lambda spec, cell: (cell["n"], cell["b"]),
        run_group=_run_group,
        assemble=_assemble,
        render=lambda result: result.render(),
    )
}


def generate(
    r: int = 5,
    s: int = 3,
    k: int = 6,
    systems: Tuple[Tuple[int, int], ...] = ((31, 4800), (71, 1200), (257, 9600)),
    k_prime_range: Tuple[int, int] = (4, 8),
    tier: Existence = Existence.KNOWN,
) -> Fig3Result:
    """Compatibility wrapper: run the Fig. 3 spec through the exp engine."""
    return run_figure(
        default_spec(
            r=r, s=s, k=k, systems=systems,
            k_prime_range=k_prime_range, tier=tier,
        )
    )
