"""Fig. 3: sensitivity of the Combo DP to the configured failure count k.

For a placement tuned for ``k`` failures but subjected to ``k'``, the paper
plots ``lbAvail_co(<lambda_x tuned for k>) / lbAvail_co(<lambda_x tuned for
k'>)`` (both evaluated at ``k'``) as a percentage; values near 100% mean
the DP's choice is robust to mis-estimating k.

Paper setting: r = 5, s = 3, k = 6; (n, b) in {(31, 4800), (71, 1200),
(257, 9600)}; k' in [4, 8].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.combo import ComboStrategy
from repro.designs.catalog import Existence
from repro.util.tables import TextTable


@dataclass(frozen=True)
class Fig3Point:
    n: int
    b: int
    k_configured: int
    k_actual: int
    bound_tuned_for_k: int
    bound_tuned_for_k_actual: int

    @property
    def ratio_percent(self) -> float:
        if self.bound_tuned_for_k_actual == 0:
            return float("nan")
        return 100.0 * self.bound_tuned_for_k / self.bound_tuned_for_k_actual


@dataclass(frozen=True)
class Fig3Result:
    r: int
    s: int
    k: int
    points: Tuple[Fig3Point, ...]

    def render(self) -> str:
        table = TextTable(
            ["n", "b", "k'", "lb(cfg k)", "lb(cfg k')", "ratio %"],
            title=(
                f"Fig 3: Combo sensitivity to configured k "
                f"(r={self.r}, s={self.s}, k={self.k})"
            ),
        )
        for p in self.points:
            table.add_row(
                [
                    p.n,
                    p.b,
                    p.k_actual,
                    p.bound_tuned_for_k,
                    p.bound_tuned_for_k_actual,
                    round(p.ratio_percent, 2),
                ]
            )
        return table.render()


def generate(
    r: int = 5,
    s: int = 3,
    k: int = 6,
    systems: Tuple[Tuple[int, int], ...] = ((31, 4800), (71, 1200), (257, 9600)),
    k_prime_range: Tuple[int, int] = (4, 8),
    tier: Existence = Existence.KNOWN,
) -> Fig3Result:
    points: List[Fig3Point] = []
    for n, b in systems:
        strategy = ComboStrategy(n, r, s, tier=tier)
        plan_for_k = strategy.plan(b, k)
        for k_prime in range(k_prime_range[0], k_prime_range[1] + 1):
            plan_for_k_prime = strategy.plan(b, k_prime)
            points.append(
                Fig3Point(
                    n=n,
                    b=b,
                    k_configured=k,
                    k_actual=k_prime,
                    bound_tuned_for_k=plan_for_k.lower_bound_at(k_prime),
                    bound_tuned_for_k_actual=plan_for_k_prime.lower_bound_at(
                        k_prime
                    ),
                )
            )
    return Fig3Result(r=r, s=s, k=k, points=tuple(points))
