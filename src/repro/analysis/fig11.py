"""Fig. 11: the Lemma-4 decay of Random availability when s = 1.

``prAvail_rnd <= b (1 - 1/b)^{k floor(l)}`` with ``l = r b / n``: with
write-all style objects, Random's availability (as a fraction of b) decays
essentially linearly in k with slope governed by r/n. Setting: b = 38400,
(n, r) in {(71,3), (71,5), (257,3), (257,5)}, k in [1, 10] (Lemma 4 needs
k < n/2, comfortably satisfied).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.rand_analysis import lemma4_upper_bound
from repro.util.asciiplot import Series, line_plot
from repro.util.tables import TextTable


@dataclass(frozen=True)
class Fig11Series:
    n: int
    r: int
    points: Tuple[Tuple[int, float], ...]  # (k, bound / b)


@dataclass(frozen=True)
class Fig11Result:
    b: int
    series: Tuple[Fig11Series, ...]

    def render(self) -> str:
        k_values = [k for k, _ in self.series[0].points]
        table = TextTable(
            ["k", *[f"n={e.n},r={e.r}" for e in self.series]],
            title=f"Fig 11: Lemma-4 bound (1 - 1/b)^(k*floor(l)) for b={self.b}",
        )
        for i, k in enumerate(k_values):
            table.add_row([k, *[round(e.points[i][1], 5) for e in self.series]])
        return table.render()

    def render_plot(self, width: int = 64, height: int = 14) -> str:
        """ASCII curves matching the paper's plot shape."""
        return _render_plot(self, width=width, height=height)


def _render_plot(result: "Fig11Result", width: int = 64, height: int = 14) -> str:
    series = [
        Series.from_pairs(f"n={e.n},r={e.r}", list(e.points))
        for e in result.series
    ]
    return line_plot(
        series,
        width=width,
        height=height,
        title=f"Fig 11: Lemma-4 bound / b vs k (b={result.b})",
        x_label="k",
    )


def generate(
    b: int = 38400,
    systems: Tuple[Tuple[int, int], ...] = ((71, 3), (71, 5), (257, 3), (257, 5)),
    k_max: int = 10,
) -> Fig11Result:
    series: List[Fig11Series] = []
    for n, r in systems:
        points = tuple(
            (k, lemma4_upper_bound(n, k, r, b) / b) for k in range(1, k_max + 1)
        )
        series.append(Fig11Series(n=n, r=r, points=points))
    return Fig11Result(b=b, series=tuple(series))
