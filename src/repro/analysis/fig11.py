"""Fig. 11: the Lemma-4 decay of Random availability when s = 1.

``prAvail_rnd <= b (1 - 1/b)^{k floor(l)}`` with ``l = r b / n``: with
write-all style objects, Random's availability (as a fraction of b) decays
essentially linearly in k with slope governed by r/n. Setting: b = 38400,
(n, r) in {(71,3), (71,5), (257,3), (257,5)}, k in [1, 10] (Lemma 4 needs
k < n/2, comfortably satisfied).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.rand_analysis import lemma4_upper_bound
from repro.exp.registry import ExperimentKernel
from repro.exp.runner import run_figure
from repro.exp.spec import ExperimentSpec
from repro.util.asciiplot import Series, line_plot
from repro.util.tables import TextTable


@dataclass(frozen=True)
class Fig11Series:
    n: int
    r: int
    points: Tuple[Tuple[int, float], ...]  # (k, bound / b)


@dataclass(frozen=True)
class Fig11Result:
    b: int
    series: Tuple[Fig11Series, ...]

    def render(self) -> str:
        k_values = [k for k, _ in self.series[0].points]
        table = TextTable(
            ["k", *[f"n={e.n},r={e.r}" for e in self.series]],
            title=f"Fig 11: Lemma-4 bound (1 - 1/b)^(k*floor(l)) for b={self.b}",
        )
        for i, k in enumerate(k_values):
            table.add_row([k, *[round(e.points[i][1], 5) for e in self.series]])
        return table.render()

    def render_plot(self, width: int = 64, height: int = 14) -> str:
        """ASCII curves matching the paper's plot shape."""
        return _render_plot(self, width=width, height=height)


def _render_plot(result: "Fig11Result", width: int = 64, height: int = 14) -> str:
    series = [
        Series.from_pairs(f"n={e.n},r={e.r}", list(e.points))
        for e in result.series
    ]
    return line_plot(
        series,
        width=width,
        height=height,
        title=f"Fig 11: Lemma-4 bound / b vs k (b={result.b})",
        x_label="k",
    )


def default_spec(
    b: int = 38400,
    systems: Tuple[Tuple[int, int], ...] = ((71, 3), (71, 5), (257, 3), (257, 5)),
    k_max: int = 10,
) -> ExperimentSpec:
    return ExperimentSpec.build(
        "fig11",
        axes={"k": list(range(1, k_max + 1))},
        constants={"b": b, "systems": [[n, r] for n, r in systems]},
    )


def _expand(spec: ExperimentSpec) -> List[dict]:
    return [
        {"n": n, "r": r, "k": k}
        for n, r in spec.constant("systems")
        for k in spec.axis("k")
    ]


def _run_group(spec: ExperimentSpec, cells) -> List[dict]:
    b = spec.constant("b")
    return [
        {
            "fraction": lemma4_upper_bound(
                cell["n"], cell["k"], cell["r"], b
            ) / b
        }
        for cell in cells
    ]


def _assemble(spec: ExperimentSpec, cells, metrics) -> Fig11Result:
    curves: dict = {}
    order: List[Tuple[int, int]] = []
    for cell, entry in zip(cells, metrics):
        key = (cell["n"], cell["r"])
        if key not in curves:
            curves[key] = []
            order.append(key)
        curves[key].append((cell["k"], entry["fraction"]))
    return Fig11Result(
        b=spec.constant("b"),
        series=tuple(
            Fig11Series(n=n, r=r, points=tuple(curves[(n, r)]))
            for n, r in order
        ),
    )


KERNELS = {
    "fig11": ExperimentKernel(
        name="fig11",
        expand=_expand,
        group_key=lambda spec, cell: (cell["n"], cell["r"]),
        run_group=_run_group,
        assemble=_assemble,
        render=lambda result: result.render(),
    )
}


def generate(
    b: int = 38400,
    systems: Tuple[Tuple[int, int], ...] = ((71, 3), (71, 5), (257, 3), (257, 5)),
    k_max: int = 10,
) -> Fig11Result:
    """Compatibility wrapper: run the Fig. 11 spec through the exp engine."""
    return run_figure(default_spec(b=b, systems=systems, k_max=k_max))
