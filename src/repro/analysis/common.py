"""Shared experiment configuration and environment knobs.

Every figure generator reads its effort/repetition knobs from here so that
``pytest benchmarks/`` runs in minutes by default while
``REPRO_EFFORT=exact REPRO_REPS=20`` reproduces the paper's full procedure.

Attack-engine knobs: ``REPRO_KERNEL`` picks the damage-kernel backend
(auto/gain/bitset/numpy/python; ``REPRO_GAIN_BACKING`` the gain engine's
backing), ``REPRO_WORKERS`` the process fan-out of batched attack grids,
and ``REPRO_ATTACK_CACHE`` toggles the warm attack-result memo; all
resolve here so figures stay declarative.
"""

from __future__ import annotations

import os
from typing import List

from repro.core.batch import attack_cache_default as _attack_cache_default
from repro.core.batch import worker_count as _worker_count
from repro.core.kernels import resolve_backend as _resolve_backend
from repro.core.kernels import resolve_gain_backing as _resolve_gain_backing

#: The paper's object-count ladder (Figs. 9-10 start at 600; Fig. 7 at 150).
PAPER_B_LADDER: List[int] = [600, 1200, 2400, 4800, 9600, 19200, 38400]
FIG7_B_LADDER: List[int] = [150, 300, 600, 1200, 2400, 4800, 9600]

#: The paper's cluster sizes (chosen so n_x ~ n exists with mu = 1).
PAPER_N_VALUES: List[int] = [31, 71, 257]


def _int_knob(name: str, default: int) -> int:
    """Parse an integer env knob, naming the variable on bad input.

    A bare ``int()`` would raise an anonymous ``ValueError`` (e.g.
    ``REPRO_REPS=many``) before any guarded range check runs; wrapping it
    keeps the error actionable without knowing the call site.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"{name} must be an integer, got {raw!r}"
        ) from None


def adversary_effort() -> str:
    """Adversary effort for simulation figures: fast (default), auto, exact."""
    effort = os.environ.get("REPRO_EFFORT", "fast")
    if effort not in ("fast", "auto", "exact"):
        raise ValueError(f"REPRO_EFFORT must be fast, auto or exact, got {effort!r}")
    return effort


def monte_carlo_reps(default: int = 5) -> int:
    """Monte-Carlo repetitions for Random-placement figures (paper used 20)."""
    value = _int_knob("REPRO_REPS", default)
    if value < 1:
        raise ValueError(f"REPRO_REPS must be >= 1, got {value}")
    return value


def object_scale_cap(default: int = 9600) -> int:
    """Cap on b for simulation-heavy figures (analysis figures ignore this)."""
    value = _int_knob("REPRO_B_MAX", default)
    if value < 1:
        raise ValueError(f"REPRO_B_MAX must be >= 1, got {value}")
    return value


def kernel_backend() -> str:
    """Damage-kernel backend for attack evaluation (``REPRO_KERNEL``).

    Resolves auto/forcing/env to a concrete backend name so figure runs
    record which kernel produced them.
    """
    return _resolve_backend(None)


def kernel_description() -> str:
    """Human-readable kernel id for provenance lines, e.g. ``gain/native``."""
    backend = kernel_backend()
    if backend == "gain":
        return f"gain/{_resolve_gain_backing(None)}"
    return backend


def attack_cache_enabled() -> bool:
    """Whether batched attacks memoize results (``REPRO_ATTACK_CACHE``)."""
    return _attack_cache_default()


def attack_workers(default: int = 1) -> int:
    """Worker processes for batched attack grids (``REPRO_WORKERS``)."""
    return _worker_count(default)


def percent(numerator: float, denominator: float) -> float:
    """A guarded percentage (0 denominator yields nan, matching blank cells)."""
    if denominator == 0:
        return float("nan")
    return 100.0 * numerator / denominator
