"""Appendix A: the s = 1 case — both Simple(0, λ0) and Random are poor.

For s = 1 a Combo placement degenerates to Simple(0, λ0) (only the x = 0
stratum is admissible), and the paper reports that Random *slightly*
outperforms it under the Sec. IV-B measure ``lbAvail_co(λ0) − prAvail``,
while both lose a large fraction of objects (hence the case is relegated
to the appendix). This experiment reproduces that comparison and includes
the Lemma-4 upper bound for context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.combo import ComboStrategy
from repro.core.rand_analysis import lemma4_upper_bound, pr_avail_rnd
from repro.exp.registry import ExperimentKernel
from repro.exp.runner import run_figure
from repro.exp.spec import ExperimentSpec
from repro.util.tables import TextTable


@dataclass(frozen=True)
class AppendixACell:
    n: int
    r: int
    b: int
    k: int
    lb_simple0: int
    pr_avail: int
    lemma4_bound: float

    @property
    def margin(self) -> int:
        """lbAvail_co(λ0) − prAvail; negative = Random (probably) wins."""
        return self.lb_simple0 - self.pr_avail


@dataclass(frozen=True)
class AppendixAResult:
    cells: Tuple[AppendixACell, ...]

    def render(self) -> str:
        table = TextTable(
            ["n", "r", "b", "k", "lb Simple(0)", "prAvail rnd", "margin",
             "Lemma4 bound"],
            title="Appendix A (s=1): Simple(0, lambda0) vs Random",
        )
        for cell in self.cells:
            table.add_row(
                [
                    cell.n,
                    cell.r,
                    cell.b,
                    cell.k,
                    cell.lb_simple0,
                    cell.pr_avail,
                    cell.margin,
                    round(cell.lemma4_bound, 1),
                ]
            )
        return table.render()

    def random_win_fraction(self) -> float:
        """Fraction of cells where Random's estimate beats the bound."""
        wins = sum(1 for cell in self.cells if cell.margin < 0)
        return wins / len(self.cells) if self.cells else 0.0


def default_spec(
    systems: Tuple[Tuple[int, int], ...] = ((71, 3), (71, 5), (257, 3), (257, 5)),
    b_values: Tuple[int, ...] = (600, 2400, 9600, 38400),
    k_values: Tuple[int, ...] = (1, 2, 3, 4, 5),
) -> ExperimentSpec:
    return ExperimentSpec.build(
        "appendix_a",
        axes={"b": b_values, "k": k_values},
        constants={"systems": [[n, r] for n, r in systems]},
    )


def _expand(spec: ExperimentSpec) -> List[dict]:
    return [
        {"n": n, "r": r, "b": b, "k": k}
        for n, r in spec.constant("systems")
        for b in spec.axis("b")
        for k in spec.axis("k")
    ]


def _run_group(spec: ExperimentSpec, cells) -> List[dict]:
    n, r = cells[0]["n"], cells[0]["r"]
    strategy = ComboStrategy(n, r, s=1)
    return [
        {
            "lb_simple0": strategy.plan(cell["b"], cell["k"]).lower_bound,
            "pr_avail": pr_avail_rnd(n, cell["k"], r, 1, cell["b"]),
            "lemma4": lemma4_upper_bound(n, cell["k"], r, cell["b"]),
        }
        for cell in cells
    ]


def _assemble(spec: ExperimentSpec, cells, metrics) -> AppendixAResult:
    return AppendixAResult(
        cells=tuple(
            AppendixACell(
                n=cell["n"],
                r=cell["r"],
                b=cell["b"],
                k=cell["k"],
                lb_simple0=entry["lb_simple0"],
                pr_avail=entry["pr_avail"],
                lemma4_bound=entry["lemma4"],
            )
            for cell, entry in zip(cells, metrics)
        )
    )


KERNELS = {
    "appendix_a": ExperimentKernel(
        name="appendix_a",
        expand=_expand,
        group_key=lambda spec, cell: (cell["n"], cell["r"]),
        run_group=_run_group,
        assemble=_assemble,
        render=lambda result: result.render(),
    )
}


def generate(
    systems: Tuple[Tuple[int, int], ...] = ((71, 3), (71, 5), (257, 3), (257, 5)),
    b_values: Tuple[int, ...] = (600, 2400, 9600, 38400),
    k_values: Tuple[int, ...] = (1, 2, 3, 4, 5),
) -> AppendixAResult:
    """Compatibility wrapper: run the Appendix A spec through the exp engine."""
    return run_figure(
        default_spec(systems=systems, b_values=b_values, k_values=k_values)
    )
