"""Appendix A: the s = 1 case — both Simple(0, λ0) and Random are poor.

For s = 1 a Combo placement degenerates to Simple(0, λ0) (only the x = 0
stratum is admissible), and the paper reports that Random *slightly*
outperforms it under the Sec. IV-B measure ``lbAvail_co(λ0) − prAvail``,
while both lose a large fraction of objects (hence the case is relegated
to the appendix). This generator reproduces that comparison and includes
the Lemma-4 upper bound for context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.combo import ComboStrategy
from repro.core.rand_analysis import lemma4_upper_bound, pr_avail_rnd
from repro.util.tables import TextTable


@dataclass(frozen=True)
class AppendixACell:
    n: int
    r: int
    b: int
    k: int
    lb_simple0: int
    pr_avail: int
    lemma4_bound: float

    @property
    def margin(self) -> int:
        """lbAvail_co(λ0) − prAvail; negative = Random (probably) wins."""
        return self.lb_simple0 - self.pr_avail


@dataclass(frozen=True)
class AppendixAResult:
    cells: Tuple[AppendixACell, ...]

    def render(self) -> str:
        table = TextTable(
            ["n", "r", "b", "k", "lb Simple(0)", "prAvail rnd", "margin",
             "Lemma4 bound"],
            title="Appendix A (s=1): Simple(0, lambda0) vs Random",
        )
        for cell in self.cells:
            table.add_row(
                [
                    cell.n,
                    cell.r,
                    cell.b,
                    cell.k,
                    cell.lb_simple0,
                    cell.pr_avail,
                    cell.margin,
                    round(cell.lemma4_bound, 1),
                ]
            )
        return table.render()

    def random_win_fraction(self) -> float:
        """Fraction of cells where Random's estimate beats the bound."""
        wins = sum(1 for cell in self.cells if cell.margin < 0)
        return wins / len(self.cells) if self.cells else 0.0


def generate(
    systems: Tuple[Tuple[int, int], ...] = ((71, 3), (71, 5), (257, 3), (257, 5)),
    b_values: Tuple[int, ...] = (600, 2400, 9600, 38400),
    k_values: Tuple[int, ...] = (1, 2, 3, 4, 5),
) -> AppendixAResult:
    cells: List[AppendixACell] = []
    for n, r in systems:
        strategy = ComboStrategy(n, r, s=1)
        for b in b_values:
            for k in k_values:
                plan = strategy.plan(b, k)
                cells.append(
                    AppendixACell(
                        n=n,
                        r=r,
                        b=b,
                        k=k,
                        lb_simple0=plan.lower_bound,
                        pr_avail=pr_avail_rnd(n, k, r, 1, b),
                        lemma4_bound=lemma4_upper_bound(n, k, r, b),
                    )
                )
    return AppendixAResult(cells=tuple(cells))
