"""Fig. 7: how fast the Theorem-2 limit matches empirical Random placements.

``prAvail_rnd`` is an asymptotic (load -> infinity) estimate; the paper
validates it by simulating Random placements, attacking each with the
worst-case adversary, and plotting the percentage error
``(prAvail - avgAvail) / avgAvail`` against b. Error within ~10% by b = 600
justifies using prAvail as the comparison baseline in Fig. 9.

Paper settings: (n=31, r=5, s=3, k in 3..5) and (n=71, r=5, s=2, k in
2..5), b in {150 ... 9600}, 20 placements per point (REPRO_REPS overrides;
default 5 for bench runtime).

As an experiment spec, one shard = one Monte-Carlo sample — a
``(config, b, rep)`` triple owning its Random placement, warm engine and
incumbent-chained k-ladder — which gives the runner dozens of
independently schedulable shards per sweep. Per-rep placement and attack
randomness derive from the spec seed exactly as the hand-written loop
did, so results are bit-identical at any worker count.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.common import (
    FIG7_B_LADDER,
    adversary_effort,
    kernel_backend,
    monte_carlo_reps,
    object_scale_cap,
)
from repro.core.batch import AttackCell, batch_attack
from repro.core.rand_analysis import pr_avail_rnd
from repro.core.random_placement import RandomStrategy
from repro.exp.registry import ExperimentKernel
from repro.exp.runner import run_figure
from repro.exp.spec import ExperimentSpec
from repro.util.rng import derive_rng, spawn_seeds
from repro.util.tables import TextTable


@dataclass(frozen=True)
class Fig7Cell:
    n: int
    r: int
    s: int
    k: int
    b: int
    pr_avail: int
    avg_avail: float
    stdev_avail: float
    repetitions: int

    @property
    def error_percent(self) -> float:
        if self.avg_avail == 0:
            return float("nan")
        return 100.0 * (self.pr_avail - self.avg_avail) / self.avg_avail


@dataclass(frozen=True)
class Fig7Result:
    cells: Tuple[Fig7Cell, ...]

    def render(self) -> str:
        table = TextTable(
            ["n", "r", "s", "k", "b", "prAvail", "avgAvail", "err %", "reps"],
            title="Fig 7: prAvail_rnd vs empirical Random availability",
        )
        for cell in self.cells:
            table.add_row(
                [
                    cell.n,
                    cell.r,
                    cell.s,
                    cell.k,
                    cell.b,
                    cell.pr_avail,
                    round(cell.avg_avail, 1),
                    round(cell.error_percent, 1),
                    cell.repetitions,
                ]
            )
        return table.render()


def default_spec(
    configs: Tuple[Tuple[int, int, int, Tuple[int, ...]], ...] = (
        (31, 5, 3, (3, 4, 5)),
        (71, 5, 2, (2, 3, 4, 5)),
    ),
    b_values: Tuple[int, ...] = tuple(FIG7_B_LADDER),
    seed: int = 2015,
    effort: str = "",
    reps: int = 0,
) -> ExperimentSpec:
    """configs entries are (n, r, s, k_values)."""
    return ExperimentSpec.build(
        "fig7",
        axes={"b": b_values},
        constants={
            "configs": [[n, r, s, list(ks)] for n, r, s, ks in configs],
            "seed": seed,
            "effort": effort or adversary_effort(),
            "reps": reps or monte_carlo_reps(),
            "b_cap": object_scale_cap(),
        },
    )


def _expand(spec: ExperimentSpec) -> List[dict]:
    cap = spec.constant("b_cap")
    reps = spec.constant("reps")
    return [
        {"n": n, "r": r, "s": s, "b": b, "rep": rep, "k": k}
        for n, r, s, ks in spec.constant("configs")
        for b in spec.axis("b")
        if b <= cap
        for rep in range(reps)
        for k in ks
    ]


def _group_key(spec: ExperimentSpec, cell: dict):
    return (cell["n"], cell["r"], cell["s"], cell["b"], cell["rep"])


def _run_group(spec: ExperimentSpec, cells) -> List[dict]:
    n, r, s = cells[0]["n"], cells[0]["r"], cells[0]["s"]
    b, rep = cells[0]["b"], cells[0]["rep"]
    seed = spec.constant("seed")
    effort = spec.constant("effort")
    placement = RandomStrategy(n, r).place(
        b, derive_rng(seed, "fig7", n, r, b, rep)
    )
    # One batched pass per Monte-Carlo sample: the sample's k-ladder
    # shares its warm engine (incidence + per-threshold kernel) and
    # chains incumbents; identical re-runs come out of the attack memo.
    grid = [AttackCell(cell["k"], s, effort) for cell in cells]
    [cell_seed] = spawn_seeds(seed, 1, "fig7-attack", n, r, b, rep)
    attacks = batch_attack(
        placement, grid, backend=kernel_backend(), workers=1, seed=cell_seed
    )
    return [{"avail": b - attack.damage} for attack in attacks]


def _assemble(spec: ExperimentSpec, cells, metrics) -> Fig7Result:
    reps = spec.constant("reps")
    avails: Dict[Tuple[int, int, int, int, int], List[int]] = {}
    for cell, entry in zip(cells, metrics):
        key = (cell["n"], cell["r"], cell["s"], cell["b"], cell["k"])
        avails.setdefault(key, []).append(entry["avail"])
    out: List[Fig7Cell] = []
    cap = spec.constant("b_cap")
    for n, r, s, ks in spec.constant("configs"):
        for b in spec.axis("b"):
            if b > cap:
                continue
            for k in ks:
                samples = avails[(n, r, s, b, k)]
                out.append(
                    Fig7Cell(
                        n=n,
                        r=r,
                        s=s,
                        k=k,
                        b=b,
                        pr_avail=pr_avail_rnd(n, k, r, s, b),
                        avg_avail=statistics.fmean(samples),
                        stdev_avail=(
                            statistics.pstdev(samples)
                            if len(samples) > 1 else 0.0
                        ),
                        repetitions=reps,
                    )
                )
    return Fig7Result(cells=tuple(out))


KERNELS = {
    "fig7": ExperimentKernel(
        name="fig7",
        expand=_expand,
        group_key=_group_key,
        run_group=_run_group,
        assemble=_assemble,
        render=lambda result: result.render(),
        group_cost=lambda spec, key, cells: key[3] * len(cells),
        # The placement is drawn from (n, r, b, rep) alone — shards that
        # differ only in s attack the same structure; keep them on one
        # pool worker so the engine cache serves every s.
        affinity=lambda spec, key, cells: (key[0], key[1], key[3], key[4]),
    )
}


def generate(
    configs: Tuple[Tuple[int, int, int, Tuple[int, ...]], ...] = (
        (31, 5, 3, (3, 4, 5)),
        (71, 5, 2, (2, 3, 4, 5)),
    ),
    b_values: Tuple[int, ...] = tuple(FIG7_B_LADDER),
    seed: int = 2015,
    effort: str = "",
    reps: int = 0,
) -> Fig7Result:
    """Compatibility wrapper: run the Fig. 7 spec through the exp engine."""
    return run_figure(
        default_spec(
            configs=configs, b_values=b_values, seed=seed,
            effort=effort, reps=reps,
        )
    )
