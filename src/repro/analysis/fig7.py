"""Fig. 7: how fast the Theorem-2 limit matches empirical Random placements.

``prAvail_rnd`` is an asymptotic (load -> infinity) estimate; the paper
validates it by simulating Random placements, attacking each with the
worst-case adversary, and plotting the percentage error
``(prAvail - avgAvail) / avgAvail`` against b. Error within ~10% by b = 600
justifies using prAvail as the comparison baseline in Fig. 9.

Paper settings: (n=31, r=5, s=3, k in 3..5) and (n=71, r=5, s=2, k in
2..5), b in {150 ... 9600}, 20 placements per point (REPRO_REPS overrides;
default 5 for bench runtime).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.common import (
    FIG7_B_LADDER,
    adversary_effort,
    attack_workers,
    kernel_backend,
    monte_carlo_reps,
    object_scale_cap,
)
from repro.core.batch import AttackCell, batch_attack
from repro.core.rand_analysis import pr_avail_rnd
from repro.core.random_placement import RandomStrategy
from repro.util.rng import derive_rng, spawn_seeds
from repro.util.tables import TextTable


@dataclass(frozen=True)
class Fig7Cell:
    n: int
    r: int
    s: int
    k: int
    b: int
    pr_avail: int
    avg_avail: float
    stdev_avail: float
    repetitions: int

    @property
    def error_percent(self) -> float:
        if self.avg_avail == 0:
            return float("nan")
        return 100.0 * (self.pr_avail - self.avg_avail) / self.avg_avail


@dataclass(frozen=True)
class Fig7Result:
    cells: Tuple[Fig7Cell, ...]

    def render(self) -> str:
        table = TextTable(
            ["n", "r", "s", "k", "b", "prAvail", "avgAvail", "err %", "reps"],
            title="Fig 7: prAvail_rnd vs empirical Random availability",
        )
        for cell in self.cells:
            table.add_row(
                [
                    cell.n,
                    cell.r,
                    cell.s,
                    cell.k,
                    cell.b,
                    cell.pr_avail,
                    round(cell.avg_avail, 1),
                    round(cell.error_percent, 1),
                    cell.repetitions,
                ]
            )
        return table.render()


def generate(
    configs: Tuple[Tuple[int, int, int, Tuple[int, ...]], ...] = (
        (31, 5, 3, (3, 4, 5)),
        (71, 5, 2, (2, 3, 4, 5)),
    ),
    b_values: Tuple[int, ...] = tuple(FIG7_B_LADDER),
    seed: int = 2015,
    effort: str = "",
    reps: int = 0,
) -> Fig7Result:
    """configs entries are (n, r, s, k_values)."""
    effort = effort or adversary_effort()
    reps = reps or monte_carlo_reps()
    cap = object_scale_cap()
    cells: List[Fig7Cell] = []
    for n, r, s, k_values in configs:
        strategy = RandomStrategy(n, r)
        for b in b_values:
            if b > cap:
                continue
            placements = [
                strategy.place(b, derive_rng(seed, "fig7", n, r, b, rep))
                for rep in range(reps)
            ]
            # One batched pass per Monte-Carlo sample: the k-ladder of each
            # placement shares its warm engine (incidence + per-threshold
            # kernel) and chains incumbents; identical re-runs of a sample
            # come out of the attack memo.
            avails_by_k: dict = {k: [] for k in k_values}
            grid = [AttackCell(k, s, effort) for k in k_values]
            for rep, placement in enumerate(placements):
                [cell_seed] = spawn_seeds(seed, 1, "fig7-attack", n, r, b, rep)
                attacks = batch_attack(
                    placement,
                    grid,
                    backend=kernel_backend(),
                    workers=attack_workers(),
                    seed=cell_seed,
                )
                for cell, attack in zip(grid, attacks):
                    avails_by_k[cell.k].append(b - attack.damage)
            for k in k_values:
                avails = avails_by_k[k]
                cells.append(
                    Fig7Cell(
                        n=n,
                        r=r,
                        s=s,
                        k=k,
                        b=b,
                        pr_avail=pr_avail_rnd(n, k, r, s, b),
                        avg_avail=statistics.fmean(avails),
                        stdev_avail=(
                            statistics.pstdev(avails) if len(avails) > 1 else 0.0
                        ),
                        repetitions=reps,
                    )
                )
    return Fig7Result(cells=tuple(cells))
