"""Rendering simulator time series as terminal plots and tables.

The lifetime simulator (:mod:`repro.sim`) emits a
:class:`~repro.sim.report.SimReport`; this module turns it into the same
dependency-free artifacts the figure generators produce — ascii line
plots (:mod:`repro.util.asciiplot`) for the availability / population /
backlog curves, a strike table pitting attack damage against the live
Lemma-3 floor, and a one-screen summary. ``repro simulate`` prints
exactly this rendering.
"""

from __future__ import annotations

from typing import List

from repro.sim.report import SimReport
from repro.util.asciiplot import Series, line_plot
from repro.util.tables import TextTable


def availability_plot(report: SimReport, width: int = 60, height: int = 12) -> str:
    """Availability fraction over time, with the Lemma-3 floor overlaid.

    The floor series divides each strike's certified lower bound by the
    live population at strike time; once re-replication voids the
    certificate the floor series stops (no certified guarantee exists to
    draw).
    """
    if not report.samples:
        return "(no samples; enable measure_period)"
    series = [
        Series.from_pairs(
            "availability",
            [(s.time, s.availability) for s in report.samples],
        )
    ]
    floor = [
        (strike.time, strike.lower_bound / strike.live_objects)
        for strike in report.strikes
        if strike.certified and strike.live_objects
    ]
    if floor:
        series.append(Series.from_pairs("lemma3 floor", floor))
    strike_fraction = [
        (strike.time, strike.available / strike.live_objects)
        for strike in report.strikes
        if strike.live_objects
    ]
    if strike_fraction:
        series.append(Series.from_pairs("strike survivors", strike_fraction))
    return line_plot(
        series,
        width=width,
        height=height,
        title=(
            f"Availability over time (n={report.n}, r={report.r}, "
            f"s={report.s}, k={report.k})"
        ),
        x_label="time",
        y_min=0.0,
        y_max=1.0,
    )


def population_plot(report: SimReport, width: int = 60, height: int = 10) -> str:
    """Live objects and the repair backlog on one time axis."""
    if not report.samples:
        return "(no samples; enable measure_period)"
    series = [
        Series.from_pairs(
            "live objects", [(s.time, s.live_objects) for s in report.samples]
        ),
        Series.from_pairs(
            "repair backlog",
            [(s.time, s.repair_backlog) for s in report.samples],
        ),
    ]
    return line_plot(
        series,
        width=width,
        height=height,
        title="Population and repair backlog",
        x_label="time",
        y_min=0.0,
    )


def strike_table(report: SimReport, limit: int = 12) -> str:
    """The worst strikes: damage vs the Lemma-3 floor, certification noted."""
    if not report.strikes:
        return "(no strikes; enable strike_period)"
    table = TextTable(
        ["time", "live", "damage", "available", "lemma3 floor", "certified",
         "floor held"],
        title=f"Adversary strikes (worst {min(limit, len(report.strikes))} "
              f"of {len(report.strikes)} by survivor fraction)",
    )
    ranked = sorted(
        report.strikes,
        key=lambda strike: (
            strike.available / strike.live_objects
            if strike.live_objects else 1.0
        ),
    )
    for strike in ranked[:limit]:
        table.add_row(
            [
                round(strike.time, 2),
                strike.live_objects,
                strike.damage,
                strike.available,
                strike.lower_bound if strike.certified else None,
                "yes" if strike.certified else "no",
                ("yes" if not strike.violates_bound else "VIOLATED")
                if strike.certified else "-",
            ]
        )
    return table.render()


def summary_table(report: SimReport) -> str:
    """One-screen run summary: shape, throughput, extremes, certification."""
    table = TextTable(["metric", "value"], title="Lifetime summary")
    rows: List[tuple] = [
        ("engine mode", report.engine_mode),
        ("events handled", report.events),
        ("sim end time", round(report.end_time, 2)),
        ("wall seconds", round(report.wall_seconds, 3)),
        ("events/sec", round(report.events_per_sec, 1)),
        ("samples", len(report.samples)),
        ("strikes", len(report.strikes)),
        ("certified strikes", report.certified_strikes()),
        ("min availability", round(report.min_availability(), 4)),
        ("max repair backlog", report.max_backlog()),
        ("Lemma-3 violations", report.bound_violations()),
    ]
    worst = report.worst_strike()
    if worst is not None and worst.live_objects:
        rows.append(
            ("worst strike", f"t={worst.time:g}: {worst.damage}/"
             f"{worst.live_objects} objects killed")
        )
    for kind, count in sorted(report.event_counts.items()):
        rows.append((f"events[{kind}]", count))
    for name, value in rows:
        table.add_row([name, value])
    return table.render()


def render_report(report: SimReport, width: int = 60) -> str:
    """The full terminal rendering: summary, plots, strike table."""
    parts = [
        summary_table(report),
        availability_plot(report, width=width),
        population_plot(report, width=width),
        strike_table(report),
    ]
    return "\n\n".join(parts)
