"""Fig. 4: the table of subsystem orders n_x used by the paper.

For each cluster size n in {31, 71, 257} and r in [2, 5], the paper lists
the Steiner-system order ``n_x <= n`` used for each stratum x (with
mu_x = 1). We recompute the table from the existence catalog and flag the
two cells where the source text is internally inconsistent (see DESIGN.md):
the catalog yields 64 where the text prints "70" for (n=71, r=4, x=1) —
70 violates the v = 1, 4 (mod 12) divisibility condition — and 47 where it
prints "71" for (n=71, r=5, x=3) — no S(4,5,71) is known.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.designs.catalog import Existence, largest_order
from repro.exp.registry import ExperimentKernel
from repro.exp.runner import run_figure
from repro.exp.spec import ExperimentSpec
from repro.util.tables import TextTable

#: The values printed in the paper's Fig. 4, for comparison. ``None`` marks
#: x strata the paper does not list (x = 0 partitions are implicit).
PAPER_FIG4: Dict[Tuple[int, int, int], Optional[int]] = {
    # (n, r, x): n_x    -- r=2
    (31, 2, 1): 31, (71, 2, 1): 71, (257, 2, 1): 257,
    # r=3
    (31, 3, 1): 31, (31, 3, 2): 31,
    (71, 3, 1): 69, (71, 3, 2): 71,
    (257, 3, 1): 255, (257, 3, 2): 257,
    # r=4
    (31, 4, 1): 28, (31, 4, 2): 28, (31, 4, 3): 31,
    (71, 4, 1): 70, (71, 4, 2): 70, (71, 4, 3): 71,
    (257, 4, 1): 256, (257, 4, 2): 256, (257, 4, 3): 257,
    # r=5
    (31, 5, 1): 25, (31, 5, 2): 26, (31, 5, 3): 23, (31, 5, 4): 31,
    (71, 5, 1): 65, (71, 5, 2): 65, (71, 5, 3): 71, (71, 5, 4): 71,
    (257, 5, 1): 245, (257, 5, 2): 257, (257, 5, 3): 243, (257, 5, 4): 257,
}


@dataclass(frozen=True)
class Fig4Cell:
    n: int
    r: int
    x: int
    nx_catalog: Optional[int]
    nx_constructible: Optional[int]
    nx_paper: Optional[int]

    @property
    def matches_paper(self) -> Optional[bool]:
        if self.nx_paper is None:
            return None
        return self.nx_paper == self.nx_catalog


@dataclass(frozen=True)
class Fig4Result:
    cells: Tuple[Fig4Cell, ...]

    def render(self) -> str:
        table = TextTable(
            ["n", "r", "x", "n_x (catalog)", "n_x (constructible)", "paper", "match"],
            title="Fig 4: subsystem orders n_x (mu = 1)",
        )
        for cell in self.cells:
            match = cell.matches_paper
            table.add_row(
                [
                    cell.n,
                    cell.r,
                    cell.x,
                    cell.nx_catalog,
                    cell.nx_constructible,
                    cell.nx_paper,
                    {None: "-", True: "yes", False: "DIFFERS"}[match],
                ]
            )
        return table.render()


def default_spec(
    n_values: Tuple[int, ...] = (31, 71, 257),
    r_values: Tuple[int, ...] = (2, 3, 4, 5),
) -> ExperimentSpec:
    return ExperimentSpec.build(
        "fig4", axes={"n": n_values, "r": r_values}
    )


def _expand(spec: ExperimentSpec) -> List[dict]:
    return [
        {"n": n, "r": r, "x": x}
        for n in spec.axis("n")
        for r in spec.axis("r")
        for x in range(1, r)
    ]


def _run_group(spec: ExperimentSpec, cells) -> List[dict]:
    out = []
    for cell in cells:
        t = cell["x"] + 1
        out.append(
            {
                "nx_catalog": largest_order(
                    cell["n"], cell["r"], t, Existence.KNOWN
                ),
                "nx_constructible": largest_order(
                    cell["n"], cell["r"], t, Existence.CONSTRUCTIBLE
                ),
            }
        )
    return out


def _assemble(spec: ExperimentSpec, cells, metrics) -> Fig4Result:
    return Fig4Result(
        cells=tuple(
            Fig4Cell(
                n=cell["n"],
                r=cell["r"],
                x=cell["x"],
                nx_catalog=entry["nx_catalog"],
                nx_constructible=entry["nx_constructible"],
                nx_paper=PAPER_FIG4.get((cell["n"], cell["r"], cell["x"])),
            )
            for cell, entry in zip(cells, metrics)
        )
    )


KERNELS = {
    "fig4": ExperimentKernel(
        name="fig4",
        expand=_expand,
        group_key=lambda spec, cell: (cell["n"], cell["r"]),
        run_group=_run_group,
        assemble=_assemble,
        render=lambda result: result.render(),
    )
}


def generate(
    n_values: Tuple[int, ...] = (31, 71, 257),
    r_values: Tuple[int, ...] = (2, 3, 4, 5),
) -> Fig4Result:
    """Compatibility wrapper: run the Fig. 4 spec through the exp engine."""
    return run_figure(default_spec(n_values=n_values, r_values=r_values))
