"""Figs. 5 and 6: capacity-gap CDFs over system sizes n in [50, 800].

For each (r, x) the paper asks: decomposing n nodes into at most m = 3
chunks carrying known Steiner systems, what fraction of the ideal Lemma-1
capacity is lost ("capacity gap")? Fig. 5 uses mu = 1; Fig. 6 revisits the
hard cases (r = 5, x in {2, 3}) allowing mu <= 5 and mu <= 10, where the
catalog falls back to divisibility-admissible parameter sets (documented
as the optimistic tier in DESIGN.md/EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.subsystems import capacity_gap
from repro.designs.catalog import Existence
from repro.util.tables import TextTable


@dataclass(frozen=True)
class GapCDF:
    r: int
    x: int
    max_mu: int
    tier: Existence
    gaps: Tuple[float, ...]  # one per n, unsorted

    def fraction_at_most(self, threshold: float) -> float:
        if not self.gaps:
            return 0.0
        return sum(1 for g in self.gaps if g <= threshold + 1e-12) / len(self.gaps)

    def cdf_points(self, thresholds: Sequence[float]) -> List[Tuple[float, float]]:
        return [(t, self.fraction_at_most(t)) for t in thresholds]


@dataclass(frozen=True)
class Fig5Result:
    n_range: Tuple[int, int]
    max_chunks: int
    cdfs: Tuple[GapCDF, ...]

    def render(self, thresholds: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0)) -> str:
        table = TextTable(
            ["r", "x", "mu<=", *[f"gap<={t:g}" for t in thresholds]],
            title=(
                f"Figs 5-6: capacity-gap CDFs, n in [{self.n_range[0]}, "
                f"{self.n_range[1]}], chunks <= {self.max_chunks}"
            ),
        )
        for cdf in self.cdfs:
            table.add_row(
                [
                    cdf.r,
                    cdf.x,
                    cdf.max_mu,
                    *[round(frac, 3) for _, frac in cdf.cdf_points(thresholds)],
                ]
            )
        return table.render()


def generate(
    combos: Sequence[Tuple[int, int]] = (
        (2, 0), (2, 1),
        (3, 0), (3, 1), (3, 2),
        (4, 0), (4, 1), (4, 2), (4, 3),
        (5, 0), (5, 1), (5, 2), (5, 3), (5, 4),
    ),
    n_range: Tuple[int, int] = (50, 800),
    max_chunks: int = 3,
    max_mu: int = 1,
    tier: Existence = Existence.KNOWN,
) -> Fig5Result:
    """Fig. 5's CDFs (defaults) or Fig. 6's (combos/(max_mu, tier) overridden)."""
    cdfs: List[GapCDF] = []
    for r, x in combos:
        gaps = [
            capacity_gap(n, r, x, tier=tier, max_mu=max_mu, max_chunks=max_chunks)
            for n in range(n_range[0], n_range[1] + 1)
        ]
        cdfs.append(GapCDF(r=r, x=x, max_mu=max_mu, tier=tier, gaps=tuple(gaps)))
    return Fig5Result(n_range=n_range, max_chunks=max_chunks, cdfs=tuple(cdfs))


def generate_fig6(
    n_range: Tuple[int, int] = (50, 800),
    max_chunks: int = 3,
) -> Tuple[Fig5Result, Fig5Result]:
    """Fig. 6: the r = 5, x in {2, 3} cases with mu <= 5 and mu <= 10.

    Uses the DIVISIBILITY tier: beyond catalogued systems, a (v, mu) pair
    counts when the necessary conditions hold — the optimistic assumption
    the paper makes when surveying "numerous additional constructions".
    """
    results = []
    for max_mu in (5, 10):
        results.append(
            generate(
                combos=((5, 2), (5, 3)),
                n_range=n_range,
                max_chunks=max_chunks,
                max_mu=max_mu,
                tier=Existence.DIVISIBILITY,
            )
        )
    return results[0], results[1]
