"""Figs. 5 and 6: capacity-gap CDFs over system sizes n in [50, 800].

For each (r, x) the paper asks: decomposing n nodes into at most m = 3
chunks carrying known Steiner systems, what fraction of the ideal Lemma-1
capacity is lost ("capacity gap")? Fig. 5 uses mu = 1; Fig. 6 revisits the
hard cases (r = 5, x in {2, 3}) allowing mu <= 5 and mu <= 10, where the
catalog falls back to divisibility-admissible parameter sets (documented
as the optimistic tier in DESIGN.md/EXPERIMENTS.md).

Both figures are experiment specs over the ``fig5``/``fig6`` kernels: one
cell per (r, x, n) capacity-gap evaluation, one shard per CDF curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.subsystems import capacity_gap
from repro.designs.catalog import Existence
from repro.exp.registry import ExperimentKernel
from repro.exp.runner import run_figure
from repro.exp.spec import ExperimentSpec
from repro.util.tables import TextTable


@dataclass(frozen=True)
class GapCDF:
    r: int
    x: int
    max_mu: int
    tier: Existence
    gaps: Tuple[float, ...]  # one per n, unsorted

    def fraction_at_most(self, threshold: float) -> float:
        if not self.gaps:
            return 0.0
        return sum(1 for g in self.gaps if g <= threshold + 1e-12) / len(self.gaps)

    def cdf_points(self, thresholds: Sequence[float]) -> List[Tuple[float, float]]:
        return [(t, self.fraction_at_most(t)) for t in thresholds]


@dataclass(frozen=True)
class Fig5Result:
    n_range: Tuple[int, int]
    max_chunks: int
    cdfs: Tuple[GapCDF, ...]

    def render(self, thresholds: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0)) -> str:
        table = TextTable(
            ["r", "x", "mu<=", *[f"gap<={t:g}" for t in thresholds]],
            title=(
                f"Figs 5-6: capacity-gap CDFs, n in [{self.n_range[0]}, "
                f"{self.n_range[1]}], chunks <= {self.max_chunks}"
            ),
        )
        for cdf in self.cdfs:
            table.add_row(
                [
                    cdf.r,
                    cdf.x,
                    cdf.max_mu,
                    *[round(frac, 3) for _, frac in cdf.cdf_points(thresholds)],
                ]
            )
        return table.render()


def default_spec(
    combos: Sequence[Tuple[int, int]] = (
        (2, 0), (2, 1),
        (3, 0), (3, 1), (3, 2),
        (4, 0), (4, 1), (4, 2), (4, 3),
        (5, 0), (5, 1), (5, 2), (5, 3), (5, 4),
    ),
    n_range: Tuple[int, int] = (50, 800),
    max_chunks: int = 3,
    max_mu: int = 1,
    tier: Existence = Existence.KNOWN,
) -> ExperimentSpec:
    """Fig. 5's sweep (defaults) or Fig. 6's (combos/(max_mu, tier) overridden)."""
    return ExperimentSpec.build(
        "fig5",
        axes={"n": list(range(n_range[0], n_range[1] + 1))},
        constants={
            "combos": [[r, x] for r, x in combos],
            "max_chunks": max_chunks,
            "max_mu": max_mu,
            "tier": tier.name,
        },
    )


def default_spec_fig6(
    n_range: Tuple[int, int] = (50, 800),
    max_chunks: int = 3,
) -> ExperimentSpec:
    """Fig. 6: the r = 5, x in {2, 3} cases, swept over mu <= 5 and <= 10."""
    return ExperimentSpec.build(
        "fig6",
        axes={
            "n": list(range(n_range[0], n_range[1] + 1)),
            "max_mu": (5, 10),
        },
        constants={
            "combos": [[5, 2], [5, 3]],
            "max_chunks": max_chunks,
            "tier": Existence.DIVISIBILITY.name,
        },
    )


def _expand(spec: ExperimentSpec) -> List[dict]:
    return [
        {"r": r, "x": x, "n": n}
        for r, x in spec.constant("combos")
        for n in spec.axis("n")
    ]


def _expand_fig6(spec: ExperimentSpec) -> List[dict]:
    return [
        {"max_mu": max_mu, "r": r, "x": x, "n": n}
        for max_mu in spec.axis("max_mu")
        for r, x in spec.constant("combos")
        for n in spec.axis("n")
    ]


def _run_group(spec: ExperimentSpec, cells) -> List[dict]:
    tier = Existence[spec.constant("tier")]
    max_chunks = spec.constant("max_chunks")
    return [
        {
            "gap": capacity_gap(
                cell["n"],
                cell["r"],
                cell["x"],
                tier=tier,
                max_mu=cell.get("max_mu", spec.constant("max_mu", None)),
                max_chunks=max_chunks,
            )
        }
        for cell in cells
    ]


def _cdfs_from(spec, cells, metrics, max_mu_of, tier) -> List[GapCDF]:
    curves: dict = {}
    order: List[tuple] = []
    for cell, entry in zip(cells, metrics):
        key = (max_mu_of(cell), cell["r"], cell["x"])
        if key not in curves:
            curves[key] = []
            order.append(key)
        curves[key].append(entry["gap"])
    return [
        GapCDF(
            r=r, x=x, max_mu=max_mu, tier=tier, gaps=tuple(curves[(max_mu, r, x)])
        )
        for max_mu, r, x in order
    ]


def _assemble(spec: ExperimentSpec, cells, metrics) -> Fig5Result:
    n_values = spec.axis("n")
    tier = Existence[spec.constant("tier")]
    cdfs = _cdfs_from(
        spec, cells, metrics, lambda cell: spec.constant("max_mu"), tier
    )
    return Fig5Result(
        n_range=(n_values[0], n_values[-1]),
        max_chunks=spec.constant("max_chunks"),
        cdfs=tuple(cdfs),
    )


def _assemble_fig6(spec: ExperimentSpec, cells, metrics) -> Tuple[Fig5Result, Fig5Result]:
    n_values = spec.axis("n")
    tier = Existence[spec.constant("tier")]
    cdfs = _cdfs_from(spec, cells, metrics, lambda cell: cell["max_mu"], tier)
    results = []
    for max_mu in spec.axis("max_mu"):
        results.append(
            Fig5Result(
                n_range=(n_values[0], n_values[-1]),
                max_chunks=spec.constant("max_chunks"),
                cdfs=tuple(cdf for cdf in cdfs if cdf.max_mu == max_mu),
            )
        )
    return results[0], results[1]


KERNELS = {
    "fig5": ExperimentKernel(
        name="fig5",
        expand=_expand,
        group_key=lambda spec, cell: (cell["r"], cell["x"]),
        run_group=_run_group,
        assemble=_assemble,
        render=lambda result: result.render(),
    ),
    "fig6": ExperimentKernel(
        name="fig6",
        expand=_expand_fig6,
        group_key=lambda spec, cell: (cell["max_mu"], cell["r"], cell["x"]),
        run_group=_run_group,
        assemble=_assemble_fig6,
        render=lambda results: (
            results[0].render() + "\n\n" + results[1].render()
        ),
    ),
}


def generate(
    combos: Sequence[Tuple[int, int]] = (
        (2, 0), (2, 1),
        (3, 0), (3, 1), (3, 2),
        (4, 0), (4, 1), (4, 2), (4, 3),
        (5, 0), (5, 1), (5, 2), (5, 3), (5, 4),
    ),
    n_range: Tuple[int, int] = (50, 800),
    max_chunks: int = 3,
    max_mu: int = 1,
    tier: Existence = Existence.KNOWN,
) -> Fig5Result:
    """Fig. 5's CDFs (defaults) or Fig. 6's (combos/(max_mu, tier) overridden)."""
    return run_figure(
        default_spec(
            combos=combos, n_range=n_range, max_chunks=max_chunks,
            max_mu=max_mu, tier=tier,
        )
    )


def generate_fig6(
    n_range: Tuple[int, int] = (50, 800),
    max_chunks: int = 3,
) -> Tuple[Fig5Result, Fig5Result]:
    """Fig. 6: the r = 5, x in {2, 3} cases with mu <= 5 and mu <= 10.

    Uses the DIVISIBILITY tier: beyond catalogued systems, a (v, mu) pair
    counts when the necessary conditions hold — the optimistic assumption
    the paper makes when surveying "numerous additional constructions".
    """
    return run_figure(default_spec_fig6(n_range=n_range, max_chunks=max_chunks))
