"""Fig. 2: tightness of the Simple(x, lambda) lower bound.

The paper places objects with a Simple(1, lambda) placement built from
STS(69) inside n = 71 nodes (r = 3), simulates the worst k node failures,
and plots ``Avail(pi) - lbAvail_si(x, lambda)`` for s in {2, 3}, k in
[s, 5] and b in {600 ... 9600}.

With a heuristic adversary the measured availability is an upper bound, so
the reported gap is an upper bound on the true gap; ``REPRO_EFFORT=exact``
switches to branch-and-bound for certified values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.common import (
    adversary_effort,
    attack_workers,
    kernel_backend,
    object_scale_cap,
)
from repro.core.availability import evaluate_availability_grid
from repro.core.batch import AttackCell
from repro.core.simple import SimpleStrategy
from repro.util.tables import TextTable


@dataclass(frozen=True)
class Fig2Cell:
    b: int
    s: int
    k: int
    avail: int
    lower_bound: int
    exact: bool

    @property
    def gap(self) -> int:
        return self.avail - self.lower_bound


@dataclass(frozen=True)
class Fig2Result:
    n: int
    r: int
    x: int
    cells: Tuple[Fig2Cell, ...]

    def series(self) -> Dict[Tuple[int, int], List[Tuple[int, int]]]:
        """{(s, k): [(b, gap), ...]} — the curves of the paper's plot."""
        curves: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        for cell in self.cells:
            curves.setdefault((cell.s, cell.k), []).append((cell.b, cell.gap))
        return curves

    def render(self) -> str:
        table = TextTable(
            ["b", "s", "k", "Avail", "lbAvail_si", "gap", "exact"],
            title=(
                f"Fig 2: Avail - lbAvail_si for Simple(x={self.x}) "
                f"(n={self.n}, r={self.r})"
            ),
        )
        for cell in self.cells:
            table.add_row(
                [
                    cell.b,
                    cell.s,
                    cell.k,
                    cell.avail,
                    cell.lower_bound,
                    cell.gap,
                    "yes" if cell.exact else "upper-bd",
                ]
            )
        return table.render()


def generate(
    n: int = 71,
    r: int = 3,
    x: int = 1,
    b_values: Tuple[int, ...] = (600, 1200, 2400, 4800, 9600),
    s_values: Tuple[int, ...] = (2, 3),
    k_max: int = 5,
    effort: str = "",
) -> Fig2Result:
    """Run the Fig. 2 experiment; see module docstring for the setting."""
    effort = effort or adversary_effort()
    cap = object_scale_cap()
    strategy = SimpleStrategy(n, r, x)
    cells: List[Fig2Cell] = []
    for b in b_values:
        if b > cap:
            continue
        placement = strategy.place(b)
        # The whole (s, k) grid for this placement goes through the batch
        # engine in one pass: one warm engine per placement structure, a
        # k-attack seeds the (k+1)-search within each threshold group, and
        # regenerating the figure in the same process replays from the
        # attack memo instead of re-searching.
        grid = [
            AttackCell(k, s, effort)
            for s in s_values
            if x < s
            for k in range(s, k_max + 1)
        ]
        if not grid:
            continue
        reports = evaluate_availability_grid(
            placement,
            grid,
            backend=kernel_backend(),
            workers=attack_workers(),
            seed=b,
        )
        for cell, report in zip(grid, reports):
            cells.append(
                Fig2Cell(
                    b=b,
                    s=cell.s,
                    k=cell.k,
                    avail=report.available,
                    lower_bound=strategy.lower_bound(b, cell.k, cell.s),
                    exact=report.exact,
                )
            )
    return Fig2Result(n=n, r=r, x=x, cells=tuple(cells))
