"""Fig. 2: tightness of the Simple(x, lambda) lower bound.

The paper places objects with a Simple(1, lambda) placement built from
STS(69) inside n = 71 nodes (r = 3), simulates the worst k node failures,
and plots ``Avail(pi) - lbAvail_si(x, lambda)`` for s in {2, 3}, k in
[s, 5] and b in {600 ... 9600}.

With a heuristic adversary the measured availability is an upper bound, so
the reported gap is an upper bound on the true gap; ``REPRO_EFFORT=exact``
switches to branch-and-bound for certified values.

The sweep itself is an :class:`~repro.exp.spec.ExperimentSpec` (axes b and
s, k derived from s) run through :mod:`repro.exp.runner`: one shard per
``(b, s)`` — a placement structure plus one warm-start k-chain — so the
experiment parallelizes across shards without perturbing any result.
:func:`generate` remains the compatibility entry point with bit-identical
output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.common import (
    adversary_effort,
    kernel_backend,
    object_scale_cap,
)
from repro.core.availability import evaluate_availability_grid
from repro.core.batch import AttackCell
from repro.core.simple import SimpleStrategy
from repro.exp.registry import ExperimentKernel
from repro.exp.runner import run_figure
from repro.exp.spec import ExperimentSpec
from repro.util.tables import TextTable


@dataclass(frozen=True)
class Fig2Cell:
    b: int
    s: int
    k: int
    avail: int
    lower_bound: int
    exact: bool

    @property
    def gap(self) -> int:
        return self.avail - self.lower_bound


@dataclass(frozen=True)
class Fig2Result:
    n: int
    r: int
    x: int
    cells: Tuple[Fig2Cell, ...]

    def series(self) -> Dict[Tuple[int, int], List[Tuple[int, int]]]:
        """{(s, k): [(b, gap), ...]} — the curves of the paper's plot."""
        curves: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        for cell in self.cells:
            curves.setdefault((cell.s, cell.k), []).append((cell.b, cell.gap))
        return curves

    def render(self) -> str:
        table = TextTable(
            ["b", "s", "k", "Avail", "lbAvail_si", "gap", "exact"],
            title=(
                f"Fig 2: Avail - lbAvail_si for Simple(x={self.x}) "
                f"(n={self.n}, r={self.r})"
            ),
        )
        for cell in self.cells:
            table.add_row(
                [
                    cell.b,
                    cell.s,
                    cell.k,
                    cell.avail,
                    cell.lower_bound,
                    cell.gap,
                    "yes" if cell.exact else "upper-bd",
                ]
            )
        return table.render()


def default_spec(
    n: int = 71,
    r: int = 3,
    x: int = 1,
    b_values: Tuple[int, ...] = (600, 1200, 2400, 4800, 9600),
    s_values: Tuple[int, ...] = (2, 3),
    k_max: int = 5,
    effort: str = "",
) -> ExperimentSpec:
    """The Fig. 2 sweep as data. Env knobs resolve here, into the spec."""
    return ExperimentSpec.build(
        "fig2",
        axes={"b": b_values, "s": s_values},
        constants={
            "n": n,
            "r": r,
            "x": x,
            "k_max": k_max,
            "effort": effort or adversary_effort(),
            "b_cap": object_scale_cap(),
        },
    )


def _expand(spec: ExperimentSpec) -> List[dict]:
    x = spec.constant("x")
    cap = spec.constant("b_cap")
    k_max = spec.constant("k_max")
    return [
        {"b": b, "s": s, "k": k}
        for b in spec.axis("b")
        if b <= cap
        for s in spec.axis("s")
        if x < s
        for k in range(s, k_max + 1)
    ]


def _group_key(spec: ExperimentSpec, cell: dict):
    return (cell["b"], cell["s"])


def _run_group(spec: ExperimentSpec, cells) -> List[dict]:
    b, s = cells[0]["b"], cells[0]["s"]
    effort = spec.constant("effort")
    strategy = SimpleStrategy(spec.constant("n"), spec.constant("r"), spec.constant("x"))
    placement = strategy.place(b)
    # The shard's k-ladder goes through the batch engine in one pass: one
    # warm engine per placement structure (shared across the sibling
    # (b, s') shard when it lands in the same process), a k-attack seeds
    # the (k+1)-search, and same-process replays come out of the memo.
    grid = [AttackCell(cell["k"], s, effort) for cell in cells]
    reports = evaluate_availability_grid(
        placement, grid, backend=kernel_backend(), workers=1, seed=b
    )
    return [
        {
            "avail": report.available,
            "lower_bound": strategy.lower_bound(b, cell["k"], s),
            "exact": report.exact,
        }
        for cell, report in zip(cells, reports)
    ]


def _assemble(spec: ExperimentSpec, cells, metrics) -> Fig2Result:
    return Fig2Result(
        n=spec.constant("n"),
        r=spec.constant("r"),
        x=spec.constant("x"),
        cells=tuple(
            Fig2Cell(
                b=cell["b"],
                s=cell["s"],
                k=cell["k"],
                avail=entry["avail"],
                lower_bound=entry["lower_bound"],
                exact=entry["exact"],
            )
            for cell, entry in zip(cells, metrics)
        ),
    )


KERNELS = {
    "fig2": ExperimentKernel(
        name="fig2",
        expand=_expand,
        group_key=_group_key,
        run_group=_run_group,
        assemble=_assemble,
        render=lambda result: result.render(),
        group_cost=lambda spec, key, cells: key[0] * len(cells),
        # The placement depends only on b — (b, s) and (b, s') shards
        # attack the same structure, so route them to one pool worker.
        affinity=lambda spec, key, cells: key[0],
    )
}


def generate(
    n: int = 71,
    r: int = 3,
    x: int = 1,
    b_values: Tuple[int, ...] = (600, 1200, 2400, 4800, 9600),
    s_values: Tuple[int, ...] = (2, 3),
    k_max: int = 5,
    effort: str = "",
) -> Fig2Result:
    """Compatibility wrapper: run the Fig. 2 spec through the exp engine."""
    return run_figure(
        default_spec(
            n=n, r=r, x=x, b_values=b_values, s_values=s_values,
            k_max=k_max, effort=effort,
        )
    )
