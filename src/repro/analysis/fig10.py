"""Fig. 10: breakdown of Combo placements into their Simple strata.

For r = s = 3 and n in {31, 71, 257} the paper shows, side by side, the
improvement over Random achieved by pure Simple(1, lambda), pure
Simple(2, lambda) (each with the minimal lambda of Eqn. 1, which the
tables annotate), and the DP-optimized Combo. The Combo column dominates:
it tracks whichever stratum wins and sometimes beats both by mixing.

The registered ``fig10`` experiment sweeps all three cluster sizes in one
spec (one shard per (n, b) row); :func:`generate` keeps the historical
one-``n``-at-a-time signature on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.common import PAPER_B_LADDER, percent
from repro.core.bounds import lb_avail_simple
from repro.core.combo import ComboStrategy
from repro.core.rand_analysis import pr_avail_rnd
from repro.core.subsystems import select_subsystem
from repro.designs.catalog import Existence
from repro.exp.registry import ExperimentKernel
from repro.exp.runner import run_figure
from repro.exp.spec import ExperimentSpec
from repro.util.tables import TextTable


@dataclass(frozen=True)
class Fig10Row:
    b: int
    simple_lambdas: Dict[int, int]  # x -> minimal lambda
    simple_percent: Dict[int, Dict[int, float]]  # x -> {k: improvement %}
    combo_percent: Dict[int, float]  # k -> improvement %


@dataclass(frozen=True)
class Fig10Result:
    n: int
    r: int
    s: int
    x_values: Tuple[int, ...]
    k_values: Tuple[int, ...]
    rows: Tuple[Fig10Row, ...]

    def render(self) -> str:
        headers = ["b"]
        for x in self.x_values:
            headers.append(f"x={x}:lam")
            headers.extend(f"x={x}:k={k}" for k in self.k_values)
        headers.extend(f"combo:k={k}" for k in self.k_values)
        table = TextTable(
            headers,
            title=(
                f"Fig 10 (n={self.n}): Simple vs Combo improvement % "
                f"(r=s={self.r})"
            ),
        )
        for row in self.rows:
            cells: List[object] = [row.b]
            for x in self.x_values:
                cells.append(row.simple_lambdas.get(x))
                for k in self.k_values:
                    value = row.simple_percent.get(x, {}).get(k)
                    cells.append(f"{value:.0f}" if value == value else "-")
            for k in self.k_values:
                value = row.combo_percent[k]
                cells.append(f"{value:.0f}" if value == value else "-")
            table.add_row(cells)
        return table.render()


def _default_k_top(n: int) -> int:
    return 6 if n == 31 else (7 if n == 71 else 8)


def default_spec(
    n_values: Tuple[int, ...] = (31, 71, 257),
    r: int = 3,
    s: int = 3,
    x_values: Tuple[int, ...] = (1, 2),
    k_values: Optional[Tuple[int, ...]] = None,
    b_values: Tuple[int, ...] = tuple(PAPER_B_LADDER),
    tier: Existence = Existence.KNOWN,
) -> ExperimentSpec:
    return ExperimentSpec.build(
        "fig10",
        axes={"b": b_values},
        constants={
            "n_values": list(n_values),
            "r": r,
            "s": s,
            "x_values": list(x_values),
            "k_values": list(k_values) if k_values is not None else None,
            "tier": tier.name,
        },
    )


def _k_values_for(spec: ExperimentSpec, n: int) -> Tuple[int, ...]:
    explicit = spec.constant("k_values")
    if explicit is not None:
        return tuple(explicit)
    return tuple(range(spec.constant("s"), _default_k_top(n) + 1))


def _expand(spec: ExperimentSpec) -> List[dict]:
    return [
        {"n": n, "b": b, "k": k}
        for n in spec.constant("n_values")
        for b in spec.axis("b")
        for k in _k_values_for(spec, n)
    ]


def _run_group(spec: ExperimentSpec, cells) -> List[dict]:
    n, b = cells[0]["n"], cells[0]["b"]
    r, s = spec.constant("r"), spec.constant("s")
    tier = Existence[spec.constant("tier")]
    combo = ComboStrategy(n, r, s, tier=tier)
    lambdas: Dict[int, int] = {}
    for x in spec.constant("x_values"):
        subsystem = select_subsystem(n, r, x, tier=tier)
        if subsystem is not None:
            lambdas[x] = subsystem.minimal_lambda(b)
    out = []
    for cell in cells:
        k = cell["k"]
        pr = pr_avail_rnd(n, k, r, s, b)
        entry: Dict[str, object] = {
            "pr": pr,
            "combo_lb": combo.plan(b, k).lower_bound,
        }
        for x, lam in lambdas.items():
            entry[f"x{x}_lam"] = lam
            entry[f"x{x}_lb"] = lb_avail_simple(b, k, s, x, lam)
        out.append(entry)
    return out


def _assemble(spec: ExperimentSpec, cells, metrics) -> Tuple[Fig10Result, ...]:
    r, s = spec.constant("r"), spec.constant("s")
    x_values = tuple(spec.constant("x_values"))
    by_cell = {
        (cell["n"], cell["b"], cell["k"]): entry
        for cell, entry in zip(cells, metrics)
    }
    results: List[Fig10Result] = []
    for n in spec.constant("n_values"):
        k_values = _k_values_for(spec, n)
        rows: List[Fig10Row] = []
        for b in spec.axis("b"):
            simple_lambdas: Dict[int, int] = {}
            simple_percent: Dict[int, Dict[int, float]] = {}
            combo_percent: Dict[int, float] = {}
            first = by_cell[(n, b, k_values[0])] if k_values else {}
            for x in x_values:
                if f"x{x}_lam" not in first:
                    continue
                simple_lambdas[x] = first[f"x{x}_lam"]
                simple_percent[x] = {
                    k: percent(
                        by_cell[(n, b, k)][f"x{x}_lb"] - by_cell[(n, b, k)]["pr"],
                        b - by_cell[(n, b, k)]["pr"],
                    )
                    for k in k_values
                }
            for k in k_values:
                entry = by_cell[(n, b, k)]
                combo_percent[k] = percent(
                    entry["combo_lb"] - entry["pr"], b - entry["pr"]
                )
            rows.append(
                Fig10Row(
                    b=b,
                    simple_lambdas=simple_lambdas,
                    simple_percent=simple_percent,
                    combo_percent=combo_percent,
                )
            )
        results.append(
            Fig10Result(
                n=n, r=r, s=s, x_values=x_values, k_values=k_values,
                rows=tuple(rows),
            )
        )
    return tuple(results)


KERNELS = {
    "fig10": ExperimentKernel(
        name="fig10",
        expand=_expand,
        group_key=lambda spec, cell: (cell["n"], cell["b"]),
        run_group=_run_group,
        assemble=_assemble,
        render=lambda results: "\n\n".join(
            result.render() for result in results
        ),
    )
}


def generate(
    n: int,
    r: int = 3,
    s: int = 3,
    x_values: Tuple[int, ...] = (1, 2),
    k_values: Optional[Tuple[int, ...]] = None,
    b_values: Tuple[int, ...] = tuple(PAPER_B_LADDER),
    tier: Existence = Existence.KNOWN,
) -> Fig10Result:
    """Compatibility wrapper: one cluster size of the ``fig10`` sweep."""
    (result,) = run_figure(
        default_spec(
            n_values=(n,), r=r, s=s, x_values=x_values,
            k_values=k_values, b_values=b_values, tier=tier,
        )
    )
    return result
