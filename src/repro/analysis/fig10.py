"""Fig. 10: breakdown of Combo placements into their Simple strata.

For r = s = 3 and n in {31, 71, 257} the paper shows, side by side, the
improvement over Random achieved by pure Simple(1, lambda), pure
Simple(2, lambda) (each with the minimal lambda of Eqn. 1, which the
tables annotate), and the DP-optimized Combo. The Combo column dominates:
it tracks whichever stratum wins and sometimes beats both by mixing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.common import PAPER_B_LADDER, percent
from repro.core.bounds import lb_avail_simple
from repro.core.combo import ComboStrategy
from repro.core.rand_analysis import pr_avail_rnd
from repro.core.subsystems import select_subsystem
from repro.designs.catalog import Existence
from repro.util.tables import TextTable


@dataclass(frozen=True)
class Fig10Row:
    b: int
    simple_lambdas: Dict[int, int]  # x -> minimal lambda
    simple_percent: Dict[int, Dict[int, float]]  # x -> {k: improvement %}
    combo_percent: Dict[int, float]  # k -> improvement %


@dataclass(frozen=True)
class Fig10Result:
    n: int
    r: int
    s: int
    x_values: Tuple[int, ...]
    k_values: Tuple[int, ...]
    rows: Tuple[Fig10Row, ...]

    def render(self) -> str:
        headers = ["b"]
        for x in self.x_values:
            headers.append(f"x={x}:lam")
            headers.extend(f"x={x}:k={k}" for k in self.k_values)
        headers.extend(f"combo:k={k}" for k in self.k_values)
        table = TextTable(
            headers,
            title=(
                f"Fig 10 (n={self.n}): Simple vs Combo improvement % "
                f"(r=s={self.r})"
            ),
        )
        for row in self.rows:
            cells: List[object] = [row.b]
            for x in self.x_values:
                cells.append(row.simple_lambdas.get(x))
                for k in self.k_values:
                    value = row.simple_percent.get(x, {}).get(k)
                    cells.append(f"{value:.0f}" if value == value else "-")
            for k in self.k_values:
                value = row.combo_percent[k]
                cells.append(f"{value:.0f}" if value == value else "-")
            table.add_row(cells)
        return table.render()


def generate(
    n: int,
    r: int = 3,
    s: int = 3,
    x_values: Tuple[int, ...] = (1, 2),
    k_values: Optional[Tuple[int, ...]] = None,
    b_values: Tuple[int, ...] = tuple(PAPER_B_LADDER),
    tier: Existence = Existence.KNOWN,
) -> Fig10Result:
    if k_values is None:
        top = 6 if n == 31 else (7 if n == 71 else 8)
        k_values = tuple(range(s, top + 1))
    combo = ComboStrategy(n, r, s, tier=tier)
    subsystems = {x: select_subsystem(n, r, x, tier=tier) for x in x_values}
    rows: List[Fig10Row] = []
    for b in b_values:
        simple_lambdas: Dict[int, int] = {}
        simple_percent: Dict[int, Dict[int, float]] = {}
        for x in x_values:
            subsystem = subsystems[x]
            if subsystem is None:
                continue
            lam = subsystem.minimal_lambda(b)
            simple_lambdas[x] = lam
            per_k: Dict[int, float] = {}
            for k in k_values:
                lb = lb_avail_simple(b, k, s, x, lam)
                pr = pr_avail_rnd(n, k, r, s, b)
                per_k[k] = percent(lb - pr, b - pr)
            simple_percent[x] = per_k
        combo_percent: Dict[int, float] = {}
        for k in k_values:
            lb = combo.plan(b, k).lower_bound
            pr = pr_avail_rnd(n, k, r, s, b)
            combo_percent[k] = percent(lb - pr, b - pr)
        rows.append(
            Fig10Row(
                b=b,
                simple_lambdas=simple_lambdas,
                simple_percent=simple_percent,
                combo_percent=combo_percent,
            )
        )
    return Fig10Result(
        n=n, r=r, s=s, x_values=x_values, k_values=k_values, rows=tuple(rows)
    )
