"""Fig. 9: the paper's headline tables — Combo vs Random.

Every cell compares the Combo DP's availability lower bound against
Random's probable availability, normalized by the most Random could be
improved upon:

    cell = 100 * (lbAvail_co - prAvail_rnd) / (b - prAvail_rnd)

White cells (positive) mean Combo *guarantees* more availability than
Random probably achieves; dark cells (negative) mean Random probably wins.
Fig. 9a is n = 71 (k in [s, 7]); Fig. 9b is n = 257 (k in [s, 8]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.common import (
    PAPER_B_LADDER,
    adversary_effort,
    attack_workers,
    kernel_backend,
    percent,
)
from repro.core.batch import AttackCell, batch_attack
from repro.core.combo import ComboStrategy
from repro.core.rand_analysis import pr_avail_rnd
from repro.designs.catalog import Existence
from repro.util.rng import spawn_seeds
from repro.util.tables import TextTable, format_grid


@dataclass(frozen=True)
class Fig9Cell:
    b: int
    k: int
    lb_combo: int
    pr_avail: int

    @property
    def improvement_percent(self) -> float:
        """(lb - pr) / (b - pr) as a percentage; nan when Random is perfect."""
        return percent(self.lb_combo - self.pr_avail, self.b - self.pr_avail)

    @property
    def winner(self) -> str:
        if self.lb_combo > self.pr_avail:
            return "combo"
        if self.lb_combo < self.pr_avail:
            return "random"
        return "tie"


@dataclass(frozen=True)
class Fig9Table:
    n: int
    r: int
    s: int
    b_values: Tuple[int, ...]
    k_values: Tuple[int, ...]
    cells: Dict[Tuple[int, int], Fig9Cell]  # (b, k) -> cell

    def grid_percent(self) -> List[List[float]]:
        return [
            [self.cells[(b, k)].improvement_percent for k in self.k_values]
            for b in self.b_values
        ]

    def render(self) -> str:
        values = [
            [f"{cell:.0f}" if cell == cell else "-" for cell in row]
            for row in self.grid_percent()
        ]
        return format_grid(
            list(self.b_values),
            list(self.k_values),
            values,
            corner="b\\k",
            title=f"Fig 9 (n={self.n}): r={self.r}, s={self.s} — improvement %",
        )


@dataclass(frozen=True)
class Fig9Result:
    n: int
    tables: Tuple[Fig9Table, ...]

    def table_for(self, r: int, s: int) -> Optional[Fig9Table]:
        for table in self.tables:
            if table.r == r and table.s == s:
                return table
        return None

    def render(self) -> str:
        return "\n\n".join(table.render() for table in self.tables)


@dataclass(frozen=True)
class Fig9EmpiricalCell:
    b: int
    k_plan: int
    k_attack: int
    lower_bound: int
    measured: int  # upper bound on Avail under heuristic effort
    pr_avail: int
    exact: bool


@dataclass(frozen=True)
class Fig9Empirical:
    """Measured availability of materialized Combo placements.

    Validates the analytic table: on the diagonal (attacked at the k it
    was planned for) a placement's measured availability must sit at or
    above ``lbAvail_co`` — with a heuristic adversary the measurement is
    an upper bound on the true worst case, so the comparison is sound at
    any effort level. Off-diagonal cells show robustness to mis-planned k.
    """

    n: int
    r: int
    s: int
    cells: Tuple[Fig9EmpiricalCell, ...]

    def diagonal(self) -> Tuple[Fig9EmpiricalCell, ...]:
        return tuple(c for c in self.cells if c.k_plan == c.k_attack)

    def violations(self) -> Tuple[Fig9EmpiricalCell, ...]:
        """Diagonal cells where measurement undercuts the guarantee (= bugs)."""
        return tuple(c for c in self.diagonal() if c.measured < c.lower_bound)

    def render(self) -> str:
        table = TextTable(
            ["b", "k_plan", "k_attack", "lbAvail_co", "measured", "prAvail",
             "certified"],
            title=(
                f"Fig 9 empirical check (n={self.n}, r={self.r}, s={self.s}):"
                " Combo guarantee vs batched worst-case attack"
            ),
        )
        for cell in self.cells:
            table.add_row(
                [
                    cell.b,
                    cell.k_plan,
                    cell.k_attack,
                    cell.lower_bound,
                    cell.measured,
                    cell.pr_avail,
                    "yes" if cell.exact else "upper-bd",
                ]
            )
        return table.render()


def generate_empirical(
    n: int,
    r: int,
    s: int,
    k_values: Tuple[int, ...],
    b_values: Tuple[int, ...] = (600,),
    tier: Existence = Existence.KNOWN,
    effort: str = "",
    seed: int = 2015,
) -> Fig9Empirical:
    """Materialize Combo placements and attack them through the batch engine.

    For each planned ``k`` the placement is attacked at *every* k in
    ``k_values`` in one batched pass (one warm engine per placement,
    chained incumbents, memoized repeats); the diagonal validates Fig. 9's
    lower bounds, the rest measures sensitivity to planning for the wrong
    failure count. Combo plans for different ``k_plan`` frequently yield
    structurally identical placements, in which case the engine cache
    collapses their attack work entirely.
    """
    effort = effort or adversary_effort()
    strategy = ComboStrategy(n, r, s, tier=tier)
    cells: List[Fig9EmpiricalCell] = []
    for b in b_values:
        for k_plan in k_values:
            plan = strategy.plan(b, k_plan)
            placement = strategy.place(b, k_plan, plan=plan)
            grid = [AttackCell(k, s, effort) for k in k_values]
            [cell_seed] = spawn_seeds(seed, 1, "fig9-empirical", b, k_plan)
            attacks = batch_attack(
                placement,
                grid,
                backend=kernel_backend(),
                workers=attack_workers(),
                seed=cell_seed,
            )
            for cell, attack in zip(grid, attacks):
                cells.append(
                    Fig9EmpiricalCell(
                        b=b,
                        k_plan=k_plan,
                        k_attack=cell.k,
                        lower_bound=plan.lower_bound,
                        measured=b - attack.damage,
                        pr_avail=pr_avail_rnd(n, cell.k, r, s, b),
                        exact=attack.exact,
                    )
                )
    return Fig9Empirical(n=n, r=r, s=s, cells=tuple(cells))


def generate(
    n: int,
    k_max: int,
    r_values: Tuple[int, ...] = (2, 3, 4, 5),
    b_values: Tuple[int, ...] = tuple(PAPER_B_LADDER),
    tier: Existence = Existence.KNOWN,
) -> Fig9Result:
    """Fig. 9a: generate(71, 7). Fig. 9b: generate(257, 8)."""
    tables: List[Fig9Table] = []
    for r in r_values:
        for s in range(2, r + 1):
            strategy = ComboStrategy(n, r, s, tier=tier)
            k_values = tuple(range(s, k_max + 1))
            cells: Dict[Tuple[int, int], Fig9Cell] = {}
            for b in b_values:
                for k in k_values:
                    lb = strategy.plan(b, k).lower_bound
                    pr = pr_avail_rnd(n, k, r, s, b)
                    cells[(b, k)] = Fig9Cell(b=b, k=k, lb_combo=lb, pr_avail=pr)
            tables.append(
                Fig9Table(
                    n=n,
                    r=r,
                    s=s,
                    b_values=b_values,
                    k_values=k_values,
                    cells=cells,
                )
            )
    return Fig9Result(n=n, tables=tuple(tables))
