"""Fig. 9: the paper's headline tables — Combo vs Random.

Every cell compares the Combo DP's availability lower bound against
Random's probable availability, normalized by the most Random could be
improved upon:

    cell = 100 * (lbAvail_co - prAvail_rnd) / (b - prAvail_rnd)

White cells (positive) mean Combo *guarantees* more availability than
Random probably achieves; dark cells (negative) mean Random probably wins.
Fig. 9a is n = 71 (k in [s, 7]); Fig. 9b is n = 257 (k in [s, 8]).

The analytic tables run as the ``fig9`` experiment kernel (one shard per
(r, s) table, sharing its ComboStrategy); ``fig9a``/``fig9b`` in the
figure catalog are just two default specs over it. The empirical
validation sweep (:func:`generate_empirical`) stays a direct batch-engine
consumer — it is a contract check, not a paper figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.common import (
    PAPER_B_LADDER,
    adversary_effort,
    attack_workers,
    kernel_backend,
    percent,
)
from repro.core.batch import AttackCell, batch_attack
from repro.core.combo import ComboStrategy
from repro.core.rand_analysis import pr_avail_rnd
from repro.designs.catalog import Existence
from repro.exp.registry import ExperimentKernel
from repro.exp.runner import run_figure
from repro.exp.spec import ExperimentSpec
from repro.util.rng import spawn_seeds
from repro.util.tables import TextTable, format_grid


@dataclass(frozen=True)
class Fig9Cell:
    b: int
    k: int
    lb_combo: int
    pr_avail: int

    @property
    def improvement_percent(self) -> float:
        """(lb - pr) / (b - pr) as a percentage; nan when Random is perfect."""
        return percent(self.lb_combo - self.pr_avail, self.b - self.pr_avail)

    @property
    def winner(self) -> str:
        if self.lb_combo > self.pr_avail:
            return "combo"
        if self.lb_combo < self.pr_avail:
            return "random"
        return "tie"


@dataclass(frozen=True)
class Fig9Table:
    n: int
    r: int
    s: int
    b_values: Tuple[int, ...]
    k_values: Tuple[int, ...]
    cells: Dict[Tuple[int, int], Fig9Cell]  # (b, k) -> cell

    def grid_percent(self) -> List[List[float]]:
        return [
            [self.cells[(b, k)].improvement_percent for k in self.k_values]
            for b in self.b_values
        ]

    def render(self) -> str:
        values = [
            [f"{cell:.0f}" if cell == cell else "-" for cell in row]
            for row in self.grid_percent()
        ]
        return format_grid(
            list(self.b_values),
            list(self.k_values),
            values,
            corner="b\\k",
            title=f"Fig 9 (n={self.n}): r={self.r}, s={self.s} — improvement %",
        )


@dataclass(frozen=True)
class Fig9Result:
    n: int
    tables: Tuple[Fig9Table, ...]

    def table_for(self, r: int, s: int) -> Optional[Fig9Table]:
        for table in self.tables:
            if table.r == r and table.s == s:
                return table
        return None

    def render(self) -> str:
        return "\n\n".join(table.render() for table in self.tables)


@dataclass(frozen=True)
class Fig9EmpiricalCell:
    b: int
    k_plan: int
    k_attack: int
    lower_bound: int
    measured: int  # upper bound on Avail under heuristic effort
    pr_avail: int
    exact: bool


@dataclass(frozen=True)
class Fig9Empirical:
    """Measured availability of materialized Combo placements.

    Validates the analytic table: on the diagonal (attacked at the k it
    was planned for) a placement's measured availability must sit at or
    above ``lbAvail_co`` — with a heuristic adversary the measurement is
    an upper bound on the true worst case, so the comparison is sound at
    any effort level. Off-diagonal cells show robustness to mis-planned k.
    """

    n: int
    r: int
    s: int
    cells: Tuple[Fig9EmpiricalCell, ...]

    def diagonal(self) -> Tuple[Fig9EmpiricalCell, ...]:
        return tuple(c for c in self.cells if c.k_plan == c.k_attack)

    def violations(self) -> Tuple[Fig9EmpiricalCell, ...]:
        """Diagonal cells where measurement undercuts the guarantee (= bugs)."""
        return tuple(c for c in self.diagonal() if c.measured < c.lower_bound)

    def render(self) -> str:
        table = TextTable(
            ["b", "k_plan", "k_attack", "lbAvail_co", "measured", "prAvail",
             "certified"],
            title=(
                f"Fig 9 empirical check (n={self.n}, r={self.r}, s={self.s}):"
                " Combo guarantee vs batched worst-case attack"
            ),
        )
        for cell in self.cells:
            table.add_row(
                [
                    cell.b,
                    cell.k_plan,
                    cell.k_attack,
                    cell.lower_bound,
                    cell.measured,
                    cell.pr_avail,
                    "yes" if cell.exact else "upper-bd",
                ]
            )
        return table.render()


def generate_empirical(
    n: int,
    r: int,
    s: int,
    k_values: Tuple[int, ...],
    b_values: Tuple[int, ...] = (600,),
    tier: Existence = Existence.KNOWN,
    effort: str = "",
    seed: int = 2015,
) -> Fig9Empirical:
    """Materialize Combo placements and attack them through the batch engine.

    For each planned ``k`` the placement is attacked at *every* k in
    ``k_values`` in one batched pass (one warm engine per placement,
    chained incumbents, memoized repeats); the diagonal validates Fig. 9's
    lower bounds, the rest measures sensitivity to planning for the wrong
    failure count. Combo plans for different ``k_plan`` frequently yield
    structurally identical placements, in which case the engine cache
    collapses their attack work entirely.
    """
    effort = effort or adversary_effort()
    strategy = ComboStrategy(n, r, s, tier=tier)
    cells: List[Fig9EmpiricalCell] = []
    for b in b_values:
        for k_plan in k_values:
            plan = strategy.plan(b, k_plan)
            placement = strategy.place(b, k_plan, plan=plan)
            grid = [AttackCell(k, s, effort) for k in k_values]
            [cell_seed] = spawn_seeds(seed, 1, "fig9-empirical", b, k_plan)
            attacks = batch_attack(
                placement,
                grid,
                backend=kernel_backend(),
                workers=attack_workers(),
                seed=cell_seed,
            )
            for cell, attack in zip(grid, attacks):
                cells.append(
                    Fig9EmpiricalCell(
                        b=b,
                        k_plan=k_plan,
                        k_attack=cell.k,
                        lower_bound=plan.lower_bound,
                        measured=b - attack.damage,
                        pr_avail=pr_avail_rnd(n, cell.k, r, s, b),
                        exact=attack.exact,
                    )
                )
    return Fig9Empirical(n=n, r=r, s=s, cells=tuple(cells))


def default_spec(
    n: int,
    k_max: int,
    r_values: Tuple[int, ...] = (2, 3, 4, 5),
    b_values: Tuple[int, ...] = tuple(PAPER_B_LADDER),
    tier: Existence = Existence.KNOWN,
) -> ExperimentSpec:
    return ExperimentSpec.build(
        "fig9",
        axes={"b": b_values},
        constants={
            "n": n,
            "k_max": k_max,
            "r_values": list(r_values),
            "tier": tier.name,
        },
    )


def default_spec_a() -> ExperimentSpec:
    """Fig. 9a: n = 71, k up to 7."""
    return default_spec(71, 7)


def default_spec_b() -> ExperimentSpec:
    """Fig. 9b: n = 257, k up to 8."""
    return default_spec(257, 8)


def _expand(spec: ExperimentSpec) -> List[dict]:
    k_max = spec.constant("k_max")
    return [
        {"r": r, "s": s, "b": b, "k": k}
        for r in spec.constant("r_values")
        for s in range(2, r + 1)
        for b in spec.axis("b")
        for k in range(s, k_max + 1)
    ]


def _run_group(spec: ExperimentSpec, cells) -> List[dict]:
    n = spec.constant("n")
    r, s = cells[0]["r"], cells[0]["s"]
    strategy = ComboStrategy(n, r, s, tier=Existence[spec.constant("tier")])
    return [
        {
            "lb": strategy.plan(cell["b"], cell["k"]).lower_bound,
            "pr": pr_avail_rnd(n, cell["k"], r, s, cell["b"]),
        }
        for cell in cells
    ]


def _assemble(spec: ExperimentSpec, cells, metrics) -> Fig9Result:
    n = spec.constant("n")
    k_max = spec.constant("k_max")
    b_values = tuple(spec.axis("b"))
    grid: Dict[Tuple[int, int], Dict[Tuple[int, int], Fig9Cell]] = {}
    for cell, entry in zip(cells, metrics):
        grid.setdefault((cell["r"], cell["s"]), {})[(cell["b"], cell["k"])] = (
            Fig9Cell(
                b=cell["b"], k=cell["k"],
                lb_combo=entry["lb"], pr_avail=entry["pr"],
            )
        )
    tables: List[Fig9Table] = []
    for r in spec.constant("r_values"):
        for s in range(2, r + 1):
            tables.append(
                Fig9Table(
                    n=n,
                    r=r,
                    s=s,
                    b_values=b_values,
                    k_values=tuple(range(s, k_max + 1)),
                    cells=grid.get((r, s), {}),
                )
            )
    return Fig9Result(n=n, tables=tuple(tables))


KERNELS = {
    "fig9": ExperimentKernel(
        name="fig9",
        expand=_expand,
        group_key=lambda spec, cell: (cell["r"], cell["s"]),
        run_group=_run_group,
        assemble=_assemble,
        render=lambda result: result.render(),
    )
}


def generate(
    n: int,
    k_max: int,
    r_values: Tuple[int, ...] = (2, 3, 4, 5),
    b_values: Tuple[int, ...] = tuple(PAPER_B_LADDER),
    tier: Existence = Existence.KNOWN,
) -> Fig9Result:
    """Fig. 9a: generate(71, 7). Fig. 9b: generate(257, 8)."""
    return run_figure(
        default_spec(n, k_max, r_values=r_values, b_values=b_values, tier=tier)
    )
