"""Fig. 8: ``prAvail_rnd / b`` as a function of k, for s in 1..5.

The paper's takeaway: Random placements handle larger fatality thresholds
(s -> r) dramatically better, and the s = 1 case is hopeless (further
treated in Appendix A / Fig. 11). Setting: b = 38400, (n, r) in
{(71,3), (71,5), (257,3), (257,5)} (r >= s only), k in [max(1, s), 10].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.rand_analysis import pr_avail_fraction
from repro.exp.registry import ExperimentKernel
from repro.exp.runner import run_figure
from repro.exp.spec import ExperimentSpec
from repro.util.asciiplot import Series, line_plot
from repro.util.tables import TextTable


@dataclass(frozen=True)
class Fig8Series:
    n: int
    r: int
    s: int
    points: Tuple[Tuple[int, float], ...]  # (k, prAvail/b)


@dataclass(frozen=True)
class Fig8Result:
    b: int
    series: Tuple[Fig8Series, ...]

    def by_s(self) -> Dict[int, List[Fig8Series]]:
        grouped: Dict[int, List[Fig8Series]] = {}
        for entry in self.series:
            grouped.setdefault(entry.s, []).append(entry)
        return grouped

    def render(self) -> str:
        sections = []
        for s, entries in sorted(self.by_s().items()):
            k_values = [k for k, _ in entries[0].points]
            table = TextTable(
                ["k", *[f"n={e.n},r={e.r}" for e in entries]],
                title=f"Fig 8 (s={s}): prAvail_rnd / b for b={self.b}",
            )
            for i, k in enumerate(k_values):
                table.add_row([k, *[round(e.points[i][1], 5) for e in entries]])
            sections.append(table.render())
        return "\n\n".join(sections)

    def render_plot(self, s: int, width: int = 64, height: int = 14) -> str:
        """ASCII curves for one ``s`` panel (the shape of the paper's plot)."""
        entries = self.by_s().get(s)
        if not entries:
            raise ValueError(f"no series for s={s}")
        series = [
            Series.from_pairs(f"n={e.n},r={e.r}", list(e.points)) for e in entries
        ]
        return line_plot(
            series,
            width=width,
            height=height,
            title=f"Fig 8 (s={s}): prAvail/b vs k (b={self.b})",
            x_label="k",
        )


def default_spec(
    b: int = 38400,
    systems: Tuple[Tuple[int, int], ...] = ((71, 3), (71, 5), (257, 3), (257, 5)),
    s_values: Tuple[int, ...] = (1, 2, 3, 4, 5),
    k_max: int = 10,
) -> ExperimentSpec:
    return ExperimentSpec.build(
        "fig8",
        axes={"s": s_values},
        constants={
            "b": b,
            "systems": [[n, r] for n, r in systems],
            "k_max": k_max,
        },
    )


def _expand(spec: ExperimentSpec) -> List[dict]:
    k_max = spec.constant("k_max")
    return [
        {"s": s, "n": n, "r": r, "k": k}
        for s in spec.axis("s")
        for n, r in spec.constant("systems")
        if s <= r
        for k in range(max(1, s), k_max + 1)
    ]


def _run_group(spec: ExperimentSpec, cells) -> List[dict]:
    b = spec.constant("b")
    return [
        {
            "fraction": pr_avail_fraction(
                cell["n"], cell["k"], cell["r"], cell["s"], b
            )
        }
        for cell in cells
    ]


def _assemble(spec: ExperimentSpec, cells, metrics) -> Fig8Result:
    curves: Dict[Tuple[int, int, int], List[Tuple[int, float]]] = {}
    order: List[Tuple[int, int, int]] = []
    for cell, entry in zip(cells, metrics):
        key = (cell["s"], cell["n"], cell["r"])
        if key not in curves:
            curves[key] = []
            order.append(key)
        curves[key].append((cell["k"], entry["fraction"]))
    return Fig8Result(
        b=spec.constant("b"),
        series=tuple(
            Fig8Series(n=n, r=r, s=s, points=tuple(curves[(s, n, r)]))
            for s, n, r in order
        ),
    )


KERNELS = {
    "fig8": ExperimentKernel(
        name="fig8",
        expand=_expand,
        group_key=lambda spec, cell: (cell["s"], cell["n"], cell["r"]),
        run_group=_run_group,
        assemble=_assemble,
        render=lambda result: result.render(),
    )
}


def generate(
    b: int = 38400,
    systems: Tuple[Tuple[int, int], ...] = ((71, 3), (71, 5), (257, 3), (257, 5)),
    s_values: Tuple[int, ...] = (1, 2, 3, 4, 5),
    k_max: int = 10,
) -> Fig8Result:
    """Compatibility wrapper: run the Fig. 8 spec through the exp engine."""
    return run_figure(
        default_spec(b=b, systems=systems, s_values=s_values, k_max=k_max)
    )
