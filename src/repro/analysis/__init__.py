"""Figure/table generators: one module per experiment in the paper.

Each ``figN.generate(...)`` returns a structured result with a ``render()``
text view; the ``benchmarks/`` suite times the generators and tees their
renders into ``bench_output.txt`` for side-by-side comparison with the
paper (see EXPERIMENTS.md for the recorded comparison).
"""

from repro.analysis import (
    appendix_a,
    common,
    fig2,
    fig3,
    fig4,
    fig5,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
)

__all__ = [
    "appendix_a",
    "common",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
]
