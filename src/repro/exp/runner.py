"""Sharded experiment runner: expand, group, fan out, stream in order.

Execution model:

* the kernel expands the spec into an ordered cell list and labels each
  cell with a **group key**. Cells sharing a key form one *shard* — they
  ride one warm :class:`~repro.core.batch.AttackEngine` (placement
  construction, incidence, per-threshold kernels) and one warm-start
  incumbent chain, exactly as the hand-written figure loops did. The
  expansion must keep groups contiguous; the runner enforces this, which
  is what lets the store hold a plain in-order prefix;
* each shard is computed **serially inside one process** — all
  parallelism is *across* shards (``workers`` processes via fork, as in
  :mod:`repro.core.batch`). Because a shard's randomness derives from
  the spec alone, results are bit-identical for every worker count,
  including 1. This is deliberately stronger than the pre-refactor
  figure loops, whose intra-grid chunking could drift under
  ``REPRO_WORKERS >= 2``;
* sharded fan-out has two modes (``REPRO_SHARD_MODE``): the default
  ``pool`` keeps one persistent supervised worker per slot and routes
  shards by the kernel's *affinity* key, so a worker's process-local
  engine cache serves every shard attacking the same placement instead
  of being rebuilt fork after fork; ``fork`` is the
  fresh-process-per-attempt fan-out. Both are supervised identically
  (watchdog, bounded retries, degradation ladder) and both are
  bit-identical to the serial run;
* shards are scheduled longest-first (``group_cost`` hint) but
  **committed in expansion order**: a shard that finishes early parks in
  memory until every earlier shard has been flushed. The store therefore
  only ever holds an exact prefix of the run, so an interrupted sweep
  resumes by recomputing just the shards past (or straddling) the
  prefix, and the final ``cells.jsonl`` is byte-identical to an
  uninterrupted run's;
* metrics are normalized through a JSON round-trip at the shard
  boundary, so freshly computed, worker-returned, and store-loaded
  results are indistinguishable — assembly cannot tell how a cell was
  obtained.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro import faults, obs
from repro.core.batch import worker_count
from repro.exp import registry
from repro.exp.spec import ExperimentSpec
from repro.exp.store import RunState, RunStore
from repro.util.rng import derive_rng


class ExperimentError(ValueError):
    """Raised on kernel-contract violations (non-contiguous groups, ...)."""


#: Decorrelated-jitter backoff bounds for shard retries (seconds). The
#: schedule is seeded from (spec hash, shard start, attempt), so retry
#: timing is reproducible run to run.
_BACKOFF_BASE = 0.05
_BACKOFF_CAP = 2.0

#: How long a worker that went dead-silent (no result, not alive) gets to
#: drain an already-posted result before being declared crashed.
_REAP_GRACE = 0.5


def _env_shard_retries() -> int:
    raw = os.environ.get("REPRO_SHARD_RETRIES")
    if raw is None or raw == "":
        return 2
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"REPRO_SHARD_RETRIES must be an int, got {raw!r}") from None
    if value < 0:
        raise ValueError(f"REPRO_SHARD_RETRIES must be >= 0, got {value}")
    return value


def _env_shard_timeout() -> Optional[float]:
    raw = os.environ.get("REPRO_SHARD_TIMEOUT")
    if raw is None or raw == "":
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_SHARD_TIMEOUT must be a float (seconds), got {raw!r}"
        ) from None
    if value <= 0:
        raise ValueError(f"REPRO_SHARD_TIMEOUT must be > 0, got {value}")
    return value


def _env_shard_mode() -> str:
    """``REPRO_SHARD_MODE``: ``pool`` (persistent workers) or ``fork``."""
    raw = os.environ.get("REPRO_SHARD_MODE")
    if raw is None or raw == "":
        return "pool"
    if raw not in ("pool", "fork"):
        raise ValueError(
            f"REPRO_SHARD_MODE must be 'pool' or 'fork', got {raw!r}"
        )
    return raw


def _backoff_delay(spec_hash: str, start: int, attempt: int, previous: float) -> float:
    """One decorrelated-jitter step: min(cap, U(base, 3 * previous))."""
    rng = derive_rng(0, "shard-backoff", spec_hash, start, attempt)
    return min(_BACKOFF_CAP, rng.uniform(_BACKOFF_BASE, max(_BACKOFF_BASE, previous) * 3))


def _demote_after_watchdog(reason: str) -> Optional[Dict[str, str]]:
    """Degradation ladder: step the auto gain backing down one rung.

    Only an *auto* selection is demoted — an explicitly pinned backing
    never silently measures the wrong thing. Workers fork from the
    supervisor after the demotion, so re-dispatched shards inherit it;
    backings are bit-identical by contract, so results are unchanged.
    """
    from repro.core import kernels

    pinned = os.environ.get("REPRO_GAIN_BACKING", "auto") or "auto"
    if pinned != "auto":
        return None
    try:
        backing = kernels.resolve_gain_backing("auto")
    except ValueError:
        return None
    if backing == kernels.GAIN_BACKINGS[-1]:
        return None  # already on the last rung
    kernels.demote_backing(backing, reason)
    return {"backing": backing, "reason": reason}


@dataclass(frozen=True)
class _Group:
    """One contiguous shard: expansion slice [start, end) sharing a key."""

    key: Any
    start: int
    end: int

    @property
    def size(self) -> int:
        return self.end - self.start


@dataclass
class RunResult:
    """Everything one :func:`run_experiment` call produced.

    ``metrics`` aligns with ``cells``; entries are ``None`` only when a
    ``limit`` stopped the run early. ``loaded`` cells were served from the
    run store, ``computed`` were executed now, and ``recomputed`` counts
    the stored cells that had to be re-executed (and are included in
    ``computed``) because their shard straddled the stored prefix —
    always 0 when the interruption fell on a shard boundary, e.g. any
    ``limit``-bounded run.
    """

    spec: ExperimentSpec
    cells: List[Dict[str, Any]]
    metrics: List[Optional[Dict[str, Any]]]
    loaded: int = 0
    computed: int = 0
    recomputed: int = 0
    groups: int = 0
    elapsed: float = 0.0
    store_path: Optional[str] = None
    retries: int = 0
    demotions: List[Dict[str, str]] = field(default_factory=list)
    #: Deterministic metrics delta of this invocation (None when metrics
    #: are off); the same dict the store manifest records under "obs".
    obs: Optional[Dict[str, Any]] = None

    @property
    def complete(self) -> bool:
        return all(entry is not None for entry in self.metrics)

    def result(self) -> Any:
        """Assemble the figure's result object (requires a complete run)."""
        if not self.complete:
            missing = sum(1 for entry in self.metrics if entry is None)
            raise ExperimentError(
                f"run of {self.spec.experiment!r} is incomplete "
                f"({missing} of {len(self.cells)} cells missing); resume it "
                "to assemble a result"
            )
        kernel = registry.kernel(self.spec.experiment)
        return kernel.assemble(self.spec, self.cells, self.metrics)

    def render(self) -> str:
        kernel = registry.kernel(self.spec.experiment)
        return kernel.render(self.result())

    def summary(self) -> str:
        state = "complete" if self.complete else "partial"
        text = (
            f"{self.spec.experiment} [{self.spec.spec_hash()[:12]}] "
            f"{state}: {len(self.cells)} cells "
            f"({self.loaded} loaded, {self.computed} computed, "
            f"{self.recomputed} recomputed) across {self.groups} shards "
            f"in {self.elapsed:.2f}s"
        )
        if self.retries:
            text += f" [{self.retries} shard retries]"
        if self.demotions:
            demoted = ",".join(entry["backing"] for entry in self.demotions)
            text += f" [demoted: {demoted}]"
        return text

    def faults_record(self) -> Dict[str, Any]:
        """Manifest-ready fault metadata; empty dict for a fault-free run."""
        record: Dict[str, Any] = {}
        if self.retries:
            record["shard_retries"] = self.retries
        if self.demotions:
            record["demotions"] = [dict(entry) for entry in self.demotions]
        return record


def _normalize(metrics: Any) -> Dict[str, Any]:
    """JSON round-trip so in-memory metrics match store-loaded metrics."""
    if not isinstance(metrics, dict):
        raise ExperimentError(
            f"kernels must return one metrics dict per cell, got "
            f"{type(metrics).__name__}"
        )
    return json.loads(json.dumps(metrics))


def _contiguous_groups(
    spec: ExperimentSpec,
    kernel: registry.ExperimentKernel,
    cells: Sequence[Dict[str, Any]],
) -> List[_Group]:
    groups: List[_Group] = []
    seen = set()
    for index, cell in enumerate(cells):
        key = kernel.group_key(spec, cell)
        if groups and groups[-1].key == key:
            groups[-1] = _Group(key, groups[-1].start, index + 1)
            continue
        if key in seen:
            raise ExperimentError(
                f"kernel {kernel.name!r} expansion interleaves group "
                f"{key!r}; groups must be contiguous in expansion order"
            )
        seen.add(key)
        groups.append(_Group(key, index, index + 1))
    return groups


def _group_cost(
    spec: ExperimentSpec,
    kernel: registry.ExperimentKernel,
    group: _Group,
    cells: Sequence[Dict[str, Any]],
) -> float:
    if kernel.group_cost is None:
        return float(group.size)
    return float(
        kernel.group_cost(spec, group.key, cells[group.start:group.end])
    )


def _run_group_task(payload: Tuple[str, int, List[Dict[str, Any]]]):
    """Plain (unsupervised) worker entry: compute one shard.

    Kept as the benchmark baseline for the supervisor's overhead gate
    (``benchmarks/bench_chaos.py``) — production runs go through
    :func:`_shard_worker` under the supervisor.
    """
    spec_json, ordinal, cells = payload
    spec = ExperimentSpec.from_dict(json.loads(spec_json))
    kernel = registry.kernel(spec.experiment)
    return ordinal, kernel.run_group(spec, cells)


def _shard_worker(
    spec_json: str,
    ordinal: int,
    start: int,
    attempt: int,
    cells: List[Dict[str, Any]],
    thread_budget: int,
    lane_budget: Optional[int],
    queue: Any,
) -> None:
    """Supervised worker entry: compute one shard, post one message.

    Every outcome becomes a ``(ordinal, attempt, status, payload)``
    message; an ``ok`` payload is ``(chunk, metrics_delta)`` — the shard's
    results plus everything it recorded in the metrics registry since
    task start, which the supervisor merges so counter totals stay exact
    for any worker count and invariant under retried-then-successful
    shards (failed attempts never post ``ok``, so their recordings are
    discarded with the process). A worker that dies without posting
    (crash, SIGKILL, hang killed by the watchdog) is detected by the
    supervisor's liveness sweep instead.

    After the message is safely on the wire the worker leaves via
    ``os._exit`` instead of a normal interpreter exit: a fresh process
    is forked per shard attempt, so skipping teardown (GC of the
    inherited heap, atexit handlers) trims the per-shard fixed cost the
    supervisor pays over a reusing worker pool.
    """
    from repro.core import adversary, native

    try:
        native.configure_threads(thread_budget)
        if lane_budget is not None:
            adversary.configure_lanes(lane_budget)
        spec = ExperimentSpec.from_dict(json.loads(spec_json))
        kernel = registry.kernel(spec.experiment)
        # Forked workers inherit the parent's counter values, so the
        # shard reports the delta between here and completion.
        mark = obs.checkpoint()
        faults.inject(
            "runner.shard_start", start=start, ordinal=ordinal,
            attempt=attempt, mode="shard",
        )
    except BaseException as exc:  # noqa: BLE001 - reported, then retried
        _post_and_exit(queue, (ordinal, attempt, "error",
                               f"{type(exc).__name__}: {exc}"))
    try:
        with obs.span(
            "runner.shard", start=start, ordinal=ordinal,
            attempt=attempt, mode="shard",
        ):
            chunk = list(kernel.run_group(spec, cells))
        payload = (chunk, obs.delta_since(mark))
    except BaseException as exc:  # noqa: BLE001 - reported, then retried
        _post_and_exit(queue, (ordinal, attempt, "error",
                               f"{type(exc).__name__}: {exc}"))
    _post_and_exit(queue, (ordinal, attempt, "ok", payload))


def _post_and_exit(queue: Any, message: Any) -> None:
    """Post one message, drain the queue's feeder thread, exit hard.

    ``queue.put`` only hands the pickle to a feeder thread;
    ``close`` + ``join_thread`` block until the bytes are in the pipe,
    which makes the ``os._exit`` safe — the supervisor either sees the
    whole message or (exit code 70) a dead worker to re-dispatch.
    """
    try:
        queue.put(message)
        queue.close()
        queue.join_thread()
    except BaseException:  # noqa: BLE001 - dead pipe: let liveness sweep act
        os._exit(70)
    os._exit(0)


def run_experiment(
    spec: ExperimentSpec,
    workers: Optional[int] = None,
    store: Optional[Union[RunStore, str]] = None,
    resume: bool = False,
    limit: Optional[int] = None,
    threads: Optional[int] = None,
    lanes: Optional[int] = None,
    shard_timeout: Optional[float] = None,
    shard_retries: Optional[int] = None,
    engine_state: Optional[str] = None,
) -> RunResult:
    """Run one spec: expand, serve the stored prefix, compute the rest.

    ``workers`` defaults to ``REPRO_WORKERS`` (serial when unset); results
    are identical for every value. ``store`` (a :class:`RunStore` or a
    root path) makes the run resumable and re-renderable without
    recomputation. ``limit`` caps the number of *newly computed* cells —
    the run stops at the first shard boundary at or past the cap, leaving
    a clean resumable prefix (used by budgeted sweeps, the CI smoke job,
    and the resume benchmarks).

    ``threads`` pins the native kernel's thread budget for this run
    (default: ``REPRO_NATIVE_THREADS`` / cpu count). Sharded runs divide
    the budget across worker processes, so ``workers x threads`` never
    oversubscribes the host; results are bit-identical at every
    (workers, threads) combination — the kernel's threaded paths merge
    deterministically.

    ``lanes`` pins the adversary's polish-chain lane count for this run
    (default: ``REPRO_ATTACK_LANES`` / the thread budget). Like the
    thread budget, an explicit lane budget divides across worker
    processes (``max(1, lanes // processes)``); the ``auto`` default
    follows each worker's split thread budget on its own. Lanes are a
    pure scheduling knob — results are bit-identical at every lane
    count.

    Sharded runs are *supervised*: shards run on a persistent
    affinity-routed worker pool (``REPRO_SHARD_MODE=fork`` restores the
    fork-per-attempt fan-out) with a wall-clock watchdog
    (``shard_timeout`` / ``REPRO_SHARD_TIMEOUT``; off by default) and up
    to ``shard_retries`` re-dispatches (``REPRO_SHARD_RETRIES``, default
    2) under seeded decorrelated-jitter backoff. A re-dispatched shard replays its whole
    incumbent chain from the spec, so retried results are bit-identical
    to fault-free ones; repeated watchdog faults demote the auto gain
    backing one ladder rung (recorded in the run metadata).

    ``engine_state`` points the run at a directory of engine-state
    snapshots (:func:`repro.core.batch.configure_engine_state_dir`):
    workers hydrate cache-missed engines from
    ``<dir>/<fingerprint>.npz`` and persist their cold builds there, so
    repeated runs over one placement lineage skip the engine build.
    Purely a performance lever — results are bit-identical with or
    without it.
    """
    from repro.core import adversary, batch, kernels, native

    started = time.perf_counter()
    run_mark = obs.checkpoint()
    kernel = registry.kernel(spec.experiment)
    if workers is None:
        workers = worker_count(1)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if limit is not None and limit < 0:
        raise ValueError(f"limit must be >= 0, got {limit}")
    if threads is not None and threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    if lanes is not None and lanes < 1:
        raise ValueError(f"lanes must be >= 1, got {lanes}")
    if shard_retries is None:
        shard_retries = _env_shard_retries()
    if shard_retries < 0:
        raise ValueError(f"shard_retries must be >= 0, got {shard_retries}")
    if shard_timeout is None:
        shard_timeout = _env_shard_timeout()
    if shard_timeout is not None and shard_timeout <= 0:
        raise ValueError(f"shard_timeout must be > 0, got {shard_timeout}")
    demoted_before = set(kernels.demoted_backings())

    cells = [dict(cell) for cell in kernel.expand(spec)]
    groups = _contiguous_groups(spec, kernel, cells)
    metrics: List[Optional[Dict[str, Any]]] = [None] * len(cells)

    if isinstance(store, str):
        store = RunStore(store)
    state: Optional[RunState] = None
    previous_state_dir = batch.engine_state_dir()
    if engine_state is not None:
        # Configured before any worker forks, so shard workers inherit
        # the warm path; restored afterwards so one run's sidecar never
        # leaks into the next caller's process state.
        batch.configure_engine_state_dir(engine_state)
    try:
        prefix = 0
        if store is not None:
            # Inside the try: open_run takes the run lock, and a corrupt
            # store raising out of load_prefix must still release it.
            state = store.open_run(spec, resume=resume)
            stored = state.load_prefix(cells)
            prefix = len(stored)
            metrics[:prefix] = stored

        pending = [group for group in groups if group.end > prefix]
        if limit is not None:
            budget, kept = limit, []
            for group in pending:
                if budget <= 0:
                    break
                kept.append(group)
                budget -= group.end - max(group.start, prefix)
            pending = kept
        recomputed = sum(max(0, prefix - group.start) for group in pending)
        if prefix - recomputed:
            obs.count("store.cells_loaded", prefix - recomputed)
        if recomputed:
            obs.count("store.cells_recomputed", recomputed)

        def flush(group: _Group, chunk: Sequence[Any]) -> None:
            if len(chunk) != group.size:
                raise ExperimentError(
                    f"kernel {kernel.name!r} returned {len(chunk)} metric "
                    f"dicts for a {group.size}-cell shard"
                )
            for offset, entry in enumerate(chunk):
                metrics[group.start + offset] = _normalize(entry)
            if state is not None:
                for index in range(max(group.start, prefix), group.end):
                    state.append(cells[index], metrics[index], index=index)
                state.flush()

        if workers > 1 and len(pending) > 1:
            _run_sharded(
                spec, kernel, cells, pending, workers, flush, threads,
                shard_timeout, shard_retries, lanes=lanes,
            )
        else:
            # Serial run with pinned budgets: configure, compute,
            # restore the caller's settings.
            previous_threads = native.configured_threads()
            previous_lanes = adversary.configured_lanes()
            if threads is not None:
                native.configure_threads(threads)
            if lanes is not None:
                adversary.configure_lanes(lanes)
            try:
                for group in pending:
                    chunk, _attempts = _run_group_serial(
                        spec, kernel, group, cells, shard_retries
                    )
                    flush(group, chunk)
            finally:
                if threads is not None:
                    native.configure_threads(previous_threads)
                if lanes is not None:
                    adversary.configure_lanes(previous_lanes)
        computed = sum(
            group.end - max(group.start, prefix) for group in pending
        ) + recomputed
        # The metrics registry is the single source of truth for retry
        # accounting: every retry site (supervisor fail(), serial replay)
        # records runner.shard_retries, and both RunResult.summary and
        # the manifest "faults" record read this one counter delta.
        retries = obs.delta_value("runner.shard_retries", run_mark)
        demotions = [
            {"backing": backing, "reason": reason}
            for backing, reason in kernels.demoted_backings().items()
            if backing not in demoted_before
        ]
        faults_record: Dict[str, Any] = {}
        if retries:
            faults_record["shard_retries"] = retries
        if demotions:
            faults_record["demotions"] = [dict(entry) for entry in demotions]
        obs_record: Optional[Dict[str, Any]] = None
        if obs.metrics_enabled():
            det = obs.deterministic_delta(run_mark)
            if det["counters"] or det["histograms"]:
                obs_record = det
        complete = all(entry is not None for entry in metrics)
        if state is not None and complete and not state.complete:
            state.finalize(len(cells), faults_record or None, obs_record)
    finally:
        if engine_state is not None:
            batch.configure_engine_state_dir(previous_state_dir)
        if state is not None:
            state.close()

    return RunResult(
        spec=spec,
        cells=cells,
        metrics=metrics,
        loaded=prefix - recomputed,
        computed=computed,
        recomputed=recomputed,
        groups=len(groups),
        elapsed=time.perf_counter() - started,
        store_path=state.path if state is not None else None,
        retries=retries,
        demotions=demotions,
        obs=obs_record,
    )


def _run_group_serial(
    spec, kernel, group, cells, shard_retries
) -> Tuple[Sequence[Any], int]:
    """One shard in-process, retrying injected transient faults.

    Only :class:`~repro.faults.InjectedFault` is retried — a genuine
    kernel exception propagates unchanged, exactly as before the chaos
    harness existed. Returns ``(chunk, retries_used)``.
    """
    spec_hash = spec.spec_hash()
    delay = _BACKOFF_BASE
    for attempt in range(shard_retries + 1):
        mark = obs.checkpoint()
        try:
            faults.inject(
                "runner.shard_start",
                start=group.start,
                ordinal=-1,
                attempt=attempt,
                mode="serial",
            )
            with obs.span(
                "runner.shard", start=group.start, end=group.end,
                attempt=attempt, mode="serial",
            ):
                chunk = kernel.run_group(spec, cells[group.start:group.end])
            return chunk, attempt
        except faults.InjectedFault as exc:
            # Discard the failed attempt's gated recordings — the retry
            # re-records the work — while always-counters (the retry
            # itself, fault fires) keep counting.
            obs.rollback(mark)
            if attempt >= shard_retries:
                raise ExperimentError(
                    f"shard at cells[{group.start}:{group.end}] of "
                    f"{spec.experiment!r} failed after {attempt + 1} "
                    f"attempts: {exc}"
                ) from exc
            obs.count("runner.shard_retries")
            obs.record_event(
                "runner.shard_retry", start=group.start,
                attempt=attempt + 1, reason=str(exc), watchdog=False,
            )
            delay = _backoff_delay(spec_hash, group.start, attempt + 1, delay)
            time.sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover


class _Slot:
    """Supervision state for one in-flight shard attempt."""

    __slots__ = ("proc", "attempt", "deadline", "reap_at")

    def __init__(self, proc, attempt, deadline):
        self.proc = proc
        self.attempt = attempt
        self.deadline = deadline
        self.reap_at = None  # set when found dead without a result


def _run_sharded(
    spec, kernel, cells, pending, workers, flush, threads=None,
    shard_timeout=None, shard_retries=2, mode=None, lanes=None,
) -> int:
    """Supervised shard fan-out; commit in expansion order. Returns retries.

    Dispatches on ``mode`` (default: ``REPRO_SHARD_MODE``, ``pool`` when
    unset): ``pool`` runs shards on a persistent affinity-routed worker
    pool (:func:`_run_sharded_pool`), ``fork`` forks one fresh process
    per shard attempt (:func:`_run_sharded_forked`). Results are
    bit-identical either way; only the process economics differ.
    """
    if mode is None:
        mode = _env_shard_mode()
    run = _run_sharded_forked if mode == "fork" else _run_sharded_pool
    return run(
        spec, kernel, cells, pending, workers, flush, threads,
        shard_timeout, shard_retries, lanes,
    )


def _run_sharded_forked(
    spec, kernel, cells, pending, workers, flush, threads=None,
    shard_timeout=None, shard_retries=2, lanes=None,
) -> int:
    """Fork-per-attempt shard fan-out; commit in expansion order.

    Each pending shard runs in its own forked worker process (fresh fork
    per attempt, so re-dispatches inherit supervisor-side state such as
    backing demotions). The supervisor loop dispatches up to ``workers``
    shards at once, longest-first, and watches for three failure shapes:

    * an ``error`` message — the worker caught an exception (injected or
      real) and reported it;
    * a watchdog timeout — the worker exceeded ``shard_timeout`` wall
      clock and is killed (hung kernel, injected hang);
    * a silent death — the process exited without posting a result
      (SIGKILL, ``os._exit``, segfault), detected by the liveness sweep
      after a short drain grace.

    Failed shards are re-dispatched up to ``shard_retries`` times under
    seeded decorrelated-jitter backoff; because a shard's randomness
    derives from the spec alone, a replayed shard recomputes the exact
    incumbent chain and the run stays bit-identical to a fault-free one.
    Repeated watchdog faults (timeout / silent death) on one shard demote
    the auto gain backing one ladder rung before the next dispatch.

    Each worker gets an equal slice of the kernel thread budget
    (``threads`` or the ambient ``REPRO_NATIVE_THREADS``/cpu default), so
    shard fan-out and in-kernel threading compose instead of
    oversubscribing.
    """
    import multiprocessing
    from queue import Empty

    from repro.core import native

    spec_json = json.dumps(spec.to_dict())
    spec_hash = spec.spec_hash()
    order = sorted(
        range(len(pending)),
        key=lambda i: (-_group_cost(spec, kernel, pending[i], cells), i),
    )
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if "fork" in methods else None)
    processes = min(workers, len(pending))
    budget = threads if threads is not None else native.thread_count()
    per_worker = max(1, budget // processes)
    lane_budget = max(1, lanes // processes) if lanes is not None else None

    queue = context.Queue()
    waiting: List[int] = list(order)
    blocked: List[Tuple[float, int]] = []  # (not-before, ordinal) backoffs
    slots: Dict[int, _Slot] = {}
    finished: Dict[int, Any] = {}
    attempts: Dict[int, int] = {}
    delays: Dict[int, float] = {}
    next_flush = 0
    retries = 0

    def launch(ordinal: int) -> None:
        group = pending[ordinal]
        attempt = attempts.get(ordinal, 0)
        proc = context.Process(
            target=_shard_worker,
            args=(
                spec_json, ordinal, group.start, attempt,
                cells[group.start:group.end], per_worker, lane_budget,
                queue,
            ),
            daemon=True,
        )
        proc.start()
        deadline = (
            time.monotonic() + shard_timeout if shard_timeout is not None else None
        )
        slots[ordinal] = _Slot(proc, attempt, deadline)

    def fail(ordinal: int, reason: str, watchdog: bool) -> None:
        nonlocal retries
        group = pending[ordinal]
        count = attempts.get(ordinal, 0) + 1
        attempts[ordinal] = count
        if count > shard_retries:
            raise ExperimentError(
                f"shard at cells[{group.start}:{group.end}] of "
                f"{spec.experiment!r} failed after {count} attempts: {reason}"
            )
        retries += 1
        obs.count("runner.shard_retries")
        obs.record_event(
            "runner.shard_retry", start=group.start, attempt=count,
            reason=reason, watchdog=watchdog,
        )
        if watchdog and count >= 2:
            _demote_after_watchdog(
                f"shard at cells[{group.start}:{group.end}]: {reason}"
            )
        delay = _backoff_delay(
            spec_hash, group.start, count, delays.get(ordinal, _BACKOFF_BASE)
        )
        delays[ordinal] = delay
        blocked.append((time.monotonic() + delay, ordinal))

    try:
        while next_flush < len(pending):
            now = time.monotonic()
            for entry in list(blocked):
                if entry[0] <= now:
                    blocked.remove(entry)
                    waiting.insert(0, entry[1])
            while waiting and len(slots) < processes:
                launch(waiting.pop(0))
            if not slots:
                # Everything in flight is backing off; sleep toward the
                # earliest retry instead of spinning.
                wake = min(entry[0] for entry in blocked)
                time.sleep(max(0.0, min(wake - time.monotonic(), _BACKOFF_CAP)))
                continue
            try:
                message = queue.get(timeout=0.05)
            except Empty:
                message = None
            if message is not None:
                ordinal, attempt, status, payload = message
                slot = slots.get(ordinal)
                if slot is not None and slot.attempt == attempt:
                    slot.proc.join()
                    del slots[ordinal]
                    if status == "ok":
                        chunk, delta = payload
                        # Merge only successful attempts' recordings:
                        # failed/killed attempts never post ok, so their
                        # half-done work never skews the totals.
                        obs.merge_delta(delta)
                        finished[ordinal] = chunk
                    else:
                        fail(ordinal, payload, watchdog=False)
                # else: stale message from a killed attempt — drop it.
            now = time.monotonic()
            for ordinal, slot in list(slots.items()):
                if slot.deadline is not None and now >= slot.deadline:
                    slot.proc.kill()
                    slot.proc.join()
                    del slots[ordinal]
                    fail(
                        ordinal,
                        f"exceeded the {shard_timeout:.1f}s shard watchdog",
                        watchdog=True,
                    )
                elif not slot.proc.is_alive():
                    if slot.reap_at is None:
                        slot.reap_at = now + _REAP_GRACE
                    elif now >= slot.reap_at:
                        code = slot.proc.exitcode
                        slot.proc.join()
                        del slots[ordinal]
                        fail(
                            ordinal,
                            f"worker died without a result (exit code {code})",
                            watchdog=True,
                        )
            while next_flush in finished:
                flush(pending[next_flush], finished.pop(next_flush))
                next_flush += 1
    finally:
        # Always reap every child — KeyboardInterrupt included — so an
        # interrupted run releases the store lock with no orphan workers.
        for slot in slots.values():
            if slot.proc.is_alive():
                slot.proc.terminate()
        for slot in slots.values():
            slot.proc.join(timeout=5)
            if slot.proc.is_alive():
                slot.proc.kill()
                slot.proc.join(timeout=5)
        queue.close()
        queue.cancel_join_thread()
    return retries


def _bind_to_supervisor() -> None:
    """Die with the supervisor instead of orphaning the pool worker.

    A torn-write fault (or plain SIGKILL) takes the supervisor out
    without unwinding the pool; a persistent worker blocked on its task
    queue would then outlive it holding inherited fds — the run-store
    lock and any pipes the caller captured — wedging every resume.
    ``PR_SET_PDEATHSIG`` delivers SIGTERM the instant the parent dies
    (Linux); elsewhere the worker's queue-timeout loop falls back to
    polling ``os.getppid``.
    """
    try:
        import ctypes

        libc = ctypes.CDLL(None, use_errno=True)
        libc.prctl(1, signal.SIGTERM)  # PR_SET_PDEATHSIG
    except (OSError, AttributeError, TypeError):  # pragma: no cover
        pass


def _pool_worker(
    spec_json: str,
    thread_budget: int,
    lane_budget: Optional[int],
    demotions: Sequence[Tuple[str, str]],
    task_queue: Any,
    result_queue: Any,
) -> None:
    """Persistent pool worker: loop shards off the slot queue until told.

    One boot (thread budget, inherited demotions, kernel resolution)
    amortizes over every shard the supervisor routes here, and the
    process-local engine cache (:mod:`repro.core.batch`, bounded by
    ``REPRO_ENGINE_CACHE``) survives between shards — that is the whole
    point of affinity routing. Each task posts one
    ``(ordinal, attempt, status, payload)`` message; a failed attempt
    rolls its gated recordings back (the retry re-records the work,
    wherever it runs) and the worker keeps serving, so one injected
    error never costs a warm cache. ``None`` is the shutdown sentinel;
    a crash or watchdog kill is detected by the supervisor's liveness
    sweep instead.
    """
    from queue import Empty

    from repro.core import adversary, kernels, native

    try:
        _bind_to_supervisor()
        native.configure_threads(thread_budget)
        if lane_budget is not None:
            adversary.configure_lanes(lane_budget)
        for backing, reason in demotions:
            try:
                kernels.demote_backing(backing, reason)
            except ValueError:
                pass
        spec = ExperimentSpec.from_dict(json.loads(spec_json))
        kernel = registry.kernel(spec.experiment)
    except BaseException:  # noqa: BLE001 - liveness sweep reports the death
        os._exit(70)
    parent = os.getppid()
    while True:
        try:
            task = task_queue.get(timeout=0.5)
        except Empty:
            if os.getppid() != parent:  # pragma: no cover - non-Linux path
                os._exit(0)  # orphaned: PDEATHSIG was unavailable
            continue
        if task is None:
            os._exit(0)
        ordinal, attempt, start, task_cells = task
        mark = obs.checkpoint()
        try:
            faults.inject(
                "runner.shard_start", start=start, ordinal=ordinal,
                attempt=attempt, mode="shard",
            )
            with obs.span(
                "runner.shard", start=start, ordinal=ordinal,
                attempt=attempt, mode="shard",
            ):
                chunk = list(kernel.run_group(spec, task_cells))
            message = (ordinal, attempt, "ok", (chunk, obs.delta_since(mark)))
        except BaseException as exc:  # noqa: BLE001 - reported, then retried
            obs.rollback(mark)
            message = (
                ordinal, attempt, "error", f"{type(exc).__name__}: {exc}"
            )
        try:
            result_queue.put(message)
        except BaseException:  # noqa: BLE001 - dead pipe: let the sweep act
            os._exit(70)


class _PoolSlot:
    """Supervision state for one persistent pool worker and its queue."""

    __slots__ = (
        "proc", "task_queue", "work", "current", "deadline", "reap_at",
        "epoch",
    )

    def __init__(self, work):
        self.proc = None
        self.task_queue = None
        self.work = list(work)  # ordinals, dispatch order; retries jump in
        self.current = None  # (ordinal, attempt) while a task is in flight
        self.deadline = None
        self.reap_at = None
        self.epoch = -1


def _affinity_plan(spec, kernel, cells, pending, slots) -> List[List[int]]:
    """Deterministic affinity-grouped LPT assignment of shards to slots.

    Shards sharing an affinity key (the group key when the kernel
    declares none) form one *class*; classes are placed whole, heaviest
    first, onto the least-loaded slot (ties: lowest slot), so every
    shard attacking one placement lands on one worker and hits its
    engine cache. Within a slot classes keep their placement order and
    each class runs its own shards longest-first — the fork scheduler's
    LPT instinct, applied per worker. The plan depends only on
    (spec, kernel, cells), never on timing, so the shard->worker map is
    reproducible run to run and crash to crash.
    """
    costs = [_group_cost(spec, kernel, group, cells) for group in pending]
    classes: Dict[Any, List[int]] = {}
    class_order: List[Any] = []
    for ordinal, group in enumerate(pending):
        if kernel.affinity is not None:
            key = kernel.affinity(
                spec, group.key, cells[group.start:group.end]
            )
        else:
            key = group.key
        if key not in classes:
            classes[key] = []
            class_order.append(key)
        classes[key].append(ordinal)
    ranked = sorted(
        class_order,
        key=lambda key: (
            -sum(costs[o] for o in classes[key]), classes[key][0],
        ),
    )
    buckets: List[List[int]] = [[] for _ in range(slots)]
    loads = [0.0] * slots
    for key in ranked:
        members = classes[key]
        slot = min(range(slots), key=lambda i: (loads[i], i))
        buckets[slot].extend(sorted(members, key=lambda o: (-costs[o], o)))
        loads[slot] += sum(costs[o] for o in members)
    return [bucket for bucket in buckets if bucket]


def _run_sharded_pool(
    spec, kernel, cells, pending, workers, flush, threads=None,
    shard_timeout=None, shard_retries=2, lanes=None,
) -> int:
    """Persistent-pool shard fan-out; commit in expansion order.

    One supervised worker process per slot lives for the whole run and
    computes every shard routed to it, so the per-shard fixed cost
    drops from fork + engine rebuild to a queue hop — and because
    :func:`_affinity_plan` groups shards by the kernel's affinity key,
    a worker's process-local engine cache serves every shard that
    attacks the same placement. Supervision matches the forked runner
    failure for failure: the same watchdog, the same silent-death
    sweep, the same bounded retries under seeded backoff, the same
    demotion ladder. A failed worker is replaced in place — fresh fork,
    fresh task queue, same slot — and its shard retries at the front of
    that slot's queue, so the deterministic shard->worker map survives
    any crash schedule. Demotions bump an epoch; idle workers older
    than the current epoch are refreshed before their next task, so
    re-dispatched shards inherit the demoted ladder exactly as freshly
    forked workers would.
    """
    import multiprocessing
    from queue import Empty

    from repro.core import kernels, native

    spec_json = json.dumps(spec.to_dict())
    spec_hash = spec.spec_hash()
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if "fork" in methods else None)
    processes = min(workers, len(pending))
    budget = threads if threads is not None else native.thread_count()
    per_worker = max(1, budget // processes)
    lane_budget = max(1, lanes // processes) if lanes is not None else None

    result_queue = context.Queue()
    slots = [
        _PoolSlot(bucket)
        for bucket in _affinity_plan(spec, kernel, cells, pending, processes)
    ]
    slot_of = {
        ordinal: index
        for index, slot in enumerate(slots)
        for ordinal in slot.work
    }
    finished: Dict[int, Any] = {}
    attempts: Dict[int, int] = {}
    delays: Dict[int, float] = {}
    blocked: List[Tuple[float, int]] = []  # (not-before, ordinal) backoffs
    next_flush = 0
    retries = 0
    epoch = 0

    def spawn(slot: _PoolSlot) -> None:
        slot.task_queue = context.Queue()
        slot.proc = context.Process(
            target=_pool_worker,
            args=(
                spec_json, per_worker, lane_budget,
                sorted(kernels.demoted_backings().items()),
                slot.task_queue, result_queue,
            ),
            daemon=True,
        )
        slot.proc.start()
        slot.epoch = epoch
        slot.current = None
        slot.deadline = None
        slot.reap_at = None

    def respawn(slot: _PoolSlot) -> None:
        if slot.proc.is_alive():
            slot.proc.kill()
        slot.proc.join()
        slot.task_queue.close()
        slot.task_queue.cancel_join_thread()
        spawn(slot)

    def dispatch(slot: _PoolSlot) -> None:
        ordinal = slot.work.pop(0)
        group = pending[ordinal]
        attempt = attempts.get(ordinal, 0)
        slot.task_queue.put(
            (ordinal, attempt, group.start, cells[group.start:group.end])
        )
        slot.current = (ordinal, attempt)
        slot.deadline = (
            time.monotonic() + shard_timeout
            if shard_timeout is not None else None
        )
        slot.reap_at = None

    def fail(ordinal: int, reason: str, watchdog: bool) -> None:
        nonlocal retries, epoch
        group = pending[ordinal]
        count = attempts.get(ordinal, 0) + 1
        attempts[ordinal] = count
        if count > shard_retries:
            raise ExperimentError(
                f"shard at cells[{group.start}:{group.end}] of "
                f"{spec.experiment!r} failed after {count} attempts: {reason}"
            )
        retries += 1
        obs.count("runner.shard_retries")
        obs.record_event(
            "runner.shard_retry", start=group.start, attempt=count,
            reason=reason, watchdog=watchdog,
        )
        if watchdog and count >= 2:
            demoted = _demote_after_watchdog(
                f"shard at cells[{group.start}:{group.end}]: {reason}"
            )
            if demoted is not None:
                epoch += 1  # stale idle workers refresh before the next task
        delay = _backoff_delay(
            spec_hash, group.start, count, delays.get(ordinal, _BACKOFF_BASE)
        )
        delays[ordinal] = delay
        blocked.append((time.monotonic() + delay, ordinal))

    try:
        for slot in slots:
            spawn(slot)
        while next_flush < len(pending):
            now = time.monotonic()
            for entry in list(blocked):
                if entry[0] <= now:
                    blocked.remove(entry)
                    # The retry jumps its slot's queue: same worker, next.
                    slots[slot_of[entry[1]]].work.insert(0, entry[1])
            for slot in slots:
                if slot.current is None and slot.work:
                    if slot.epoch != epoch or not slot.proc.is_alive():
                        respawn(slot)
                    dispatch(slot)
            if blocked and all(slot.current is None for slot in slots):
                # Everything runnable is backing off; sleep toward the
                # earliest retry instead of spinning.
                wake = min(entry[0] for entry in blocked)
                time.sleep(max(0.0, min(wake - time.monotonic(), _BACKOFF_CAP)))
                continue
            try:
                message = result_queue.get(timeout=0.05)
            except Empty:
                message = None
            if message is not None:
                ordinal, attempt, status, payload = message
                slot = slots[slot_of[ordinal]]
                if slot.current == (ordinal, attempt):
                    slot.current = None
                    slot.deadline = None
                    slot.reap_at = None
                    if status == "ok":
                        chunk, delta = payload
                        # Merge only successful attempts' recordings:
                        # failed attempts rolled back worker-side, so
                        # half-done work never skews the totals.
                        obs.merge_delta(delta)
                        finished[ordinal] = chunk
                    else:
                        fail(ordinal, payload, watchdog=False)
                # else: stale message from a killed attempt — drop it.
            now = time.monotonic()
            for slot in slots:
                if slot.current is None:
                    continue
                ordinal, _attempt = slot.current
                if slot.deadline is not None and now >= slot.deadline:
                    slot.current = None
                    respawn(slot)  # kills the hung worker, fresh queue
                    fail(
                        ordinal,
                        f"exceeded the {shard_timeout:.1f}s shard watchdog",
                        watchdog=True,
                    )
                elif not slot.proc.is_alive():
                    if slot.reap_at is None:
                        slot.reap_at = now + _REAP_GRACE
                    elif now >= slot.reap_at:
                        code = slot.proc.exitcode
                        slot.current = None
                        respawn(slot)
                        fail(
                            ordinal,
                            f"worker died without a result (exit code {code})",
                            watchdog=True,
                        )
            while next_flush in finished:
                flush(pending[next_flush], finished.pop(next_flush))
                next_flush += 1
    finally:
        # Always reap every child — KeyboardInterrupt included — so an
        # interrupted run releases the store lock with no orphan workers.
        for slot in slots:
            if slot.proc is not None and slot.proc.is_alive():
                slot.proc.terminate()
        for slot in slots:
            if slot.proc is None:
                continue
            slot.proc.join(timeout=5)
            if slot.proc.is_alive():
                slot.proc.kill()
                slot.proc.join(timeout=5)
            slot.task_queue.close()
            slot.task_queue.cancel_join_thread()
        result_queue.close()
        result_queue.cancel_join_thread()
    return retries


def run_figure(
    spec: ExperimentSpec,
    workers: Optional[int] = None,
    store: Optional[Union[RunStore, str]] = None,
    resume: bool = False,
) -> Any:
    """Run a spec to completion and assemble its figure result object.

    This is the engine behind every ``figN.generate()`` compatibility
    wrapper: serial by default (``REPRO_WORKERS`` shards it), bit-identical
    output either way.
    """
    return run_experiment(
        spec, workers=workers, store=store, resume=resume
    ).result()
