"""Sharded experiment runner: expand, group, fan out, stream in order.

Execution model:

* the kernel expands the spec into an ordered cell list and labels each
  cell with a **group key**. Cells sharing a key form one *shard* — they
  ride one warm :class:`~repro.core.batch.AttackEngine` (placement
  construction, incidence, per-threshold kernels) and one warm-start
  incumbent chain, exactly as the hand-written figure loops did. The
  expansion must keep groups contiguous; the runner enforces this, which
  is what lets the store hold a plain in-order prefix;
* each shard is computed **serially inside one process** — all
  parallelism is *across* shards (``workers`` processes via fork, as in
  :mod:`repro.core.batch`). Because a shard's randomness derives from
  the spec alone, results are bit-identical for every worker count,
  including 1. This is deliberately stronger than the pre-refactor
  figure loops, whose intra-grid chunking could drift under
  ``REPRO_WORKERS >= 2``;
* shards are scheduled longest-first (``group_cost`` hint) but
  **committed in expansion order**: a shard that finishes early parks in
  memory until every earlier shard has been flushed. The store therefore
  only ever holds an exact prefix of the run, so an interrupted sweep
  resumes by recomputing just the shards past (or straddling) the
  prefix, and the final ``cells.jsonl`` is byte-identical to an
  uninterrupted run's;
* metrics are normalized through a JSON round-trip at the shard
  boundary, so freshly computed, worker-returned, and store-loaded
  results are indistinguishable — assembly cannot tell how a cell was
  obtained.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.batch import worker_count
from repro.exp import registry
from repro.exp.spec import ExperimentSpec
from repro.exp.store import RunState, RunStore


class ExperimentError(ValueError):
    """Raised on kernel-contract violations (non-contiguous groups, ...)."""


@dataclass(frozen=True)
class _Group:
    """One contiguous shard: expansion slice [start, end) sharing a key."""

    key: Any
    start: int
    end: int

    @property
    def size(self) -> int:
        return self.end - self.start


@dataclass
class RunResult:
    """Everything one :func:`run_experiment` call produced.

    ``metrics`` aligns with ``cells``; entries are ``None`` only when a
    ``limit`` stopped the run early. ``loaded`` cells were served from the
    run store, ``computed`` were executed now, and ``recomputed`` counts
    the stored cells that had to be re-executed (and are included in
    ``computed``) because their shard straddled the stored prefix —
    always 0 when the interruption fell on a shard boundary, e.g. any
    ``limit``-bounded run.
    """

    spec: ExperimentSpec
    cells: List[Dict[str, Any]]
    metrics: List[Optional[Dict[str, Any]]]
    loaded: int = 0
    computed: int = 0
    recomputed: int = 0
    groups: int = 0
    elapsed: float = 0.0
    store_path: Optional[str] = None

    @property
    def complete(self) -> bool:
        return all(entry is not None for entry in self.metrics)

    def result(self) -> Any:
        """Assemble the figure's result object (requires a complete run)."""
        if not self.complete:
            missing = sum(1 for entry in self.metrics if entry is None)
            raise ExperimentError(
                f"run of {self.spec.experiment!r} is incomplete "
                f"({missing} of {len(self.cells)} cells missing); resume it "
                "to assemble a result"
            )
        kernel = registry.kernel(self.spec.experiment)
        return kernel.assemble(self.spec, self.cells, self.metrics)

    def render(self) -> str:
        kernel = registry.kernel(self.spec.experiment)
        return kernel.render(self.result())

    def summary(self) -> str:
        state = "complete" if self.complete else "partial"
        return (
            f"{self.spec.experiment} [{self.spec.spec_hash()[:12]}] "
            f"{state}: {len(self.cells)} cells "
            f"({self.loaded} loaded, {self.computed} computed, "
            f"{self.recomputed} recomputed) across {self.groups} shards "
            f"in {self.elapsed:.2f}s"
        )


def _normalize(metrics: Any) -> Dict[str, Any]:
    """JSON round-trip so in-memory metrics match store-loaded metrics."""
    if not isinstance(metrics, dict):
        raise ExperimentError(
            f"kernels must return one metrics dict per cell, got "
            f"{type(metrics).__name__}"
        )
    return json.loads(json.dumps(metrics))


def _contiguous_groups(
    spec: ExperimentSpec,
    kernel: registry.ExperimentKernel,
    cells: Sequence[Dict[str, Any]],
) -> List[_Group]:
    groups: List[_Group] = []
    seen = set()
    for index, cell in enumerate(cells):
        key = kernel.group_key(spec, cell)
        if groups and groups[-1].key == key:
            groups[-1] = _Group(key, groups[-1].start, index + 1)
            continue
        if key in seen:
            raise ExperimentError(
                f"kernel {kernel.name!r} expansion interleaves group "
                f"{key!r}; groups must be contiguous in expansion order"
            )
        seen.add(key)
        groups.append(_Group(key, index, index + 1))
    return groups


def _group_cost(
    spec: ExperimentSpec,
    kernel: registry.ExperimentKernel,
    group: _Group,
    cells: Sequence[Dict[str, Any]],
) -> float:
    if kernel.group_cost is None:
        return float(group.size)
    return float(
        kernel.group_cost(spec, group.key, cells[group.start:group.end])
    )


def _run_group_task(payload: Tuple[str, int, List[Dict[str, Any]]]):
    """Top-level worker entry point (picklable): compute one shard."""
    spec_json, ordinal, cells = payload
    spec = ExperimentSpec.from_dict(json.loads(spec_json))
    kernel = registry.kernel(spec.experiment)
    return ordinal, kernel.run_group(spec, cells)


def run_experiment(
    spec: ExperimentSpec,
    workers: Optional[int] = None,
    store: Optional[Union[RunStore, str]] = None,
    resume: bool = False,
    limit: Optional[int] = None,
    threads: Optional[int] = None,
) -> RunResult:
    """Run one spec: expand, serve the stored prefix, compute the rest.

    ``workers`` defaults to ``REPRO_WORKERS`` (serial when unset); results
    are identical for every value. ``store`` (a :class:`RunStore` or a
    root path) makes the run resumable and re-renderable without
    recomputation. ``limit`` caps the number of *newly computed* cells —
    the run stops at the first shard boundary at or past the cap, leaving
    a clean resumable prefix (used by budgeted sweeps, the CI smoke job,
    and the resume benchmarks).

    ``threads`` pins the native kernel's thread budget for this run
    (default: ``REPRO_NATIVE_THREADS`` / cpu count). Sharded runs divide
    the budget across worker processes, so ``workers x threads`` never
    oversubscribes the host; results are bit-identical at every
    (workers, threads) combination — the kernel's threaded paths merge
    deterministically.
    """
    from repro.core import native

    started = time.perf_counter()
    kernel = registry.kernel(spec.experiment)
    if workers is None:
        workers = worker_count(1)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if limit is not None and limit < 0:
        raise ValueError(f"limit must be >= 0, got {limit}")
    if threads is not None and threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")

    cells = [dict(cell) for cell in kernel.expand(spec)]
    groups = _contiguous_groups(spec, kernel, cells)
    metrics: List[Optional[Dict[str, Any]]] = [None] * len(cells)

    if isinstance(store, str):
        store = RunStore(store)
    state: Optional[RunState] = None
    try:
        prefix = 0
        if store is not None:
            # Inside the try: open_run takes the run lock, and a corrupt
            # store raising out of load_prefix must still release it.
            state = store.open_run(spec, resume=resume)
            stored = state.load_prefix(cells)
            prefix = len(stored)
            metrics[:prefix] = stored

        pending = [group for group in groups if group.end > prefix]
        if limit is not None:
            budget, kept = limit, []
            for group in pending:
                if budget <= 0:
                    break
                kept.append(group)
                budget -= group.end - max(group.start, prefix)
            pending = kept
        recomputed = sum(max(0, prefix - group.start) for group in pending)

        def flush(group: _Group, chunk: Sequence[Any]) -> None:
            if len(chunk) != group.size:
                raise ExperimentError(
                    f"kernel {kernel.name!r} returned {len(chunk)} metric "
                    f"dicts for a {group.size}-cell shard"
                )
            for offset, entry in enumerate(chunk):
                metrics[group.start + offset] = _normalize(entry)
            if state is not None:
                for index in range(max(group.start, prefix), group.end):
                    state.append(cells[index], metrics[index])
                state.flush()

        if workers > 1 and len(pending) > 1:
            _run_sharded(
                spec, kernel, cells, pending, workers, flush, threads
            )
        elif threads is not None:
            # Serial run with a pinned kernel budget: configure, compute,
            # restore the caller's setting.
            previous = native.configured_threads()
            native.configure_threads(threads)
            try:
                for group in pending:
                    flush(
                        group,
                        kernel.run_group(spec, cells[group.start:group.end]),
                    )
            finally:
                native.configure_threads(previous)
        else:
            for group in pending:
                flush(group, kernel.run_group(spec, cells[group.start:group.end]))
        computed = sum(
            group.end - max(group.start, prefix) for group in pending
        ) + recomputed
        complete = all(entry is not None for entry in metrics)
        if state is not None and complete and not state.complete:
            state.finalize(len(cells))
    finally:
        if state is not None:
            state.close()

    return RunResult(
        spec=spec,
        cells=cells,
        metrics=metrics,
        loaded=prefix - recomputed,
        computed=computed,
        recomputed=recomputed,
        groups=len(groups),
        elapsed=time.perf_counter() - started,
        store_path=state.path if state is not None else None,
    )


def _run_sharded(
    spec, kernel, cells, pending, workers, flush, threads=None
) -> None:
    """Fan pending shards over a process pool; commit in expansion order.

    Each worker gets an equal slice of the kernel thread budget
    (``threads`` or the ambient ``REPRO_NATIVE_THREADS``/cpu default), so
    shard fan-out and in-kernel threading compose instead of
    oversubscribing.
    """
    import multiprocessing

    from repro.core import native

    spec_json = json.dumps(spec.to_dict())
    order = sorted(
        range(len(pending)),
        key=lambda i: (-_group_cost(spec, kernel, pending[i], cells), i),
    )
    payloads = [
        (spec_json, i, cells[pending[i].start:pending[i].end]) for i in order
    ]
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if "fork" in methods else None)
    finished: Dict[int, Any] = {}
    next_flush = 0
    processes = min(workers, len(pending))
    budget = threads if threads is not None else native.thread_count()
    with context.Pool(
        processes=processes,
        initializer=native.configure_threads,
        initargs=(max(1, budget // processes),),
    ) as pool:
        for ordinal, chunk in pool.imap_unordered(_run_group_task, payloads):
            finished[ordinal] = chunk
            while next_flush in finished:
                flush(pending[next_flush], finished.pop(next_flush))
                next_flush += 1


def run_figure(
    spec: ExperimentSpec,
    workers: Optional[int] = None,
    store: Optional[Union[RunStore, str]] = None,
    resume: bool = False,
) -> Any:
    """Run a spec to completion and assemble its figure result object.

    This is the engine behind every ``figN.generate()`` compatibility
    wrapper: serial by default (``REPRO_WORKERS`` shards it), bit-identical
    output either way.
    """
    return run_experiment(
        spec, workers=workers, store=store, resume=resume
    ).result()
