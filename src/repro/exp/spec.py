"""Experiment specs: pure-data sweep descriptions with a canonical identity.

An :class:`ExperimentSpec` names an experiment *kernel* (a registered
expansion/execution/assembly triple, see :mod:`repro.exp.registry`) and
carries the sweep's **axes** (named value ladders, e.g. ``b`` or ``s``)
and **constants** (scalar parameters such as ``n`` or the adversary
effort). Everything in a spec is JSON-native, so a spec

* round-trips losslessly through ``to_dict``/``from_dict`` (the
  ``repro run myspec.json`` entry point);
* has a *canonical* identity — :meth:`ExperimentSpec.spec_hash` digests
  the sorted-key canonical JSON, so axis/constant declaration order,
  process boundaries, and dict iteration order never change the hash
  (the checksummed-header discipline of :mod:`repro.core.artifact`
  applied to experiment definitions);
* fully determines its results: environment knobs that affect values
  (effort, Monte-Carlo repetitions, the ``b`` cap) are resolved *into*
  the spec when it is built, never read during execution, so a run store
  keyed by the hash can safely serve cached cells.

Cells — one parameter point each — are plain ``{axis: value}`` dicts
produced by the kernel's expansion (defaulting to
:func:`cartesian_cells`). :func:`cell_key` gives the canonical JSON
identity of a cell, which the run store uses to pin stored lines to
expansion slots.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

SPEC_FORMAT = "repro-experiment-spec"
SPEC_VERSION = 1

_MISSING = object()


class SpecError(ValueError):
    """Raised on malformed, non-canonical, or non-JSON-native specs."""


def _freeze(value: Any, where: str) -> Any:
    """Validate + normalize one value to an immutable JSON-native form."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item, where) for item in value)
    raise SpecError(
        f"{where}: spec values must be JSON-native scalars or lists, "
        f"got {type(value).__name__}"
    )


def _thaw(value: Any) -> Any:
    """Tuples back to lists for JSON serialization."""
    if isinstance(value, tuple):
        return [_thaw(item) for item in value]
    return value


@dataclass(frozen=True)
class ExperimentSpec:
    """One declarative sweep: kernel name + axes + constants.

    Construct via :meth:`build` (which validates and canonicalizes) rather
    than the raw dataclass constructor. Axes and constants are stored as
    name-sorted tuples of pairs so that equal specs are equal objects and
    hash equally regardless of declaration order.
    """

    experiment: str
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    constants: Tuple[Tuple[str, Any], ...] = ()
    version: int = SPEC_VERSION

    @classmethod
    def build(
        cls,
        experiment: str,
        axes: Mapping[str, Sequence[Any]] = (),
        constants: Mapping[str, Any] = (),
        version: int = SPEC_VERSION,
    ) -> "ExperimentSpec":
        if not experiment or not isinstance(experiment, str):
            raise SpecError(f"experiment must be a non-empty string, got {experiment!r}")
        frozen_axes = []
        for name, values in sorted(dict(axes).items()):
            if not isinstance(name, str):
                raise SpecError(f"axis names must be strings, got {name!r}")
            values = _freeze(values, f"axis {name!r}")
            if not isinstance(values, tuple) or not values:
                raise SpecError(f"axis {name!r} must be a non-empty sequence")
            frozen_axes.append((name, values))
        frozen_constants = []
        for name, value in sorted(dict(constants).items()):
            if not isinstance(name, str):
                raise SpecError(f"constant names must be strings, got {name!r}")
            frozen_constants.append((name, _freeze(value, f"constant {name!r}")))
        return cls(
            experiment=experiment,
            axes=tuple(frozen_axes),
            constants=tuple(frozen_constants),
            version=int(version),
        )

    # -- access ----------------------------------------------------------

    def axis(self, name: str) -> Tuple[Any, ...]:
        for axis_name, values in self.axes:
            if axis_name == name:
                return values
        raise SpecError(f"spec {self.experiment!r} has no axis {name!r}")

    def axis_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.axes)

    def constant(self, name: str, default: Any = _MISSING) -> Any:
        for constant_name, value in self.constants:
            if constant_name == name:
                return value
        if default is _MISSING:
            raise SpecError(f"spec {self.experiment!r} has no constant {name!r}")
        return default

    # -- identity --------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": SPEC_FORMAT,
            "version": self.version,
            "experiment": self.experiment,
            "axes": {name: _thaw(values) for name, values in self.axes},
            "constants": {name: _thaw(value) for name, value in self.constants},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentSpec":
        if not isinstance(payload, Mapping):
            raise SpecError(f"spec payload must be a mapping, got {type(payload).__name__}")
        if payload.get("format", SPEC_FORMAT) != SPEC_FORMAT:
            raise SpecError(f"unknown spec format {payload.get('format')!r}")
        version = int(payload.get("version", SPEC_VERSION))
        if version > SPEC_VERSION:
            raise SpecError(
                f"spec version {version} is newer than supported {SPEC_VERSION}"
            )
        try:
            experiment = payload["experiment"]
        except KeyError:
            raise SpecError("spec payload is missing the 'experiment' field") from None
        return cls.build(
            experiment,
            axes=payload.get("axes", {}),
            constants=payload.get("constants", {}),
            version=version,
        )

    def canonical_json(self) -> str:
        """Sorted-key, tight-separator JSON — the hashed identity text."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def spec_hash(self) -> str:
        """sha256 hex digest of the canonical JSON: the spec's identity."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()


def cell_key(cell: Mapping[str, Any]) -> str:
    """Canonical JSON identity of one cell (used to pin stored lines)."""
    return json.dumps(dict(cell), sort_keys=True, separators=(",", ":"))


def cartesian_cells(spec: ExperimentSpec) -> List[Dict[str, Any]]:
    """Default expansion: full cartesian product, axes in name order.

    Axis *names* iterate in sorted order (matching the canonical spec
    form) and axis *values* in their declared order, so two equal specs
    always expand to the same cell sequence.
    """
    cells: List[Dict[str, Any]] = [{}]
    for name, values in spec.axes:
        cells = [
            {**cell, name: value} for cell in cells for value in values
        ]
    return cells
