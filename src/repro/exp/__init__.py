"""Declarative experiment engine: specs -> sharded runs -> resumable store.

The paper's evaluation is a family of parameter sweeps. This package turns
each sweep into *data* instead of a bespoke module:

* :mod:`repro.exp.spec` — :class:`ExperimentSpec`, a pure-data description
  of a sweep (axes, constants) with a canonical sha256 identity;
* :mod:`repro.exp.registry` — the experiment kernels (expansion, group
  execution, assembly) and the runnable figure catalog;
* :mod:`repro.exp.runner` — expands a spec into cells, shards cell groups
  across worker processes (one warm attack engine per shard), and streams
  results in deterministic order;
* :mod:`repro.exp.store` — a content-addressed on-disk run store keyed by
  spec hash, so interrupted sweeps resume and re-renders never recompute.
"""

from repro.exp.spec import ExperimentSpec, SpecError
from repro.exp.store import RunStore, RunStoreError

__all__ = ["ExperimentSpec", "SpecError", "RunStore", "RunStoreError"]
