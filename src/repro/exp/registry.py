"""Experiment kernels and the runnable figure catalog.

Two layers:

* an :class:`ExperimentKernel` is the executable half of an experiment —
  how a spec expands into cells, how a *group* of cells is computed (one
  shard = one warm attack engine), and how stored metrics assemble back
  into the figure's result object. Kernels live in the analysis modules
  (each module exports a ``KERNELS`` dict) and are resolved lazily by
  name, so listing the catalog never imports the heavy modules;
* a :class:`FigureEntry` is a *runnable*: a human-facing name
  (``fig2`` … ``fig11``, ``appendix_a``), a one-line description, and a
  pointer to the module function that builds its default spec. The CLI's
  ``repro figure --list`` / ``repro run --list`` and name validation both
  read this table, so unknown names fail up front with the full catalog
  instead of at dispatch time.

Specs reference kernels by name (``spec.experiment``), which is what
makes a spec self-contained data: ``repro run myspec.json`` with a new
grid over an existing kernel needs no new code.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exp.spec import ExperimentSpec, SpecError

Cell = Dict[str, Any]
Metrics = Dict[str, Any]


@dataclass(frozen=True)
class ExperimentKernel:
    """The executable definition behind ``spec.experiment``.

    ``expand`` maps a spec to its ordered cell list (groups must be
    contiguous in that order); ``group_key`` labels each cell's shard
    (cells sharing a key ride one warm engine and one warm-start chain);
    ``run_group`` computes JSON-native metrics for one shard, serially
    and deterministically — all parallelism lives in the runner, which is
    what keeps results bit-identical across worker counts; ``assemble``
    rebuilds the figure's result object from (cells, metrics);
    ``render`` turns that object into the figure's text artifact.
    ``group_cost`` is an optional scheduling hint (bigger = scheduled
    earlier when sharding); it never affects results. ``affinity`` is an
    optional routing hint mapping a group key to the identity of the
    placement the shard attacks (e.g. drop the axes the placement does
    not depend on): shards sharing an affinity key are routed to the
    same persistent pool worker, so its process-local engine cache is
    hit instead of rebuilt. Like ``group_cost`` it never affects
    results — only where a shard runs.
    """

    name: str
    expand: Callable[[ExperimentSpec], List[Cell]]
    group_key: Callable[[ExperimentSpec, Cell], Any]
    run_group: Callable[[ExperimentSpec, Sequence[Cell]], List[Metrics]]
    assemble: Callable[[ExperimentSpec, Sequence[Cell], Sequence[Metrics]], Any]
    render: Callable[[Any], str]
    group_cost: Optional[Callable[[ExperimentSpec, Any, Sequence[Cell]], float]] = None
    affinity: Optional[Callable[[ExperimentSpec, Any, Sequence[Cell]], Any]] = None


@dataclass(frozen=True)
class FigureEntry:
    """One runnable figure: name, description, and its default-spec builder."""

    name: str
    description: str
    module: str
    builder: str = "default_spec"


#: Kernel name -> defining module. Modules export ``KERNELS: dict``.
_KERNEL_MODULES: Dict[str, str] = {
    "fig2": "repro.analysis.fig2",
    "fig3": "repro.analysis.fig3",
    "fig4": "repro.analysis.fig4",
    "fig5": "repro.analysis.fig5",
    "fig6": "repro.analysis.fig5",
    "fig7": "repro.analysis.fig7",
    "fig8": "repro.analysis.fig8",
    "fig9": "repro.analysis.fig9",
    "fig10": "repro.analysis.fig10",
    "fig11": "repro.analysis.fig11",
    "appendix_a": "repro.analysis.appendix_a",
}

#: Runtime-registered kernels (tests, downstream extensions).
_EXTRA_KERNELS: Dict[str, ExperimentKernel] = {}

_FIGURES: Tuple[FigureEntry, ...] = (
    FigureEntry("fig2", "Tightness of lbAvail_si: Simple(1) vs worst-case "
                "attacks over (b, s, k)", "repro.analysis.fig2"),
    FigureEntry("fig3", "Combo DP sensitivity to the configured failure "
                "count k", "repro.analysis.fig3"),
    FigureEntry("fig4", "Subsystem orders n_x from the design catalog vs "
                "the paper's table", "repro.analysis.fig4"),
    FigureEntry("fig5", "Capacity-gap CDFs over n in [50, 800] at mu = 1",
                "repro.analysis.fig5"),
    FigureEntry("fig6", "Capacity-gap CDFs for the hard r = 5 strata with "
                "mu <= 5 and mu <= 10", "repro.analysis.fig5",
                "default_spec_fig6"),
    FigureEntry("fig7", "prAvail_rnd vs empirical Random availability "
                "(Monte-Carlo attack sweep)", "repro.analysis.fig7"),
    FigureEntry("fig8", "prAvail_rnd / b decay in k for s in 1..5",
                "repro.analysis.fig8"),
    FigureEntry("fig9a", "Headline Combo-vs-Random improvement tables at "
                "n = 71", "repro.analysis.fig9", "default_spec_a"),
    FigureEntry("fig9b", "Headline Combo-vs-Random improvement tables at "
                "n = 257", "repro.analysis.fig9", "default_spec_b"),
    FigureEntry("fig10", "Per-stratum breakdown of Combo placements "
                "(r = s = 3)", "repro.analysis.fig10"),
    FigureEntry("fig11", "Lemma-4 decay of Random availability at s = 1",
                "repro.analysis.fig11"),
    FigureEntry("appendix_a", "The s = 1 case: Simple(0, lambda0) vs "
                "Random, both poor", "repro.analysis.appendix_a"),
)

_FIGURES_BY_NAME: Dict[str, FigureEntry] = {entry.name: entry for entry in _FIGURES}


def register_kernel(kernel: ExperimentKernel) -> None:
    """Register an in-process kernel (tests / downstream extensions).

    Runtime registrations are process-local: sharded runs resolve kernels
    inside worker processes, so a kernel that should run with
    ``workers > 1`` must live in an importable module instead.
    """
    _EXTRA_KERNELS[kernel.name] = kernel


def kernel(name: str) -> ExperimentKernel:
    """Resolve an experiment kernel by name (lazy module import)."""
    extra = _EXTRA_KERNELS.get(name)
    if extra is not None:
        return extra
    module_path = _KERNEL_MODULES.get(name)
    if module_path is None:
        raise SpecError(
            f"unknown experiment kernel {name!r}; known: "
            f"{', '.join(sorted(set(_KERNEL_MODULES) | set(_EXTRA_KERNELS)))}"
        )
    module = importlib.import_module(module_path)
    return module.KERNELS[name]


def figure_names() -> Tuple[str, ...]:
    """Runnable figure names in catalog order."""
    return tuple(entry.name for entry in _FIGURES)


def figure_entries() -> Tuple[FigureEntry, ...]:
    return _FIGURES


def describe_figures() -> List[Tuple[str, str]]:
    """(name, one-line description) pairs for ``--list`` output."""
    return [(entry.name, entry.description) for entry in _FIGURES]


def figure_spec(name: str, **overrides: Any) -> ExperimentSpec:
    """The default spec of a runnable figure (keyword overrides allowed)."""
    entry = _FIGURES_BY_NAME.get(name)
    if entry is None:
        raise SpecError(
            f"unknown figure {name!r}; known: {', '.join(figure_names())}"
        )
    module = importlib.import_module(entry.module)
    builder = getattr(module, entry.builder)
    return builder(**overrides)


def spec_from_payload(payload: Mapping[str, Any]) -> ExperimentSpec:
    """Validate a JSON payload into a spec with a resolvable kernel."""
    spec = ExperimentSpec.from_dict(payload)
    kernel(spec.experiment)  # fail fast on unknown kernels
    return spec
