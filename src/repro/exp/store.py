"""Content-addressed on-disk run store: resumable, checksummed, append-only.

Layout (one directory per spec identity under the store root)::

    runs/
      <spec-hash16>/
        manifest.json   # format/version, full spec, spec_sha256, completion
        cells.jsonl     # one line per completed cell, in expansion order
        engine/         # optional engine-state sidecar: one checksummed
                        # <fingerprint>.npz snapshot per placement the
                        # run attacked (repro run --engine-state auto)

``manifest.json`` follows the checksummed-header pattern of
:mod:`repro.core.artifact`: it pins the full spec dict plus its sha256,
and once the run completes it additionally records the cell count and the
sha256 of ``cells.jsonl`` — a complete run that fails its checksum is
reported as corrupt instead of silently re-served.

``cells.jsonl`` is written **strictly in expansion order** (the runner
commits shards in order even when they finish out of order), which buys
two properties cheaply:

* a killed run leaves a valid *prefix* (plus at most one torn trailing
  line, which :meth:`RunState.load_prefix` truncates away), so resuming
  is "skip the prefix, recompute the rest";
* an interrupted-then-resumed run produces a ``cells.jsonl`` that is
  byte-identical to an uninterrupted run's.

Floats ride JSON's exact ``repr`` round-trip, so metrics loaded from the
store are indistinguishable from freshly computed ones.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
import warnings
from typing import Any, Dict, IO, List, Mapping, Optional, Sequence

from repro import faults, obs
from repro.exp.spec import ExperimentSpec, cell_key

RUN_FORMAT = "repro-run"
RUN_VERSION = 1

#: Directory names use a 16-hex prefix of the spec hash; the manifest pins
#: the full digest, so a (cosmically unlikely) prefix collision is caught
#: at open time rather than silently mixing runs.
_DIR_HASH_CHARS = 16


class RunStoreError(ValueError):
    """Raised on corrupt, mismatched, or version-incompatible run stores."""


def _dump_line(cell: Mapping[str, Any], metrics: Mapping[str, Any]) -> str:
    return json.dumps(
        {"cell": dict(cell), "metrics": dict(metrics)},
        sort_keys=True,
        separators=(",", ":"),
    ) + "\n"


def _fsync_directory(path: str) -> None:
    """Best-effort fsync of a directory entry (after an ``os.replace``)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platforms without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystems rejecting dir fsync
        pass
    finally:
        os.close(fd)


def _write_atomic(path: str, text: str) -> None:
    """Durable atomic replace: write, fsync, rename, fsync the directory.

    Without the fsyncs a crash shortly after ``os.replace`` can surface
    the new name pointing at unwritten data (or the old name lingering);
    with them a manifest update is all-or-nothing across power loss too.
    """
    directory = os.path.dirname(path)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        _fsync_directory(directory)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def _acquire_lock(path: str) -> Optional[IO[str]]:
    """Take the run directory's advisory lock (kernel ``flock``).

    Two processes running the same spec against one store would otherwise
    race: the second one's restart policy can unlink the cells file the
    first still holds open, and whichever finalizes first records a
    checksum of the other's half-written data. A non-blocking exclusive
    ``flock`` on ``<run>/lock`` serializes them with no staleness
    protocol at all — the kernel drops the lock the instant its holder
    exits (cleanly or not), so crashed runs never wedge the store and
    there is no pid-file read/reclaim race. The file itself is never
    unlinked (unlink-while-locked is its own race); its pid content is
    diagnostic only. Returns the open handle owning the lock, or None on
    platforms without ``fcntl`` (best-effort: no locking there).
    """
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    lock_path = os.path.join(path, "lock")
    handle = open(lock_path, "a+", encoding="utf-8")
    try:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
    except OSError:
        handle.seek(0)
        owner = handle.read().strip() or "unknown"
        handle.close()
        raise RunStoreError(
            f"{path}: run is in use by another process (pid {owner}); "
            "wait for it to finish or use a different --store"
        ) from None
    handle.seek(0)
    handle.truncate()
    handle.write(str(os.getpid()))
    handle.flush()
    return handle


class RunState:
    """One open run directory: prefix loading, ordered appends, completion.

    Opening a run takes an advisory per-directory lock (released by
    :meth:`close` / :meth:`finalize`, reclaimed automatically from dead
    processes), so concurrent runs of one spec against one store fail
    fast instead of corrupting each other.
    """

    def __init__(
        self,
        path: str,
        spec: ExperimentSpec,
        manifest: Dict[str, Any],
        lock: Optional[IO[str]] = None,
    ):
        self.path = path
        self.spec = spec
        self.manifest = manifest
        self._handle: Optional[IO[bytes]] = None
        self._lock = lock

    @property
    def cells_path(self) -> str:
        return os.path.join(self.path, "cells.jsonl")

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.path, "manifest.json")

    @property
    def complete(self) -> bool:
        return bool(self.manifest.get("complete"))

    def load_prefix(self, cells: Sequence[Mapping[str, Any]]) -> List[Dict[str, Any]]:
        """Validated metrics for the stored prefix of ``cells``.

        Reads ``cells.jsonl``, checks every stored line against the
        expected cell at its expansion slot, truncates a torn trailing
        line (the kill-mid-write case), and — for complete runs — also
        verifies the manifest's cells checksum. Returns the prefix's
        metric dicts; the run resumes at index ``len(result)``.
        """
        if not os.path.exists(self.cells_path):
            if self.complete:
                raise RunStoreError(
                    f"{self.path}: manifest says complete but cells.jsonl "
                    "is missing"
                )
            return []
        with open(self.cells_path, "rb") as handle:
            blob = handle.read()
        if self.complete:
            digest = hashlib.sha256(blob).hexdigest()
            if digest != self.manifest.get("cells_sha256"):
                raise RunStoreError(
                    f"{self.path}: cells.jsonl checksum mismatch "
                    "(corrupt run store)"
                )
        metrics: List[Dict[str, Any]] = []
        offset = 0
        for raw_line in blob.splitlines(keepends=True):
            if not raw_line.endswith(b"\n"):
                # Appends write line+newline in one call, so a line
                # without its newline is an interrupted append — and it
                # is necessarily the file's last line. Truncate it away;
                # the runner recomputes that cell.
                if self.complete:
                    raise RunStoreError(
                        f"{self.path}: torn trailing line in a complete "
                        "run (corrupt run store)"
                    )
                with open(self.cells_path, "r+b") as handle:
                    handle.truncate(offset)
                break
            try:
                payload = json.loads(raw_line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                payload = None
            if not isinstance(payload, dict):
                # A newline-terminated line that does not parse was fully
                # written and then damaged: corruption, not a torn append.
                # In a partial run the good prefix is still exactly a
                # prefix, so quarantine the damaged suffix and resume from
                # it rather than aborting the whole run.
                if self.complete:
                    raise RunStoreError(
                        f"{self.path}: corrupt line {len(metrics)} in "
                        "cells.jsonl"
                    )
                self._quarantine(
                    offset,
                    f"corrupt line {len(metrics)} in cells.jsonl",
                )
                break
            index = len(metrics)
            if index >= len(cells):
                raise RunStoreError(
                    f"{self.path}: cells.jsonl holds more lines than the "
                    f"spec expands to ({len(cells)} cells)"
                )
            stored_cell = payload.get("cell")
            if not isinstance(stored_cell, dict) or cell_key(stored_cell) != cell_key(cells[index]):
                raise RunStoreError(
                    f"{self.path}: stored cell {index} does not match the "
                    "spec expansion (corrupt or mismatched run store)"
                )
            stored_metrics = payload.get("metrics")
            if not isinstance(stored_metrics, dict):
                if self.complete:
                    raise RunStoreError(
                        f"{self.path}: stored cell {index} has no metrics dict"
                    )
                self._quarantine(
                    offset, f"stored cell {index} has no metrics dict"
                )
                break
            metrics.append(stored_metrics)
            offset += len(raw_line)
        if self.complete and len(metrics) != len(cells):
            raise RunStoreError(
                f"{self.path}: manifest says complete with "
                f"{self.manifest.get('cells')} cells but cells.jsonl holds "
                f"{len(metrics)} of {len(cells)}"
            )
        return metrics

    def _quarantine(self, offset: int, reason: str) -> None:
        """Move the damaged suffix aside and truncate to the good prefix.

        The quarantined bytes stay on disk (``cells.quarantine.<n>``) for
        post-mortems; the run itself resumes from the surviving prefix and
        recomputes the rest, ending byte-identical to an undamaged run.
        """
        with open(self.cells_path, "r+b") as handle:
            handle.seek(offset)
            tail = handle.read()
            handle.truncate(offset)
            handle.flush()
            os.fsync(handle.fileno())
        sequence = 0
        while True:
            target = os.path.join(self.path, f"cells.quarantine.{sequence}")
            if not os.path.exists(target):
                break
            sequence += 1
        with open(target, "wb") as handle:
            handle.write(tail)
            handle.flush()
            os.fsync(handle.fileno())
        warnings.warn(
            f"{self.path}: {reason}; quarantined {len(tail)} bytes to "
            f"{os.path.basename(target)} and truncated cells.jsonl — "
            "resuming recomputes from the surviving prefix",
            RuntimeWarning,
            stacklevel=3,
        )

    def _commit_fault(self, length: int, index: int) -> Optional[faults.TornWrite]:
        """The ``store.commit`` injection point, with bounded retry.

        Transient injected errors model an append that failed before any
        byte hit the file; retrying re-evaluates the plan (each visit is
        a fresh deterministic draw), so low-probability chaos never kills
        a run here. Deterministic ``when``-rules exhaust the retries and
        propagate — targeted plans can still force a commit failure.
        """
        last: Optional[faults.InjectedFault] = None
        for attempt in range(4):
            try:
                return faults.inject(
                    "store.commit",
                    path=self.path,
                    length=length,
                    index=index,
                    attempt=attempt,
                )
            except faults.InjectedFault as exc:
                last = exc
                time.sleep(0.01 * (attempt + 1))
        raise last  # type: ignore[misc]  # loop always set it

    def append(
        self,
        cell: Mapping[str, Any],
        metrics: Mapping[str, Any],
        index: int = -1,
    ) -> None:
        """Append one completed cell (runner guarantees expansion order).

        ``index`` is the cell's absolute expansion index when the caller
        knows it; fault plans use it to target specific commits in a way
        that stays stable across process restarts (unlike hit counters,
        which reset per process).
        """
        data = _dump_line(cell, metrics).encode("utf-8")
        action = self._commit_fault(len(data), index)
        if self._handle is None:
            self._handle = open(self.cells_path, "ab")
        if action is not None:
            # Injected torn write: flush a strict prefix of the line to
            # disk, then die the way a SIGKILL mid-append would.
            self._handle.write(data[: action.length])
            self._handle.flush()
            os.fsync(self._handle.fileno())
            os._exit(action.exit_code)
        with obs.span("store.commit", index=index, bytes=len(data)):
            self._handle.write(data)
        obs.count("store.cells_committed")
        obs.observe("store.commit_bytes", len(data))

    def flush(self) -> None:
        """Flush buffered appends and fsync them to disk (commit point)."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def _close_handle(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def _release_lock(self) -> None:
        if self._lock is not None:
            self._lock.close()  # closing the fd drops the flock
            self._lock = None

    def close(self) -> None:
        """Close the append handle and release the run lock (idempotent)."""
        self._close_handle()
        self._release_lock()

    def finalize(
        self,
        cell_count: int,
        faults_record: Optional[Dict[str, Any]] = None,
        obs_record: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Mark the run complete: record cell count + cells.jsonl checksum.

        ``faults_record`` (retries, backing demotions) and ``obs_record``
        (the deterministic metrics delta of this invocation, see
        :func:`repro.obs.deterministic_delta`) land in the manifest only
        when non-empty, so fault-free uninstrumented manifests are
        byte-identical to pre-chaos ones.
        """
        self._close_handle()
        if not os.path.exists(self.cells_path):
            # A spec can legitimately expand to zero cells (e.g. every b
            # above the cap); the complete run is an empty file.
            with open(self.cells_path, "wb"):
                pass
        with open(self.cells_path, "rb") as handle:
            digest = hashlib.sha256(handle.read()).hexdigest()
        self.manifest = {
            **self.manifest,
            "complete": True,
            "cells": cell_count,
            "cells_sha256": digest,
        }
        if faults_record:
            self.manifest["faults"] = dict(faults_record)
        if obs_record:
            self.manifest["obs"] = dict(obs_record)
        _write_atomic(self.manifest_path, json.dumps(self.manifest, indent=1) + "\n")
        self._release_lock()  # finalize is terminal; the run is reopenable

    def reset(self) -> None:
        """Drop stored cells and completion state (fresh restart)."""
        self._close_handle()
        if os.path.exists(self.cells_path):
            os.unlink(self.cells_path)
        self.manifest = {
            key: value
            for key, value in self.manifest.items()
            if key not in ("complete", "cells", "cells_sha256", "faults", "obs")
        }
        self.manifest["complete"] = False
        _write_atomic(self.manifest_path, json.dumps(self.manifest, indent=1) + "\n")


class RunStore:
    """A directory of content-addressed runs, one subdirectory per spec."""

    def __init__(self, root: str):
        self.root = root

    def run_path(self, spec: ExperimentSpec) -> str:
        return os.path.join(self.root, spec.spec_hash()[:_DIR_HASH_CHARS])

    def cells_file(self, spec: ExperimentSpec) -> str:
        """Path of the run's ``cells.jsonl`` (no lock taken — read-only
        inspection; use :meth:`open_run` to mutate a run)."""
        return os.path.join(self.run_path(spec), "cells.jsonl")

    def engine_state_dir(self, spec: ExperimentSpec) -> str:
        """The run's engine-state sidecar directory (created on demand).

        Snapshots are content-addressed by placement fingerprint and
        carry their own checksums, so the sidecar needs no lock and no
        manifest entry: a stale or half-written snapshot is rejected at
        load time and rebuilt cold. ``reset`` leaves it alone — engine
        state derives from the spec's placements, never from run
        results, so it stays valid across restarts.
        """
        path = os.path.join(self.run_path(spec), "engine")
        os.makedirs(path, exist_ok=True)
        return path

    def open_run(self, spec: ExperimentSpec, resume: bool = False) -> RunState:
        """Open (creating if needed) the run directory for ``spec``.

        Policy: complete runs are always reused (re-renders never
        recompute); a partial run is continued when ``resume`` is true
        and restarted from scratch otherwise. Delete the run directory
        (or pass a fresh store root) to force recomputation of a
        complete run.
        """
        path = self.run_path(spec)
        manifest_path = os.path.join(path, "manifest.json")
        os.makedirs(path, exist_ok=True)
        lock = _acquire_lock(path)
        try:
            if not os.path.exists(manifest_path):
                manifest = {
                    "format": RUN_FORMAT,
                    "version": RUN_VERSION,
                    "experiment": spec.experiment,
                    "spec": spec.to_dict(),
                    "spec_sha256": spec.spec_hash(),
                    "complete": False,
                }
                _write_atomic(
                    manifest_path, json.dumps(manifest, indent=1) + "\n"
                )
                return RunState(path, spec, manifest, lock)
            try:
                with open(manifest_path, encoding="utf-8") as handle:
                    manifest = json.load(handle)
            except ValueError as exc:
                raise RunStoreError(
                    f"{manifest_path}: not valid JSON: {exc}"
                ) from None
            if manifest.get("format") != RUN_FORMAT:
                raise RunStoreError(
                    f"{path}: unknown run format {manifest.get('format')!r}"
                )
            if int(manifest.get("version", -1)) > RUN_VERSION:
                raise RunStoreError(
                    f"{path}: run version {manifest.get('version')} is newer "
                    f"than supported version {RUN_VERSION}"
                )
            if manifest.get("spec_sha256") != spec.spec_hash():
                raise RunStoreError(
                    f"{path}: stored spec hash "
                    f"{manifest.get('spec_sha256')!r} does not match this "
                    f"spec ({spec.spec_hash()}); the run directory is "
                    "corrupt or hand-edited"
                )
            state = RunState(path, spec, manifest, lock)
            if not state.complete and not resume:
                state.reset()
            return state
        except BaseException:
            if lock is not None:
                lock.close()
            raise
