"""Observability overhead gate: metrics on must cost at most 3%.

The instrument hooks live in the hottest paths of the stack — the
adversary search loop, the warm engine's attack dispatch, the store's
append — so the claim that gated instruments are cheap enough to ship
enabled is measured, not asserted.  Both sides run the identical
attack grid through :func:`repro.exp.runner.run_experiment`; the only
difference is ``REPRO_METRICS``.  Min-of-N alternating reps with the
attack caches cleared and the registry reset between measurements, so
neither side warms the other.

Also checked while the instrumented side runs:

* the deterministic snapshot is identical on every instrumented rep
  (a cheap in-benchmark restatement of the determinism suite);
* the instrumented run's store bytes match the uninstrumented run's
  (the ``"obs"`` manifest key must be the only difference).

Run::

    PYTHONPATH=src python benchmarks/bench_obs.py

Writes ``BENCH_8.json`` at the repository root (override with
``REPRO_BENCH_OUT``).  CI smoke (small grid, looser gate for noisy
shared runners, no BENCH_8.json)::

    PYTHONPATH=src python benchmarks/bench_obs.py --smoke

``REPRO_WORKERS`` sets the worker count (default 1: the serial path
keeps every hook in-process, the worst case for hook overhead).
"""

import argparse
import json
import os
import pathlib
import sys
import tempfile
import time

from repro import obs
from repro.analysis import fig2
from repro.core.batch import clear_attack_caches
from repro.exp.runner import run_experiment
from repro.exp.store import RunStore

DEFAULT_WORKERS = 1
FULL_GATE = 1.03
SMOKE_GATE = 1.25
ROOT = pathlib.Path(__file__).resolve().parent.parent


def timed_run(spec, workers, enabled):
    """One cold run of the grid; returns (seconds, RunResult)."""
    clear_attack_caches()
    obs.reset_metrics()
    obs.set_metrics(enabled)
    begin = time.perf_counter()
    run = run_experiment(spec, workers=workers)
    elapsed = time.perf_counter() - begin
    return elapsed, run


def bench_overhead(spec, workers, reps, gate):
    off_times, on_times = [], []
    reference_metrics = None
    reference_obs = None
    timed_run(spec, workers, enabled=False)  # warm-up: native compile etc.
    for rep in range(reps):
        # Alternate which side runs first: on a busy single-core runner
        # the second measurement of a pair systematically pays more
        # (page-cache and scheduler drift), which would masquerade as
        # instrument overhead if the instrumented side always went second.
        if rep % 2 == 0:
            off_seconds, off_run = timed_run(spec, workers, enabled=False)
            on_seconds, on_run = timed_run(spec, workers, enabled=True)
        else:
            on_seconds, on_run = timed_run(spec, workers, enabled=True)
            off_seconds, off_run = timed_run(spec, workers, enabled=False)
        if off_run.metrics != on_run.metrics:
            raise AssertionError("metrics=on changed the run's results")
        if off_run.obs is not None:
            raise AssertionError("uninstrumented run produced an obs record")
        if not on_run.obs:
            raise AssertionError("instrumented run produced no obs record")
        if reference_metrics is None:
            reference_metrics = off_run.metrics
            reference_obs = on_run.obs
        else:
            if reference_metrics != off_run.metrics:
                raise AssertionError("the grid itself is not deterministic")
            if reference_obs != on_run.obs:
                raise AssertionError(
                    "the deterministic snapshot varied between reps"
                )
        off_times.append(off_seconds)
        on_times.append(on_seconds)
    obs.set_metrics(None)
    best_off = min(off_times)
    best_on = min(on_times)
    ratio = best_on / best_off
    return {
        "spec_hash": spec.spec_hash()[:16],
        "cells": len(reference_metrics),
        "reps": reps,
        "off_seconds": round(best_off, 4),
        "on_seconds": round(best_on, 4),
        "overhead_ratio": round(ratio, 4),
        "gate": gate,
        "snapshot_stable": True,
        "pass": ratio <= gate,
    }


def check_store_identity(spec, workers):
    """Instrumented and plain stores must differ only in manifest obs."""
    with tempfile.TemporaryDirectory() as scratch:
        clear_attack_caches()
        obs.reset_metrics()
        obs.set_metrics(False)
        plain = RunStore(os.path.join(scratch, "plain"))
        run_experiment(spec, store=plain, workers=workers)

        clear_attack_caches()
        obs.reset_metrics()
        obs.set_metrics(True)
        traced = RunStore(os.path.join(scratch, "obs"))
        run_experiment(spec, store=traced, workers=workers)
        obs.set_metrics(None)

        with open(plain.cells_file(spec), "rb") as handle:
            plain_bytes = handle.read()
        with open(traced.cells_file(spec), "rb") as handle:
            traced_bytes = handle.read()
        if plain_bytes != traced_bytes:
            raise AssertionError("instrumented store bytes diverged")

        def manifest(store):
            path = os.path.join(store.run_path(spec), "manifest.json")
            with open(path, encoding="utf-8") as handle:
                return json.load(handle)

        plain_manifest = manifest(plain)
        traced_manifest = manifest(traced)
        if "obs" in plain_manifest:
            raise AssertionError("plain manifest gained an obs record")
        if not traced_manifest.pop("obs", None):
            raise AssertionError("instrumented manifest lost its obs record")
        if traced_manifest != plain_manifest:
            raise AssertionError(
                "manifests differ beyond the obs record"
            )
    return {"cells_bytes_identical": True, "manifest_diff": ["obs"]}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small grid, looser gate, no BENCH_8.json",
    )
    args = parser.parse_args(argv)
    workers = int(os.environ.get("REPRO_WORKERS", "") or DEFAULT_WORKERS)

    if args.smoke:
        spec = fig2.default_spec(
            b_values=(600, 1200), s_values=(2, 3), k_max=4
        )
        gate, reps = SMOKE_GATE, 3
    else:
        # Exact-effort shards keep the adversary inner loop hot for
        # ~0.5-1s per cell: hook cost has to show up there if anywhere.
        spec = fig2.default_spec(
            b_values=(600, 1200, 2400), s_values=(2, 3), k_max=4,
            effort="exact",
        )
        # Single-core CI boxes jitter individual runs by ±5%; the true
        # hook cost is ~0.3%, so min-of-6 is what the 3% gate needs to
        # separate signal from scheduler noise.
        gate, reps = FULL_GATE, 6

    report = {
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "overhead": bench_overhead(spec, workers, reps, gate),
        "store_identity": check_store_identity(spec, workers),
    }
    status = 0 if report["overhead"]["pass"] else 1
    if status:
        print(
            f"FAIL: metrics-on is "
            f"{report['overhead']['overhead_ratio']:.2f}x metrics-off "
            f"(gate {gate})",
            file=sys.stderr,
        )

    text = json.dumps(report, indent=1)
    print(text)
    if args.smoke:
        return status
    if status == 0:
        out_path = os.environ.get(
            "REPRO_BENCH_OUT", str(ROOT / "BENCH_8.json")
        )
        with open(out_path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return status


if __name__ == "__main__":
    sys.exit(main())
