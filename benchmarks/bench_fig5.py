"""Fig. 5 bench: capacity-gap CDFs over n in [50, 800], mu = 1, <= 3 chunks.

Paper takeaways to reproduce: r in {2, 3, 4} achieve near-zero gaps for
almost all n; r = 5 with x in {2, 3} only covers a small fraction of sizes.
"""

from conftest import emit

from repro.analysis import fig5


def test_fig5_capacity_gap_cdfs(benchmark):
    from repro.util.asciiplot import cdf_plot

    result = benchmark.pedantic(fig5.generate, rounds=1, iterations=1)
    r5_plot = cdf_plot(
        [
            (f"x={cdf.x}", list(cdf.gaps))
            for cdf in result.cdfs
            if cdf.r == 5 and cdf.x in (1, 2, 3)
        ],
        title="Fig 5 (r=5): capacity-gap CDFs",
        x_label="capacity gap",
    )
    emit("fig5", result.render() + "\n\n" + r5_plot)
    by_combo = {(cdf.r, cdf.x): cdf for cdf in result.cdfs}
    # r <= 4: nearly every system size achieves gap <= 0.1.
    for r, x in [(2, 1), (3, 1), (4, 1), (4, 2)]:
        assert by_combo[(r, x)].fraction_at_most(0.1) > 0.9, (r, x)
    # r = 5, x in {2, 3}: only a small fraction achieves gap <= 0.1
    # (the paper: "only about 10% of the system sizes").
    for x in (2, 3):
        assert by_combo[(5, x)].fraction_at_most(0.1) < 0.2, x
    # Trivial strata (x + 1 = r) always have zero gap.
    for r in (2, 3, 4, 5):
        assert by_combo[(r, r - 1)].fraction_at_most(0.0) == 1.0
