"""Fig. 8 bench: prAvail_rnd / b curves for s in 1..5 at b = 38400.

Paper takeaways: s = 1 performs far worse than s >= 2 (separate axis in the
paper); availability improves dramatically as s approaches r; larger n or
smaller r helps at fixed s.
"""

from conftest import emit

from repro.analysis import fig8


def test_fig8_pravail_fractions(benchmark):
    result = benchmark.pedantic(fig8.generate, rounds=1, iterations=1)
    panels = "\n\n".join(
        result.render_plot(s) for s in sorted(result.by_s())
    )
    emit("fig8", result.render() + "\n\n" + panels)
    by_key = {(e.n, e.r, e.s): dict(e.points) for e in result.series}
    # s = 1 decays fast; s = 5 stays essentially perfect (paper's axes).
    assert by_key[(71, 5, 1)][10] < 0.55
    assert by_key[(71, 5, 5)][10] > 0.998
    # At fixed s, bigger n is better and smaller r is better.
    assert by_key[(257, 3, 2)][8] >= by_key[(71, 3, 2)][8]
    assert by_key[(71, 3, 2)][8] >= by_key[(71, 5, 2)][8]
    # Monotone decay in k everywhere.
    for points in by_key.values():
        ks = sorted(points)
        assert all(points[a] >= points[b] for a, b in zip(ks, ks[1:]))
