"""Fig. 7 bench: convergence of prAvail_rnd to empirical Random availability.

Paper takeaway: the Theorem-2 limit is within ~10% of simulated Random
placements once b >= 600, justifying its use as the Fig. 9 baseline.
REPRO_REPS (default 5; the paper used 20) and REPRO_B_MAX (default 9600)
control the cost.
"""

from conftest import emit

from repro.analysis import fig7


def test_fig7_pravail_convergence(benchmark):
    result = benchmark.pedantic(fig7.generate, rounds=1, iterations=1)
    emit("fig7", result.render())
    for cell in result.cells:
        if cell.b >= 600:
            assert abs(cell.error_percent) <= 10.0, cell
