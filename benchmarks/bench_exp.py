"""Experiment-engine benchmark: sharded runner vs serial sweep, and resume.

Measures the declarative engine on the paper's two simulation sweeps
(the Fig. 2 tightness grid and the Fig. 7 Monte-Carlo grid):

* **serial**: every shard computed in-process, in expansion order — the
  same work and the same results as the pre-refactor hand-written figure
  loops (pinned bit-identical by ``tests/exp/test_figures_pinned.py``);
* **sharded**: the same specs through ``run_experiment(workers=N)``.
  Results are bit-identical by construction; only wall-clock changes;
* **predicted speedup**: shard-level serial timings scheduled
  longest-processing-time-first onto N virtual workers. On a machine
  with fewer than N cores the measured sharded time cannot beat serial
  (the work is CPU-bound), so the record carries both the measurement
  and the schedule-derived prediction together with ``cpu_count`` —
  read the measured number when cores >= workers, the predicted one
  otherwise;
* **resume**: a fig2 run interrupted at roughly half its cells, then
  resumed; the record asserts zero completed cells were recomputed and
  that the resumed store is byte-identical to an uninterrupted run.

Run::

    PYTHONPATH=src python benchmarks/bench_exp.py

Writes ``BENCH_5.json`` at the repository root (override with
``REPRO_BENCH_OUT``). ``REPRO_WORKERS`` sets the sharded worker count
(default 4); ``REPRO_REPS``/``REPRO_B_MAX`` scale the grids as usual.
"""

import json
import os
import pathlib
import sys
import tempfile
import time

from repro.analysis import fig2, fig7
from repro.core.batch import clear_attack_caches
from repro.exp.registry import kernel
from repro.exp.runner import run_experiment
from repro.exp.store import RunStore

DEFAULT_WORKERS = 4


def _group_slices(spec):
    definition = kernel(spec.experiment)
    cells = definition.expand(spec)
    slices = []
    start = 0
    for index in range(1, len(cells) + 1):
        if index == len(cells) or (
            definition.group_key(spec, cells[index])
            != definition.group_key(spec, cells[start])
        ):
            slices.append(cells[start:index])
            start = index
    return definition, cells, slices


def time_serial(spec):
    """Per-shard serial timings (the pre-refactor execution pattern)."""
    definition, cells, slices = _group_slices(spec)
    clear_attack_caches()
    group_seconds = []
    results = []
    for group in slices:
        begin = time.perf_counter()
        results.extend(definition.run_group(spec, group))
        group_seconds.append(time.perf_counter() - begin)
    normalized = json.loads(json.dumps(results))
    return sum(group_seconds), group_seconds, normalized


def time_sharded(spec, workers):
    clear_attack_caches()
    begin = time.perf_counter()
    run = run_experiment(spec, workers=workers)
    return time.perf_counter() - begin, run.metrics


def lpt_makespan(durations, machines):
    """Longest-processing-time-first schedule length on ``machines``."""
    loads = [0.0] * machines
    for duration in sorted(durations, reverse=True):
        loads[loads.index(min(loads))] += duration
    return max(loads) if loads else 0.0


def bench_grid(name, spec, workers):
    serial_seconds, group_seconds, serial_metrics = time_serial(spec)
    sharded_seconds, sharded_metrics = time_sharded(spec, workers)
    if serial_metrics != sharded_metrics:
        raise AssertionError(
            f"{name}: sharded metrics diverged from serial metrics"
        )
    makespan = lpt_makespan(group_seconds, workers)
    return {
        "spec_hash": spec.spec_hash()[:16],
        "cells": len(kernel(spec.experiment).expand(spec)),
        "shards": len(group_seconds),
        "serial_seconds": round(serial_seconds, 4),
        "sharded_seconds": round(sharded_seconds, 4),
        "measured_speedup": round(serial_seconds / sharded_seconds, 2),
        "max_shard_seconds": round(max(group_seconds), 4),
        "predicted_makespan_seconds": round(makespan, 4),
        "predicted_speedup": round(serial_seconds / makespan, 2),
        "bit_identical": True,
    }


def bench_resume(spec):
    with tempfile.TemporaryDirectory() as root:
        interrupted = RunStore(os.path.join(root, "interrupted"))
        reference = RunStore(os.path.join(root, "reference"))
        total = len(kernel(spec.experiment).expand(spec))
        partial = run_experiment(spec, store=interrupted, limit=total // 2)
        resumed = run_experiment(spec, store=interrupted, resume=True)
        uninterrupted = run_experiment(spec, store=reference)
        with open(interrupted.cells_file(spec), "rb") as handle:
            resumed_bytes = handle.read()
        with open(reference.cells_file(spec), "rb") as handle:
            reference_bytes = handle.read()
        record = {
            "total_cells": total,
            "interrupted_after": partial.computed,
            "resumed_loaded": resumed.loaded,
            "resumed_computed": resumed.computed,
            "recomputed_completed_cells": resumed.recomputed,
            "store_bit_identical": resumed_bytes == reference_bytes,
            "rerender_recompute": run_experiment(
                spec, store=interrupted
            ).computed,
        }
    if record["recomputed_completed_cells"] != 0:
        raise AssertionError("resume recomputed completed cells")
    if not record["store_bit_identical"]:
        raise AssertionError("resumed store diverged from uninterrupted run")
    if record["rerender_recompute"] != 0:
        raise AssertionError("re-render of a complete run recomputed cells")
    if record["resumed_loaded"] != record["interrupted_after"]:
        raise AssertionError("resume did not serve the stored prefix")
    return record


def main() -> int:
    workers = int(os.environ.get("REPRO_WORKERS", "") or DEFAULT_WORKERS)
    fig2_spec = fig2.default_spec()
    fig7_spec = fig7.default_spec()
    fig2_record = bench_grid("fig2", fig2_spec, workers)
    fig7_record = bench_grid("fig7", fig7_spec, workers)
    serial_total = fig2_record["serial_seconds"] + fig7_record["serial_seconds"]
    sharded_total = (
        fig2_record["sharded_seconds"] + fig7_record["sharded_seconds"]
    )
    predicted_total = (
        fig2_record["predicted_makespan_seconds"]
        + fig7_record["predicted_makespan_seconds"]
    )
    report = {
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "fig2": fig2_record,
        "fig7": fig7_record,
        "combined": {
            "serial_seconds": round(serial_total, 4),
            "sharded_seconds": round(sharded_total, 4),
            "measured_speedup": round(serial_total / sharded_total, 2),
            "predicted_speedup": round(serial_total / predicted_total, 2),
            "note": (
                "measured_speedup is authoritative when cpu_count >= "
                "workers; on smaller hosts the CPU-bound shards cannot "
                "overlap and predicted_speedup (LPT schedule of measured "
                "shard times) is the honest estimate"
            ),
        },
        "resume": bench_resume(fig2_spec),
    }
    out_path = os.environ.get(
        "REPRO_BENCH_OUT",
        str(pathlib.Path(__file__).resolve().parent.parent / "BENCH_5.json"),
    )
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=1)
        handle.write("\n")
    print(json.dumps(report, indent=1))
    return 0


if __name__ == "__main__":
    sys.exit(main())
