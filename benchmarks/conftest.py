"""Benchmark harness helpers.

Every benchmark regenerates one of the paper's tables/figures, times the
generator, and emits the rendered result twice:

* to ``benchmarks/output/<name>.txt`` for side-by-side comparison with the
  paper (see EXPERIMENTS.md);
* through the pytest terminal summary, so ``pytest benchmarks/
  --benchmark-only | tee bench_output.txt`` records every table even
  though pytest captures per-test stdout.

Effort knobs: REPRO_EFFORT (fast|auto|exact), REPRO_REPS (Monte-Carlo
repetitions; the paper used 20), REPRO_B_MAX (object-count cap for the
simulation-heavy figures).
"""

import pathlib
from typing import Dict

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

_EMITTED: Dict[str, str] = {}


def emit(name: str, text: str) -> None:
    """Persist a rendered experiment and queue it for the terminal summary."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
    _EMITTED[name] = text
    # Also print for anyone running with -s.
    print(f"\n===== {name} =====")
    print(text)


@pytest.hookimpl(trylast=True)
def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _EMITTED:
        return
    terminalreporter.write_sep("=", "reproduced paper artifacts")
    for name in sorted(_EMITTED):
        terminalreporter.write_line("")
        terminalreporter.write_sep("-", name)
        for line in _EMITTED[name].splitlines():
            terminalreporter.write_line(line)
