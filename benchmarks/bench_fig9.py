"""Fig. 9 bench: the headline Combo-vs-Random tables (n = 71 and n = 257).

Cells are 100 * (lbAvail_co - prAvail) / (b - prAvail); positive means the
Combo *guarantee* beats what Random *probably* achieves. The reproduction
matches the paper's sign pattern and trends (cells can differ by a few
points: prAvail is integer-valued and small-b cells are sensitive to +-1
object; see EXPERIMENTS.md for the cell-level comparison).
"""

from conftest import emit

from repro.analysis import fig9


def test_fig9a_n71(benchmark):
    result = benchmark.pedantic(
        fig9.generate, args=(71, 7), rounds=1, iterations=1
    )
    emit("fig9a", result.render())
    _check_paper_trends(result, n=71)


def test_fig9b_n257(benchmark):
    result = benchmark.pedantic(
        fig9.generate, args=(257, 8), rounds=1, iterations=1
    )
    emit("fig9b", result.render())
    _check_paper_trends(result, n=257)


def _check_paper_trends(result, n):
    # Trend 1 (paper Sec. IV-B): "Combo wins most of the time".
    cells = [cell for table in result.tables for cell in table.cells.values()]
    combo_wins = sum(1 for c in cells if c.winner == "combo")
    random_wins = sum(1 for c in cells if c.winner == "random")
    assert combo_wins > 2 * random_wins, (combo_wins, random_wins)

    # Trend 2: the r = s = 2 table becomes a clean Combo sweep once b is
    # large enough. The paper's own 9b has zero/negative cells up to
    # b = 4800 at n = 257 (larger n needs more objects before packings
    # beat Random), so the sweep threshold scales with n.
    table22 = result.table_for(2, 2)
    sweep_from = 2400 if n <= 71 else 9600
    for (b, k), cell in table22.cells.items():
        if b >= sweep_from:
            assert cell.winner == "combo", (b, k)

    # Trend 3: within a row, improvement weakly decreases with k for r=2
    # (more failures erode the guarantee relative to Random). At small b
    # the denominator b - prAvail is a handful of objects and integer
    # jumps break strict monotonicity, so check the settled rows.
    for b in table22.b_values:
        if b < sweep_from:
            continue
        row = [
            table22.cells[(b, k)].improvement_percent for k in table22.k_values
        ]
        assert all(x >= y - 1e-9 for x, y in zip(row, row[1:])), (b, row)
