"""Fig. 6 bench: re-plot of the hard r = 5 cases with mu_x <= 5 and <= 10.

Paper takeaway: allowing mu <= 5 dramatically improves x = 3, and mu <= 10
additionally improves x = 2. The mu > 1 catalog is divisibility-based
(documented as the optimistic tier; see EXPERIMENTS.md).
"""

from conftest import emit

from repro.analysis import fig5


def test_fig6_mu_relaxation(benchmark):
    mu5, mu10 = benchmark.pedantic(fig5.generate_fig6, rounds=1, iterations=1)
    emit("fig6", mu5.render() + "\n\n" + mu10.render())
    strict = fig5.generate(combos=((5, 2), (5, 3)))
    strict_by_x = {cdf.x: cdf for cdf in strict.cdfs}
    mu5_by_x = {cdf.x: cdf for cdf in mu5.cdfs}
    mu10_by_x = {cdf.x: cdf for cdf in mu10.cdfs}
    for x in (2, 3):
        at_mu1 = strict_by_x[x].fraction_at_most(0.05)
        at_mu5 = mu5_by_x[x].fraction_at_most(0.05)
        at_mu10 = mu10_by_x[x].fraction_at_most(0.05)
        assert at_mu5 >= at_mu1
        assert at_mu10 >= at_mu5
        assert at_mu10 > 0.9  # "dramatic" improvement, as in the paper
