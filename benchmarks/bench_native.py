"""Perf record for the multicore native kernel + mmap substrate (BENCH_6.json).

Two sections:

* **thread sweep** — a fixed kernel workload (bulk gain rebuild,
  add/remove segment sweeps, a polish pass, one local-search attack) at
  1 / 2 / 4 kernel threads over a b = 2e6 instance whose node segments
  cross every ``GK_MT_*`` threshold. The sweep *always* asserts
  bit-identity: packed gain-state bytes, polished node lists and full
  :class:`AttackResult` values must match the serial run exactly at
  every thread count. Wall-clock speedup is **measured** and recorded
  together with ``cpu_count``; the measured number is only gated
  (>= 1.8x at 4 threads) on hosts with >= 4 cores. On smaller hosts the
  record additionally carries a clearly-labeled **partition-predicted**
  speedup (Amdahl over the kernel's partition structure: per-object /
  per-segment loop units scale with lanes, the per-lane gain-table merge
  and dispatch do not) — an honest "what the partitioning permits", not
  a claim about this host.
* **mmap scale** — a b = 1e7 placement artifact loaded to engine-ready
  (placement constructed, row buffer addressable, spot row reads) in a
  fresh subprocess, eagerly vs ``mmap=True``, recording wall clock and
  ``ru_maxrss``. The mmap arm must come in below the eager arm's
  resident memory: the eager path holds a 120 MB heap copy of the rows,
  the mapped path pages in only what is touched.

Run (writes the repo-top-level ``BENCH_6.json``)::

    PYTHONPATH=src python benchmarks/bench_native.py

CI smoke (small sizes, gates only, no BENCH_6.json)::

    PYTHONPATH=src python benchmarks/bench_native.py --smoke
"""

import argparse
import json
import os
import pathlib
import random
import subprocess
import sys
import tempfile
import time

from repro.core import native
from repro.core.adversary import best_attack
from repro.core.kernels import make_kernel, numpy_available
from repro.core.random_placement import RandomStrategy

BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_6.json"
OUTPUT_DIR = pathlib.Path(__file__).resolve().parent / "output"

THREAD_COUNTS = (1, 2, 4)
#: Measured-speedup gate at 4 threads, applied only when the host really
#: has >= 4 cores; a loaded CI runner still has ~10% headroom under the
#: near-linear scaling the partitioned loops allow.
SPEEDUP_FLOOR = 1.8

#: Thread-sweep instance: heavy node segments (b * r / n = 250k) so the
#: bulk, segment and sweep paths all cross their GK_MT_* thresholds.
SWEEP_N, SWEEP_R, SWEEP_B, SWEEP_S = 24, 3, 2_000_000, 2
SWEEP_REPS = 3
#: mmap-scale instance (the ISSUE 6 headline scale).
MMAP_N, MMAP_R, MMAP_B = 512, 3, 10_000_000
SPOT_ROWS = 1024

SMOKE_SWEEP = (12, 3, 60_000, 2)
SMOKE_MMAP_B = 200_000


def _configured(threads):
    class _Ctx:
        def __enter__(self):
            self.previous = native.configured_threads()
            native.configure_threads(threads)

        def __exit__(self, *exc):
            native.configure_threads(self.previous)

    return _Ctx()


def sweep_placement(n, r, b):
    return RandomStrategy(n, r).place(b, random.Random(17))


def sweep_workload(kernel, n):
    """One deterministic pass over every threaded kernel path.

    Returns the full observable outcome — damages, polished nodes and
    the packed gain-state bytes — so callers can compare runs
    byte-for-byte.
    """
    bulk = list(range(0, min(12, n), 2))  # 6 nodes: heavy fold
    hits = kernel.hits_for(bulk)
    bulk_damage = kernel.damage_of(hits)
    extra = (max(bulk) + 1) % n
    hits = kernel.add_node(hits, extra)
    hits = kernel.remove_node(hits, extra)
    nodes = list(bulk)
    hits, polished_damage, improved = kernel.polish_pass(
        hits, nodes, kernel.damage_of(hits)
    )
    state = hits.state.tobytes() if hasattr(hits, "state") else bytes()
    return (bulk_damage, polished_damage, improved, tuple(nodes), state)


def predicted_speedups(b, r, n, bulk_nodes):
    """Amdahl over the partition structure, clearly labeled a prediction.

    Parallel units: the per-object flag/count/gain loops of a bulk
    rebuild (``fold + 2b``) plus the polish sweep's segment walks.
    Serial units: per-lane gain-table merges (``lanes * (n + 1)`` per
    threaded call) plus a fixed dispatch cost per call. This is what the
    partitioning permits under ideal scaling — the measured numbers on
    this host are recorded next to it.
    """
    fold = bulk_nodes * (b * r // n)
    parallel_units = fold + 2 * b
    out = {}
    for lanes in THREAD_COUNTS:
        serial_units = lanes * (n + 1) + 4096  # merge + dispatch per call
        p = parallel_units / (parallel_units + serial_units)
        out[str(lanes)] = round(1.0 / ((1.0 - p) + p / lanes), 3)
    return out


def thread_sweep(n, r, b, s, reps, report):
    placement = sweep_placement(n, r, b)
    outcomes = {}
    seconds = {}
    attacks = {}
    for threads in THREAD_COUNTS:
        with _configured(threads):
            kernel = make_kernel(
                placement, s, backend="gain", gain_backing="native"
            )
            outcomes[threads] = sweep_workload(kernel, n)
            best = None
            for _ in range(reps):
                start = time.perf_counter()
                sweep_workload(kernel, n)
                elapsed = time.perf_counter() - start
                best = elapsed if best is None else min(best, elapsed)
            seconds[threads] = best
            attacks[threads] = best_attack(
                placement,
                4,
                s,
                effort="fast",
                rng=random.Random(5),
                kernel=kernel,
            )
    bit_identical = all(
        outcomes[t] == outcomes[1] and attacks[t] == attacks[1]
        for t in THREAD_COUNTS
    )
    cores = os.cpu_count() or 1
    measured = {
        str(t): round(seconds[1] / seconds[t], 3) for t in THREAD_COUNTS
    }
    report["thread_sweep"] = {
        "n": n, "r": r, "b": b, "s": s,
        "cpu_count": cores,
        "threads": list(THREAD_COUNTS),
        "workload_seconds": {
            str(t): round(seconds[t], 4) for t in THREAD_COUNTS
        },
        "measured_speedup": measured,
        "measured_speedup_gated": cores >= 4,
        "partition_predicted_speedup": predicted_speedups(
            b, r, n, min(12, n) // 2
        ),
        "attack_damage": attacks[1].damage,
        "bit_identical": bit_identical,
    }
    status = 0
    if not bit_identical:
        print(
            "FAIL: threaded kernel results diverged from serial",
            file=sys.stderr,
        )
        status = 1
    if cores >= 4 and measured["4"] < SPEEDUP_FLOOR:
        print(
            f"FAIL: measured 4-thread speedup {measured['4']}x below the "
            f"{SPEEDUP_FLOOR}x floor on a {cores}-core host",
            file=sys.stderr,
        )
        status = 1
    return status


def synth_rows(b, n, r):
    """Valid sorted/distinct rows at scale, vectorized (numpy required)."""
    import numpy as np

    starts = (np.arange(b, dtype=np.int64) * 7919) % (n - r)
    return (starts[:, None] + np.arange(r, dtype=np.int64)[None, :]).astype(
        np.int32
    )


def _peak_rss_kb():
    """This process's own peak RSS in KB.

    ``getrusage`` is a trap here: on Linux a forked child's maxrss folds
    in the parent's pre-exec address space, so a benchmark parent holding
    the synthesized rows would inflate every child identically. VmHWM
    comes from the post-exec mm and only counts what the child itself
    touched.
    """
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:  # pragma: no cover - non-procfs platforms
        pass
    import resource  # pragma: no cover - fallback, coarser semantics

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _measure_child(mode, path):
    """Subprocess arm: load to engine-ready, report wall + peak RSS."""
    from repro.core.artifact import load_placement

    start = time.perf_counter()
    placement = load_placement(path, validate=False, mmap=(mode == "mmap"))
    rows = placement.replica_array()
    load_seconds = time.perf_counter() - start
    rng = random.Random(3)
    spot = 0
    for _ in range(SPOT_ROWS):
        obj = rng.randrange(placement.b)
        spot ^= rows[obj * placement.r]
    seconds = time.perf_counter() - start
    peak_kb = _peak_rss_kb()
    print(json.dumps({
        "mode": mode,
        "b": placement.b,
        "load_seconds": round(load_seconds, 4),
        "engine_ready_seconds": round(seconds, 4),
        "max_rss_kb": peak_kb,
        "spot_xor": spot,
    }))


def _measure(mode, path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(
        pathlib.Path(__file__).resolve().parent.parent / "src"
    )
    out = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--_measure", mode, path],
        capture_output=True, text=True, env=env, check=True,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def mmap_scale(b, n, r, report, gate_rss):
    from repro.core.artifact import save_npz
    from repro.core.placement import Placement

    rows = synth_rows(b, n, r)
    placement = Placement.from_arrays(n, rows, strategy="bench", validate=False)
    with tempfile.TemporaryDirectory() as scratch:
        path = os.path.join(scratch, "p.npz")
        start = time.perf_counter()
        save_npz(placement, path)
        save_seconds = time.perf_counter() - start
        eager = _measure("eager", path)
        mapped = _measure("mmap", path)
    if eager["spot_xor"] != mapped["spot_xor"]:
        print("FAIL: mmap spot reads diverged from eager", file=sys.stderr)
        return 1
    report["mmap_scale"] = {
        "n": n, "r": r, "b": b,
        "artifact_bytes": 4 * b * r,
        "save_seconds": round(save_seconds, 4),
        "spot_rows": SPOT_ROWS,
        "eager": {k: eager[k] for k in (
            "load_seconds", "engine_ready_seconds", "max_rss_kb"
        )},
        "mmap": {k: mapped[k] for k in (
            "load_seconds", "engine_ready_seconds", "max_rss_kb"
        )},
        "rss_ratio": round(eager["max_rss_kb"] / mapped["max_rss_kb"], 2),
        "rss_gated": gate_rss,
    }
    if gate_rss and mapped["max_rss_kb"] >= eager["max_rss_kb"]:
        print(
            f"FAIL: mmap engine-ready RSS {mapped['max_rss_kb']} KB not "
            f"below eager baseline {eager['max_rss_kb']} KB",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes, gates only, no BENCH_6.json",
    )
    parser.add_argument(
        "--_measure", nargs=2, metavar=("MODE", "PATH"), default=None,
        help=argparse.SUPPRESS,
    )
    args = parser.parse_args(argv)
    if args._measure is not None:
        _measure_child(*args._measure)
        return 0

    if not native.available():
        print(
            f"SKIP: native kernel unavailable ({native.load_error()}); "
            "nothing to benchmark",
        )
        return 0
    report = {"compile_info": native.compile_info()}
    if args.smoke:
        n, r, b, s = SMOKE_SWEEP
        status = thread_sweep(n, r, b, s, reps=1, report=report)
        if numpy_available():
            # Tiny artifact: only correctness gates; the interpreter
            # baseline swamps any RSS signal at this size.
            status = mmap_scale(
                SMOKE_MMAP_B, MMAP_N, MMAP_R, report, gate_rss=False
            ) or status
        print(json.dumps(report, indent=1))
        return status

    status = thread_sweep(
        SWEEP_N, SWEEP_R, SWEEP_B, SWEEP_S, reps=SWEEP_REPS, report=report
    )
    if numpy_available():
        status = mmap_scale(
            MMAP_B, MMAP_N, MMAP_R, report, gate_rss=True
        ) or status
    else:  # pragma: no cover - numpy is present everywhere we run this
        report["mmap_scale"] = {"skipped": "numpy unavailable"}
    text = json.dumps(report, indent=1)
    print(text)
    if status == 0:
        BENCH_PATH.write_text(text + "\n")
        OUTPUT_DIR.mkdir(exist_ok=True)
        (OUTPUT_DIR / "BENCH_native.json").write_text(text + "\n")
    return status


if __name__ == "__main__":
    sys.exit(main())
