"""One parameterized driver for every paper figure/table benchmark.

Pre-refactor this directory held one ``bench_figN.py`` per figure, each
with its own sweep call and render; the sweeps now live in the
:mod:`repro.exp` registry, so a single driver runs every registered
figure through the experiment engine, times it, emits the rendered
artifact (same ``benchmarks/output/<name>.txt`` files as before, plot
panels included), and applies the figure's paper-trend assertions.

Effort knobs are unchanged: ``REPRO_EFFORT`` (fast|auto|exact),
``REPRO_REPS`` (Monte-Carlo repetitions; the paper used 20) and
``REPRO_B_MAX`` (object-count cap for the simulation-heavy figures)
resolve into each spec when it is built. ``REPRO_WORKERS`` shards the
sweeps across processes without changing a single value.
"""

import math

import pytest
from conftest import emit

from repro.analysis import fig5 as fig5_module
from repro.core.rand_analysis import pr_avail_rnd
from repro.exp.registry import figure_names, figure_spec
from repro.exp.runner import run_experiment
from repro.util.asciiplot import cdf_plot


def _check_fig2(result) -> None:
    # Shape assertions mirroring the paper's plot: gaps are small relative
    # to b and (weakly) grow with b for s = 3.
    for cell in result.cells:
        assert cell.gap <= 40, f"gap blew up: {cell}"
        if cell.exact:
            assert cell.gap >= 0


def _check_fig3(result) -> None:
    # Ratio of lower bounds stays between 99% and 100% for k' in [4, 8].
    for point in result.points:
        assert 98.0 <= point.ratio_percent <= 100.0 + 1e-9, point
        if point.k_actual == point.k_configured:
            assert point.ratio_percent == 100.0


def _check_fig4(result) -> None:
    # All cells match the paper except the two source-corrupted entries.
    mismatched = {(c.n, c.r, c.x) for c in result.cells if c.matches_paper is False}
    assert mismatched == {(71, 4, 1), (71, 5, 3)}


def _check_fig5(result) -> None:
    by_combo = {(cdf.r, cdf.x): cdf for cdf in result.cdfs}
    # r <= 4: nearly every system size achieves gap <= 0.1.
    for r, x in [(2, 1), (3, 1), (4, 1), (4, 2)]:
        assert by_combo[(r, x)].fraction_at_most(0.1) > 0.9, (r, x)
    # r = 5, x in {2, 3}: only a small fraction achieves gap <= 0.1
    # (the paper: "only about 10% of the system sizes").
    for x in (2, 3):
        assert by_combo[(5, x)].fraction_at_most(0.1) < 0.2, x
    # Trivial strata (x + 1 = r) always have zero gap.
    for r in (2, 3, 4, 5):
        assert by_combo[(r, r - 1)].fraction_at_most(0.0) == 1.0


def _check_fig6(result) -> None:
    # mu <= 5 dramatically improves x = 3; mu <= 10 additionally x = 2.
    mu5, mu10 = result
    strict = fig5_module.generate(combos=((5, 2), (5, 3)))
    strict_by_x = {cdf.x: cdf for cdf in strict.cdfs}
    mu5_by_x = {cdf.x: cdf for cdf in mu5.cdfs}
    mu10_by_x = {cdf.x: cdf for cdf in mu10.cdfs}
    for x in (2, 3):
        at_mu1 = strict_by_x[x].fraction_at_most(0.05)
        at_mu5 = mu5_by_x[x].fraction_at_most(0.05)
        at_mu10 = mu10_by_x[x].fraction_at_most(0.05)
        assert at_mu5 >= at_mu1
        assert at_mu10 >= at_mu5
        assert at_mu10 > 0.9  # "dramatic" improvement, as in the paper


def _check_fig7(result) -> None:
    # The Theorem-2 limit is within ~10% of simulated Random placements
    # once b >= 600, justifying its use as the Fig. 9 baseline.
    for cell in result.cells:
        if cell.b >= 600:
            assert abs(cell.error_percent) <= 10.0, cell


def _check_fig8(result) -> None:
    by_key = {(e.n, e.r, e.s): dict(e.points) for e in result.series}
    # s = 1 decays fast; s = 5 stays essentially perfect (paper's axes).
    assert by_key[(71, 5, 1)][10] < 0.55
    assert by_key[(71, 5, 5)][10] > 0.998
    # At fixed s, bigger n is better and smaller r is better.
    assert by_key[(257, 3, 2)][8] >= by_key[(71, 3, 2)][8]
    assert by_key[(71, 3, 2)][8] >= by_key[(71, 5, 2)][8]
    # Monotone decay in k everywhere.
    for points in by_key.values():
        ks = sorted(points)
        assert all(points[a] >= points[b] for a, b in zip(ks, ks[1:]))


def _check_fig9(result) -> None:
    n = result.n
    # Trend 1 (paper Sec. IV-B): "Combo wins most of the time".
    cells = [cell for table in result.tables for cell in table.cells.values()]
    combo_wins = sum(1 for c in cells if c.winner == "combo")
    random_wins = sum(1 for c in cells if c.winner == "random")
    assert combo_wins > 2 * random_wins, (combo_wins, random_wins)

    # Trend 2: the r = s = 2 table becomes a clean Combo sweep once b is
    # large enough; the threshold scales with n.
    table22 = result.table_for(2, 2)
    sweep_from = 2400 if n <= 71 else 9600
    for (b, k), cell in table22.cells.items():
        if b >= sweep_from:
            assert cell.winner == "combo", (b, k)

    # Trend 3: within a settled row, improvement weakly decreases with k.
    for b in table22.b_values:
        if b < sweep_from:
            continue
        row = [
            table22.cells[(b, k)].improvement_percent for k in table22.k_values
        ]
        assert all(x >= y - 1e-9 for x, y in zip(row, row[1:])), (b, row)


def _check_fig10(results) -> None:
    by_n = {result.n: result for result in results}
    # Combo dominates both pure strata everywhere.
    for result in by_n.values():
        for row in result.rows:
            for k, combo_value in row.combo_percent.items():
                for per_k in row.simple_percent.values():
                    if not math.isnan(per_k[k]) and not math.isnan(combo_value):
                        assert combo_value >= per_k[k] - 1e-9

    # The paper's strict-mix anchor: n = 31, b = 4800, k in {5, 6}.
    n31 = by_n[31]
    row4800 = next(row for row in n31.rows if row.b == 4800)
    for k in (5, 6):
        assert row4800.combo_percent[k] > row4800.simple_percent[1][k]
        assert row4800.combo_percent[k] > row4800.simple_percent[2][k]

    # Lambda pressure: x = 1 lambda strictly grows with b.
    lams = [row.simple_lambdas[1] for row in n31.rows]
    assert lams == sorted(lams) and lams[-1] > lams[0]


def _check_fig11(result) -> None:
    by_key = {(e.n, e.r): dict(e.points) for e in result.series}
    # Paper anchor values at k = 10 (read off the plot).
    assert abs(by_key[(71, 5)][10] - 0.49) < 0.02
    assert abs(by_key[(71, 3)][10] - 0.655) < 0.02
    assert by_key[(257, 3)][10] > by_key[(71, 3)][10]
    # Slope ordering: decay steeper for larger r at fixed n.
    assert by_key[(71, 5)][10] < by_key[(71, 3)][10]
    assert by_key[(257, 5)][10] < by_key[(257, 3)][10]


def _check_appendix_a(result) -> None:
    by_key = {(c.n, c.r, c.b, c.k): c for c in result.cells}
    # Random wins the paper's regime (n = 71, r = 5, large b, k >= 3),
    # increasingly so in k.
    margins = [by_key[(71, 5, 38400, k)].margin for k in (3, 4, 5)]
    assert all(m < 0 for m in margins)
    assert margins[0] > margins[1] > margins[2]

    # Whoever wins, the margin is small against the total damage.
    for cell in result.cells:
        losses = cell.b - min(cell.lb_simple0, cell.pr_avail)
        assert abs(cell.margin) <= max(10, losses), cell

    # Both are poor: s = 1 losses dwarf s = 2 losses at the same point.
    cell = by_key[(71, 5, 38400, 5)]
    s1_random_losses = cell.b - cell.pr_avail
    s2_random_losses = cell.b - pr_avail_rnd(71, 5, 5, 2, 38400)
    assert s1_random_losses > 5 * s2_random_losses

    # Lemma 4 really is an upper bound on prAvail for every cell.
    for cell in result.cells:
        assert cell.pr_avail <= cell.lemma4_bound + 1


def _emit_fig5(name, result) -> None:
    r5_plot = cdf_plot(
        [
            (f"x={cdf.x}", list(cdf.gaps))
            for cdf in result.cdfs
            if cdf.r == 5 and cdf.x in (1, 2, 3)
        ],
        title="Fig 5 (r=5): capacity-gap CDFs",
        x_label="capacity gap",
    )
    emit(name, result.render() + "\n\n" + r5_plot)


def _emit_fig8(name, result) -> None:
    panels = "\n\n".join(result.render_plot(s) for s in sorted(result.by_s()))
    emit(name, result.render() + "\n\n" + panels)


def _emit_fig11(name, result) -> None:
    emit(name, result.render() + "\n\n" + result.render_plot())


_CHECKS = {
    "fig2": _check_fig2,
    "fig3": _check_fig3,
    "fig4": _check_fig4,
    "fig5": _check_fig5,
    "fig6": _check_fig6,
    "fig7": _check_fig7,
    "fig8": _check_fig8,
    "fig9a": _check_fig9,
    "fig9b": _check_fig9,
    "fig10": _check_fig10,
    "fig11": _check_fig11,
    "appendix_a": _check_appendix_a,
}

_EMITTERS = {
    "fig5": _emit_fig5,
    "fig8": _emit_fig8,
    "fig11": _emit_fig11,
}

@pytest.mark.parametrize("name", figure_names())
def test_figure(name, benchmark):
    from repro.exp.registry import kernel

    spec = figure_spec(name)
    run = benchmark.pedantic(
        run_experiment, args=(spec,), rounds=1, iterations=1
    )
    result = run.result()
    emitter = _EMITTERS.get(spec.experiment)
    if emitter is None:
        emit(name, kernel(spec.experiment).render(result))
    else:
        emitter(name, result)
    _CHECKS[name](result)
