"""Fig. 10 bench: the per-stratum breakdown of Combo placements (r = s = 3).

Paper takeaways reproduced here:
* as b grows at fixed x, lambda must grow (Eqn. 1) and the Simple(x, .)
  guarantee erodes;
* moving from x = 1 to x = 2 relieves lambda pressure (visible as the
  Combo column tracking x = 2 at large b);
* larger n pushes Combo back toward smaller x (compare the n = 31 and
  n = 257 tables);
* Combo >= max(pure strata) always, with strict improvement at the n = 31
  crossover (b = 4800, k in {5, 6}) the paper calls out.
"""

import math

from conftest import emit

from repro.analysis import fig10


def _generate_all():
    return {n: fig10.generate(n) for n in (31, 71, 257)}


def test_fig10_breakdown(benchmark):
    results = benchmark.pedantic(_generate_all, rounds=1, iterations=1)
    emit(
        "fig10",
        "\n\n".join(results[n].render() for n in (31, 71, 257)),
    )

    # Combo dominates both pure strata everywhere.
    for result in results.values():
        for row in result.rows:
            for k, combo_value in row.combo_percent.items():
                for per_k in row.simple_percent.values():
                    if not math.isnan(per_k[k]) and not math.isnan(combo_value):
                        assert combo_value >= per_k[k] - 1e-9

    # The paper's strict-mix anchor: n = 31, b = 4800, k in {5, 6}.
    n31 = results[31]
    row4800 = next(row for row in n31.rows if row.b == 4800)
    for k in (5, 6):
        assert row4800.combo_percent[k] > row4800.simple_percent[1][k]
        assert row4800.combo_percent[k] > row4800.simple_percent[2][k]

    # Lambda pressure: x = 1 lambda strictly grows with b.
    lams = [row.simple_lambdas[1] for row in n31.rows]
    assert lams == sorted(lams) and lams[-1] > lams[0]
