"""Fig. 2 bench: tightness of lbAvail_si under simulated worst-case failures.

Paper setting: Simple(1, lambda) from STS(69) on n = 71 nodes, r = 3,
s in {2, 3}, k in [s, 5], b in {600 ... 9600}. The paper's gap curves stay
within ~25 objects; the reproduced gaps should stay in the same band.
"""

from conftest import emit

from repro.analysis import fig2


def test_fig2_simple_bound_tightness(benchmark):
    result = benchmark.pedantic(
        fig2.generate,
        kwargs=dict(b_values=(600, 1200, 2400, 4800, 9600)),
        rounds=1,
        iterations=1,
    )
    emit("fig2", result.render())
    # Shape assertions mirroring the paper's plot: gaps are small relative
    # to b and (weakly) grow with b for s = 3.
    for cell in result.cells:
        assert cell.gap <= 40, f"gap blew up: {cell}"
        if cell.exact:
            assert cell.gap >= 0
