"""Warm-path benchmark: engine-state hydration + affinity-pool dispatch.

Two claims from the zero-rebuild warm path, measured and gated:

* **hydration** — rebuilding a warm :class:`AttackEngine` from a packed
  engine-state snapshot (mmap-backed ``.npz``) must be at least 5x
  faster than the cold path (placement construction, loads, CSR,
  fingerprint, incidence, per-threshold gain-kernel state) at million-
  object scale. The hydrated engine is checked bit-for-bit against the
  cold build: same fingerprint, same packed kernel state for every
  threshold, same attack results.
* **affinity dispatch** — the fig2 and fig7 grids through the
  persistent affinity-routed worker pool versus the fork-per-shard
  supervised baseline it replaced. Shards on these grids are
  milliseconds of compute, so per-shard fixed cost (fork + engine
  rebuild) dominates the baseline — exactly the workload the pool
  eliminates. Min-of-N alternating reps; results must be identical on
  both sides. The wall-clock gate only arms on hosts with >= 2 cores
  (on a single core neither mechanism can overlap compute and the
  comparison measures scheduler noise); single-core runs still record
  honest numbers with ``wall_clock_gated: false``.

Run::

    PYTHONPATH=src python benchmarks/bench_warm.py

Writes ``BENCH_9.json`` at the repository root (override with
``REPRO_BENCH_OUT``). CI smoke (small scale, gates only, looser
hydration gate because fixed per-file costs dominate tiny snapshots,
no BENCH_9.json)::

    PYTHONPATH=src python benchmarks/bench_warm.py --smoke

``REPRO_WORKERS`` sets the pool width (default 4).
"""

import argparse
import json
import os
import pathlib
import sys
import tempfile
import time

from repro.analysis import fig2, fig7
from repro.core.batch import (
    AttackCell,
    AttackEngine,
    clear_attack_caches,
    hydrate_engine,
    snapshot_engine,
)
from repro.core.placement import Placement
from repro.exp.registry import kernel as experiment_kernel
from repro.exp.runner import (
    _contiguous_groups,
    _run_sharded_forked,
    _run_sharded_pool,
)

DEFAULT_WORKERS = 4
HYDRATE_B_FULL, HYDRATE_B_SMOKE = 1_000_000, 60_000
HYDRATE_N, HYDRATE_R = 512, 3
HYDRATE_S_VALUES = (1, 2, 3)
HYDRATE_GATE_FULL = 5.0
HYDRATE_GATE_SMOKE = 2.0
POOL_GATE_FULL = 1.3
POOL_GATE_SMOKE = 1.0
ROOT = pathlib.Path(__file__).resolve().parent.parent


def _rows(b):
    """Valid sorted/distinct rows at scale, cheap to generate."""
    span = HYDRATE_N - HYDRATE_R
    return [
        tuple(range((i * 7919) % span, (i * 7919) % span + HYDRATE_R))
        for i in range(b)
    ]


def _cold_engine(rows):
    """Everything a cold process pays before its first attack."""
    placement = Placement.from_arrays(
        HYDRATE_N, rows, strategy="bench", validate=False
    )
    placement.load_array()
    placement.node_csr()
    placement.fingerprint()
    engine = AttackEngine(placement, backend="gain")
    for s in HYDRATE_S_VALUES:
        engine.kernel(s)
    return engine


def _warm_engine(path):
    """The same readiness via the snapshot (mmap + checksum verify)."""
    engine = hydrate_engine(path, backend="gain", mmap=True)
    if engine is None:
        raise AssertionError(f"{path}: snapshot refused to hydrate")
    for s in HYDRATE_S_VALUES:
        engine.kernel(s)
    return engine


def _packed_states(engine):
    states = {}
    for s in HYDRATE_S_VALUES:
        kernel = engine.kernel(s)
        export = getattr(kernel, "export_state", None)
        if export is not None:
            states[s] = export(kernel.empty_hits())
    return states


def _probe_attacks(engine):
    return [
        engine.attack(AttackCell(k, 2, "fast"), seed=3, cache=False)
        for k in (2, 3)
    ]


def bench_hydration(b, reps, gate):
    rows = _rows(b)
    with tempfile.TemporaryDirectory() as scratch:
        path = os.path.join(scratch, "engine.npz")
        cold_times, warm_times = [], []
        reference = None
        for _ in range(reps):
            clear_attack_caches()
            begin = time.perf_counter()
            cold = _cold_engine(rows)
            cold_times.append(time.perf_counter() - begin)
            if reference is None:
                snapshot_engine(cold, path, s_values=HYDRATE_S_VALUES)
                reference = {
                    "fingerprint": cold.placement.fingerprint(),
                    "states": _packed_states(cold),
                    "attacks": _probe_attacks(cold),
                }
            clear_attack_caches()
            begin = time.perf_counter()
            warm = _warm_engine(path)
            warm_times.append(time.perf_counter() - begin)
        identical = (
            warm.placement.fingerprint() == reference["fingerprint"]
            and _packed_states(warm) == reference["states"]
            and _probe_attacks(warm) == reference["attacks"]
        )
        snapshot_bytes = os.path.getsize(path)
    clear_attack_caches()
    best_cold, best_warm = min(cold_times), min(warm_times)
    speedup = best_cold / best_warm
    return {
        "b": b,
        "n": HYDRATE_N,
        "r": HYDRATE_R,
        "s_values": list(HYDRATE_S_VALUES),
        "reps": reps,
        "snapshot_bytes": snapshot_bytes,
        "cold_seconds": round(best_cold, 4),
        "hydrate_seconds": round(best_warm, 4),
        "speedup": round(speedup, 2),
        "gate": gate,
        "bit_identical": identical,
        "pass": identical and speedup >= gate,
    }


def _dispatch(spec, workers, run):
    """One timed pass of ``run`` over the spec's shards; returns metrics."""
    definition = experiment_kernel(spec.experiment)
    cells = [dict(cell) for cell in definition.expand(spec)]
    groups = _contiguous_groups(spec, definition, cells)
    metrics = [None] * len(cells)

    def flush(group, chunk):
        for offset, entry in enumerate(chunk):
            metrics[group.start + offset] = entry

    clear_attack_caches()
    begin = time.perf_counter()
    retries = run(spec, definition, cells, groups, workers, flush)
    elapsed = time.perf_counter() - begin
    if retries != 0:
        raise AssertionError(
            f"fault-free dispatch reported {retries} shard retries"
        )
    return elapsed, json.loads(json.dumps(metrics))


def bench_pool(spec, workers, reps, gate, gated):
    fork_times, pool_times = [], []
    for _ in range(reps):
        fork_seconds, fork_metrics = _dispatch(
            spec, workers, _run_sharded_forked
        )
        pool_seconds, pool_metrics = _dispatch(
            spec, workers, _run_sharded_pool
        )
        if fork_metrics != pool_metrics:
            raise AssertionError(
                "affinity pool diverged from the fork-per-shard baseline"
            )
        fork_times.append(fork_seconds)
        pool_times.append(pool_seconds)
    best_fork, best_pool = min(fork_times), min(pool_times)
    speedup = best_fork / best_pool
    definition = experiment_kernel(spec.experiment)
    cells = [dict(cell) for cell in definition.expand(spec)]
    groups = _contiguous_groups(spec, definition, cells)
    return {
        "experiment": spec.experiment,
        "spec_hash": spec.spec_hash()[:16],
        "cells": len(cells),
        "shards": len(groups),
        "workers": workers,
        "reps": reps,
        "fork_seconds": round(best_fork, 4),
        "pool_seconds": round(best_pool, 4),
        "speedup": round(speedup, 2),
        "gate": gate,
        "wall_clock_gated": gated,
        "bit_identical": True,
        "pass": (not gated) or speedup >= gate,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small scale, gates only, no BENCH_9.json",
    )
    args = parser.parse_args(argv)
    workers = int(os.environ.get("REPRO_WORKERS", "") or DEFAULT_WORKERS)
    cores = os.cpu_count() or 1
    gated = cores >= 2

    if args.smoke:
        hydrate_b, hydrate_gate, hydrate_reps = (
            HYDRATE_B_SMOKE, HYDRATE_GATE_SMOKE, 3
        )
        pool_gate, pool_reps = POOL_GATE_SMOKE, 2
        fig2_spec = fig2.default_spec(
            b_values=(600, 1200), s_values=(2, 3), k_max=4
        )
        fig7_spec = fig7.default_spec(
            configs=((31, 5, 3, (3, 4)),), b_values=(150, 300), reps=3
        )
    else:
        hydrate_b, hydrate_gate, hydrate_reps = (
            HYDRATE_B_FULL, HYDRATE_GATE_FULL, 2
        )
        pool_gate, pool_reps = POOL_GATE_FULL, 3
        fig2_spec = fig2.default_spec()
        fig7_spec = fig7.default_spec()

    report = {
        "workers": workers,
        "cpu_count": cores,
        "hydration": bench_hydration(hydrate_b, hydrate_reps, hydrate_gate),
        "dispatch": {
            "fig2": bench_pool(fig2_spec, workers, pool_reps, pool_gate,
                               gated),
            "fig7": bench_pool(fig7_spec, workers, pool_reps, pool_gate,
                               gated),
        },
    }

    status = 0
    hydration = report["hydration"]
    if not hydration["bit_identical"]:
        print(
            "FAIL: hydrated engine diverged from the cold build",
            file=sys.stderr,
        )
        status = 1
    elif not hydration["pass"]:
        print(
            f"FAIL: hydration is only {hydration['speedup']:.2f}x the cold "
            f"build at b={hydration['b']} (gate {hydration['gate']:.1f}x)",
            file=sys.stderr,
        )
        status = 1
    for name, entry in report["dispatch"].items():
        if not entry["pass"]:
            print(
                f"FAIL: {name} affinity pool is only {entry['speedup']:.2f}x "
                f"the fork baseline (gate {entry['gate']:.1f}x, "
                f"{cores} cores)",
                file=sys.stderr,
            )
            status = 1

    text = json.dumps(report, indent=1)
    print(text)
    if args.smoke:
        return status
    if status == 0:
        out_path = os.environ.get(
            "REPRO_BENCH_OUT", str(ROOT / "BENCH_9.json")
        )
        with open(out_path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return status


if __name__ == "__main__":
    sys.exit(main())
