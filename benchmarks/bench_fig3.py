"""Fig. 3 bench: Combo's sensitivity to the configured failure count k.

Paper: r = 5, s = 3, k = 6; ratio of lower bounds stays between 99% and
100% for k' in [4, 8] on all three system sizes.
"""

from conftest import emit

from repro.analysis import fig3


def test_fig3_sensitivity(benchmark):
    result = benchmark.pedantic(fig3.generate, rounds=1, iterations=1)
    emit("fig3", result.render())
    for point in result.points:
        assert 98.0 <= point.ratio_percent <= 100.0 + 1e-9, point
        if point.k_actual == point.k_configured:
            assert point.ratio_percent == 100.0
