"""Ablation: the Combo DP versus exhaustive lambda search, and its runtime.

Validates the DP along the two axes the paper claims: it finds the optimal
<lambda_x> (cross-checked by brute force on small instances), and it runs
in O(s * b) time (checked as near-linear scaling in b).
"""

import itertools
import time

from conftest import emit

from repro.core.combo import ComboStrategy
from repro.designs.catalog import Existence
from repro.util.combinatorics import binom, ceil_div
from repro.util.tables import TextTable


def _brute_force_best(strategy, b, k):
    s = strategy.s
    units = [sub.unit_capacity if sub else 0 for sub in strategy.subsystems]
    mus = [sub.mu if sub else 0 for sub in strategy.subsystems]
    best = 0
    ranges = [
        [0] if units[x] == 0 else range(ceil_div(b, units[x]) + 1) for x in range(s)
    ]
    for choice in itertools.product(*ranges):
        if sum(d * units[x] for x, d in enumerate(choice)) < b:
            continue
        remaining, value = b, 0
        for x in range(s - 1, -1, -1):
            if choice[x] == 0:
                continue
            here = min(max(remaining, 0), choice[x] * units[x])
            loss = (choice[x] * mus[x] * binom(k, x + 1)) // binom(s, x + 1)
            value += here - loss
            remaining -= choice[x] * units[x]
        best = max(best, value)
    return best


def _run():
    table = TextTable(
        ["n", "r", "s", "b", "k", "DP bound", "brute force", "DP ms"],
        title="Ablation: Combo DP vs exhaustive lambda enumeration",
    )
    agreements = []
    for n, r, s in [(13, 3, 2), (16, 4, 3), (31, 3, 3)]:
        strategy = ComboStrategy(n, r, s, tier=Existence.CONSTRUCTIBLE)
        for b in (40, 120):
            for k in (s, s + 1):
                t0 = time.perf_counter()
                plan = strategy.plan(b, k)
                elapsed = (time.perf_counter() - t0) * 1000
                brute = _brute_force_best(strategy, b, k)
                table.add_row([n, r, s, b, k, plan.lower_bound, brute,
                               round(elapsed, 2)])
                agreements.append((plan.lower_bound, brute))
    return table.render(), agreements


def test_dp_optimality(benchmark):
    text, agreements = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit("ablation_dp", text)
    for dp_value, brute in agreements:
        assert dp_value >= brute  # DP never loses to enumeration


def test_dp_scales_linearly_in_b(benchmark):
    strategy = ComboStrategy(71, 5, 3, tier=Existence.KNOWN)

    def solve_ladder():
        timings = []
        for b in (2400, 9600, 38400):
            t0 = time.perf_counter()
            strategy.plan(b, 6)
            timings.append((b, time.perf_counter() - t0))
        return timings

    timings = benchmark.pedantic(solve_ladder, rounds=1, iterations=1)
    # 16x more objects should cost well under 256x (i.e. clearly sub-quadratic).
    small, large = timings[0][1], timings[-1][1]
    assert large < max(small, 1e-4) * 256
