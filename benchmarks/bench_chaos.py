"""Chaos benchmark: supervisor overhead gate + fault-soak byte-identity.

Two claims from the fault-hardening work, measured and gated:

* **overhead** — with injection disabled (no ``REPRO_CHAOS``), the
  supervised sharded runner (process-per-shard, result queue, watchdog
  and liveness sweeps) must cost at most 5% wall-clock over the plain
  ``Pool.map`` dispatch it replaced.  Both sides run the identical
  shard payloads; ``_run_group_task`` is kept in the runner exactly as
  this baseline.  Min-of-N alternating reps, dispatch phase only (spec
  expansion, normalization and assembly are common to both and excluded).
* **soak** — a fig2 grid and a fig7 Monte-Carlo grid each complete
  under a deterministic schedule of worker crashes, torn store writes,
  transient kernel failures, and (fig2) hangs under a shard watchdog.
  :func:`repro.faults.soak.soak` asserts the final store is
  byte-identical to a fault-free run, that restarts match the torn
  schedule exactly, and that resumes recomputed at most one shard's
  prefix overlap per restart.

Run::

    PYTHONPATH=src python benchmarks/bench_chaos.py

Writes ``BENCH_7.json`` at the repository root (override with
``REPRO_BENCH_OUT``).  CI smoke (small grids, gates only, looser
overhead gate for noisy shared runners, no BENCH_7.json)::

    PYTHONPATH=src python benchmarks/bench_chaos.py --smoke

``REPRO_WORKERS`` sets the worker count (default 4); ``REPRO_B_MAX``
and ``REPRO_REPS`` scale the full grids as usual.
"""

import argparse
import json
import multiprocessing
import os
import pathlib
import sys
import tempfile
import time

from repro.analysis import fig2, fig7
from repro.core.batch import clear_attack_caches
from repro.exp.registry import kernel as experiment_kernel
from repro.exp.runner import (
    _contiguous_groups,
    _run_group_task,
    _run_sharded,
)
from repro.faults.soak import SoakError, soak

DEFAULT_WORKERS = 4
FULL_GATE = 1.05
SMOKE_GATE = 1.25
ROOT = pathlib.Path(__file__).resolve().parent.parent


def _expand(spec):
    definition = experiment_kernel(spec.experiment)
    cells = [dict(cell) for cell in definition.expand(spec)]
    return definition, cells, _contiguous_groups(spec, definition, cells)


def pool_dispatch(spec, workers):
    """The pre-supervisor execution shape: ``Pool.map`` over shards."""
    definition, cells, groups = _expand(spec)
    spec_json = spec.canonical_json()
    payloads = [
        (spec_json, ordinal, cells[group.start:group.end])
        for ordinal, group in enumerate(groups)
    ]
    clear_attack_caches()
    context = multiprocessing.get_context("fork")
    begin = time.perf_counter()
    with context.Pool(processes=min(workers, len(payloads))) as pool:
        chunks = pool.map(_run_group_task, payloads)
    elapsed = time.perf_counter() - begin
    metrics = [None] * len(cells)
    for ordinal, chunk in chunks:
        group = groups[ordinal]
        for offset, entry in enumerate(chunk):
            metrics[group.start + offset] = entry
    return elapsed, json.loads(json.dumps(metrics))


def supervised_dispatch(spec, workers):
    """The same shards through the supervised runner (chaos disabled)."""
    definition, cells, groups = _expand(spec)
    metrics = [None] * len(cells)

    def flush(group, chunk):
        for offset, entry in enumerate(chunk):
            metrics[group.start + offset] = entry

    clear_attack_caches()
    begin = time.perf_counter()
    retries = _run_sharded(spec, definition, cells, groups, workers, flush)
    elapsed = time.perf_counter() - begin
    if retries != 0:
        raise AssertionError(
            f"fault-free supervised run reported {retries} shard retries"
        )
    return elapsed, json.loads(json.dumps(metrics))


def bench_overhead(spec, workers, reps, gate):
    pool_times, supervised_times = [], []
    reference = None
    for _ in range(reps):
        pool_seconds, pool_metrics = pool_dispatch(spec, workers)
        supervised_seconds, supervised_metrics = supervised_dispatch(
            spec, workers
        )
        if pool_metrics != supervised_metrics:
            raise AssertionError(
                "supervised dispatch diverged from the pool baseline"
            )
        if reference is None:
            reference = pool_metrics
        elif reference != pool_metrics:
            raise AssertionError("pool baseline is not deterministic")
        pool_times.append(pool_seconds)
        supervised_times.append(supervised_seconds)
    best_pool = min(pool_times)
    best_supervised = min(supervised_times)
    ratio = best_supervised / best_pool
    _, cells, groups = _expand(spec)
    return {
        "spec_hash": spec.spec_hash()[:16],
        "cells": len(cells),
        "shards": len(groups),
        "reps": reps,
        "pool_seconds": round(best_pool, 4),
        "supervised_seconds": round(best_supervised, 4),
        "overhead_ratio": round(ratio, 4),
        "gate": gate,
        "bit_identical": True,
        "pass": ratio <= gate,
    }


def bench_soak(spec, root, *, faults, seed, workers, shard_timeout=None):
    report = soak(
        spec, root,
        faults=faults, seed=seed, workers=workers,
        shard_timeout=shard_timeout,
    )
    report["spec_hash"] = spec.spec_hash()[:16]
    report["elapsed"] = round(report["elapsed"], 2)
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small grids, gates only, no BENCH_7.json",
    )
    args = parser.parse_args(argv)
    workers = int(os.environ.get("REPRO_WORKERS", "") or DEFAULT_WORKERS)

    if args.smoke:
        fig2_spec = fig2.default_spec(
            b_values=(600, 1200), s_values=(2, 3), k_max=4
        )
        fig7_spec = fig7.default_spec(
            configs=((31, 5, 3, (3, 4)),), b_values=(150, 300), reps=3
        )
        # Smoke shards are milliseconds of compute, so per-shard fixed
        # dispatch cost (forks) dominates both sides; the looser gate
        # only trips on gross regressions.
        overhead_spec = fig2_spec
        overhead_gate, reps = SMOKE_GATE, 3
        fig2_faults, fig7_faults = 8, 6
        fig2_timeout = None
    else:
        fig2_spec = fig2.default_spec()
        fig7_spec = fig7.default_spec(
            configs=((31, 5, 3, (3, 4, 5)),), b_values=(150, 300, 600)
        )
        # The 5% gate is measured on shards with representative compute
        # (~0.5-1s each: exact-effort adversary at k_max=4), where the
        # supervisor's fork-per-shard fixed cost must amortize.  On the
        # fast-effort grids shards finish in ~10ms and any dispatch
        # mechanism is pure fixed cost.
        overhead_spec = fig2.default_spec(
            b_values=(600, 1200, 2400), s_values=(2, 3), k_max=4,
            effort="exact",
        )
        overhead_gate, reps = FULL_GATE, 2
        fig2_faults, fig7_faults = 20, 10
        fig2_timeout = 10.0

    report = {
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "overhead": bench_overhead(
            overhead_spec, workers, reps, overhead_gate
        ),
    }
    status = 0 if report["overhead"]["pass"] else 1
    if status:
        print(
            f"FAIL: supervised dispatch is "
            f"{report['overhead']['overhead_ratio']:.2f}x the pool "
            f"baseline (gate {overhead_gate})",
            file=sys.stderr,
        )

    with tempfile.TemporaryDirectory() as scratch:
        try:
            fig2_soak = bench_soak(
                fig2_spec, os.path.join(scratch, "fig2"),
                faults=fig2_faults, seed=7, workers=workers,
                shard_timeout=fig2_timeout,
            )
            fig7_soak = bench_soak(
                fig7_spec, os.path.join(scratch, "fig7"),
                faults=fig7_faults, seed=11, workers=workers,
            )
        except SoakError as exc:
            print(f"FAIL: chaos soak: {exc}", file=sys.stderr)
            return 1
    report["soak"] = {
        "fig2": fig2_soak,
        "fig7": fig7_soak,
        "planned_faults_total": (
            fig2_soak["planned_faults"]["total"]
            + fig7_soak["planned_faults"]["total"]
        ),
        "byte_identical": True,
    }

    text = json.dumps(report, indent=1)
    print(text)
    if args.smoke:
        return status
    if status == 0:
        out_path = os.environ.get(
            "REPRO_BENCH_OUT", str(ROOT / "BENCH_7.json")
        )
        with open(out_path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return status


if __name__ == "__main__":
    sys.exit(main())
