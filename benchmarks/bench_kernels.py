"""Perf record for the damage-kernel ladder (BENCH_kernels.json, BENCH_2.json).

Times the pluggable kernels (gain / bitset / numpy / python) against the
seed's allocation-heavy ``_DamageModel`` numpy path (reproduced below as
:class:`SeedDamageModel`) at paper scales, and asserts two headlines:

* PR 1 (kept as a regression guard): on a LocalSearchAdversary sweep at
  n=71, b=9600 the bitset or buffered-numpy kernel beats the seed path by
  >= 2x while every backend returns identical damage values.
* PR 2: the incremental gain-table engine completes the same sweep at
  >= 5x the PR-1 bitset kernel's rate (when its native backing is
  available; >= 1x otherwise), with identical damages. The trajectory —
  PR-1 bitset baseline vs the gain engine, as ``local_search_attacks_per_sec``
  — is recorded in the repo-top-level ``BENCH_2.json``.

Run explicitly (bench files are not part of the tier-1 suite)::

    PYTHONPATH=src python -m pytest benchmarks/bench_kernels.py -q

The per-scale JSON record lands in ``benchmarks/output/BENCH_kernels.json``
so later PRs can extend the perf trajectory.
"""

import json
import pathlib
import random
import time

import numpy as np
from conftest import OUTPUT_DIR, emit

from repro.core.adversary import (
    BranchAndBoundAdversary,
    ExhaustiveAdversary,
    GreedyAdversary,
    LocalSearchAdversary,
)
from repro.core.kernels import make_kernel, resolve_gain_backing
from repro.core.random_placement import RandomStrategy
from repro.util.tables import TextTable

JSON_PATH = OUTPUT_DIR / "BENCH_kernels.json"
BENCH_2_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_2.json"

#: Paper-scale grid: cluster sizes x object counts (b capped at 9600).
SCALES = [(31, 600), (31, 9600), (71, 600), (71, 9600), (257, 600), (257, 9600)]
KERNEL_NAMES = ("gain", "bitset", "numpy", "python")


class SeedDamageModel:
    """The seed repo's ``_DamageModel`` numpy path, frozen as the baseline.

    Allocates a fresh hit vector per move (``hits + matrix[:, node]``) and
    a fresh (b, n) totals matrix per ``best_addition`` — exactly what the
    kernel refactor removed. Satisfies the kernel contract, so the same
    adversaries run unmodified on top of it.
    """

    name = "seed-numpy"

    def __init__(self, placement, s):
        self.placement = placement
        self.s = s
        self.n = placement.n
        self.b = placement.b
        matrix = np.zeros((self.b, self.n), dtype=np.int16)
        for obj_id, nodes in enumerate(placement.replica_sets):
            for node in nodes:
                matrix[obj_id, node] = 1
        self.matrix = matrix

    def empty_hits(self):
        return np.zeros(self.b, dtype=np.int16)

    def add_node(self, hits, node):
        return hits + self.matrix[:, node]

    def remove_node(self, hits, node):
        return hits - self.matrix[:, node]

    def hits_for(self, nodes):
        hits = self.empty_hits()
        for node in nodes:
            hits = self.add_node(hits, node)
        return hits

    def damage_of(self, hits):
        return int((hits >= self.s).sum())

    def damage_for(self, nodes):
        return self.damage_of(self.hits_for(nodes))

    def best_addition(self, hits, banned):
        totals = hits[:, None] + self.matrix
        damages = (totals >= self.s).sum(axis=0)
        if banned:
            damages[list(banned)] = -1
        node = int(damages.argmax())
        return node, int(damages[node])

    def try_swap(self, hits, node, banned, current):
        # The generic (unfused) polish position, so the frozen seed model
        # keeps satisfying the kernel contract LocalSearch drives.
        hits = self.remove_node(hits, node)
        candidate, damage = self.best_addition(hits, banned)
        if damage > current:
            return self.add_node(hits, candidate), candidate, damage
        return self.add_node(hits, node), None, current

    def polish_pass(self, hits, nodes, current):
        banned = set(nodes)
        improved = False
        for position in range(len(nodes)):
            node = nodes[position]
            banned.discard(node)
            hits, swapped, current = self.try_swap(hits, node, banned, current)
            if swapped is not None:
                nodes[position] = swapped
                banned.add(swapped)
                improved = True
            else:
                banned.add(node)
        return hits, current, improved


def _engines_for(placement, s):
    engines = {name: make_kernel(placement, s, backend=name)
               for name in KERNEL_NAMES}
    engines["seed-numpy"] = SeedDamageModel(placement, s)
    return engines


def _time_best_addition(model, reps=5):
    """Seconds per best_addition call from a 2-node partial attack."""
    hits = model.hits_for([0, 1])
    model.best_addition(hits, banned=[0, 1])  # warm lazy structures
    start = time.perf_counter()
    for _ in range(reps):
        model.best_addition(hits, banned=[0, 1])
    return (time.perf_counter() - start) / reps


def _time_sweep(placement, s, model, k_values, rounds=1):
    """Best-of-``rounds`` seconds for a LocalSearch sweep; (time, damages).

    The sweep runs standalone attacks (no batch engine), so the timing
    measures search + kernel work — never the attack-result memo.
    """
    adversary = LocalSearchAdversary(restarts=2, seed=0)

    def run():
        start = time.perf_counter()
        found = tuple(
            adversary.attack(placement, k, s, kernel=model).damage
            for k in k_values
        )
        return time.perf_counter() - start, found

    best_seconds, damages = run()
    for _ in range(rounds - 1):
        seconds, found = run()
        assert found == damages
        best_seconds = min(best_seconds, seconds)
    return best_seconds, damages


def _collect():
    records = []
    for n, b in SCALES:
        placement = RandomStrategy(n, 3).place(b, random.Random(0))
        for name, model in _engines_for(placement, 2).items():
            seconds = _time_best_addition(model)
            records.append(
                {
                    "n": n,
                    "b": b,
                    "r": 3,
                    "s": 2,
                    "backend": name,
                    "best_addition_ops_per_sec": round(1.0 / seconds, 1),
                }
            )

    # Headline: full local-search sweep at n=71, b=9600, best of 5 rounds.
    n, b, s, k_values = 71, 9600, 2, (3, 4, 5)
    placement = RandomStrategy(n, 3).place(b, random.Random(1))
    sweep = {}
    damages = {}
    for name, model in _engines_for(placement, s).items():
        seconds, found = _time_sweep(placement, s, model, k_values, rounds=5)
        sweep[name] = seconds
        damages[name] = found
    speedups = {
        name: round(sweep["seed-numpy"] / sweep[name], 2)
        for name in KERNEL_NAMES
    }
    return records, sweep, damages, speedups, k_values


def test_kernel_ladder(benchmark):
    records, sweep, damages, speedups, k_values = benchmark.pedantic(
        _collect, rounds=1, iterations=1
    )

    table = TextTable(
        ["n", "b", "backend", "best_addition/s"],
        title="Damage-kernel ladder: ops/sec by scale",
    )
    for record in records:
        table.add_row(
            [record["n"], record["b"], record["backend"],
             record["best_addition_ops_per_sec"]]
        )
    attacks_per_sec = {
        name: round(len(k_values) / seconds, 1) for name, seconds in sweep.items()
    }
    sweep_table = TextTable(
        ["backend", "sweep sec", "attacks/s", "speedup vs seed", "damages"],
        title=f"LocalSearch sweep n=71 b=9600 s=2 k={list(k_values)}",
    )
    for name, seconds in sorted(sweep.items(), key=lambda item: item[1]):
        sweep_table.add_row(
            [name, round(seconds, 4), attacks_per_sec[name],
             speedups.get(name, 1.0), str(list(damages[name]))]
        )
    emit("bench_kernels", table.render() + "\n\n" + sweep_table.render())

    # Capture the previous record's bitset sweep (the PR-1 baseline as
    # measured on its own run) before overwriting the file below.
    pr1_recorded = None
    if JSON_PATH.exists():
        try:
            prior = json.loads(JSON_PATH.read_text())
            pr1_recorded = prior.get("sweep", {}).get("seconds", {}).get("bitset")
        except ValueError:  # pragma: no cover - corrupt record
            pr1_recorded = None

    payload = {
        "schema": "bench_kernels/v2",
        "scales": records,
        "sweep": {
            "n": 71, "b": 9600, "s": 2, "k_values": list(k_values),
            "seconds": {name: round(v, 4) for name, v in sweep.items()},
            "local_search_attacks_per_sec": attacks_per_sec,
            "speedup_vs_seed": speedups,
            "damages": {name: list(v) for name, v in damages.items()},
        },
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    # BENCH_2: the PR-2 trajectory record — PR-1 bitset baseline vs the
    # incremental gain engine, same adversary, same trajectory, no memo.
    gain_backing = resolve_gain_backing()
    gain_speedup = round(sweep["bitset"] / sweep["gain"], 2)
    bench2 = {
        "schema": "bench_2/v1",
        "workload": {
            "n": 71, "b": 9600, "s": 2, "k_values": list(k_values),
            "adversary": "LocalSearchAdversary(restarts=2, seed=0)",
        },
        "pr1_bitset_baseline": {
            "seconds": round(sweep["bitset"], 4),
            "local_search_attacks_per_sec": attacks_per_sec["bitset"],
            "recorded_pr1_seconds": pr1_recorded,
        },
        "gain_engine": {
            "backing": gain_backing,
            "seconds": round(sweep["gain"], 4),
            "local_search_attacks_per_sec": attacks_per_sec["gain"],
        },
        "speedup_gain_vs_pr1_bitset": gain_speedup,
        "damages_agree": damages["gain"] == damages["bitset"],
    }
    BENCH_2_PATH.write_text(json.dumps(bench2, indent=2) + "\n")

    # PR-1 acceptance (regression guard): a refactored kernel beats the
    # seed numpy path >= 2x...
    assert max(speedups["bitset"], speedups["numpy"]) >= 2.0, speedups
    # ...and every backend agrees exactly with the seed model's damage.
    reference = damages["seed-numpy"]
    for name in KERNEL_NAMES:
        assert damages[name] == reference, damages
    # PR-2 acceptance: the gain engine completes the sweep at >= 5x the
    # PR-1 bitset kernel's rate (native backing; the pure-python ladder
    # fallbacks only have to break even).
    required = 5.0 if gain_backing == "native" else 1.0
    assert gain_speedup >= required, bench2


def test_all_adversaries_agree_across_backends():
    """Greedy/local/exhaustive/B&B damages are backend-independent."""
    placement = RandomStrategy(14, 3).place(60, random.Random(2))
    engines = _engines_for(placement, 2)
    adversaries = {
        "greedy": lambda kernel: GreedyAdversary().attack(
            placement, 3, 2, kernel=kernel
        ),
        "local": lambda kernel: LocalSearchAdversary(restarts=2).attack(
            placement, 3, 2, kernel=kernel
        ),
        "exhaustive": lambda kernel: ExhaustiveAdversary().attack(
            placement, 3, 2, kernel=kernel
        ),
    }
    bnb_kernels = {
        name: model for name, model in engines.items() if name != "seed-numpy"
    }
    for label, run in adversaries.items():
        found = {name: run(model).damage for name, model in engines.items()}
        assert len(set(found.values())) == 1, (label, found)
    found = {
        name: BranchAndBoundAdversary().attack(placement, 3, 2, kernel=model).damage
        for name, model in bnb_kernels.items()
    }
    assert len(set(found.values())) == 1, ("bnb", found)
