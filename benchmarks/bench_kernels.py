"""Perf record for the damage-kernel ladder (BENCH_kernels.json).

Times the three pluggable kernels (bitset / numpy / python) against the
seed's allocation-heavy ``_DamageModel`` numpy path (reproduced below as
:class:`SeedDamageModel`) at paper scales, and asserts the headline of the
kernel refactor: on a LocalSearchAdversary sweep at n=71, b=9600 the
bitset or buffered-numpy kernel beats the seed path by >= 2x while every
backend returns identical damage values.

Run explicitly (bench files are not part of the tier-1 suite)::

    PYTHONPATH=src python -m pytest benchmarks/bench_kernels.py -q

The JSON record lands in ``benchmarks/output/BENCH_kernels.json`` so later
PRs can extend the perf trajectory.
"""

import json
import pathlib
import random
import time

import numpy as np
from conftest import OUTPUT_DIR, emit

from repro.core.adversary import (
    BranchAndBoundAdversary,
    ExhaustiveAdversary,
    GreedyAdversary,
    LocalSearchAdversary,
)
from repro.core.kernels import make_kernel
from repro.core.random_placement import RandomStrategy
from repro.util.tables import TextTable

JSON_PATH = OUTPUT_DIR / "BENCH_kernels.json"

#: Paper-scale grid: cluster sizes x object counts (b capped at 9600).
SCALES = [(31, 600), (31, 9600), (71, 600), (71, 9600), (257, 600), (257, 9600)]
KERNEL_NAMES = ("bitset", "numpy", "python")


class SeedDamageModel:
    """The seed repo's ``_DamageModel`` numpy path, frozen as the baseline.

    Allocates a fresh hit vector per move (``hits + matrix[:, node]``) and
    a fresh (b, n) totals matrix per ``best_addition`` — exactly what the
    kernel refactor removed. Satisfies the kernel contract, so the same
    adversaries run unmodified on top of it.
    """

    name = "seed-numpy"

    def __init__(self, placement, s):
        self.placement = placement
        self.s = s
        self.n = placement.n
        self.b = placement.b
        matrix = np.zeros((self.b, self.n), dtype=np.int16)
        for obj_id, nodes in enumerate(placement.replica_sets):
            for node in nodes:
                matrix[obj_id, node] = 1
        self.matrix = matrix

    def empty_hits(self):
        return np.zeros(self.b, dtype=np.int16)

    def add_node(self, hits, node):
        return hits + self.matrix[:, node]

    def remove_node(self, hits, node):
        return hits - self.matrix[:, node]

    def hits_for(self, nodes):
        hits = self.empty_hits()
        for node in nodes:
            hits = self.add_node(hits, node)
        return hits

    def damage_of(self, hits):
        return int((hits >= self.s).sum())

    def damage_for(self, nodes):
        return self.damage_of(self.hits_for(nodes))

    def best_addition(self, hits, banned):
        totals = hits[:, None] + self.matrix
        damages = (totals >= self.s).sum(axis=0)
        if banned:
            damages[list(banned)] = -1
        node = int(damages.argmax())
        return node, int(damages[node])


def _engines_for(placement, s):
    engines = {name: make_kernel(placement, s, backend=name)
               for name in KERNEL_NAMES}
    engines["seed-numpy"] = SeedDamageModel(placement, s)
    return engines


def _time_best_addition(model, reps=5):
    """Seconds per best_addition call from a 2-node partial attack."""
    hits = model.hits_for([0, 1])
    model.best_addition(hits, banned=[0, 1])  # warm lazy structures
    start = time.perf_counter()
    for _ in range(reps):
        model.best_addition(hits, banned=[0, 1])
    return (time.perf_counter() - start) / reps


def _time_sweep(placement, s, model, k_values):
    """Seconds for a LocalSearchAdversary sweep; returns (time, damages)."""
    adversary = LocalSearchAdversary(restarts=2, seed=0)
    start = time.perf_counter()
    damages = tuple(
        adversary.attack(placement, k, s, kernel=model).damage for k in k_values
    )
    return time.perf_counter() - start, damages


def _collect():
    records = []
    for n, b in SCALES:
        placement = RandomStrategy(n, 3).place(b, random.Random(0))
        for name, model in _engines_for(placement, 2).items():
            seconds = _time_best_addition(model)
            records.append(
                {
                    "n": n,
                    "b": b,
                    "r": 3,
                    "s": 2,
                    "backend": name,
                    "best_addition_ops_per_sec": round(1.0 / seconds, 1),
                }
            )

    # Headline: full local-search sweep at n=71, b=9600.
    n, b, s, k_values = 71, 9600, 2, (3, 4, 5)
    placement = RandomStrategy(n, 3).place(b, random.Random(1))
    sweep = {}
    damages = {}
    for name, model in _engines_for(placement, s).items():
        seconds, found = _time_sweep(placement, s, model, k_values)
        sweep[name] = seconds
        damages[name] = found
    speedups = {
        name: round(sweep["seed-numpy"] / sweep[name], 2)
        for name in KERNEL_NAMES
    }
    return records, sweep, damages, speedups, k_values


def test_kernel_ladder(benchmark):
    records, sweep, damages, speedups, k_values = benchmark.pedantic(
        _collect, rounds=1, iterations=1
    )

    table = TextTable(
        ["n", "b", "backend", "best_addition/s"],
        title="Damage-kernel ladder: ops/sec by scale",
    )
    for record in records:
        table.add_row(
            [record["n"], record["b"], record["backend"],
             record["best_addition_ops_per_sec"]]
        )
    sweep_table = TextTable(
        ["backend", "sweep sec", "speedup vs seed", "damages"],
        title=f"LocalSearch sweep n=71 b=9600 s=2 k={list(k_values)}",
    )
    for name, seconds in sorted(sweep.items(), key=lambda item: item[1]):
        sweep_table.add_row(
            [name, round(seconds, 3), speedups.get(name, 1.0),
             str(list(damages[name]))]
        )
    emit("bench_kernels", table.render() + "\n\n" + sweep_table.render())

    payload = {
        "schema": "bench_kernels/v1",
        "scales": records,
        "sweep": {
            "n": 71, "b": 9600, "s": 2, "k_values": list(k_values),
            "seconds": {name: round(v, 4) for name, v in sweep.items()},
            "speedup_vs_seed": speedups,
            "damages": {name: list(v) for name, v in damages.items()},
        },
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    # Acceptance: a refactored kernel beats the seed numpy path >= 2x...
    assert max(speedups["bitset"], speedups["numpy"]) >= 2.0, speedups
    # ...and every backend agrees exactly with the seed model's damage.
    reference = damages["seed-numpy"]
    for name in KERNEL_NAMES:
        assert damages[name] == reference, damages


def test_all_adversaries_agree_across_backends():
    """Greedy/local/exhaustive/B&B damages are backend-independent."""
    placement = RandomStrategy(14, 3).place(60, random.Random(2))
    engines = _engines_for(placement, 2)
    adversaries = {
        "greedy": lambda kernel: GreedyAdversary().attack(
            placement, 3, 2, kernel=kernel
        ),
        "local": lambda kernel: LocalSearchAdversary(restarts=2).attack(
            placement, 3, 2, kernel=kernel
        ),
        "exhaustive": lambda kernel: ExhaustiveAdversary().attack(
            placement, 3, 2, kernel=kernel
        ),
    }
    bnb_kernels = {
        name: model for name, model in engines.items() if name != "seed-numpy"
    }
    for label, run in adversaries.items():
        found = {name: run(model).damage for name, model in engines.items()}
        assert len(set(found.values())) == 1, (label, found)
    found = {
        name: BranchAndBoundAdversary().attack(placement, 3, 2, kernel=model).damage
        for name, model in bnb_kernels.items()
    }
    assert len(set(found.values())) == 1, ("bnb", found)
