"""Ablation: load-balanced Random (Def. 4) vs unconstrained Random'.

Theorem 2 analyzes Random' and argues the two converge as the per-node
load grows. This bench measures the finite-size gap the proof waves at:
max-load inflation and worst-case availability difference.
"""

import random
import statistics

from conftest import emit

from repro.core.adversary import best_attack
from repro.core.random_placement import RandomStrategy, UnconstrainedRandomStrategy
from repro.util.combinatorics import ceil_div
from repro.util.tables import TextTable


def _run(n=31, r=5, s=3, k=4, reps=5):
    table = TextTable(
        ["b", "quota", "maxload Rnd", "maxload Rnd'", "avail Rnd", "avail Rnd'"],
        title=f"Ablation: Random vs Random' (n={n}, r={r}, s={s}, k={k})",
    )
    gaps = []
    for b in (150, 600, 2400):
        quota = ceil_div(r * b, n)
        max_bal, max_unc, avail_bal, avail_unc = [], [], [], []
        for rep in range(reps):
            balanced = RandomStrategy(n, r).place(b, random.Random(1000 + rep))
            unconstrained = UnconstrainedRandomStrategy(n, r).place(
                b, random.Random(2000 + rep)
            )
            max_bal.append(balanced.max_load())
            max_unc.append(unconstrained.max_load())
            avail_bal.append(
                b - best_attack(balanced, k, s, effort="fast").damage
            )
            avail_unc.append(
                b - best_attack(unconstrained, k, s, effort="fast").damage
            )
        mean_bal = statistics.fmean(avail_bal)
        mean_unc = statistics.fmean(avail_unc)
        table.add_row(
            [
                b,
                quota,
                max(max_bal),
                max(max_unc),
                round(mean_bal, 1),
                round(mean_unc, 1),
            ]
        )
        gaps.append((b, quota, max(max_bal), mean_bal, mean_unc))
    return table.render(), gaps


def test_random_vs_unconstrained(benchmark):
    text, gaps = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit("ablation_random", text)
    for b, quota, max_balanced, mean_bal, mean_unc in gaps:
        # Definition 4's quota is respected by the balanced variant.
        assert max_balanced <= quota
        # The availability gap between the two shrinks as load grows
        # (Theorem 2's convergence); at b = 2400 they are within 1%.
        if b >= 2400:
            assert abs(mean_bal - mean_unc) / b < 0.01
