"""Perf record for the array-native placement core (BENCH_4.json).

Measures the data path the PR-4 refactor rebuilt, at production scale
(b up to 10^6 objects), against a faithful re-implementation of the
pre-refactor frozenset pipeline:

* **construction-to-engine-ready** — from raw replica rows to a
  placement with loads, node-incidence CSR, fingerprint, and a built
  gain kernel (everything an :class:`~repro.core.batch.AttackEngine`
  needs before the first attack). The baseline replays the historical
  path: per-object frozensets, O(b r) Python validation, Python-loop
  node incidence / loads / CSR assembly, and the per-object string-join
  fingerprint.
* **resident memory** — tracemalloc-traced allocations held by each
  representation (sets + incidence tuples vs int32 buffers).
* **fingerprint** — one sha256 over the raw buffer vs b string joins.
* **save/load** — the ``.npz`` artifact round-trip (and the JSON
  round-trip at the smaller scale for comparison).

Acceptance (ISSUE 4): at b = 10^6 the array core is >= 5x faster to
engine-ready and >= 4x lighter than the frozenset baseline.

Run explicitly (bench files are not part of the tier-1 suite)::

    PYTHONPATH=src python -m pytest benchmarks/bench_placement.py -q

Results land in the repo-top-level ``BENCH_4.json`` and
``benchmarks/output/BENCH_placement.json``.
"""

import gc
import json
import pathlib
import tempfile
import time
import tracemalloc

import pytest
from conftest import OUTPUT_DIR, emit

from repro.core.artifact import load_npz, load_placement, save_npz, save_placement
from repro.core.kernels import Incidence, make_kernel, numpy_available
from repro.core.placement import Placement
from repro.util.tables import TextTable

JSON_PATH = OUTPUT_DIR / "BENCH_placement.json"
BENCH_4_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_4.json"

N, R, S = 1024, 3, 2
SCALES = (100_000, 1_000_000)
#: JSON round-trip is only timed at the small scale (it is the slow path
#: the artifact format replaces; at 10^6 it adds minutes for no signal).
JSON_SCALE_CAP = 100_000


def synth_rows(b: int):
    """A valid (sorted, distinct, in-range) b x R row matrix, vectorized."""
    import numpy as np

    starts = (np.arange(b, dtype=np.int64) * 7919) % (N - R)
    rows = (starts[:, None] + np.arange(R, dtype=np.int64)[None, :])
    return rows.astype(np.int32)


# The historical frozenset pipeline is defined once, in perf_smoke.py
# (which must stay importable without pytest); the CI floor gate and this
# benchmark therefore measure the same baseline by construction.
from perf_smoke import legacy_build, legacy_engine_structures  # noqa: E402


def time_array_path(rows) -> float:
    start = time.perf_counter()
    placement = Placement.from_arrays(N, rows, strategy="bench", validate=False)
    placement.load_array()
    placement.node_csr()
    placement.fingerprint()
    incidence = Incidence(placement)
    make_kernel(placement, S, backend="gain", incidence=incidence)
    incidence.csr()
    return time.perf_counter() - start


def time_frozenset_path(row_lists) -> float:
    start = time.perf_counter()
    frozen = legacy_build(N, row_lists)
    legacy_engine_structures(N, frozen)
    return time.perf_counter() - start


def traced(build):
    """Peak-net allocations (bytes) held by ``build``'s return value."""
    gc.collect()
    tracemalloc.start()
    keep = build()
    gc.collect()
    current, _peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del keep
    return current


@pytest.mark.skipif(not numpy_available(), reason="scale bench needs numpy")
def test_bench_placement_scale():
    results = {"n": N, "r": R, "s": S, "scales": {}}
    table = TextTable(
        [
            "b", "array_ready_s", "frozen_ready_s", "speedup",
            "array_mb", "frozen_mb", "mem_ratio", "npz_save_s", "npz_load_s",
        ],
        title="Array-native placement core vs frozenset baseline",
    )
    for b in SCALES:
        rows = synth_rows(b)
        row_lists = rows.tolist()

        array_ready = min(time_array_path(rows) for _ in range(3))
        frozen_ready = min(time_frozenset_path(row_lists) for _ in range(2))

        def build_array_side():
            placement = Placement.from_arrays(
                N, rows, strategy="bench", validate=False
            )
            placement.load_array()
            placement.node_csr()
            placement.fingerprint()
            return placement

        def build_frozen_side():
            frozen = legacy_build(N, row_lists)
            structures = legacy_engine_structures(N, frozen)
            return frozen, structures

        array_bytes = traced(build_array_side)
        frozen_bytes = traced(build_frozen_side)

        placement = Placement.from_arrays(
            N, rows, strategy="bench", validate=False
        )
        fp_start = time.perf_counter()
        Placement.from_arrays(
            N, rows, strategy="fp", validate=False
        ).fingerprint()
        fingerprint_seconds = time.perf_counter() - fp_start

        with tempfile.TemporaryDirectory() as tmp:
            npz_path = str(pathlib.Path(tmp) / "p.npz")
            save_start = time.perf_counter()
            save_npz(placement, npz_path)
            npz_save = time.perf_counter() - save_start
            load_start = time.perf_counter()
            reloaded = load_npz(npz_path)
            npz_load = time.perf_counter() - load_start
            assert reloaded.fingerprint() == placement.fingerprint()
            json_save = json_load = None
            if b <= JSON_SCALE_CAP:
                json_path = str(pathlib.Path(tmp) / "p.json")
                save_start = time.perf_counter()
                save_placement(placement, json_path)
                json_save = time.perf_counter() - save_start
                load_start = time.perf_counter()
                assert load_placement(json_path) == placement
                json_load = time.perf_counter() - load_start

        scale = {
            "construct_to_engine_ready_seconds": {
                "array": round(array_ready, 4),
                "frozenset": round(frozen_ready, 4),
                "speedup": round(frozen_ready / array_ready, 2),
            },
            "resident_bytes": {
                "array": array_bytes,
                "frozenset": frozen_bytes,
                "ratio": round(frozen_bytes / array_bytes, 2),
            },
            "fingerprint_seconds": round(fingerprint_seconds, 4),
            "npz_save_seconds": round(npz_save, 4),
            "npz_load_seconds": round(npz_load, 4),
        }
        if json_save is not None:
            scale["json_save_seconds"] = round(json_save, 4)
            scale["json_load_seconds"] = round(json_load, 4)
        results["scales"][str(b)] = scale
        table.add_row([
            b, f"{array_ready:.3f}", f"{frozen_ready:.3f}",
            f"{frozen_ready / array_ready:.1f}x",
            f"{array_bytes / 1e6:.1f}", f"{frozen_bytes / 1e6:.1f}",
            f"{frozen_bytes / array_bytes:.1f}x",
            f"{npz_save:.3f}", f"{npz_load:.3f}",
        ])

    top = results["scales"][str(SCALES[-1])]
    # ISSUE 4 acceptance at b = 10^6.
    assert top["construct_to_engine_ready_seconds"]["speedup"] >= 5.0
    assert top["resident_bytes"]["ratio"] >= 4.0

    rendered = table.render()
    emit("BENCH_placement", rendered)
    JSON_PATH.parent.mkdir(exist_ok=True)
    JSON_PATH.write_text(json.dumps(results, indent=2) + "\n")
    BENCH_4_PATH.write_text(json.dumps(results, indent=2) + "\n")
