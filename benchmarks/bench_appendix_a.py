"""Appendix A bench: the s = 1 case (Simple(0, λ0) vs Random, both poor).

The paper relegates s = 1 to the appendix because neither strategy does
well, noting Random slightly outperforms Simple(0, λ0) under the
Sec. IV-B measure for the parameters it tested. Reproduced here:

* at n = 71, r = 5 and large b, Random's probable availability beats the
  Simple(0) guarantee, with the gap widening in k (the paper's regime);
* the winner's margin is tiny compared to what *both* lose — at s = 1 the
  losses are an order of magnitude above the s = 2 losses for the same
  parameters, which is the appendix's real message.
"""

from conftest import emit

from repro.analysis import appendix_a
from repro.core.rand_analysis import pr_avail_rnd


def test_appendix_a_s1(benchmark):
    result = benchmark.pedantic(appendix_a.generate, rounds=1, iterations=1)
    emit("appendix_a", result.render())

    by_key = {(c.n, c.r, c.b, c.k): c for c in result.cells}

    # Random wins the paper's regime (n = 71, r = 5, large b, k >= 3),
    # increasingly so in k.
    margins = [by_key[(71, 5, 38400, k)].margin for k in (3, 4, 5)]
    assert all(m < 0 for m in margins)
    assert margins[0] > margins[1] > margins[2]

    # Whoever wins, the margin is small against the total damage.
    for cell in result.cells:
        losses = cell.b - min(cell.lb_simple0, cell.pr_avail)
        assert abs(cell.margin) <= max(10, losses), cell

    # Both are poor: s = 1 losses dwarf s = 2 losses at the same point.
    cell = by_key[(71, 5, 38400, 5)]
    s1_random_losses = cell.b - cell.pr_avail
    s2_random_losses = cell.b - pr_avail_rnd(71, 5, 5, 2, 38400)
    assert s1_random_losses > 5 * s2_random_losses

    # Lemma 4 really is an upper bound on prAvail for every cell.
    for cell in result.cells:
        assert cell.pr_avail <= cell.lemma4_bound + 1
