"""Fig. 11 bench: the Lemma-4 decay bound for s = 1 Random placements.

Paper takeaway: availability decays essentially linearly in k with slope
set by r/n — steeper for larger r and smaller n.
"""

from conftest import emit

from repro.analysis import fig11


def test_fig11_lemma4_curves(benchmark):
    result = benchmark.pedantic(fig11.generate, rounds=1, iterations=1)
    emit("fig11", result.render() + "\n\n" + result.render_plot())
    by_key = {(e.n, e.r): dict(e.points) for e in result.series}
    # Paper anchor values at k = 10 (read off the plot): n=71,r=5 ~ 0.49;
    # n=71,r=3 ~ 0.65; n=257 curves well above both.
    assert abs(by_key[(71, 5)][10] - 0.49) < 0.02
    assert abs(by_key[(71, 3)][10] - 0.655) < 0.02
    assert by_key[(257, 3)][10] > by_key[(71, 3)][10]
    # Slope ordering: decay steeper for larger r at fixed n.
    assert by_key[(71, 5)][10] < by_key[(71, 3)][10]
    assert by_key[(257, 5)][10] < by_key[(257, 3)][10]
