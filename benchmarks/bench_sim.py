"""Perf record for the lifetime simulator (BENCH_3.json).

Runs one 10k-event churn + recurring-adversary trace through the
simulator twice — once per engine mode — and records the gap the delta
path opens:

* ``delta``: one warm :class:`~repro.core.batch.AttackEngine` follows the
  population via ``apply_delta`` (O(changed replicas) per strike flush);
* ``rebuild``: the pre-delta behaviour — every strike snapshots the
  cluster, fingerprints it, and builds a cold incidence + kernel.

Both modes draw identical randomness, so their strike records must match
bit-for-bit (asserted); the headline is events/sec. Acceptance: the delta
engine completes the trace >= 5x faster than rebuild-per-strike when the
native gain backing is available (>= 1.5x on the pure-python ladder,
where search time — identical in both modes — dominates the gap).

Run explicitly (bench files are not part of the tier-1 suite)::

    PYTHONPATH=src python -m pytest benchmarks/bench_sim.py -q

The trajectory record lands in the repo-top-level ``BENCH_3.json`` and
``benchmarks/output/BENCH_sim.json``.
"""

import json
import pathlib

from conftest import OUTPUT_DIR, emit

from repro.core.batch import clear_attack_caches
from repro.core.kernels import resolve_gain_backing
from repro.sim import LifetimeSimulator, SimConfig
from repro.util.tables import TextTable

JSON_PATH = OUTPUT_DIR / "BENCH_sim.json"
BENCH_3_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_3.json"

#: The 10k-event trace: churn-dominated with a strike every 8 time units,
#: warm population ~300 objects growing past 1500 by the end.
TRACE = dict(
    n=31, r=3, s=2, k=3,
    events=10_000, seed=7, racks=4,
    arrival_probability=0.6, warmup_arrivals=300, churn_interval=1.0,
    strike_period=8.0, measure_period=64.0, repair_time=2.0,
    effort="fast", repair="none", replan_interval=256,
    expected_objects=300,
)


def _run(mode: str):
    clear_attack_caches()
    report = LifetimeSimulator(SimConfig(**TRACE, engine_mode=mode)).run()
    return report


def _strike_signature(report):
    return [
        (round(s.time, 6), s.nodes, s.damage, s.live_objects)
        for s in report.strikes
    ]


def test_delta_engine_vs_rebuild_per_event(benchmark):
    delta, rebuild = benchmark.pedantic(
        lambda: (_run("delta"), _run("rebuild")), rounds=1, iterations=1
    )

    assert _strike_signature(delta) == _strike_signature(rebuild), (
        "engine modes diverged: the delta path is supposed to be "
        "semantically invisible"
    )
    assert delta.bound_violations() == rebuild.bound_violations() == 0

    speedup = rebuild.wall_seconds / delta.wall_seconds
    gain_backing = resolve_gain_backing()

    table = TextTable(
        ["engine", "wall sec", "events/sec", "strikes", "final b"],
        title=(
            f"10k-event churn+attack trace (n={TRACE['n']}, r={TRACE['r']}, "
            f"s={TRACE['s']}, k={TRACE['k']}, gain/{gain_backing})"
        ),
    )
    for name, report in (("delta", delta), ("rebuild", rebuild)):
        table.add_row(
            [
                name,
                round(report.wall_seconds, 3),
                round(report.events_per_sec, 1),
                len(report.strikes),
                report.samples[-1].live_objects if report.samples else 0,
            ]
        )
    emit(
        "bench_sim",
        table.render() + f"\n\nspeedup delta vs rebuild-per-strike: "
        f"{speedup:.2f}x",
    )

    payload = {
        "schema": "bench_3/v1",
        "workload": {
            **{key: TRACE[key] for key in (
                "n", "r", "s", "k", "events", "seed", "strike_period",
                "arrival_probability", "warmup_arrivals", "effort",
            )},
            "kernel": f"gain/{gain_backing}",
        },
        "delta_engine": {
            "wall_seconds": round(delta.wall_seconds, 4),
            "events_per_sec": round(delta.events_per_sec, 1),
            "strikes": len(delta.strikes),
        },
        "rebuild_per_event": {
            "wall_seconds": round(rebuild.wall_seconds, 4),
            "events_per_sec": round(rebuild.events_per_sec, 1),
            "strikes": len(rebuild.strikes),
        },
        "speedup_delta_vs_rebuild": round(speedup, 2),
        "strike_records_bit_identical": True,
        "bound_violations": delta.bound_violations(),
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    BENCH_3_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    # Acceptance: warm delta engine >= 5x the fingerprint-rebuild path
    # (native backing; the interpreter-bound ladders only must show a
    # clear win, since search cost — shared by both modes — dominates).
    required = 5.0 if gain_backing == "native" else 1.5
    assert speedup >= required, payload
