"""Lane benchmark: replicated gain-state lanes vs the serial chain loop.

One claim, measured and gated: the flagship ``local_search_attacks_per_sec``
metric must reach at least 2x the serial path at 4 lanes — each
``LocalSearchAdversary.attack`` submits its greedy + restart polish
chains as one batch, and the native kernel runs each chain to
convergence on a private clone of the packed gain state (one fused
``gk_polish_chain`` foreign call per chain, dispatched across the
persistent pthread pool as coarse tasks).

Alongside the measured wall clock the report records the
**partition-predicted** speedup — with ``C`` chains over ``L`` lanes the
critical path is the longest lane, ``ceil(C / L)`` chains, so prediction
= ``C / ceil(C / L)`` capped by the core count — which states how much
of the ideal the measurement achieved.

Bit-identity is gated *unconditionally*: every lane count must produce
the same ``AttackResult`` (nodes, damage, evaluations) as the serial
loop. The wall-clock gate arms only on hosts with >= 4 cores and a
compiled native kernel (fewer cores cannot express a 2x overlap at 4
lanes; the pure-python fallbacks run chains serially by design);
smaller hosts still record honest numbers with
``wall_clock_gated: false``.

Run::

    PYTHONPATH=src python benchmarks/bench_lanes.py

Writes ``BENCH_10.json`` at the repository root (override with
``REPRO_BENCH_OUT``). CI smoke (small scale, gates only, no
BENCH_10.json)::

    PYTHONPATH=src python benchmarks/bench_lanes.py --smoke
"""

import argparse
import json
import math
import os
import pathlib
import random
import sys
import time

from repro.core import native
from repro.core.adversary import LocalSearchAdversary
from repro.core.kernels import make_kernel
from repro.core.random_placement import RandomStrategy

LANE_COUNTS = (1, 2, 4)
GATE_AT_4 = 2.0
ROOT = pathlib.Path(__file__).resolve().parent.parent

FULL = dict(n=192, r=3, b=60_000, k=8, s=2, restarts=11, attacks=6, reps=3)
SMOKE = dict(n=64, r=3, b=4_000, k=4, s=2, restarts=7, attacks=2, reps=2)


def _predicted_speedup(chains, lanes, cores):
    """Critical-path prediction: longest lane, capped by the cores."""
    ideal = chains / math.ceil(chains / lanes)
    return min(ideal, float(cores))


def _measure(placement, kernel, scale, lanes):
    """Min-of-reps wall clock for a block of whole attacks; plus results."""
    adversary = LocalSearchAdversary(restarts=scale["restarts"], lanes=lanes)
    times, results = [], None
    for _ in range(scale["reps"]):
        begin = time.perf_counter()
        block = [
            adversary.attack(placement, scale["k"], scale["s"], kernel=kernel)
            for _ in range(scale["attacks"])
        ]
        times.append(time.perf_counter() - begin)
        if results is None:
            results = block
        elif block != results:
            raise AssertionError(
                f"lanes={lanes}: repeated attack blocks diverged"
            )
    return min(times), results


def bench_lanes(scale, gated):
    placement = RandomStrategy(scale["n"], scale["r"]).place(
        scale["b"], random.Random(10)
    )
    kernel = make_kernel(placement, scale["s"], backend="gain")
    chains = 1 + scale["restarts"]  # greedy polish + every restart
    cores = os.cpu_count() or 1

    entries = {}
    serial_seconds, serial_results = None, None
    for lanes in LANE_COUNTS:
        seconds, results = _measure(placement, kernel, scale, lanes)
        if lanes == 1:
            serial_seconds, serial_results = seconds, results
        identical = results == serial_results
        if not identical:
            raise AssertionError(
                f"lanes={lanes}: certificates diverged from the serial path"
            )
        speedup = serial_seconds / seconds
        rate = scale["attacks"] / seconds
        entry = {
            "lanes": lanes,
            "local_search_attacks_per_sec": round(rate, 2),
            "seconds": round(seconds, 4),
            "speedup": round(speedup, 2),
            "predicted_speedup": round(
                _predicted_speedup(chains, lanes, cores), 2
            ),
            "bit_identical": identical,
        }
        if lanes == 4:
            entry["gate"] = GATE_AT_4
            entry["wall_clock_gated"] = gated
            entry["pass"] = identical and (
                (not gated) or speedup >= GATE_AT_4
            )
        entries[f"lanes_{lanes}"] = entry
    return {
        "n": scale["n"],
        "r": scale["r"],
        "b": scale["b"],
        "k": scale["k"],
        "s": scale["s"],
        "restarts": scale["restarts"],
        "chains_per_attack": chains,
        "attacks_per_block": scale["attacks"],
        "reps": scale["reps"],
        **entries,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small scale, gates only, no BENCH_10.json",
    )
    args = parser.parse_args(argv)
    cores = os.cpu_count() or 1
    gated = cores >= 4 and native.available()

    scale = SMOKE if args.smoke else FULL
    report = {
        "cpu_count": cores,
        "native_kernel": native.available(),
        "attacks": bench_lanes(scale, gated),
    }

    status = 0
    at4 = report["attacks"]["lanes_4"]
    for lanes in LANE_COUNTS:
        if not report["attacks"][f"lanes_{lanes}"]["bit_identical"]:
            print(
                f"FAIL: lanes={lanes} diverged from the serial certificates",
                file=sys.stderr,
            )
            status = 1
    if not at4["pass"]:
        print(
            f"FAIL: 4 lanes reach only {at4['speedup']:.2f}x the serial "
            f"attack rate (gate {at4['gate']:.1f}x, predicted "
            f"{at4['predicted_speedup']:.2f}x on {cores} cores)",
            file=sys.stderr,
        )
        status = 1

    text = json.dumps(report, indent=1)
    print(text)
    if args.smoke:
        return status
    if status == 0:
        out_path = os.environ.get(
            "REPRO_BENCH_OUT", str(ROOT / "BENCH_10.json")
        )
        with open(out_path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return status


if __name__ == "__main__":
    sys.exit(main())
