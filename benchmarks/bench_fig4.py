"""Fig. 4 bench: the subsystem-order table n_x, recomputed from the catalog.

All cells match the paper except the two source-corrupted entries
(n=71, r=4, x=1) and (n=71, r=5, x=3); see DESIGN.md for the argument.
"""

from conftest import emit

from repro.analysis import fig4


def test_fig4_subsystem_orders(benchmark):
    result = benchmark.pedantic(fig4.generate, rounds=1, iterations=1)
    emit("fig4", result.render())
    mismatched = {(c.n, c.r, c.x) for c in result.cells if c.matches_paper is False}
    assert mismatched == {(71, 4, 1), (71, 5, 3)}
