"""Tiny-scale CI perf smoke: the gain engine must not lose to pure python.

A guard, not a benchmark: it runs a small LocalSearch ladder (n=31,
b=600 — seconds even on a throttled CI runner) through the auto-resolved
gain engine and through the pure-python full-scan kernel, and fails if
the gain engine is slower. The real perf record (paper scale, the >= 5x
acceptance against the PR-1 bitset baseline) lives in
``bench_kernels.py`` / ``BENCH_2.json``; this script only catches the
"gain engine silently degraded below the floor" failure mode.

Run::

    PYTHONPATH=src python benchmarks/perf_smoke.py

Exits non-zero (with a JSON diagnostic on stdout) on regression.
"""

import json
import random
import sys
import time

from repro.core.adversary import LocalSearchAdversary
from repro.core.kernels import make_kernel, resolve_gain_backing
from repro.core.random_placement import RandomStrategy

N, B, S = 31, 600, 2
K_VALUES = (2, 3, 4)
ROUNDS = 7
#: Timing-noise allowance: "at least as fast" with 10% grace on a 2-digit
#: millisecond measurement.
SLACK = 1.10


def sweep_seconds(kernel) -> float:
    adversary = LocalSearchAdversary(restarts=2, seed=0)
    placement = kernel.placement
    best = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        for k in K_VALUES:
            adversary.attack(placement, k, S, kernel=kernel)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def main() -> int:
    placement = RandomStrategy(N, 3).place(B, random.Random(0))
    gain = make_kernel(placement, S, backend="gain")
    python = make_kernel(placement, S, backend="python")
    gain_damages = tuple(
        LocalSearchAdversary(restarts=2, seed=0).attack(
            placement, k, S, kernel=gain
        ).damage
        for k in K_VALUES
    )
    python_damages = tuple(
        LocalSearchAdversary(restarts=2, seed=0).attack(
            placement, k, S, kernel=python
        ).damage
        for k in K_VALUES
    )
    gain_seconds = sweep_seconds(gain)
    python_seconds = sweep_seconds(python)
    report = {
        "n": N, "b": B, "s": S, "k_values": list(K_VALUES),
        "gain_backing": resolve_gain_backing(),
        "gain_seconds": round(gain_seconds, 5),
        "python_seconds": round(python_seconds, 5),
        "speedup": round(python_seconds / gain_seconds, 2),
        "damages_agree": gain_damages == python_damages,
    }
    print(json.dumps(report))
    if gain_damages != python_damages:
        print("FAIL: gain engine and python kernel disagree", file=sys.stderr)
        return 1
    if gain_seconds > python_seconds * SLACK:
        print(
            f"FAIL: gain engine ({gain_seconds:.4f}s) slower than pure "
            f"python ({python_seconds:.4f}s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
